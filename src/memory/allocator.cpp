#include "memory/allocator.hpp"

namespace apcc::memory {

namespace {
std::uint64_t align_up(std::uint64_t v, std::uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}
}  // namespace

FreeListAllocator::FreeListAllocator(std::uint64_t capacity, FitPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ > 0) {
    free_runs_[0] = capacity_;
  }
}

std::optional<std::uint64_t> FreeListAllocator::allocate(std::uint64_t size) {
  APCC_CHECK(size > 0, "cannot allocate zero bytes");
  const std::uint64_t need = align_up(size, kAlignment);

  auto chosen = free_runs_.end();
  if (policy_ == FitPolicy::kFirstFit) {
    for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
      if (it->second >= need) {
        chosen = it;
        break;
      }
    }
  } else {
    std::uint64_t best_size = UINT64_MAX;
    for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
      if (it->second >= need && it->second < best_size) {
        best_size = it->second;
        chosen = it;
      }
    }
  }
  if (chosen == free_runs_.end()) {
    ++failed_allocations_;
    return std::nullopt;
  }

  const std::uint64_t address = chosen->first;
  const std::uint64_t run_size = chosen->second;
  free_runs_.erase(chosen);
  if (run_size > need) {
    free_runs_[address + need] = run_size - need;
  }
  allocations_[address] = need;
  used_ += need;
  ++total_allocations_;
  return address;
}

void FreeListAllocator::release(std::uint64_t address) {
  const auto it = allocations_.find(address);
  APCC_CHECK(it != allocations_.end(), "release of unknown address");
  std::uint64_t start = address;
  std::uint64_t size = it->second;
  allocations_.erase(it);
  used_ -= size;

  // Coalesce with the following free run.
  const auto next = free_runs_.find(start + size);
  if (next != free_runs_.end()) {
    size += next->second;
    free_runs_.erase(next);
  }
  // Coalesce with the preceding free run.
  if (!free_runs_.empty()) {
    auto prev = free_runs_.lower_bound(start);
    if (prev != free_runs_.begin()) {
      --prev;
      if (prev->first + prev->second == start) {
        start = prev->first;
        size += prev->second;
        free_runs_.erase(prev);
      }
    }
  }
  free_runs_[start] = size;
}

std::uint64_t FreeListAllocator::allocation_size(std::uint64_t address) const {
  const auto it = allocations_.find(address);
  APCC_CHECK(it != allocations_.end(), "unknown allocation address");
  return it->second;
}

AllocatorStats FreeListAllocator::stats() const {
  AllocatorStats s;
  s.capacity = capacity_;
  s.used = used_;
  s.free = capacity_ - used_;
  for (const auto& [addr, size] : free_runs_) {
    s.largest_free_run = std::max(s.largest_free_run, size);
  }
  s.live_allocations = allocations_.size();
  s.total_allocations = total_allocations_;
  s.failed_allocations = failed_allocations_;
  return s;
}

void FreeListAllocator::validate() const {
  std::uint64_t free_total = 0;
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [addr, size] : free_runs_) {
    APCC_ASSERT(size > 0, "empty free run");
    APCC_ASSERT(addr + size <= capacity_, "free run outside region");
    if (!first) {
      APCC_ASSERT(addr > prev_end, "free runs not coalesced/disjoint");
    }
    prev_end = addr + size;
    first = false;
    free_total += size;
  }
  std::uint64_t used_total = 0;
  for (const auto& [addr, size] : allocations_) {
    APCC_ASSERT(addr + size <= capacity_, "allocation outside region");
    used_total += size;
  }
  APCC_ASSERT(used_total == used_, "used-byte accounting drift");
  APCC_ASSERT(free_total + used_total == capacity_,
              "free+used does not cover the region");
}

}  // namespace apcc::memory
