// Free-list allocator for the decompressed-block area.
//
// The paper's implementation (§5) keeps compressed originals at fixed
// locations and places decompressed copies in a separate region precisely
// to avoid fragmenting the main image. This allocator manages that region
// and *measures* the fragmentation the design avoids elsewhere: external
// fragmentation is reported so the E-series ablations can quantify it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "support/assert.hpp"

namespace apcc::memory {

/// Placement policy for free-list search.
enum class FitPolicy : std::uint8_t { kFirstFit, kBestFit };

/// Snapshot of allocator health.
struct AllocatorStats {
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;
  std::uint64_t free = 0;
  std::uint64_t largest_free_run = 0;
  std::uint64_t live_allocations = 0;
  std::uint64_t total_allocations = 0;
  std::uint64_t failed_allocations = 0;

  /// 0 = free space is one contiguous run; 1 = maximally shattered.
  [[nodiscard]] double external_fragmentation() const {
    if (free == 0) return 0.0;
    return 1.0 - static_cast<double>(largest_free_run) /
                     static_cast<double>(free);
  }
};

/// Byte-granular allocator over [0, capacity) with 4-byte alignment and
/// free-run coalescing. Addresses are offsets within the managed region.
class FreeListAllocator {
 public:
  explicit FreeListAllocator(std::uint64_t capacity,
                             FitPolicy policy = FitPolicy::kFirstFit);

  /// Allocate `size` bytes; nullopt when no free run fits.
  [[nodiscard]] std::optional<std::uint64_t> allocate(std::uint64_t size);

  /// Release an allocation previously returned by allocate().
  void release(std::uint64_t address);

  /// Size of the allocation at `address`.
  [[nodiscard]] std::uint64_t allocation_size(std::uint64_t address) const;

  [[nodiscard]] AllocatorStats stats() const;
  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  /// Internal consistency check (free runs sorted, disjoint, coalesced).
  void validate() const;

 private:
  static constexpr std::uint64_t kAlignment = 4;

  std::uint64_t capacity_;
  FitPolicy policy_;
  std::map<std::uint64_t, std::uint64_t> free_runs_;    // addr -> size
  std::map<std::uint64_t, std::uint64_t> allocations_;  // addr -> size
  std::uint64_t used_ = 0;
  std::uint64_t total_allocations_ = 0;
  std::uint64_t failed_allocations_ = 0;
};

}  // namespace apcc::memory
