// Memory image layout for the paper's compressed-code scheme (§5).
//
// The image has two regions:
//  * the compressed code area -- every basic block's compressed bytes at a
//    fixed location, plus a per-block index entry (address + length + the
//    compressed/uncompressed state bit the paper requires); this region
//    never changes during execution, and
//  * the decompressed block area -- transient decompressed copies managed
//    by a FreeListAllocator.
//
// Total occupancy at any instant = compressed area + live decompressed
// copies + runtime metadata. MemoryLayout tracks the time series so the
// engine can report peak and time-averaged footprints.
#pragma once

#include <cstdint>
#include <vector>

#include "memory/allocator.hpp"
#include "support/stats.hpp"

namespace apcc::memory {

/// Static description of one block's slot in the compressed code area.
struct CompressedSlot {
  std::uint64_t address = 0;        // offset within the compressed area
  std::uint64_t compressed_size = 0;
  std::uint64_t original_size = 0;
};

/// Per-block index entry overhead, modelling the paper's bookkeeping: the
/// §4 "bit per basic block" state flag, the §5 k-edge counter, and the
/// compressed slot length (slot addresses are prefix sums recomputed from
/// lengths, CodePack-LAT style), packed into 4 bytes per block. The paper
/// itself never charges this cost; APCC includes it in every occupancy
/// number so reported savings are conservative.
inline constexpr std::uint64_t kIndexEntryBytes = 4;

/// Layout + occupancy tracker.
class MemoryLayout {
 public:
  /// `decompressed_capacity` bounds the decompressed area (the §2 budget);
  /// pass kUnbounded for the paper's default unrestricted mode.
  static constexpr std::uint64_t kUnbounded = UINT64_MAX;

  MemoryLayout(std::vector<CompressedSlot> slots,
               std::uint64_t decompressed_capacity,
               FitPolicy fit = FitPolicy::kFirstFit);

  [[nodiscard]] const CompressedSlot& slot(std::size_t block) const;
  [[nodiscard]] std::size_t block_count() const { return slots_.size(); }

  /// Fixed size of the compressed code area (sum of slots, 4-byte aligned
  /// each) plus the block index.
  [[nodiscard]] std::uint64_t compressed_area_bytes() const {
    return compressed_area_bytes_;
  }
  [[nodiscard]] std::uint64_t index_bytes() const {
    return kIndexEntryBytes * slots_.size();
  }

  /// Original (uncompressed) image size.
  [[nodiscard]] std::uint64_t original_image_bytes() const {
    return original_image_bytes_;
  }

  /// Allocate room for a decompressed copy of `block`; nullopt if the
  /// area is full (caller evicts and retries). `now` timestamps the
  /// occupancy sample.
  [[nodiscard]] std::optional<std::uint64_t> place_decompressed(
      std::size_t block, std::uint64_t now);

  /// Release the decompressed copy previously placed at `address`.
  void drop_decompressed(std::uint64_t address, std::uint64_t now);

  /// Live bytes in the decompressed area.
  [[nodiscard]] std::uint64_t decompressed_bytes() const {
    return allocator_.used_bytes();
  }

  /// Total live occupancy: compressed area + index + decompressed copies.
  [[nodiscard]] std::uint64_t occupancy_bytes() const;

  [[nodiscard]] const FreeListAllocator& allocator() const {
    return allocator_;
  }

  /// Peak total occupancy observed.
  [[nodiscard]] std::uint64_t peak_occupancy_bytes() const {
    return peak_occupancy_;
  }
  /// Time-weighted average occupancy up to `now`.
  [[nodiscard]] double average_occupancy_bytes(std::uint64_t now) const {
    return occupancy_series_.average(now);
  }

 private:
  void sample(std::uint64_t now);

  std::vector<CompressedSlot> slots_;
  std::uint64_t compressed_area_bytes_ = 0;
  std::uint64_t original_image_bytes_ = 0;
  FreeListAllocator allocator_;
  std::uint64_t peak_occupancy_ = 0;
  apcc::TimeWeightedAverage occupancy_series_;
};

/// Lay out compressed blocks back to back (4-byte aligned), computing slot
/// addresses from the given sizes.
[[nodiscard]] std::vector<CompressedSlot> layout_slots(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
        compressed_and_original_sizes);

}  // namespace apcc::memory
