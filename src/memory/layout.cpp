#include "memory/layout.hpp"

namespace apcc::memory {

namespace {
std::uint64_t align4(std::uint64_t v) { return (v + 3) & ~std::uint64_t{3}; }
}  // namespace

std::vector<CompressedSlot> layout_slots(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
        compressed_and_original_sizes) {
  std::vector<CompressedSlot> slots;
  slots.reserve(compressed_and_original_sizes.size());
  std::uint64_t cursor = 0;
  for (const auto& [compressed, original] : compressed_and_original_sizes) {
    CompressedSlot slot;
    slot.address = cursor;
    slot.compressed_size = compressed;
    slot.original_size = original;
    cursor += align4(compressed);
    slots.push_back(slot);
  }
  return slots;
}

MemoryLayout::MemoryLayout(std::vector<CompressedSlot> slots,
                           std::uint64_t decompressed_capacity,
                           FitPolicy fit)
    : slots_(std::move(slots)),
      allocator_(decompressed_capacity == kUnbounded
                     ? [&] {
                         // "Unbounded" still needs a finite region; the
                         // whole image decompressed at once is the upper
                         // bound, padded for allocator alignment.
                         std::uint64_t total = 0;
                         for (const auto& s : slots_) {
                           total += align4(s.original_size);
                         }
                         return total + 4096;
                       }()
                     : decompressed_capacity,
                 fit) {
  for (const auto& s : slots_) {
    compressed_area_bytes_ =
        std::max(compressed_area_bytes_, s.address + align4(s.compressed_size));
    original_image_bytes_ += s.original_size;
  }
  compressed_area_bytes_ += index_bytes();
  peak_occupancy_ = occupancy_bytes();
  occupancy_series_.sample(0, static_cast<double>(peak_occupancy_));
}

const CompressedSlot& MemoryLayout::slot(std::size_t block) const {
  APCC_CHECK(block < slots_.size(), "block index out of range");
  return slots_[block];
}

std::optional<std::uint64_t> MemoryLayout::place_decompressed(
    std::size_t block, std::uint64_t now) {
  const auto address = allocator_.allocate(slot(block).original_size);
  if (address) sample(now);
  return address;
}

void MemoryLayout::drop_decompressed(std::uint64_t address,
                                     std::uint64_t now) {
  allocator_.release(address);
  sample(now);
}

std::uint64_t MemoryLayout::occupancy_bytes() const {
  return compressed_area_bytes_ + allocator_.used_bytes();
}

void MemoryLayout::sample(std::uint64_t now) {
  const std::uint64_t occupancy = occupancy_bytes();
  peak_occupancy_ = std::max(peak_occupancy_, occupancy);
  occupancy_series_.sample(now, static_cast<double>(occupancy));
}

}  // namespace apcc::memory
