// serving::FaultPlan -- deterministic fault injection for the serving
// robustness paths.
//
// The rollback, cancellation, rejection, and drain machinery in
// Service/Pool only fires on failures, and real failures are rare and
// timing-dependent -- exactly the code a test suite silently stops
// covering. A FaultPlan is a declarative, seeded schedule of injected
// faults the Service consults at its two well-defined fault points:
//
//  * the **artifact build** (the image claim-build handshake), counted
//    service-wide in claim order, and
//  * the **task boundary** (the top of every pool item, before any
//    engine work), counted service-wide in dispatch order.
//
// All schedules are count-based, never clock-based, so a plan injects
// the same fault at the same logical point on every run; the injected
// error messages embed the seed and the fault ordinal (and nothing
// execution-order-dependent), so the resulting result records are
// byte-identical at any worker count. An empty plan is zero-cost: the
// Service holds a null pointer and every hook is a single branch.
//
// tests/serving/fault_injection_test.cpp drives every robustness path
// through this plan; it is equally usable for manual soak runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace apcc::serving {

struct FaultPlan {
  /// Echoed into every injected error message, so a failure seen in a
  /// log names the plan that caused it. Not an RNG seed -- schedules
  /// are deterministic counts, the seed is an identification tag.
  std::uint64_t seed = 0;

  /// Fail the Nth artifact (image) build attempt, 1-based, counted
  /// service-wide; 0 = never. The injected throw exercises the PR 4
  /// claim-rollback path: the slot returns to idle and waiters
  /// re-claim.
  std::size_t fail_image_build = 0;

  /// Throw at the Nth task boundary, 1-based, counted service-wide
  /// across all jobs' items; 0 = never. The throw is the job's first
  /// failure, so the pool cancels its remaining items.
  std::size_t throw_in_task = 0;

  /// Request the owning job's cancellation at the Nth task boundary,
  /// 1-based; 0 = never. The injecting cell itself is skipped.
  std::size_t cancel_at_boundary = 0;

  /// Treat every per-job deadline as already expired at dispatch --
  /// the deterministic driver for the deadline-exceeded path (a real
  /// wall-clock expiry is inherently racy). Jobs without a deadline
  /// are unaffected.
  bool expire_deadlines = false;

  /// At the Nth successful artifact publish (images + frontier
  /// geometry, 1-based, counted service-wide in publish order), force
  /// an eviction pass that reclaims every unpinned resident artifact
  /// regardless of the configured budget; 0 = never. Pinned artifacts
  /// (borrowed by in-flight cells -- including the publisher itself)
  /// survive, exactly as under real budget pressure, so this is the
  /// deterministic driver for the evict-then-rebuild path without
  /// having to tune a byte budget per workload.
  std::size_t evict_at_publish = 0;

  /// Test seam: called at every task boundary with the 1-based
  /// boundary ordinal, before the declarative faults above are
  /// evaluated. Tests use it to park a cell on a gate so queue depth
  /// is under test control (admission and drain tests). Must be
  /// thread-safe; must not throw.
  std::function<void(std::size_t)> on_boundary;

  /// True when the plan injects nothing (on_boundary still fires).
  [[nodiscard]] bool empty() const {
    return fail_image_build == 0 && throw_in_task == 0 &&
           cancel_at_boundary == 0 && !expire_deadlines &&
           evict_at_publish == 0 && !on_boundary;
  }
};

}  // namespace apcc::serving
