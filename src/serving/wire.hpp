// The APCC wire format: a canonical, versioned text codec for JobSpec
// and every job result type.
//
// This is what lets jobs and results leave the address space: batch job
// files, the `apcc_cli serve` stdin/stdout front door, and the CI golden
// round-trip gate all speak exactly this format. Records are
// line-oriented text:
//
//   apcc.job v4                      <- strict versioned header
//   kind sweep
//   client bench-rig
//   priority high
//   max-workers 2
//   deadline-ms 0
//   batch-cells 0
//   share-frontiers 1
//   workload gsm-like
//   codec huffman-shared
//   ...
//   task label=on-demand/k=1 strategy=on-demand kc=1 kd=1 ...
//   end
//
//   apcc.result v4
//   job 1
//   client bench-rig
//   status ok
//   kind sweep
//   outcome index=0 label=on-demand/k=1 total-cycles=8124 ...
//   end
//
// v3 (PR 6) adds the optional `deadline-ms` job field (0 = none) and
// widens result `status` from ok|error to the full JobStatus set --
// ok | error | rejected | cancelled | deadline-exceeded. Only `ok`
// carries a payload; `error` requires an `error` message line; the
// other non-ok statuses may carry one.
//
// v4 (PR 7) adds the optional `batch-cells` job field (0 = the
// per-engine path): grid cells stepped in lockstep per pool work item
// for sweep/campaign jobs. Omitting it reproduces v3 behaviour exactly;
// any value changes scheduling granularity, never results. Result
// records are unchanged from v3 apart from the header version.
//
// Contract:
//  * **Strict**: the header must match byte-for-byte (a future schema
//    change must bump the version deliberately); unknown keys,
//    duplicate single-occurrence keys, malformed values, and missing
//    `end` are errors, never silently ignored. Errors throw WireError
//    carrying the offending line number and a snippet.
//  * **Lenient about omission**: every key except `kind` (and the
//    workload arity the job kind demands) has the library default, so
//    hand-written job files stay short.
//  * **Canonical**: serialize() always emits every field, in a fixed
//    order, with fixed formatting (shortest round-trip for doubles).
//    serialize(parse(text)) is therefore a fixed point: running it
//    twice yields byte-identical output, which is what the golden
//    round-trip test in CI diffs against.
//  * Field values that may contain spaces / non-printable bytes
//    (workload refs, task labels, client tags, error messages) are
//    percent-escaped; an empty string is the sentinel "-".
//
// Sugar: a job record may say `grid strategy-k` instead of explicit
// `task` lines -- it expands at parse time to the standard strategy x k
// grid (serving::strategy_k_grid) over the record's own base config.
// Serialization always emits the expanded tasks, keeping the canonical
// form explicit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "serving/job_spec.hpp"
#include "support/assert.hpp"

namespace apcc::serving::wire {

/// The wire schema version both record headers carry. Any change to
/// the record grammar, key set, or value formats must bump
/// JobSpec::kWireVersion (and regenerate the golden files in
/// tests/serving/data); the header strings derive from it so the
/// version is stated in exactly one place.
inline constexpr int kVersion = JobSpec::kWireVersion;
inline const std::string kJobHeader = "apcc.job v" + std::to_string(kVersion);
inline const std::string kResultHeader =
    "apcc.result v" + std::to_string(kVersion);

/// A malformed record: `line()` is the 1-based line the error was
/// detected on (absolute, given the `first_line` the parse call was
/// handed) and `snippet()` is that line's text, for diagnostics that
/// point at the offending input.
class WireError : public CheckError {
 public:
  WireError(const std::string& message, std::size_t line,
            std::string snippet)
      : CheckError(message), line_(line), snippet_(std::move(snippet)) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] const std::string& snippet() const { return snippet_; }

 private:
  std::size_t line_;
  std::string snippet_;
};

// ------------------------------------------------------------- jobs

/// Canonical text for one job record (header through "end\n").
[[nodiscard]] std::string serialize_job(const JobSpec& spec);

/// Parse one job record. `first_line` is the absolute line number of
/// the record's header line in its source, so WireErrors point at the
/// real file/stream position. Blank and '#'-comment lines inside the
/// record are skipped (and counted).
[[nodiscard]] JobSpec parse_job(std::string_view text,
                                std::size_t first_line = 1);

// ----------------------------------------------------------- results

/// One job's wire-visible outcome: the submission sequence number the
/// stream assigned it, the echoed client tag, and either the unified
/// JobResult payload (status ok) or a status + message explaining why
/// there is none.
struct ResultRecord {
  std::uint64_t job = 0;
  std::string client;
  /// How the job resolved. Only kOk records carry a payload.
  JobStatus status = JobStatus::kOk;
  /// The non-ok explanation: required for kError, optional for the
  /// lifecycle statuses (rejected / cancelled / deadline-exceeded),
  /// forbidden for kOk.
  std::string error;
  JobResult result;

  [[nodiscard]] bool ok() const { return status == JobStatus::kOk; }
};

[[nodiscard]] std::string serialize_result(const ResultRecord& record);

[[nodiscard]] ResultRecord parse_result(std::string_view text,
                                        std::size_t first_line = 1);

// ------------------------------------------------------------ streams

/// One raw record cut out of a stream: the exact text from its header
/// line through its "end" line, where it started, and which header it
/// carried. Feed `text`/`first_line` to parse_job / parse_result.
struct RawRecord {
  std::string text;
  std::size_t first_line = 0;
  bool is_result = false;
};

/// Splits a stream into records: skips blank and '#'-comment lines
/// between records, requires every record to open with a known header
/// and close with "end". Throws WireError (absolute line numbers) on
/// anything else.
class RecordReader {
 public:
  explicit RecordReader(std::istream& in) : in_(in) {}

  /// The next record, or nullopt at clean EOF.
  [[nodiscard]] std::optional<RawRecord> next();

 private:
  std::istream& in_;
  std::size_t line_ = 0;
};

// -------------------------------------------------- field encoding

/// Percent-escape a free-form field for a wire line: bytes outside
/// printable-ASCII, '%', and spaces become %XX (uppercase hex); the
/// empty string is "-" (and a literal "-" is "%2D"). Deterministic,
/// so canonical.
[[nodiscard]] std::string escape_field(std::string_view s);

/// Inverse of escape_field; throws CheckError on malformed escapes.
[[nodiscard]] std::string unescape_field(std::string_view s);

}  // namespace apcc::serving::wire
