// apcc::serving::Service -- the persistent job-submission API.
//
// The PR 0-3 entry points (CodeCompressionSystem::run / run_sweep,
// core::run_campaign) are one-shot: every call rebuilds the compressed
// BlockImage, re-materializes frontier geometry, and spins a pool up
// and down. That is the wrong shape for the workload the ROADMAP aims
// at -- the same suite replayed under many policy grids, by many
// clients -- where the expensive transforms are *artifacts of the
// workload*, not of the request. Service inverts the lifecycle:
//
//   serving::Service service;                          // resident pool
//   auto id = service.register_workload(
//       workloads::make_workload(WorkloadKind::kGsmLike));
//   serving::JobSpec spec;                  // the canonical front door
//   spec.kind = serving::JobKind::kSweep;
//   spec.workloads = {"@" + std::to_string(id)};
//   spec.tasks = grid;
//   spec.priority = sweep::Priority::kHigh;
//   auto handle = service.submit(std::move(spec));
//   const serving::JobResult& r = handle.wait();
//
//  * register_workload() hands the Service ownership of a workload; the
//    returned WorkloadId names it in every later job (JobSpecs may also
//    reference it by registered name -- see job_spec.hpp).
//  * The Service owns a per-workload **artifact cache**: the compressed
//    BlockImage keyed by codec kind, the materialized FrontierCache
//    keyed by (CFG, predecompress_k), and the parsed trace. Artifacts
//    are built lazily -- by the first pool worker whose job needs them,
//    never on the submitting thread -- deduplicated by a claim-build /
//    wait handshake, and immutable afterwards, so any number of
//    concurrent jobs borrow them without copies or locks.
//  * submit(JobSpec) is the single submission path: it validates the
//    spec, resolves its workload references, enqueues the job onto one
//    shared sweep::Pool under the spec's QoS (priority class, worker
//    budget), and returns a future-style JobHandle immediately. The
//    typed overloads (RunJob / SweepJob / CampaignJob) are thin veneers
//    that build a JobSpec and project the unified JobResult back to
//    their historical return types -- same state, zero copies.
//
// The invariant the whole design hangs on: a job's outcome is
// **byte-identical** to the equivalent direct run / run_sweep /
// run_campaign call. Cached images are built by the same codec
// training on the same bytes; borrowed geometry holds exactly the
// lists an owned cache would compute (pinned by the engine-equivalence
// grid); scheduling -- including priorities and budgets -- only changes
// *when* a cell runs, never what it computes. tests/serving pins the
// differentials (service_test.cpp, job_spec_test.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/system.hpp"
#include "runtime/frontier_cache.hpp"
#include "serving/job_spec.hpp"
#include "support/assert.hpp"
#include "sweep/campaign.hpp"
#include "sweep/pool.hpp"
#include "sweep/sweep.hpp"
#include "workloads/suite.hpp"

namespace apcc::serving {

/// Names a workload registered with a Service (dense, 0-based).
using WorkloadId = std::size_t;

/// Job identifier: unique per Service, shared with the pool's work
/// items so the scheduler and diagnostics can attribute cells to jobs.
using JobId = sweep::Pool::JobId;

struct ServiceOptions {
  /// Resident pool width; 0 means hardware concurrency (clamped to at
  /// least 1). Unlike the one-shot runners, 1 still means one resident
  /// worker *thread* -- submit() never runs work inline.
  unsigned workers = 0;
};

/// Simulate one workload's default trace under one configuration --
/// the typed veneer over a kind=run JobSpec.
struct RunJob {
  WorkloadId workload = 0;
  core::SystemConfig config{};
  /// Borrow the cached (workload, predecompress_k) geometry instead of
  /// the engine building its own (bit-identical either way).
  bool share_frontiers = true;
};

/// Run a policy grid over one workload -- the typed veneer over a
/// kind=sweep JobSpec. `config` supplies the codec (image artifact
/// key); each task carries its own engine knobs.
struct SweepJob {
  WorkloadId workload = 0;
  core::SystemConfig config{};
  std::vector<sweep::SweepTask> tasks;
  /// Borrow the cached per-(workload, k) geometry. Outcomes are
  /// bit-identical either way; off forces every engine to own its
  /// frontier cache (the reference behaviour).
  bool share_frontiers = true;
};

/// Run one grid over many workloads -- the typed veneer over a
/// kind=campaign JobSpec, returning per-workload task-ordered outcomes.
struct CampaignJob {
  std::vector<WorkloadId> workloads;
  core::SystemConfig config{};
  std::vector<sweep::SweepTask> grid;
  bool share_frontiers = true;
};

namespace detail {

/// Shared completion state of one submitted job. One non-template
/// state type holding the unified JobResult, so every JobHandle<T> --
/// whatever T it projects -- is a view of the same object.
struct JobState {
  JobId id = 0;
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  std::exception_ptr failure;
  JobResult value;
};

/// Project the handle's static type out of the unified JobResult.
template <typename T>
[[nodiscard]] inline const T& project(const JobResult& value) {
  if constexpr (std::is_same_v<T, JobResult>) {
    return value;
  } else if constexpr (std::is_same_v<T, sim::RunResult>) {
    return value.run;
  } else if constexpr (std::is_same_v<T, std::vector<sweep::SweepOutcome>>) {
    return value.sweep;
  } else {
    static_assert(std::is_same_v<T, std::vector<sweep::CampaignResult>>,
                  "JobHandle<T>: T is not a job result projection");
    return value.campaign;
  }
}

}  // namespace detail

/// Future-style result of a submitted job: a typed projection of the
/// job's unified JobResult. Handles are cheap shared references: copy
/// them, stash them, wait from any thread. wait() blocks until the job
/// retires and rethrows the job's first failure; the returned
/// reference stays valid for the handle's lifetime.
template <typename T>
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] JobId id() const { return state_ ? state_->id : 0; }

  /// True once the job has retired (never blocks).
  [[nodiscard]] bool ready() const {
    if (!state_) return false;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
  }

  /// Block until the job retires; rethrows its first failure. May be
  /// called repeatedly and from several threads.
  const T& wait() const {
    APCC_CHECK(state_ != nullptr, "wait() on an empty JobHandle");
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->failure) std::rethrow_exception(state_->failure);
    return detail::project<T>(state_->value);
  }

 private:
  friend class Service;

  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Drains every in-flight job (their handles all become ready), then
  /// stops the pool.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Take ownership of a workload; the id names it in later jobs.
  /// Registration is cheap -- no artifact is built until a job needs
  /// it -- and safe while jobs are in flight. JobSpecs may reference
  /// the workload as "@<id>" or by its name (first registration of a
  /// name wins for name lookups).
  WorkloadId register_workload(workloads::Workload workload);

  [[nodiscard]] std::size_t workload_count() const;
  [[nodiscard]] const workloads::Workload& workload(WorkloadId id) const;

  /// Resolve a JobSpec workload reference ("@<id>" or a registered
  /// name); throws CheckError for unknown references.
  [[nodiscard]] WorkloadId resolve(const std::string& ref) const;

  /// The front door: validate `spec`, resolve its workload references,
  /// and enqueue it under its QoS (priority class, worker budget).
  /// Returns immediately; errors in the spec throw synchronously.
  [[nodiscard]] JobHandle<JobResult> submit(JobSpec spec);

  /// Typed veneers over submit(JobSpec): same path, same pool, same
  /// state -- the handle merely projects the matching JobResult member.
  [[nodiscard]] JobHandle<sim::RunResult> submit(RunJob job);
  [[nodiscard]] JobHandle<std::vector<sweep::SweepOutcome>> submit(
      SweepJob job);
  [[nodiscard]] JobHandle<std::vector<sweep::CampaignResult>> submit(
      CampaignJob job);

  /// Block until every job submitted so far has retired.
  void drain();

  /// Artifact-cache observability (tests pin dedup and reuse on these;
  /// counters are cumulative since construction). The byte figures are
  /// approximate resident sizes of the cached artifacts -- the numbers
  /// an eviction policy would budget against (ROADMAP).
  struct CacheStats {
    std::size_t images_built = 0;     // BlockImages materialized
    std::size_t image_borrows = 0;    // cells served by a cached image
    std::size_t frontiers_built = 0;  // FrontierCaches materialized
    std::size_t frontier_borrows = 0; // engines that borrowed geometry
    std::uint64_t image_bytes = 0;    // approx bytes of cached images
    std::uint64_t frontier_bytes = 0; // approx bytes of materialized
                                      // frontier geometry
  };
  [[nodiscard]] CacheStats cache_stats() const;

  [[nodiscard]] unsigned workers() const;

  /// The (CFG, k) geometry slot for a registered workload, if some job
  /// has needed it. Exposed for tests and diagnostics: builder() says
  /// which thread materialized it (pinned off the submitting thread).
  [[nodiscard]] const runtime::SharedFrontier* frontier_slot(
      WorkloadId id, unsigned predecompress_k) const;

 private:
  struct ImageSlot;
  struct Registered;

  /// Resolve (build-or-borrow) the image artifact for a cell.
  const runtime::BlockImage& image_for(Registered& entry,
                                       const core::SystemConfig& config);
  /// Resolve the geometry artifact; creates the slot on first need.
  const runtime::FrontierCache* frontiers_for(Registered& entry, unsigned k);
  /// Engine config for one cell, with borrowed geometry when asked.
  sim::EngineConfig cell_config(Registered& entry,
                                const sim::EngineConfig& base,
                                bool share_frontiers);

  Registered& entry(WorkloadId id);

  mutable std::mutex mutex_;  // registry + slot maps + stats
  std::vector<std::unique_ptr<Registered>> registry_;
  /// Geometry artifacts, keyed by (CFG identity, k). Service-wide: the
  /// key is the CFG address, which each registered workload owns.
  std::map<runtime::FrontierKey, std::unique_ptr<runtime::SharedFrontier>>
      frontiers_;
  CacheStats stats_;
  // Declared last: the pool's destructor drains worker threads that
  // touch the members above, so it must die first.
  std::unique_ptr<sweep::Pool> pool_;
};

}  // namespace apcc::serving
