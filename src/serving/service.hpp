// apcc::serving::Service -- the persistent job-submission API.
//
// The PR 0-3 entry points (CodeCompressionSystem::run / run_sweep,
// core::run_campaign) are one-shot: every call rebuilds the compressed
// BlockImage, re-materializes frontier geometry, and spins a pool up
// and down. That is the wrong shape for the workload the ROADMAP aims
// at -- the same suite replayed under many policy grids, by many
// clients -- where the expensive transforms are *artifacts of the
// workload*, not of the request. Service inverts the lifecycle:
//
//   serving::Service service;                          // resident pool
//   auto id = service.register_workload(
//       workloads::make_workload(WorkloadKind::kGsmLike));
//   serving::JobSpec spec;                  // the canonical front door
//   spec.kind = serving::JobKind::kSweep;
//   spec.workloads = {"@" + std::to_string(id)};
//   spec.tasks = grid;
//   spec.priority = sweep::Priority::kHigh;
//   auto handle = service.submit(std::move(spec));
//   const serving::JobResult& r = handle.wait();
//
//  * register_workload() hands the Service ownership of a workload; the
//    returned WorkloadId names it in every later job (JobSpecs may also
//    reference it by registered name -- see job_spec.hpp).
//  * The Service owns a per-workload **artifact cache**: the compressed
//    BlockImage keyed by codec kind, the materialized FrontierCache
//    keyed by (CFG, predecompress_k), and the parsed trace. Artifacts
//    are built lazily -- by the first pool worker whose job needs them,
//    never on the submitting thread -- deduplicated by a claim-build /
//    wait handshake, and immutable afterwards, so any number of
//    concurrent jobs borrow them without copies or locks.
//  * submit(JobSpec) is the single submission path: it validates the
//    spec, resolves its workload references, enqueues the job onto one
//    shared sweep::Pool under the spec's QoS (priority class, worker
//    budget), and returns a future-style JobHandle immediately. The
//    typed overloads (RunJob / SweepJob / CampaignJob) are thin veneers
//    that build a JobSpec and project the unified JobResult back to
//    their historical return types -- same state, zero copies.
//
// The invariant the whole design hangs on: a job's outcome is
// **byte-identical** to the equivalent direct run / run_sweep /
// run_campaign call. Cached images are built by the same codec
// training on the same bytes; borrowed geometry holds exactly the
// lists an owned cache would compute (pinned by the engine-equivalence
// grid); scheduling -- including priorities and budgets -- only changes
// *when* a cell runs, never what it computes. tests/serving pins the
// differentials (service_test.cpp, job_spec_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "core/system.hpp"
#include "runtime/frontier_cache.hpp"
#include "serving/cache.hpp"
#include "serving/fault_plan.hpp"
#include "serving/job_spec.hpp"
#include "support/assert.hpp"
#include "sweep/campaign.hpp"
#include "sweep/pool.hpp"
#include "sweep/sweep.hpp"
#include "workloads/suite.hpp"

namespace apcc::serving {

/// Names a workload registered with a Service (dense, 0-based).
using WorkloadId = std::size_t;

/// Job identifier: unique per Service, shared with the pool's work
/// items so the scheduler and diagnostics can attribute cells to jobs.
using JobId = sweep::Pool::JobId;

/// Admission control and default lifecycle bounds. Every limit is
/// "0 = unbounded/none"; an over-limit submit() resolves as a
/// structured *rejected* JobResult -- never a throw, never a stall --
/// so an overloaded service stays responsive instead of queueing
/// without bound (the ROADMAP front-door requirement).
struct ServiceLimits {
  /// Max jobs submitted-but-not-finalized, service-wide.
  std::size_t max_queued_jobs = 0;
  /// Max live jobs per JobSpec::client tag (the empty tag is a tag).
  std::size_t max_queued_per_client = 0;
  /// Deadline applied to jobs that carry none of their own
  /// (JobSpec::deadline_ms == 0), in milliseconds.
  std::uint64_t default_deadline_ms = 0;
};

struct ServiceOptions {
  /// Resident pool width; 0 means hardware concurrency (clamped to at
  /// least 1). Unlike the one-shot runners, 1 still means one resident
  /// worker *thread* -- submit() never runs work inline.
  unsigned workers = 0;
  ServiceLimits limits;
  /// Byte ceilings for the resident artifact cache (see cache.hpp).
  /// All-zero -- the default -- preserves the historical
  /// grow-without-bound behaviour, including its exact cache counters.
  /// Under a budget, publishes trigger a cost-aware eviction pass;
  /// evicted artifacts are transparently rebuilt (bit-identical) by the
  /// next job that needs them, so a budget never changes any job
  /// outcome -- only when artifacts are rebuilt.
  CacheBudget cache_budget;
  /// Deterministic fault injection (tests / soak runs); null -- the
  /// default -- costs one branch per fault point. See fault_plan.hpp.
  std::shared_ptr<const FaultPlan> faults;
  /// Within-class pool scheduling: weighted fair share over
  /// JobSpec::client tags (the default) vs the strict lowest-id order
  /// -- the PR 5 reference the fairness differentials compare against.
  /// Affects only when cells run, never any job outcome. See
  /// sweep::PoolOptions::fair_share.
  bool fair_share = true;
  /// Server-side fair-share weights by client tag; absent tags weigh 1.
  /// Weights are deployment policy, not job payload -- they never cross
  /// the wire, so the wire format is unchanged.
  std::map<std::string, unsigned> client_weights;
};

/// Simulate one workload's default trace under one configuration --
/// the typed veneer over a kind=run JobSpec.
struct RunJob {
  WorkloadId workload = 0;
  core::SystemConfig config{};
  /// Borrow the cached (workload, predecompress_k) geometry instead of
  /// the engine building its own (bit-identical either way).
  bool share_frontiers = true;
};

/// Run a policy grid over one workload -- the typed veneer over a
/// kind=sweep JobSpec. `config` supplies the codec (image artifact
/// key); each task carries its own engine knobs.
struct SweepJob {
  WorkloadId workload = 0;
  core::SystemConfig config{};
  std::vector<sweep::SweepTask> tasks;
  /// Borrow the cached per-(workload, k) geometry. Outcomes are
  /// bit-identical either way; off forces every engine to own its
  /// frontier cache (the reference behaviour).
  bool share_frontiers = true;
  /// Grid cells stepped per pool work item (JobSpec::batch_cells).
  std::uint32_t batch_cells = 0;
};

/// Run one grid over many workloads -- the typed veneer over a
/// kind=campaign JobSpec, returning per-workload task-ordered outcomes.
struct CampaignJob {
  std::vector<WorkloadId> workloads;
  core::SystemConfig config{};
  std::vector<sweep::SweepTask> grid;
  bool share_frontiers = true;
  /// Grid cells stepped per pool work item (JobSpec::batch_cells).
  std::uint32_t batch_cells = 0;
};

namespace detail {

/// Shared completion state of one submitted job. One non-template
/// state type holding the unified JobResult, so every JobHandle<T> --
/// whatever T it projects -- is a view of the same object.
struct JobState {
  JobId id = 0;
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  std::exception_ptr failure;
  JobResult value;
  /// The job's cooperative-cancellation token: items poll it at task
  /// boundaries, the pool reads it at every claim. Set for every
  /// pool-backed job; null for jobs that resolved at admission
  /// (rejected) and so have nothing to cancel.
  std::shared_ptr<sweep::CancelToken> token;
  /// The pool the job runs on; weak so a handle outliving its Service
  /// degrades cancel() to a no-op instead of dangling.
  std::weak_ptr<sweep::Pool> pool;
  /// Completion callback (at most one), armed via JobHandle::on_ready
  /// and fired exactly once, outside this mutex, on whichever thread
  /// resolves the job.
  std::function<void()> callback;
};

/// Project the handle's static type out of the unified JobResult.
template <typename T>
[[nodiscard]] inline const T& project(const JobResult& value) {
  if constexpr (std::is_same_v<T, JobResult>) {
    return value;
  } else if constexpr (std::is_same_v<T, sim::RunResult>) {
    return value.run;
  } else if constexpr (std::is_same_v<T, std::vector<sweep::SweepOutcome>>) {
    return value.sweep;
  } else {
    static_assert(std::is_same_v<T, std::vector<sweep::CampaignResult>>,
                  "JobHandle<T>: T is not a job result projection");
    return value.campaign;
  }
}

}  // namespace detail

/// Future-style result of a submitted job: a typed projection of the
/// job's unified JobResult. Handles are cheap shared references: copy
/// them, stash them, wait from any thread. wait() blocks until the job
/// retires and rethrows the job's first failure; the returned
/// reference stays valid for the handle's lifetime.
template <typename T>
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] JobId id() const { return state_ ? state_->id : 0; }

  /// True once the job has retired (never blocks).
  [[nodiscard]] bool ready() const {
    if (!state_) return false;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
  }

  /// Request cooperative cancellation: queued cells are skipped at
  /// their next claim, running cells observe the token at their next
  /// task boundary, and the job resolves (deterministically, payload-
  /// free) as kCancelled -- unless it completed or failed first.
  /// Returns false when there was nothing left to cancel: the job
  /// already finalized, never reached the pool, or the Service is
  /// gone. Always non-blocking; wait() still resolves exactly once.
  bool cancel() const {
    if (!state_) return false;
    if (const auto pool = state_->pool.lock()) {
      return pool->cancel(state_->id);
    }
    return false;
  }

  /// True once cooperative cancellation has been requested for the job
  /// -- by cancel(), a deadline, a fault plan, or shutdown's drain
  /// deadline -- whether or not the job has resolved yet. Lets callers
  /// (and tests) observe the request before the affected items retire.
  [[nodiscard]] bool cancel_requested() const {
    return state_ && state_->token && state_->token->cancelled();
  }

  /// Arm a completion callback: `fn` runs exactly once, after the job
  /// resolves (the result is readable from inside it), on whichever
  /// thread resolved the job -- or synchronously right here when it
  /// already resolved (rejected-at-admission handles land this way).
  /// One callback per job; arming again replaces an unfired callback.
  /// `fn` must not block -- the net layer uses it to nudge an event
  /// loop, nothing more.
  void on_ready(std::function<void()> fn) const {
    APCC_CHECK(state_ != nullptr, "on_ready() on an empty JobHandle");
    {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->done) {
        state_->callback = std::move(fn);
        return;
      }
    }
    fn();
  }

  /// Block until the job retires; rethrows its first failure. May be
  /// called repeatedly and from several threads.
  ///
  /// Typed projections (the RunJob/SweepJob/CampaignJob veneers) have
  /// no way to express a payload-free outcome, so a non-ok status
  /// throws CheckError with the result's message. JobHandle<JobResult>
  /// -- the JobSpec front door -- returns the structured result
  /// instead: rejected / cancelled / deadline-exceeded are ordinary
  /// values there (kError still rethrows the original exception).
  const T& wait() const {
    APCC_CHECK(state_ != nullptr, "wait() on an empty JobHandle");
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->failure) std::rethrow_exception(state_->failure);
    if constexpr (!std::is_same_v<T, JobResult>) {
      APCC_CHECK(state_->value.ok(),
                 std::string(status_name(state_->value.status)) + ": " +
                     state_->value.error);
    }
    return detail::project<T>(state_->value);
  }

 private:
  friend class Service;

  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Drains every in-flight job (their handles all become ready), then
  /// stops the pool.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Take ownership of a workload; the id names it in later jobs.
  /// Registration is cheap -- no artifact is built until a job needs
  /// it -- and safe while jobs are in flight. JobSpecs may reference
  /// the workload as "@<id>" or by its name (first registration of a
  /// name wins for name lookups).
  WorkloadId register_workload(workloads::Workload workload);

  [[nodiscard]] std::size_t workload_count() const;
  [[nodiscard]] const workloads::Workload& workload(WorkloadId id) const;

  /// Resolve a JobSpec workload reference ("@<id>" or a registered
  /// name); throws CheckError for unknown references.
  [[nodiscard]] WorkloadId resolve(const std::string& ref) const;

  /// The front door: validate `spec`, resolve its workload references,
  /// and enqueue it under its QoS (priority class, worker budget).
  /// Returns immediately; errors in the spec throw synchronously.
  [[nodiscard]] JobHandle<JobResult> submit(JobSpec spec);

  /// Typed veneers over submit(JobSpec): same path, same pool, same
  /// state -- the handle merely projects the matching JobResult member.
  [[nodiscard]] JobHandle<sim::RunResult> submit(RunJob job);
  [[nodiscard]] JobHandle<std::vector<sweep::SweepOutcome>> submit(
      SweepJob job);
  [[nodiscard]] JobHandle<std::vector<sweep::CampaignResult>> submit(
      CampaignJob job);

  /// Block until every job submitted so far has retired.
  void drain();

  /// Orderly teardown, distinct from the destructor: stop admitting
  /// (later submits resolve as rejected), let in-flight jobs finish,
  /// and fail still-queued (unstarted) jobs as cancelled. With a
  /// drain_deadline, jobs still running when it elapses are cancelled
  /// cooperatively and the call blocks until every handle resolved --
  /// shutdown never abandons a handle. Idempotent; the destructor
  /// calls shutdown(std::nullopt) if nobody did.
  void shutdown(std::optional<std::chrono::milliseconds> drain_deadline =
                    std::nullopt);

  /// Artifact-cache observability (tests pin dedup, reuse, and
  /// eviction on these; counters are cumulative since construction).
  /// One serving::ArtifactStats per artifact kind -- see cache.hpp for
  /// the counter semantics (built/borrows vs hits/misses/rebuilds vs
  /// evictions/evicted_bytes, resident bytes/entries). The PR 4-7 flat
  /// spellings (stats.image_hits and friends) are gone: spell them
  /// stats.images.hits / stats.frontiers.hits.
  using CacheStats = serving::CacheStats;
  [[nodiscard]] CacheStats cache_stats() const;

  [[nodiscard]] unsigned workers() const;

  /// The (CFG, k) geometry slot for a registered workload, if some job
  /// has needed it. Exposed for tests and diagnostics: builder() says
  /// which thread materialized it (pinned off the submitting thread).
  [[nodiscard]] const runtime::SharedFrontier* frontier_slot(
      WorkloadId id, unsigned predecompress_k) const;

 private:
  struct ImageSlot;
  struct Registered;

  /// RAII record of one grid cell's borrowed artifacts. Every borrow
  /// (and every publish -- the builder borrows what it built) pins the
  /// artifact's slot; the lease unpins at destruction, which the item
  /// lambdas arrange to happen only after the cell's engine run
  /// finished. While a lease is live its artifacts are never eviction
  /// victims, so engines hold plain references with no locking --
  /// exactly the pre-budget borrowing contract. Movable (batched cells
  /// collect their leases into a vector that outlives the BatchEngine
  /// run), not copyable (a pin has one owner).
  class CellLease {
   public:
    CellLease() = default;
    CellLease(CellLease&& other) noexcept;
    CellLease& operator=(CellLease&& other) noexcept;
    CellLease(const CellLease&) = delete;
    CellLease& operator=(const CellLease&) = delete;
    ~CellLease();

    /// Drop the borrows now (idempotent; the destructor calls it).
    void release();

   private:
    friend class Service;
    ImageSlot* image_ = nullptr;
    runtime::SharedFrontier* frontier_ = nullptr;
  };

  /// One geometry slot plus its eviction-ledger entry. The slot guards
  /// its own handshake state and pin count under its mutex; the ledger
  /// fields are guarded by Service::mutex_ (bytes == 0 means "not
  /// resident" -- never published, or evicted).
  struct FrontierLedger {
    std::unique_ptr<runtime::SharedFrontier> shared;
    std::uint64_t bytes = 0;         // resident bytes (0 = not resident)
    std::uint64_t rebuild_cost = 0;  // estimate_frontier_cost at publish
    std::uint64_t last_use = 0;      // cache_clock_ at last borrow/publish
  };

  /// Resolve (build-or-borrow) the image artifact for a cell. `token`
  /// (may be null) makes the claim-build handshake cancellation-aware:
  /// a cancelled builder rolls its claim back so waiters re-claim. The
  /// borrow is pinned into `lease` before the slot lock is released, so
  /// the returned reference stays valid until the lease releases.
  const runtime::BlockImage& image_for(Registered& entry,
                                       const core::SystemConfig& config,
                                       const sweep::CancelToken* token,
                                       CellLease& lease);
  /// Resolve the geometry artifact; creates the slot on first need.
  /// Pins the borrow into `lease` (see image_for).
  const runtime::FrontierCache* frontiers_for(Registered& entry, unsigned k,
                                              const sweep::CancelToken* token,
                                              CellLease& lease);
  /// Engine config for one cell, with borrowed geometry when asked.
  sim::EngineConfig cell_config(Registered& entry,
                                const sim::EngineConfig& base,
                                bool share_frontiers,
                                const sweep::CancelToken* token,
                                CellLease& lease);

  /// The publish-time eviction pass (call with mutex_ held): snapshot
  /// the resident artifacts into cache.hpp CacheEntry views, run
  /// plan_evictions per ceiling (image budget, then frontier budget,
  /// then the shared total over both kinds), and apply the victim
  /// lists. Also evaluates the fault plan's evict_at_publish forced
  /// flush. Per-slot eviction re-checks ready/pinned under the slot's
  /// own lock, so a borrow that raced the snapshot simply exempts its
  /// artifact this pass (budgets are pressure, not guarantees).
  void evict_over_budget_locked();

  /// The per-item prologue: polls the job token (false = the item must
  /// return without doing work) and evaluates the fault plan's task-
  /// boundary schedule (which may throw the injected failure).
  bool task_boundary(detail::JobState& state);

  Registered& entry(WorkloadId id);

  mutable std::mutex mutex_;  // registry + slot maps + stats + admission
  std::vector<std::unique_ptr<Registered>> registry_;
  /// Geometry artifacts plus their eviction ledger, keyed by (CFG
  /// identity, k). Service-wide: the key is the CFG address, which each
  /// registered workload owns. Map nodes are stable, so slot pointers
  /// survive later insertions.
  std::map<runtime::FrontierKey, FrontierLedger> frontiers_;
  /// (CFG, k) keys whose last geometry build failed: the next claim of
  /// that key counts as a rebuild (mirrors ImageSlot::failed_before).
  std::set<runtime::FrontierKey> frontier_failed_;
  CacheStats stats_;
  /// Eviction-ledger clock: one tick per artifact borrow or publish.
  /// last_use stamps come from it, so "recency" is a deterministic
  /// function of the borrow sequence, never of wall time.
  std::uint64_t cache_clock_ = 0;
  /// Successful publishes (images + geometry), the fault plan's
  /// evict_at_publish ordinal.
  std::size_t publish_count_ = 0;

  // -- admission / lifecycle (guarded by mutex_) ----------------------
  const ServiceLimits limits_;
  /// Fair-share weights by client tag (immutable deployment policy;
  /// absent tags weigh 1).
  const std::map<std::string, unsigned> client_weights_;
  const CacheBudget budget_;
  const std::shared_ptr<const FaultPlan> faults_;
  bool accepting_ = true;
  std::size_t live_jobs_ = 0;
  std::map<std::string, std::size_t> live_per_client_;
  /// States of admitted-but-not-finalized jobs, keyed by state address
  /// (ids are not assigned yet at insertion). shutdown() walks this to
  /// cancel still-queued work.
  std::map<const detail::JobState*, std::shared_ptr<detail::JobState>>
      live_states_;

  // -- fault-plan progress (count-based schedules) --------------------
  std::atomic<std::size_t> fault_boundaries_{0};
  std::atomic<std::size_t> fault_builds_{0};

  // Declared last: the pool's destructor drains worker threads that
  // touch the members above, so it must die first. shared_ptr so job
  // states can hold a weak reference for JobHandle::cancel().
  std::shared_ptr<sweep::Pool> pool_;
};

}  // namespace apcc::serving
