#include "serving/job_spec.hpp"

#include "support/assert.hpp"

namespace apcc::serving {

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kRun: return "run";
    case JobKind::kSweep: return "sweep";
    case JobKind::kCampaign: return "campaign";
  }
  return "?";
}

const char* status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kError: return "error";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

void validate(const JobSpec& spec) {
  switch (spec.kind) {
    case JobKind::kRun:
      APCC_CHECK(spec.workloads.size() == 1,
                 "run job needs exactly one workload, got " +
                     std::to_string(spec.workloads.size()));
      APCC_CHECK(spec.tasks.empty(),
                 "run job takes a single configuration, not a task grid");
      APCC_CHECK(spec.batch_cells == 0,
                 "run job has a single cell; batch-cells does not apply");
      break;
    case JobKind::kSweep:
      APCC_CHECK(spec.workloads.size() == 1,
                 "sweep job needs exactly one workload, got " +
                     std::to_string(spec.workloads.size()));
      break;
    case JobKind::kCampaign:
      break;
    default:
      APCC_CHECK(false, "unknown job kind " +
                            std::to_string(static_cast<int>(spec.kind)));
  }
  APCC_CHECK(spec.priority == sweep::Priority::kHigh ||
                 spec.priority == sweep::Priority::kNormal ||
                 spec.priority == sweep::Priority::kBatch,
             "unknown priority class " +
                 std::to_string(static_cast<int>(spec.priority)));
  for (const std::string& ref : spec.workloads) {
    APCC_CHECK(!ref.empty(), "empty workload reference");
  }
}

std::vector<sweep::SweepTask> strategy_k_grid(const sim::EngineConfig& base) {
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      sweep::SweepTask task;
      task.label = std::string(runtime::strategy_name(strategy)) +
                   "/k=" + std::to_string(k);
      task.config = base;
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

}  // namespace apcc::serving
