#include "serving/service.hpp"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "compress/codec.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "support/strings.hpp"

namespace apcc::serving {

namespace {

/// Thrown inside a work item when its job's cancellation was observed
/// mid-artifact-resolution: unwinds back to the item wrapper (rolling
/// back any claimed-but-unbuilt artifact on the way), where it is
/// swallowed -- a cancelled item retires quietly, it does not fail the
/// job. Never escapes service.cpp.
struct JobCancelled {};

}  // namespace

/// Claim-build / wait handshake around one (workload, codec) compressed
/// image. Same shape as runtime::SharedFrontier: the first cell that
/// needs the artifact builds it on its own (pool) thread off the slot
/// lock; concurrent cells block on the cv; afterwards the image is
/// immutable and borrowed without locks. A builder that throws -- or
/// observes its job's cancellation -- rolls the claim back to kIdle so
/// waiters re-claim instead of deadlocking. Eviction reuses the same
/// state machine: a ready, unpinned slot drops its image and returns
/// to kIdle, so the next claim rebuilds it bit-identically (an
/// ordinary miss -- failed_before stays untouched).
struct Service::ImageSlot {
  enum class State : std::uint8_t { kIdle, kBuilding, kReady };

  std::mutex mutex;
  std::condition_variable ready_cv;
  State state = State::kIdle;
  /// The last claim of this slot rolled back (build failure or builder
  /// cancellation); the next claim counts as a cache *rebuild*.
  bool failed_before = false;
  /// Borrow refcount: every borrow (and the builder's own publish)
  /// pins, the cell's CellLease unpins at retirement; the eviction
  /// pass never selects a pinned slot. Guarded by `mutex`.
  std::size_t pins = 0;
  std::unique_ptr<const runtime::BlockImage> image;

  // -- eviction ledger, guarded by Service::mutex_, NOT by `mutex` ----
  std::uint64_t bytes = 0;         // resident bytes (0 = not resident)
  std::uint64_t rebuild_cost = 0;  // estimate_image_cost at publish
  std::uint64_t last_use = 0;      // cache_clock_ at last borrow/publish
};

Service::CellLease::CellLease(CellLease&& other) noexcept {
  *this = std::move(other);
}

Service::CellLease& Service::CellLease::operator=(
    CellLease&& other) noexcept {
  if (this != &other) {
    release();
    image_ = other.image_;
    frontier_ = other.frontier_;
    other.image_ = nullptr;
    other.frontier_ = nullptr;
  }
  return *this;
}

Service::CellLease::~CellLease() { release(); }

void Service::CellLease::release() {
  // Only slot-level locks here (never Service::mutex_): release runs on
  // pool threads at cell retirement and must not contend with the
  // registry. The newly unpinned artifact stays resident until the next
  // publish re-evaluates the budget -- eviction is publish-driven.
  if (image_ != nullptr) {
    const std::lock_guard<std::mutex> lock(image_->mutex);
    APCC_CHECK(image_->pins > 0, "image lease released without a pin");
    --image_->pins;
    image_ = nullptr;
  }
  if (frontier_ != nullptr) {
    frontier_->unpin();
    frontier_ = nullptr;
  }
}

/// One registered workload plus its image artifacts. The workload lives
/// behind a unique_ptr so its Cfg / trace / bytes keep stable addresses
/// for the cache keys and the borrowing engines; map nodes are stable
/// too, so slot pointers stay valid while other keys are inserted.
/// (Frontier geometry lives in the service-wide frontiers_ map, keyed
/// by runtime::FrontierKey -- CFG identity + k.)
struct Service::Registered {
  std::unique_ptr<const workloads::Workload> workload;
  std::map<compress::CodecKind, std::unique_ptr<ImageSlot>> images;
};

Service::Service(ServiceOptions options)
    : limits_(options.limits),
      client_weights_(std::move(options.client_weights)),
      budget_(options.cache_budget),
      faults_(std::move(options.faults)) {
  unsigned workers = options.workers != 0
                         ? options.workers
                         : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  pool_ = std::make_shared<sweep::Pool>(
      sweep::PoolOptions{workers, options.fair_share});
}

Service::~Service() { shutdown(std::nullopt); }

WorkloadId Service::register_workload(workloads::Workload workload) {
  auto entry = std::make_unique<Registered>();
  entry->workload =
      std::make_unique<const workloads::Workload>(std::move(workload));
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.push_back(std::move(entry));
  return registry_.size() - 1;
}

std::size_t Service::workload_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return registry_.size();
}

const workloads::Workload& Service::workload(WorkloadId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  return *registry_[id]->workload;
}

WorkloadId Service::resolve(const std::string& ref) const {
  APCC_CHECK(!ref.empty(), "empty workload reference");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ref[0] == '@') {
    // Literal id, the exact form the typed veneers emit.
    const std::int64_t id = parse_int(ref.substr(1));
    APCC_CHECK(id >= 0 && static_cast<std::size_t>(id) < registry_.size(),
               "unknown workload reference '" + ref + "'");
    return static_cast<WorkloadId>(id);
  }
  // Registered-name lookup, first registration wins (deterministic).
  for (std::size_t id = 0; id < registry_.size(); ++id) {
    if (registry_[id]->workload->name == ref) return id;
  }
  APCC_CHECK(false, "unknown workload reference '" + ref +
                        "' (register it first, or use \"@<id>\")");
}

Service::Registered& Service::entry(WorkloadId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  return *registry_[id];
}

bool Service::task_boundary(detail::JobState& state) {
  if (state.token && state.token->cancelled()) return false;
  if (faults_) {
    const std::size_t n =
        fault_boundaries_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (faults_->on_boundary) faults_->on_boundary(n);
    if (faults_->cancel_at_boundary != 0 &&
        n == faults_->cancel_at_boundary) {
      // Self-cancel: the pool observes the token at its next claim (and
      // after this item retires), so the whole job resolves kCancelled.
      if (state.token) state.token->request();
      return false;
    }
    if (faults_->throw_in_task != 0 && n == faults_->throw_in_task) {
      throw CheckError("injected fault: task throw at boundary " +
                       std::to_string(n) + " (seed " +
                       std::to_string(faults_->seed) + ")");
    }
    // A gate in on_boundary may have parked this item across a cancel;
    // honour it before doing any work.
    if (state.token && state.token->cancelled()) return false;
  }
  return true;
}

const runtime::BlockImage& Service::image_for(
    Registered& entry, const core::SystemConfig& config,
    const sweep::CancelToken* token, CellLease& lease) {
  ImageSlot* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& owned = entry.images[config.codec];
    if (!owned) owned = std::make_unique<ImageSlot>();
    slot = owned.get();
  }

  std::unique_lock<std::mutex> slot_lock(slot->mutex);
  for (;;) {
    // A cancelled job stops resolving artifacts -- before claiming, and
    // before every re-claim attempt after a rolled-back build.
    if (token && token->cancelled()) throw JobCancelled{};
    if (slot->state == ImageSlot::State::kReady) {
      // Pin before the slot lock drops: ready-check and pin are one
      // atomic step, so the eviction pass can never reclaim the image
      // between our check and our borrow.
      ++slot->pins;
      lease.image_ = slot;
      const runtime::BlockImage& image = *slot->image;
      slot_lock.unlock();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.images.borrows;
      ++stats_.images.hits;
      slot->last_use = ++cache_clock_;
      return image;
    }
    if (slot->state == ImageSlot::State::kIdle) {
      const bool rebuild = slot->failed_before;
      slot->state = ImageSlot::State::kBuilding;
      slot_lock.unlock();
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.images.misses;
        if (rebuild) ++stats_.images.rebuilds;
      }
      // Build off the lock: exactly what from_workload does -- train
      // the codec on a copy of the block bytes, then freeze the image
      // -- so a cached image is byte-identical to a per-call one (and a
      // rebuilt-after-eviction image byte-identical to the first).
      const workloads::Workload& w = *entry.workload;
      std::unique_ptr<const runtime::BlockImage> image;
      std::uint64_t original_bytes = 0;
      try {
        if (token && token->cancelled()) throw JobCancelled{};
        if (faults_) {
          const std::size_t n =
              fault_builds_.fetch_add(1, std::memory_order_relaxed) + 1;
          if (faults_->fail_image_build != 0 &&
              n == faults_->fail_image_build) {
            throw CheckError("injected fault: image build " +
                             std::to_string(n) + " failed (seed " +
                             std::to_string(faults_->seed) + ")");
          }
        }
        std::vector<compress::Bytes> bytes = w.block_bytes;
        for (const compress::Bytes& b : bytes) original_bytes += b.size();
        auto codec = compress::make_codec(config.codec, bytes);
        image = std::make_unique<const runtime::BlockImage>(
            w.cfg, std::move(bytes), std::move(codec));
      } catch (...) {
        // Roll the claim back and wake waiters so they re-claim (and
        // hit the build failure themselves, or build it afresh after a
        // cancelled builder) rather than deadlock on a ready flip that
        // will never come.
        slot_lock.lock();
        slot->state = ImageSlot::State::kIdle;
        slot->failed_before = true;
        slot->ready_cv.notify_all();
        throw;
      }
      slot_lock.lock();
      slot->image = std::move(image);
      slot->state = ImageSlot::State::kReady;
      slot->failed_before = false;
      // The builder borrows what it just built -- pinned before anyone
      // can observe the ready flip, so the publish-time eviction pass
      // below (or a concurrent one) can never reclaim the image out
      // from under this cell.
      ++slot->pins;
      lease.image_ = slot;
      const runtime::BlockImage& built = *slot->image;
      const std::uint64_t resident = built.approx_bytes();
      slot->ready_cv.notify_all();
      slot_lock.unlock();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.images.built;
      stats_.images.bytes += resident;
      slot->bytes = resident;
      slot->rebuild_cost = estimate_image_cost(original_bytes);
      slot->last_use = ++cache_clock_;
      ++publish_count_;
      evict_over_budget_locked();
      return built;
    }
    slot->ready_cv.wait(slot_lock, [&] {
      return slot->state != ImageSlot::State::kBuilding;
    });
  }
}

const runtime::FrontierCache* Service::frontiers_for(
    Registered& entry, unsigned k, const sweep::CancelToken* token,
    CellLease& lease) {
  if (token && token->cancelled()) throw JobCancelled{};
  const runtime::FrontierKey key{&entry.workload->cfg, k};
  runtime::SharedFrontier* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FrontierLedger& ledger = frontiers_[key];
    if (!ledger.shared) {
      ledger.shared =
          std::make_unique<runtime::SharedFrontier>(entry.workload->cfg, k);
    }
    slot = ledger.shared.get();
  }
  bool built = false;
  const runtime::FrontierCache* cache = nullptr;
  try {
    // pin=true: the ready-check (or the builder's own ready flip) and
    // the pin happen under one slot-lock hold, so an eviction pass can
    // never slip between them. The pin is handed to the lease below.
    cache = slot->acquire(&built, /*pin=*/true);
  } catch (...) {
    // This caller claimed the build and it threw (SharedFrontier rolled
    // its own claim back): a miss, and a rebuild if the key had failed
    // before.
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frontiers.misses;
    if (!frontier_failed_.insert(key).second) ++stats_.frontiers.rebuilds;
    throw;
  }
  lease.frontier_ = slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FrontierLedger& ledger = frontiers_.find(key)->second;
    ledger.last_use = ++cache_clock_;
    if (built) {
      ++stats_.frontiers.built;
      ++stats_.frontiers.misses;
      const std::uint64_t resident = cache->approx_bytes();
      stats_.frontiers.bytes += resident;
      ledger.bytes = resident;
      ledger.rebuild_cost =
          estimate_frontier_cost(entry.workload->cfg.block_count(), k);
      if (frontier_failed_.erase(key) != 0) ++stats_.frontiers.rebuilds;
      ++publish_count_;
      evict_over_budget_locked();
    } else {
      ++stats_.frontiers.borrows;
      ++stats_.frontiers.hits;
    }
  }
  return cache;
}

sim::EngineConfig Service::cell_config(Registered& entry,
                                       const sim::EngineConfig& base,
                                       bool share_frontiers,
                                       const sweep::CancelToken* token,
                                       CellLease& lease) {
  sim::EngineConfig config = base;
  if (share_frontiers) {
    config.shared_frontiers =
        frontiers_for(entry, config.policy.predecompress_k, token, lease);
  }
  return config;
}

void Service::evict_over_budget_locked() {
  const bool forced = faults_ != nullptr && faults_->evict_at_publish != 0 &&
                      publish_count_ == faults_->evict_at_publish;
  if (!forced && budget_.unbounded()) return;

  // Snapshot the resident artifacts into policy views, in deterministic
  // order (registry index, then codec key; then frontier key). Pins are
  // read under each slot's lock (mutex_ -> slot order); a borrow that
  // lands after the snapshot is caught by the apply-time re-check.
  struct Resident {
    ImageSlot* image = nullptr;        // exactly one of image /
    FrontierLedger* frontier = nullptr;  // frontier is set
    CacheEntry entry;
  };
  std::vector<Resident> residents;
  std::vector<std::size_t> image_indices;
  std::vector<std::size_t> frontier_indices;
  for (const auto& registered : registry_) {
    for (const auto& [codec, slot] : registered->images) {
      if (slot->bytes == 0) continue;  // never published, or evicted
      bool pinned = false;
      {
        const std::lock_guard<std::mutex> slot_lock(slot->mutex);
        pinned = slot->pins != 0;
      }
      image_indices.push_back(residents.size());
      residents.push_back(
          {slot.get(), nullptr,
           CacheEntry{slot->bytes, slot->rebuild_cost, slot->last_use,
                      pinned}});
    }
  }
  for (auto& [key, ledger] : frontiers_) {
    if (ledger.bytes == 0) continue;
    frontier_indices.push_back(residents.size());
    residents.push_back(
        {nullptr, &ledger,
         CacheEntry{ledger.bytes, ledger.rebuild_cost, ledger.last_use,
                    ledger.shared->pins() != 0}});
  }

  // Evict one victim; the apply-time ready/pinned re-check under the
  // slot's own lock is authoritative (a racing borrow exempts the
  // artifact this pass). On success, zero the snapshot bytes so later
  // passes see the post-eviction resident set; on failure, mark the
  // snapshot pinned so they stop retrying it.
  const auto apply = [this](Resident& r) {
    std::uint64_t freed = 0;
    if (r.image != nullptr) {
      {
        const std::lock_guard<std::mutex> slot_lock(r.image->mutex);
        if (r.image->state != ImageSlot::State::kReady ||
            r.image->pins != 0) {
          r.entry.pinned = true;
          return;
        }
        r.image->image.reset();
        r.image->state = ImageSlot::State::kIdle;
      }
      freed = r.image->bytes;
      r.image->bytes = 0;
      ++stats_.images.evictions;
      stats_.images.evicted_bytes += freed;
      stats_.images.bytes -= freed;
    } else {
      if (!r.frontier->shared->evict()) {
        r.entry.pinned = true;
        return;
      }
      freed = r.frontier->bytes;
      r.frontier->bytes = 0;
      ++stats_.frontiers.evictions;
      stats_.frontiers.evicted_bytes += freed;
      stats_.frontiers.bytes -= freed;
    }
    r.entry.bytes = 0;
  };

  const auto run_pass = [&](const std::vector<std::size_t>& subset,
                            std::uint64_t budget) {
    std::vector<CacheEntry> view;
    view.reserve(subset.size());
    for (const std::size_t idx : subset) view.push_back(residents[idx].entry);
    for (const std::size_t victim :
         plan_evictions(view, budget, cache_clock_)) {
      apply(residents[subset[victim]]);
    }
  };

  if (forced) {
    // The fault plan's flush: every unpinned resident artifact goes,
    // whatever the configured budget -- budget 0 to the pure policy
    // means exactly that.
    std::vector<std::size_t> all(residents.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    run_pass(all, 0);
    return;
  }
  if (budget_.image_bytes != 0) run_pass(image_indices, budget_.image_bytes);
  if (budget_.frontier_bytes != 0) {
    run_pass(frontier_indices, budget_.frontier_bytes);
  }
  if (budget_.total_bytes != 0) {
    std::vector<std::size_t> all(residents.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    run_pass(all, budget_.total_bytes);
  }
}

JobHandle<JobResult> Service::submit(JobSpec spec) {
  validate(spec);

  /// Everything the pool items need, alive until the finalize runs.
  struct Ctx {
    JobSpec spec;
    std::vector<Registered*> entries;
    std::vector<std::string> names;
    std::vector<sweep::ResultSink> sinks;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->spec = std::move(spec);
  for (const std::string& ref : ctx->spec.workloads) {
    Registered& target = entry(resolve(ref));
    APCC_CHECK(!target.workload->trace.empty(),
               "workload '" + target.workload->name + "' has no default trace");
    ctx->entries.push_back(&target);
    ctx->names.push_back(target.workload->name);
  }

  auto state = std::make_shared<detail::JobState>();
  state->value.kind = ctx->spec.kind;
  const std::string client = ctx->spec.client;

  // Admission. Structural errors above threw (caller bugs); load is not
  // a caller bug, so over-limit submissions resolve as a structured
  // *rejected* result -- immediately, without ever touching the pool.
  // The rejection messages are fixed strings + configured limits, so
  // overload outcomes are byte-stable however the race to the last
  // queue slot resolves.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string reason;
    if (!accepting_) {
      reason = "rejected: service is shutting down";
    } else if (limits_.max_queued_jobs != 0 &&
               live_jobs_ >= limits_.max_queued_jobs) {
      reason = "rejected: job limit reached (" +
               std::to_string(limits_.max_queued_jobs) + " jobs in flight)";
    } else if (limits_.max_queued_per_client != 0 &&
               live_per_client_[client] >= limits_.max_queued_per_client) {
      reason = "rejected: client limit reached (" +
               std::to_string(limits_.max_queued_per_client) +
               " jobs in flight for client '" + client + "')";
    }
    if (!reason.empty()) {
      state->value.status = JobStatus::kRejected;
      state->value.error = std::move(reason);
      state->done = true;
      return JobHandle<JobResult>(std::move(state));
    }
    ++live_jobs_;
    ++live_per_client_[client];
    live_states_.emplace(state.get(), state);
  }

  state->token = std::make_shared<sweep::CancelToken>();
  state->pool = pool_;

  sweep::SubmitOptions options;
  options.priority = ctx->spec.priority;
  options.max_workers = ctx->spec.max_workers;
  options.client = client;
  const auto weight = client_weights_.find(client);
  if (weight != client_weights_.end()) options.weight = weight->second;
  options.cancel = state->token;
  const std::uint64_t deadline_ms = ctx->spec.deadline_ms != 0
                                        ? ctx->spec.deadline_ms
                                        : limits_.default_deadline_ms;
  if (deadline_ms != 0) {
    options.deadline =
        (faults_ && faults_->expire_deadlines)
            // Deterministically already-expired: the first dispatch
            // resolves the job deadline-exceeded, no sleeping tests.
            ? std::chrono::steady_clock::now() - std::chrono::hours(1)
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
  }

  // Batched stepping (batch-cells > 1): a pool work item advances a run
  // of consecutive grid cells in lockstep (sim::BatchEngine) instead of
  // one cell. The task boundary and the artifact lookups stay *per
  // cell*, so FaultPlan ordinals, cancellation points, and cache-stats
  // counters are identical to the sequential path; a cell that faults
  // or cancels is retired in place while its batch siblings finish, and
  // the first failure propagates after the batch (the sequential
  // rethrow order at one worker).
  const auto run_batch = [this, ctx, state](Registered& target,
                                            std::size_t begin,
                                            std::size_t end,
                                            sweep::ResultSink& sink) {
    std::vector<std::size_t> indices;
    std::vector<sim::EngineConfig> configs;
    // One lease per admitted cell, collected so every borrow outlives
    // the whole batched run below (a batch sibling's artifacts must not
    // become eviction victims while the lockstep engine still reads
    // them). Destruction at scope exit releases the pins.
    std::vector<CellLease> leases;
    std::exception_ptr first_error;
    const runtime::BlockImage* image = nullptr;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        // Cancelled cells retire quietly; a boundary that throws (fault
        // injection) fails only this cell -- siblings still run.
        if (!task_boundary(*state)) continue;
        CellLease lease;
        image =
            &image_for(target, ctx->spec.config, state->token.get(), lease);
        configs.push_back(cell_config(target, ctx->spec.tasks[i].config,
                                      ctx->spec.share_frontiers,
                                      state->token.get(), lease));
        indices.push_back(i);
        leases.push_back(std::move(lease));
      } catch (const JobCancelled&) {
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (!indices.empty()) {
      sim::BatchEngine engine(target.workload->cfg, *image,
                              std::move(configs));
      auto outcomes = engine.run(target.workload->trace);
      for (std::size_t c = 0; c < indices.size(); ++c) {
        if (!outcomes[c].ok()) {
          if (!first_error) first_error = outcomes[c].error;
          continue;
        }
        sink.push(sweep::SweepOutcome{indices[c],
                                      ctx->spec.tasks[indices[c]].label,
                                      outcomes[c].result});
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  };
  const std::size_t batch = ctx->spec.batch_cells;

  std::size_t total = 0;
  sweep::Pool::ItemFn item;
  switch (ctx->spec.kind) {
    case JobKind::kRun:
      total = 1;
      item = [this, ctx, state](std::size_t) {
        if (!task_boundary(*state)) return;
        try {
          Registered& target = *ctx->entries[0];
          // The lease pins the cell's borrows until scope exit -- after
          // the engine run, so eviction never races a live engine.
          CellLease lease;
          const runtime::BlockImage& image =
              image_for(target, ctx->spec.config, state->token.get(), lease);
          const sim::EngineConfig config = cell_config(
              target, core::engine_config(ctx->spec.config),
              ctx->spec.share_frontiers, state->token.get(), lease);
          sim::Engine engine(target.workload->cfg, image, config);
          sim::RunResult result = engine.run(target.workload->trace);
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->value.run = std::move(result);
        } catch (const JobCancelled&) {
          // The job is being cancelled; this item retires without a
          // result (the finalize reports kCancelled, payload-free).
        }
      };
      break;
    case JobKind::kSweep:
      if (batch > 1) {
        total = (ctx->spec.tasks.size() + batch - 1) / batch;
        ctx->sinks = std::vector<sweep::ResultSink>(1);
        item = [ctx, run_batch, batch](std::size_t chunk) {
          const std::size_t begin = chunk * batch;
          const std::size_t end =
              std::min(begin + batch, ctx->spec.tasks.size());
          run_batch(*ctx->entries[0], begin, end, ctx->sinks[0]);
        };
        break;
      }
      total = ctx->spec.tasks.size();
      ctx->sinks = std::vector<sweep::ResultSink>(1);
      item = [this, ctx, state](std::size_t i) {
        if (!task_boundary(*state)) return;
        try {
          Registered& target = *ctx->entries[0];
          CellLease lease;  // pins the cell's borrows past the run
          const runtime::BlockImage& image =
              image_for(target, ctx->spec.config, state->token.get(), lease);
          const sweep::SweepTask& task = ctx->spec.tasks[i];
          const sim::EngineConfig config =
              cell_config(target, task.config, ctx->spec.share_frontiers,
                          state->token.get(), lease);
          sim::Engine engine(target.workload->cfg, image, config);
          ctx->sinks[0].push(sweep::SweepOutcome{
              i, task.label, engine.run(target.workload->trace)});
        } catch (const JobCancelled&) {
        }
      };
      break;
    case JobKind::kCampaign: {
      // Same workload-major flattening as sweep::run_campaign: cell i
      // is workload i / |grid|, task i % |grid|.
      const std::size_t grid_size = ctx->spec.tasks.size();
      if (batch > 1) {
        // Batches never span workloads (one (cfg, image, trace) triple
        // per batch): chunk each workload's grid independently.
        const std::size_t per_workload = (grid_size + batch - 1) / batch;
        total = ctx->entries.size() * per_workload;
        ctx->sinks = std::vector<sweep::ResultSink>(ctx->entries.size());
        item = [ctx, run_batch, batch, per_workload,
                grid_size](std::size_t i) {
          const std::size_t w = i / per_workload;
          const std::size_t begin = (i % per_workload) * batch;
          const std::size_t end = std::min(begin + batch, grid_size);
          run_batch(*ctx->entries[w], begin, end, ctx->sinks[w]);
        };
        break;
      }
      total = ctx->entries.size() * grid_size;
      ctx->sinks = std::vector<sweep::ResultSink>(ctx->entries.size());
      item = [this, ctx, state, grid_size](std::size_t i) {
        if (!task_boundary(*state)) return;
        try {
          const std::size_t w = i / grid_size;
          const std::size_t t = i % grid_size;
          Registered& target = *ctx->entries[w];
          CellLease lease;  // pins the cell's borrows past the run
          const runtime::BlockImage& image =
              image_for(target, ctx->spec.config, state->token.get(), lease);
          const sweep::SweepTask& task = ctx->spec.tasks[t];
          const sim::EngineConfig config =
              cell_config(target, task.config, ctx->spec.share_frontiers,
                          state->token.get(), lease);
          sim::Engine engine(target.workload->cfg, image, config);
          ctx->sinks[w].push(sweep::SweepOutcome{
              t, task.label, engine.run(target.workload->trace)});
        } catch (const JobCancelled&) {
        }
      };
      break;
    }
  }

  const JobId id = pool_->submit(
      total, std::move(item),
      [this, ctx, state, client](const sweep::FinalizeInfo& info) {
        std::function<void()> callback;
        {
          // Job accounting first, so a waiter that wakes on this job
          // can immediately submit into the freed queue slot.
          const std::lock_guard<std::mutex> lock(mutex_);
          --live_jobs_;
          const auto it = live_per_client_.find(client);
          if (it != live_per_client_.end() && --it->second == 0) {
            live_per_client_.erase(it);
          }
          live_states_.erase(state.get());
        }
        {
          const std::lock_guard<std::mutex> lock(state->mutex);
          switch (info.outcome) {
            case sweep::JobOutcome::kCompleted:
              switch (ctx->spec.kind) {
                case JobKind::kRun:
                  break;  // the single item wrote value.run already
                case JobKind::kSweep:
                  state->value.sweep = ctx->sinks[0].take_sorted();
                  break;
                case JobKind::kCampaign:
                  state->value.campaign.reserve(ctx->names.size());
                  for (std::size_t w = 0; w < ctx->names.size(); ++w) {
                    state->value.campaign.push_back(sweep::CampaignResult{
                        ctx->names[w], ctx->sinks[w].take_sorted()});
                  }
                  break;
              }
              break;
            case sweep::JobOutcome::kFailed:
              state->failure = info.failure;
              state->value.status = JobStatus::kError;
              try {
                std::rethrow_exception(info.failure);
              } catch (const std::exception& e) {
                state->value.error = e.what();
              } catch (...) {
                state->value.error = "unknown error";
              }
              break;
            // The non-ok, non-failure outcomes carry fixed messages and
            // no payload -- the record is byte-identical however many
            // items happened to run before the cancel landed.
            case sweep::JobOutcome::kCancelled:
              state->value.status = JobStatus::kCancelled;
              state->value.error = "job cancelled";
              break;
            case sweep::JobOutcome::kDeadlineExceeded:
              state->value.status = JobStatus::kDeadlineExceeded;
              state->value.error = "job deadline exceeded";
              break;
          }
          state->done = true;
          callback = std::move(state->callback);
        }
        state->cv.notify_all();
        // Outside the state mutex: the callback may take locks of its
        // own (the net layer's completion queue) and must never
        // deadlock against a concurrent ready()/wait().
        if (callback) callback();
      },
      options);

  bool accepting = true;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    state->id = id;
    accepting = accepting_;
  }
  if (!accepting) {
    // shutdown() raced between admission and enqueue and so missed this
    // job's id; apply its still-queued policy ourselves.
    pool_->cancel_if_unstarted(id);
  }
  return JobHandle<JobResult>(std::move(state));
}

JobHandle<sim::RunResult> Service::submit(RunJob job) {
  JobSpec spec;
  spec.kind = JobKind::kRun;
  spec.workloads.push_back("@" + std::to_string(job.workload));
  spec.config = job.config;
  spec.share_frontiers = job.share_frontiers;
  return JobHandle<sim::RunResult>(submit(std::move(spec)).state_);
}

JobHandle<std::vector<sweep::SweepOutcome>> Service::submit(SweepJob job) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.workloads.push_back("@" + std::to_string(job.workload));
  spec.config = job.config;
  spec.tasks = std::move(job.tasks);
  spec.share_frontiers = job.share_frontiers;
  spec.batch_cells = job.batch_cells;
  return JobHandle<std::vector<sweep::SweepOutcome>>(
      submit(std::move(spec)).state_);
}

JobHandle<std::vector<sweep::CampaignResult>> Service::submit(
    CampaignJob job) {
  JobSpec spec;
  spec.kind = JobKind::kCampaign;
  spec.workloads.reserve(job.workloads.size());
  for (const WorkloadId id : job.workloads) {
    spec.workloads.push_back("@" + std::to_string(id));
  }
  spec.config = job.config;
  spec.tasks = std::move(job.grid);
  spec.share_frontiers = job.share_frontiers;
  spec.batch_cells = job.batch_cells;
  return JobHandle<std::vector<sweep::CampaignResult>>(
      submit(std::move(spec)).state_);
}

void Service::drain() { pool_->drain(); }

void Service::shutdown(
    std::optional<std::chrono::milliseconds> drain_deadline) {
  std::vector<std::pair<std::shared_ptr<detail::JobState>, JobId>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    live.reserve(live_states_.size());
    for (const auto& [ptr, st] : live_states_) live.emplace_back(st, st->id);
  }
  // Still-queued (no item started) jobs fail fast as cancelled --
  // resolved on this thread, before the drain, so their handles are
  // ready even while in-flight jobs are still running. id 0 means the
  // submitter has not enqueued the job yet; its own post-enqueue
  // accepting_ check applies this same policy.
  for (const auto& [st, id] : live) {
    if (id != 0) pool_->cancel_if_unstarted(id);
  }
  if (drain_deadline && !pool_->drain_for(*drain_deadline)) {
    // Patience exhausted: cancel the stragglers cooperatively. Their
    // handles still resolve (as kCancelled) once running items hit a
    // task boundary or finish -- shutdown never abandons a handle.
    for (const auto& [st, id] : live) {
      if (st->token) st->token->request();
      if (id != 0) pool_->cancel(id);
    }
  }
  pool_->drain();
  pool_->stop(sweep::StopMode::kDrain);
}

Service::CacheStats Service::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats stats = stats_;
  // Resident-set sizes are counted at query time: the running counters
  // above survive artifact eviction, these reflect what eviction left.
  for (const auto& entry : registry_) {
    for (const auto& [codec, slot] : entry->images) {
      const std::lock_guard<std::mutex> slot_lock(slot->mutex);
      if (slot->image) ++stats.images.entries;
    }
  }
  for (const auto& [key, ledger] : frontiers_) {
    if (ledger.shared->ready()) ++stats.frontiers.entries;
  }
  return stats;
}

unsigned Service::workers() const { return pool_->workers(); }

const runtime::SharedFrontier* Service::frontier_slot(
    WorkloadId id, unsigned predecompress_k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  const runtime::FrontierKey key{&registry_[id]->workload->cfg,
                                 predecompress_k};
  const auto it = frontiers_.find(key);
  return it == frontiers_.end() ? nullptr : it->second.shared.get();
}

}  // namespace apcc::serving
