#include "serving/service.hpp"

#include <map>
#include <thread>
#include <utility>

#include "compress/codec.hpp"
#include "sim/engine.hpp"

namespace apcc::serving {

/// Claim-build / wait handshake around one (workload, codec) compressed
/// image. Same shape as runtime::SharedFrontier: the first cell that
/// needs the artifact builds it on its own (pool) thread off the slot
/// lock; concurrent cells block on the cv; afterwards the image is
/// immutable and borrowed without locks.
struct Service::ImageSlot {
  enum class State : std::uint8_t { kIdle, kBuilding, kReady };

  std::mutex mutex;
  std::condition_variable ready_cv;
  State state = State::kIdle;
  std::unique_ptr<const runtime::BlockImage> image;
};

/// One registered workload plus its image artifacts. The workload lives
/// behind a unique_ptr so its Cfg / trace / bytes keep stable addresses
/// for the cache keys and the borrowing engines; map nodes are stable
/// too, so slot pointers stay valid while other keys are inserted.
/// (Frontier geometry lives in the service-wide frontiers_ map, keyed
/// by runtime::FrontierKey -- CFG identity + k.)
struct Service::Registered {
  std::unique_ptr<const workloads::Workload> workload;
  std::map<compress::CodecKind, std::unique_ptr<ImageSlot>> images;
};

Service::Service(ServiceOptions options) {
  unsigned workers = options.workers != 0
                         ? options.workers
                         : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  pool_ = std::make_unique<sweep::Pool>(workers);
}

Service::~Service() = default;

WorkloadId Service::register_workload(workloads::Workload workload) {
  auto entry = std::make_unique<Registered>();
  entry->workload =
      std::make_unique<const workloads::Workload>(std::move(workload));
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.push_back(std::move(entry));
  return registry_.size() - 1;
}

std::size_t Service::workload_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return registry_.size();
}

const workloads::Workload& Service::workload(WorkloadId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  return *registry_[id]->workload;
}

Service::Registered& Service::entry(WorkloadId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  return *registry_[id];
}

const runtime::BlockImage& Service::image_for(
    Registered& entry, const core::SystemConfig& config) {
  ImageSlot* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& owned = entry.images[config.codec];
    if (!owned) owned = std::make_unique<ImageSlot>();
    slot = owned.get();
  }

  std::unique_lock<std::mutex> slot_lock(slot->mutex);
  for (;;) {
    if (slot->state == ImageSlot::State::kReady) {
      slot_lock.unlock();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.image_borrows;
      return *slot->image;
    }
    if (slot->state == ImageSlot::State::kIdle) {
      slot->state = ImageSlot::State::kBuilding;
      slot_lock.unlock();
      // Build off the lock: exactly what from_workload does -- train
      // the codec on a copy of the block bytes, then freeze the image
      // -- so a cached image is byte-identical to a per-call one.
      const workloads::Workload& w = *entry.workload;
      std::unique_ptr<const runtime::BlockImage> image;
      try {
        std::vector<compress::Bytes> bytes = w.block_bytes;
        auto codec = compress::make_codec(config.codec, bytes);
        image = std::make_unique<const runtime::BlockImage>(
            w.cfg, std::move(bytes), std::move(codec));
      } catch (...) {
        // Roll the claim back and wake waiters so they re-claim (and
        // hit the build failure themselves) rather than deadlock on a
        // ready flip that will never come.
        slot_lock.lock();
        slot->state = ImageSlot::State::kIdle;
        slot->ready_cv.notify_all();
        throw;
      }
      slot_lock.lock();
      slot->image = std::move(image);
      slot->state = ImageSlot::State::kReady;
      slot->ready_cv.notify_all();
      slot_lock.unlock();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.images_built;
      return *slot->image;
    }
    slot->ready_cv.wait(slot_lock, [&] {
      return slot->state != ImageSlot::State::kBuilding;
    });
  }
}

const runtime::FrontierCache* Service::frontiers_for(Registered& entry,
                                                     unsigned k) {
  const runtime::FrontierKey key{&entry.workload->cfg, k};
  runtime::SharedFrontier* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& owned = frontiers_[key];
    if (!owned) {
      owned =
          std::make_unique<runtime::SharedFrontier>(entry.workload->cfg, k);
    }
    slot = owned.get();
  }
  bool built = false;
  const runtime::FrontierCache* cache = slot->acquire(&built);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (built) {
      ++stats_.frontiers_built;
    } else {
      ++stats_.frontier_borrows;
    }
  }
  return cache;
}

sim::EngineConfig Service::cell_config(Registered& entry,
                                       const sim::EngineConfig& base,
                                       bool share_frontiers) {
  sim::EngineConfig config = base;
  if (share_frontiers) {
    config.shared_frontiers =
        frontiers_for(entry, config.policy.predecompress_k);
  }
  return config;
}

JobHandle<sim::RunResult> Service::submit(RunJob job) {
  Registered& target = entry(job.workload);
  APCC_CHECK(!target.workload->trace.empty(),
             "workload '" + target.workload->name + "' has no default trace");

  auto state = std::make_shared<JobHandle<sim::RunResult>::State>();
  auto ctx = std::make_shared<RunJob>(std::move(job));
  Registered* const entry_ptr = &target;
  state->id = pool_->submit(
      1,
      [this, ctx, state, entry_ptr](std::size_t) {
        Registered& target = *entry_ptr;
        const runtime::BlockImage& image = image_for(target, ctx->config);
        const sim::EngineConfig config = cell_config(
            target, core::engine_config(ctx->config), ctx->share_frontiers);
        sim::Engine engine(target.workload->cfg, image, config);
        sim::RunResult result = engine.run(target.workload->trace);
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->value = std::move(result);
      },
      [state](std::exception_ptr failure) {
        {
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->failure = failure;
          state->done = true;
        }
        state->cv.notify_all();
      });
  return JobHandle<sim::RunResult>(std::move(state));
}

JobHandle<std::vector<sweep::SweepOutcome>> Service::submit(SweepJob job) {
  Registered& target = entry(job.workload);
  APCC_CHECK(!target.workload->trace.empty(),
             "workload '" + target.workload->name + "' has no default trace");

  struct Ctx {
    SweepJob job;
    sweep::ResultSink sink;
  };
  auto state =
      std::make_shared<JobHandle<std::vector<sweep::SweepOutcome>>::State>();
  auto ctx = std::make_shared<Ctx>();
  ctx->job = std::move(job);
  Registered* const entry_ptr = &target;
  state->id = pool_->submit(
      ctx->job.tasks.size(),
      [this, ctx, entry_ptr](std::size_t i) {
        Registered& target = *entry_ptr;
        const runtime::BlockImage& image = image_for(target, ctx->job.config);
        const sweep::SweepTask& task = ctx->job.tasks[i];
        const sim::EngineConfig config =
            cell_config(target, task.config, ctx->job.share_frontiers);
        sim::Engine engine(target.workload->cfg, image, config);
        ctx->sink.push(sweep::SweepOutcome{i, task.label,
                                           engine.run(target.workload->trace)});
      },
      [ctx, state](std::exception_ptr failure) {
        {
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->failure = failure;
          if (!failure) state->value = ctx->sink.take_sorted();
          state->done = true;
        }
        state->cv.notify_all();
      });
  return JobHandle<std::vector<sweep::SweepOutcome>>(std::move(state));
}

JobHandle<std::vector<sweep::CampaignResult>> Service::submit(
    CampaignJob job) {
  struct Ctx {
    CampaignJob job;
    std::vector<Registered*> entries;
    std::vector<std::string> names;
    std::vector<sweep::ResultSink> sinks;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->job = std::move(job);
  for (const WorkloadId id : ctx->job.workloads) {
    Registered& target = entry(id);
    APCC_CHECK(!target.workload->trace.empty(), "workload '" +
                                                    target.workload->name +
                                                    "' has no default trace");
    ctx->entries.push_back(&target);
    ctx->names.push_back(target.workload->name);
  }
  ctx->sinks = std::vector<sweep::ResultSink>(ctx->entries.size());

  auto state =
      std::make_shared<JobHandle<std::vector<sweep::CampaignResult>>::State>();
  // Same workload-major flattening as sweep::run_campaign: cell i is
  // workload i / |grid|, task i % |grid|.
  const std::size_t grid_size = ctx->job.grid.size();
  const std::size_t total = ctx->entries.size() * grid_size;
  state->id = pool_->submit(
      total,
      [this, ctx, grid_size](std::size_t i) {
        const std::size_t w = i / grid_size;
        const std::size_t t = i % grid_size;
        Registered& target = *ctx->entries[w];
        const runtime::BlockImage& image = image_for(target, ctx->job.config);
        const sweep::SweepTask& task = ctx->job.grid[t];
        const sim::EngineConfig config =
            cell_config(target, task.config, ctx->job.share_frontiers);
        sim::Engine engine(target.workload->cfg, image, config);
        ctx->sinks[w].push(sweep::SweepOutcome{
            t, task.label, engine.run(target.workload->trace)});
      },
      [ctx, state](std::exception_ptr failure) {
        {
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->failure = failure;
          if (!failure) {
            state->value.reserve(ctx->names.size());
            for (std::size_t w = 0; w < ctx->names.size(); ++w) {
              state->value.push_back(sweep::CampaignResult{
                  ctx->names[w], ctx->sinks[w].take_sorted()});
            }
          }
          state->done = true;
        }
        state->cv.notify_all();
      });
  return JobHandle<std::vector<sweep::CampaignResult>>(std::move(state));
}

void Service::drain() { pool_->drain(); }

Service::CacheStats Service::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

unsigned Service::workers() const { return pool_->workers(); }

const runtime::SharedFrontier* Service::frontier_slot(
    WorkloadId id, unsigned predecompress_k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  const runtime::FrontierKey key{&registry_[id]->workload->cfg,
                                 predecompress_k};
  const auto it = frontiers_.find(key);
  return it == frontiers_.end() ? nullptr : it->second.get();
}

}  // namespace apcc::serving
