#include "serving/service.hpp"

#include <map>
#include <thread>
#include <utility>

#include "compress/codec.hpp"
#include "sim/engine.hpp"
#include "support/strings.hpp"

namespace apcc::serving {

/// Claim-build / wait handshake around one (workload, codec) compressed
/// image. Same shape as runtime::SharedFrontier: the first cell that
/// needs the artifact builds it on its own (pool) thread off the slot
/// lock; concurrent cells block on the cv; afterwards the image is
/// immutable and borrowed without locks.
struct Service::ImageSlot {
  enum class State : std::uint8_t { kIdle, kBuilding, kReady };

  std::mutex mutex;
  std::condition_variable ready_cv;
  State state = State::kIdle;
  std::unique_ptr<const runtime::BlockImage> image;
};

/// One registered workload plus its image artifacts. The workload lives
/// behind a unique_ptr so its Cfg / trace / bytes keep stable addresses
/// for the cache keys and the borrowing engines; map nodes are stable
/// too, so slot pointers stay valid while other keys are inserted.
/// (Frontier geometry lives in the service-wide frontiers_ map, keyed
/// by runtime::FrontierKey -- CFG identity + k.)
struct Service::Registered {
  std::unique_ptr<const workloads::Workload> workload;
  std::map<compress::CodecKind, std::unique_ptr<ImageSlot>> images;
};

Service::Service(ServiceOptions options) {
  unsigned workers = options.workers != 0
                         ? options.workers
                         : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  pool_ = std::make_unique<sweep::Pool>(workers);
}

Service::~Service() = default;

WorkloadId Service::register_workload(workloads::Workload workload) {
  auto entry = std::make_unique<Registered>();
  entry->workload =
      std::make_unique<const workloads::Workload>(std::move(workload));
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.push_back(std::move(entry));
  return registry_.size() - 1;
}

std::size_t Service::workload_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return registry_.size();
}

const workloads::Workload& Service::workload(WorkloadId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  return *registry_[id]->workload;
}

WorkloadId Service::resolve(const std::string& ref) const {
  APCC_CHECK(!ref.empty(), "empty workload reference");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ref[0] == '@') {
    // Literal id, the exact form the typed veneers emit.
    const std::int64_t id = parse_int(ref.substr(1));
    APCC_CHECK(id >= 0 && static_cast<std::size_t>(id) < registry_.size(),
               "unknown workload reference '" + ref + "'");
    return static_cast<WorkloadId>(id);
  }
  // Registered-name lookup, first registration wins (deterministic).
  for (std::size_t id = 0; id < registry_.size(); ++id) {
    if (registry_[id]->workload->name == ref) return id;
  }
  APCC_CHECK(false, "unknown workload reference '" + ref +
                        "' (register it first, or use \"@<id>\")");
}

Service::Registered& Service::entry(WorkloadId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  return *registry_[id];
}

const runtime::BlockImage& Service::image_for(
    Registered& entry, const core::SystemConfig& config) {
  ImageSlot* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& owned = entry.images[config.codec];
    if (!owned) owned = std::make_unique<ImageSlot>();
    slot = owned.get();
  }

  std::unique_lock<std::mutex> slot_lock(slot->mutex);
  for (;;) {
    if (slot->state == ImageSlot::State::kReady) {
      slot_lock.unlock();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.image_borrows;
      return *slot->image;
    }
    if (slot->state == ImageSlot::State::kIdle) {
      slot->state = ImageSlot::State::kBuilding;
      slot_lock.unlock();
      // Build off the lock: exactly what from_workload does -- train
      // the codec on a copy of the block bytes, then freeze the image
      // -- so a cached image is byte-identical to a per-call one.
      const workloads::Workload& w = *entry.workload;
      std::unique_ptr<const runtime::BlockImage> image;
      try {
        std::vector<compress::Bytes> bytes = w.block_bytes;
        auto codec = compress::make_codec(config.codec, bytes);
        image = std::make_unique<const runtime::BlockImage>(
            w.cfg, std::move(bytes), std::move(codec));
      } catch (...) {
        // Roll the claim back and wake waiters so they re-claim (and
        // hit the build failure themselves) rather than deadlock on a
        // ready flip that will never come.
        slot_lock.lock();
        slot->state = ImageSlot::State::kIdle;
        slot->ready_cv.notify_all();
        throw;
      }
      slot_lock.lock();
      slot->image = std::move(image);
      slot->state = ImageSlot::State::kReady;
      slot->ready_cv.notify_all();
      slot_lock.unlock();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.images_built;
      stats_.image_bytes += slot->image->approx_bytes();
      return *slot->image;
    }
    slot->ready_cv.wait(slot_lock, [&] {
      return slot->state != ImageSlot::State::kBuilding;
    });
  }
}

const runtime::FrontierCache* Service::frontiers_for(Registered& entry,
                                                     unsigned k) {
  const runtime::FrontierKey key{&entry.workload->cfg, k};
  runtime::SharedFrontier* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& owned = frontiers_[key];
    if (!owned) {
      owned =
          std::make_unique<runtime::SharedFrontier>(entry.workload->cfg, k);
    }
    slot = owned.get();
  }
  bool built = false;
  const runtime::FrontierCache* cache = slot->acquire(&built);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (built) {
      ++stats_.frontiers_built;
      stats_.frontier_bytes += cache->approx_bytes();
    } else {
      ++stats_.frontier_borrows;
    }
  }
  return cache;
}

sim::EngineConfig Service::cell_config(Registered& entry,
                                       const sim::EngineConfig& base,
                                       bool share_frontiers) {
  sim::EngineConfig config = base;
  if (share_frontiers) {
    config.shared_frontiers =
        frontiers_for(entry, config.policy.predecompress_k);
  }
  return config;
}

JobHandle<JobResult> Service::submit(JobSpec spec) {
  validate(spec);

  /// Everything the pool items need, alive until the finalize runs.
  struct Ctx {
    JobSpec spec;
    std::vector<Registered*> entries;
    std::vector<std::string> names;
    std::vector<sweep::ResultSink> sinks;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->spec = std::move(spec);
  for (const std::string& ref : ctx->spec.workloads) {
    Registered& target = entry(resolve(ref));
    APCC_CHECK(!target.workload->trace.empty(),
               "workload '" + target.workload->name + "' has no default trace");
    ctx->entries.push_back(&target);
    ctx->names.push_back(target.workload->name);
  }

  auto state = std::make_shared<detail::JobState>();
  state->value.kind = ctx->spec.kind;

  std::size_t total = 0;
  sweep::Pool::ItemFn item;
  switch (ctx->spec.kind) {
    case JobKind::kRun:
      total = 1;
      item = [this, ctx, state](std::size_t) {
        Registered& target = *ctx->entries[0];
        const runtime::BlockImage& image = image_for(target, ctx->spec.config);
        const sim::EngineConfig config =
            cell_config(target, core::engine_config(ctx->spec.config),
                        ctx->spec.share_frontiers);
        sim::Engine engine(target.workload->cfg, image, config);
        sim::RunResult result = engine.run(target.workload->trace);
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->value.run = std::move(result);
      };
      break;
    case JobKind::kSweep:
      total = ctx->spec.tasks.size();
      ctx->sinks = std::vector<sweep::ResultSink>(1);
      item = [this, ctx](std::size_t i) {
        Registered& target = *ctx->entries[0];
        const runtime::BlockImage& image = image_for(target, ctx->spec.config);
        const sweep::SweepTask& task = ctx->spec.tasks[i];
        const sim::EngineConfig config =
            cell_config(target, task.config, ctx->spec.share_frontiers);
        sim::Engine engine(target.workload->cfg, image, config);
        ctx->sinks[0].push(sweep::SweepOutcome{
            i, task.label, engine.run(target.workload->trace)});
      };
      break;
    case JobKind::kCampaign: {
      // Same workload-major flattening as sweep::run_campaign: cell i
      // is workload i / |grid|, task i % |grid|.
      const std::size_t grid_size = ctx->spec.tasks.size();
      total = ctx->entries.size() * grid_size;
      ctx->sinks = std::vector<sweep::ResultSink>(ctx->entries.size());
      item = [this, ctx, grid_size](std::size_t i) {
        const std::size_t w = i / grid_size;
        const std::size_t t = i % grid_size;
        Registered& target = *ctx->entries[w];
        const runtime::BlockImage& image = image_for(target, ctx->spec.config);
        const sweep::SweepTask& task = ctx->spec.tasks[t];
        const sim::EngineConfig config =
            cell_config(target, task.config, ctx->spec.share_frontiers);
        sim::Engine engine(target.workload->cfg, image, config);
        ctx->sinks[w].push(sweep::SweepOutcome{
            t, task.label, engine.run(target.workload->trace)});
      };
      break;
    }
  }

  state->id = pool_->submit(
      total, std::move(item),
      [ctx, state](std::exception_ptr failure) {
        {
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->failure = failure;
          if (!failure) {
            switch (ctx->spec.kind) {
              case JobKind::kRun:
                break;  // the single item wrote value.run already
              case JobKind::kSweep:
                state->value.sweep = ctx->sinks[0].take_sorted();
                break;
              case JobKind::kCampaign:
                state->value.campaign.reserve(ctx->names.size());
                for (std::size_t w = 0; w < ctx->names.size(); ++w) {
                  state->value.campaign.push_back(sweep::CampaignResult{
                      ctx->names[w], ctx->sinks[w].take_sorted()});
                }
                break;
            }
          }
          state->done = true;
        }
        state->cv.notify_all();
      },
      {ctx->spec.priority, ctx->spec.max_workers});
  return JobHandle<JobResult>(std::move(state));
}

JobHandle<sim::RunResult> Service::submit(RunJob job) {
  JobSpec spec;
  spec.kind = JobKind::kRun;
  spec.workloads.push_back("@" + std::to_string(job.workload));
  spec.config = job.config;
  spec.share_frontiers = job.share_frontiers;
  return JobHandle<sim::RunResult>(submit(std::move(spec)).state_);
}

JobHandle<std::vector<sweep::SweepOutcome>> Service::submit(SweepJob job) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.workloads.push_back("@" + std::to_string(job.workload));
  spec.config = job.config;
  spec.tasks = std::move(job.tasks);
  spec.share_frontiers = job.share_frontiers;
  return JobHandle<std::vector<sweep::SweepOutcome>>(
      submit(std::move(spec)).state_);
}

JobHandle<std::vector<sweep::CampaignResult>> Service::submit(
    CampaignJob job) {
  JobSpec spec;
  spec.kind = JobKind::kCampaign;
  spec.workloads.reserve(job.workloads.size());
  for (const WorkloadId id : job.workloads) {
    spec.workloads.push_back("@" + std::to_string(id));
  }
  spec.config = job.config;
  spec.tasks = std::move(job.grid);
  spec.share_frontiers = job.share_frontiers;
  return JobHandle<std::vector<sweep::CampaignResult>>(
      submit(std::move(spec)).state_);
}

void Service::drain() { pool_->drain(); }

Service::CacheStats Service::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

unsigned Service::workers() const { return pool_->workers(); }

const runtime::SharedFrontier* Service::frontier_slot(
    WorkloadId id, unsigned predecompress_k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(id < registry_.size(), "unknown workload id");
  const runtime::FrontierKey key{&registry_[id]->workload->cfg,
                                 predecompress_k};
  const auto it = frontiers_.find(key);
  return it == frontiers_.end() ? nullptr : it->second.get();
}

}  // namespace apcc::serving
