// serving::JobSpec -- the one canonical job representation.
//
// PR 4's Service exposed three ad-hoc typed submit() overloads (RunJob
// / SweepJob / CampaignJob) that only existed in-process. JobSpec
// unifies them into a single versioned, self-describing value: the job
// kind, the workload references, the policy grid, and the scheduling
// metadata (QoS) the pool needs -- everything a job *is*, with nothing
// tied to one address space. One value type means one validation
// routine, one wire codec (serving/wire.hpp), and one submission path:
// the typed overloads survive as thin veneers that build a JobSpec and
// project its unified JobResult back to their historical return types.
//
// Workload references are strings so a JobSpec can leave the process:
//   "gsm-like"   -- resolved against registered workload names (first
//                   registration wins; the CLI registers each spec once)
//   "@3"         -- a literal WorkloadId, exact and collision-proof;
//                   this is what the typed veneers emit in-process.
//
// QoS fields feed sweep::Pool's scheduler: a strict priority class
// (high > normal > batch, lowest-job-id tie-break), a max-worker budget
// (0 = uncapped), and a free-form client tag for attribution. All three
// affect only *when* cells run -- never what any job returns; the
// differential tests pin mixed-priority/budgeted submissions
// byte-identical to plain FIFO.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/result.hpp"
#include "sweep/campaign.hpp"
#include "sweep/pool.hpp"
#include "sweep/sweep.hpp"

namespace apcc::serving {

/// What a job does; selects which JobSpec fields are meaningful and
/// which JobResult member carries the outcome.
enum class JobKind : std::uint8_t {
  kRun,       // one workload, one configuration -> sim::RunResult
  kSweep,     // one workload, a task grid       -> vector<SweepOutcome>
  kCampaign,  // many workloads, one grid        -> vector<CampaignResult>
};

[[nodiscard]] const char* job_kind_name(JobKind kind);

/// The canonical, versioned job value. kWireVersion names the wire
/// schema (serving/wire.hpp) this struct round-trips through; bump it
/// deliberately whenever a field is added, removed, or re-interpreted.
struct JobSpec {
  static constexpr int kWireVersion = 2;

  JobKind kind = JobKind::kRun;
  /// Workload references ("@<id>" or a registered name). Exactly one
  /// for run/sweep; zero or more for campaign.
  std::vector<std::string> workloads;
  /// Codec + baseline engine knobs. run uses the whole config; sweep
  /// and campaign take the codec (image artifact key) from here and
  /// every engine knob from the task grid.
  core::SystemConfig config{};
  /// The policy grid (sweep/campaign). Must be empty for run.
  std::vector<sweep::SweepTask> tasks;
  /// Borrow the cached (workload, predecompress_k) geometry
  /// (bit-identical either way).
  bool share_frontiers = true;

  // -- QoS / scheduling metadata --------------------------------------
  sweep::Priority priority = sweep::Priority::kNormal;
  /// Max pool workers on this job's cells concurrently; 0 = uncapped.
  unsigned max_workers = 0;
  /// Free-form client tag, echoed into wire results for attribution.
  std::string client;
};

/// The unified outcome: `kind` says which member is meaningful. Kept a
/// plain struct (not a variant) so JobHandle<T> can hand out stable
/// references to the active member and the wire codec can stream it.
struct JobResult {
  JobKind kind = JobKind::kRun;
  sim::RunResult run{};
  std::vector<sweep::SweepOutcome> sweep;
  std::vector<sweep::CampaignResult> campaign;
};

/// Structural validation (kind known, workload arity, run has no grid,
/// priority in range). Throws CheckError naming the violation. Service
/// ::submit(JobSpec) calls this; the CLI calls it per parsed record so
/// a bad batch line is reported with its file position before anything
/// is submitted.
void validate(const JobSpec& spec);

/// The standard strategy x k policy grid (every DecompressionStrategy
/// x k in {1,2,4,8}, labels "<strategy>/k=<k>") varied over `base` --
/// the grid the sweep/campaign CLI subcommands and the wire format's
/// "grid strategy-k" sugar expand to.
[[nodiscard]] std::vector<sweep::SweepTask> strategy_k_grid(
    const sim::EngineConfig& base);

}  // namespace apcc::serving
