// serving::JobSpec -- the one canonical job representation.
//
// PR 4's Service exposed three ad-hoc typed submit() overloads (RunJob
// / SweepJob / CampaignJob) that only existed in-process. JobSpec
// unifies them into a single versioned, self-describing value: the job
// kind, the workload references, the policy grid, and the scheduling
// metadata (QoS) the pool needs -- everything a job *is*, with nothing
// tied to one address space. One value type means one validation
// routine, one wire codec (serving/wire.hpp), and one submission path:
// the typed overloads survive as thin veneers that build a JobSpec and
// project its unified JobResult back to their historical return types.
//
// Workload references are strings so a JobSpec can leave the process:
//   "gsm-like"   -- resolved against registered workload names (first
//                   registration wins; the CLI registers each spec once)
//   "@3"         -- a literal WorkloadId, exact and collision-proof;
//                   this is what the typed veneers emit in-process.
//
// QoS fields feed sweep::Pool's scheduler: a strict priority class
// (high > normal > batch, lowest-job-id tie-break), a max-worker budget
// (0 = uncapped), and a free-form client tag for attribution. All three
// affect only *when* cells run -- never what any job returns; the
// differential tests pin mixed-priority/budgeted submissions
// byte-identical to plain FIFO.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/result.hpp"
#include "sweep/campaign.hpp"
#include "sweep/pool.hpp"
#include "sweep/sweep.hpp"

namespace apcc::serving {

/// What a job does; selects which JobSpec fields are meaningful and
/// which JobResult member carries the outcome.
enum class JobKind : std::uint8_t {
  kRun,       // one workload, one configuration -> sim::RunResult
  kSweep,     // one workload, a task grid       -> vector<SweepOutcome>
  kCampaign,  // many workloads, one grid        -> vector<CampaignResult>
};

[[nodiscard]] const char* job_kind_name(JobKind kind);

/// How a submitted job resolved. kOk is the only status with a
/// payload; every other status carries a human-readable message in
/// JobResult::error instead. kError means an item threw (the handle
/// rethrows it); kRejected/kCancelled/kDeadlineExceeded are the
/// admission-control and lifecycle outcomes -- structured results, not
/// exceptions, so an overloaded or draining service never throws at a
/// well-formed caller.
enum class JobStatus : std::uint8_t {
  kOk,
  kError,
  kRejected,
  kCancelled,
  kDeadlineExceeded,
};

/// The one canonical status spelling, shared by the library, the wire
/// codec, and the CLI (so the strings cannot drift as statuses
/// multiply): "ok", "error", "rejected", "cancelled",
/// "deadline-exceeded".
[[nodiscard]] const char* status_name(JobStatus status);

/// The canonical, versioned job value. kWireVersion names the wire
/// schema (serving/wire.hpp) this struct round-trips through; bump it
/// deliberately whenever a field is added, removed, or re-interpreted.
/// v3: added the optional `deadline-ms` job field and the rejected /
/// cancelled / deadline-exceeded result statuses.
/// v4: added the optional `batch-cells` job field (lockstep multi-cell
/// stepping for sweep/campaign); omitted means 0, the per-engine path,
/// which is byte-identical to every batched setting.
struct JobSpec {
  static constexpr int kWireVersion = 4;

  JobKind kind = JobKind::kRun;
  /// Workload references ("@<id>" or a registered name). Exactly one
  /// for run/sweep; zero or more for campaign.
  std::vector<std::string> workloads;
  /// Codec + baseline engine knobs. run uses the whole config; sweep
  /// and campaign take the codec (image artifact key) from here and
  /// every engine knob from the task grid.
  core::SystemConfig config{};
  /// The policy grid (sweep/campaign). Must be empty for run.
  std::vector<sweep::SweepTask> tasks;
  /// Borrow the cached (workload, predecompress_k) geometry
  /// (bit-identical either way).
  bool share_frontiers = true;
  /// Grid cells stepped per pool work item (sweep/campaign only; a run
  /// job has a single cell and rejects a nonzero value). 0 and 1 keep
  /// the one-Engine-per-cell path; N > 1 advances N consecutive grid
  /// cells in lockstep per work item (sim::BatchEngine). Scheduling
  /// granularity changes; results never do.
  std::uint32_t batch_cells = 0;

  // -- QoS / scheduling metadata --------------------------------------
  sweep::Priority priority = sweep::Priority::kNormal;
  /// Max pool workers on this job's cells concurrently; 0 = uncapped.
  unsigned max_workers = 0;
  /// Relative deadline in milliseconds, enforced at dispatch: a cell
  /// claimed after submit-time + deadline is skipped and the job
  /// resolves as deadline-exceeded. 0 = no job deadline (the service's
  /// ServiceLimits::default_deadline_ms, if any, applies instead).
  std::uint64_t deadline_ms = 0;
  /// Free-form client tag, echoed into wire results for attribution
  /// (and the key ServiceLimits::max_queued_per_client counts by).
  std::string client;
};

/// The unified outcome: `status` says whether the job produced a
/// payload, `kind` says which member carries it. Kept a plain struct
/// (not a variant) so JobHandle<T> can hand out stable references to
/// the active member and the wire codec can stream it.
struct JobResult {
  JobKind kind = JobKind::kRun;
  /// kOk: the kind-selected member below is the outcome. Anything
  /// else: the payload members are empty and `error` explains why.
  JobStatus status = JobStatus::kOk;
  /// Human-readable message for non-ok statuses (the rejection reason,
  /// "job cancelled", the first item failure's message, ...).
  std::string error;
  sim::RunResult run{};
  std::vector<sweep::SweepOutcome> sweep;
  std::vector<sweep::CampaignResult> campaign;

  [[nodiscard]] bool ok() const { return status == JobStatus::kOk; }
};

/// Structural validation (kind known, workload arity, run has no grid,
/// priority in range). Throws CheckError naming the violation. Service
/// ::submit(JobSpec) calls this; the CLI calls it per parsed record so
/// a bad batch line is reported with its file position before anything
/// is submitted.
void validate(const JobSpec& spec);

/// The standard strategy x k policy grid (every DecompressionStrategy
/// x k in {1,2,4,8}, labels "<strategy>/k=<k>") varied over `base` --
/// the grid the sweep/campaign CLI subcommands and the wire format's
/// "grid strategy-k" sugar expand to.
[[nodiscard]] std::vector<sweep::SweepTask> strategy_k_grid(
    const sim::EngineConfig& base);

}  // namespace apcc::serving
