#include "serving/wire.hpp"

#include <charconv>
#include <functional>
#include <istream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace apcc::serving::wire {
namespace {

// ------------------------------------------------------- primitives

[[noreturn]] void fail(const std::string& message, std::size_t line,
                       std::string_view snippet) {
  throw WireError(message, line, std::string(snippet));
}

/// Canonical unsigned formatting (plain decimal).
std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Canonical double formatting: std::to_chars' shortest representation
/// that round-trips exactly (so "1", "0.5", "1.1000000000000001"-free).
std::string fmt_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::uint64_t parse_u64(std::string_view s, const char* what,
                        std::size_t line, std::string_view snippet) {
  std::uint64_t v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size() || s.empty()) {
    fail(std::string("malformed ") + what + " '" + std::string(s) + "'",
         line, snippet);
  }
  return v;
}

double parse_double(std::string_view s, const char* what, std::size_t line,
                    std::string_view snippet) {
  double v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size() || s.empty()) {
    fail(std::string("malformed ") + what + " '" + std::string(s) + "'",
         line, snippet);
  }
  return v;
}

bool parse_bool01(std::string_view s, const char* what, std::size_t line,
                  std::string_view snippet) {
  if (s == "0") return false;
  if (s == "1") return true;
  fail(std::string(what) + " must be 0 or 1, got '" + std::string(s) + "'",
       line, snippet);
}

/// Strict narrowing: an out-of-range value is a malformed record, not
/// a silent wrap (4294967296 must never read back as "uncapped").
std::uint32_t parse_u32(std::string_view s, const char* what,
                        std::size_t line, std::string_view snippet) {
  const std::uint64_t v = parse_u64(s, what, line, snippet);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    fail(std::string(what) + " out of range: '" + std::string(s) + "'",
         line, snippet);
  }
  return static_cast<std::uint32_t>(v);
}

unsigned parse_unsigned(std::string_view s, const char* what,
                        std::size_t line, std::string_view snippet) {
  const std::uint64_t v = parse_u64(s, what, line, snippet);
  if (v > std::numeric_limits<unsigned>::max()) {
    fail(std::string(what) + " out of range: '" + std::string(s) + "'",
         line, snippet);
  }
  return static_cast<unsigned>(v);
}

/// unescape_field with wire positioning: malformed escapes become
/// WireErrors pointing at the line instead of bare CheckErrors.
std::string unescape_at(std::string_view s, std::size_t line,
                        std::string_view snippet) {
  try {
    return unescape_field(s);
  } catch (const CheckError& e) {
    fail(e.what(), line, snippet);
  }
}

// ------------------------------------------------------ enum tables

template <typename E>
struct EnumName {
  E value;
  const char* name;
};

// The wire names come from the library's canonical *_name functions
// wherever one exists, so the format cannot drift from the names the
// reports and CLI banners print. (FitPolicy has no name function; its
// two names live only here.)
const EnumName<JobKind> kJobKinds[] = {
    {JobKind::kRun, job_kind_name(JobKind::kRun)},
    {JobKind::kSweep, job_kind_name(JobKind::kSweep)},
    {JobKind::kCampaign, job_kind_name(JobKind::kCampaign)},
};

const EnumName<JobStatus> kStatuses[] = {
    {JobStatus::kOk, status_name(JobStatus::kOk)},
    {JobStatus::kError, status_name(JobStatus::kError)},
    {JobStatus::kRejected, status_name(JobStatus::kRejected)},
    {JobStatus::kCancelled, status_name(JobStatus::kCancelled)},
    {JobStatus::kDeadlineExceeded,
     status_name(JobStatus::kDeadlineExceeded)},
};

const EnumName<sweep::Priority> kPriorities[] = {
    {sweep::Priority::kHigh, sweep::priority_name(sweep::Priority::kHigh)},
    {sweep::Priority::kNormal,
     sweep::priority_name(sweep::Priority::kNormal)},
    {sweep::Priority::kBatch, sweep::priority_name(sweep::Priority::kBatch)},
};

const EnumName<compress::CodecKind> kCodecs[] = {
    {compress::CodecKind::kNull,
     compress::codec_kind_name(compress::CodecKind::kNull)},
    {compress::CodecKind::kMtfRle,
     compress::codec_kind_name(compress::CodecKind::kMtfRle)},
    {compress::CodecKind::kHuffman,
     compress::codec_kind_name(compress::CodecKind::kHuffman)},
    {compress::CodecKind::kSharedHuffman,
     compress::codec_kind_name(compress::CodecKind::kSharedHuffman)},
    {compress::CodecKind::kLzss,
     compress::codec_kind_name(compress::CodecKind::kLzss)},
    {compress::CodecKind::kCodePack,
     compress::codec_kind_name(compress::CodecKind::kCodePack)},
    {compress::CodecKind::kFieldSplit,
     compress::codec_kind_name(compress::CodecKind::kFieldSplit)},
    {compress::CodecKind::kFpc,
     compress::codec_kind_name(compress::CodecKind::kFpc)},
    {compress::CodecKind::kBdi,
     compress::codec_kind_name(compress::CodecKind::kBdi)},
    {compress::CodecKind::kAdaptive,
     compress::codec_kind_name(compress::CodecKind::kAdaptive)},
};

const EnumName<runtime::DecompressionStrategy> kStrategies[] = {
    {runtime::DecompressionStrategy::kOnDemand,
     runtime::strategy_name(runtime::DecompressionStrategy::kOnDemand)},
    {runtime::DecompressionStrategy::kPreAll,
     runtime::strategy_name(runtime::DecompressionStrategy::kPreAll)},
    {runtime::DecompressionStrategy::kPreSingle,
     runtime::strategy_name(runtime::DecompressionStrategy::kPreSingle)},
};

const EnumName<runtime::PredictorKind> kPredictors[] = {
    {runtime::PredictorKind::kProfile,
     runtime::predictor_name(runtime::PredictorKind::kProfile)},
    {runtime::PredictorKind::kStatic,
     runtime::predictor_name(runtime::PredictorKind::kStatic)},
    {runtime::PredictorKind::kOracle,
     runtime::predictor_name(runtime::PredictorKind::kOracle)},
};

const EnumName<runtime::VictimPolicy> kVictims[] = {
    {runtime::VictimPolicy::kLru,
     runtime::victim_policy_name(runtime::VictimPolicy::kLru)},
    {runtime::VictimPolicy::kMru,
     runtime::victim_policy_name(runtime::VictimPolicy::kMru)},
    {runtime::VictimPolicy::kLargest,
     runtime::victim_policy_name(runtime::VictimPolicy::kLargest)},
};

constexpr EnumName<memory::FitPolicy> kFits[] = {
    {memory::FitPolicy::kFirstFit, "first-fit"},
    {memory::FitPolicy::kBestFit, "best-fit"},
};

template <typename E, std::size_t N>
const char* enum_name(const EnumName<E> (&table)[N], E value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "?";
}

template <typename E, std::size_t N>
E parse_enum(const EnumName<E> (&table)[N], std::string_view s,
             const char* what, std::size_t line, std::string_view snippet) {
  for (const auto& entry : table) {
    if (s == entry.name) return entry.value;
  }
  std::string expected;
  for (const auto& entry : table) {
    if (!expected.empty()) expected += "|";
    expected += entry.name;
  }
  fail(std::string("unknown ") + what + " '" + std::string(s) +
           "' (expected " + expected + ")",
       line, snippet);
}

// --------------------------------------------------------- kv lines

/// Appends " key=value".
void kv(std::string& out, const char* key, const std::string& value) {
  out += ' ';
  out += key;
  out += '=';
  out += value;
}

void policy_kvs(std::string& out, const runtime::Policy& p) {
  kv(out, "kc", fmt_u64(p.compress_k));
  kv(out, "strategy", enum_name(kStrategies, p.strategy));
  kv(out, "kd", fmt_u64(p.predecompress_k));
  kv(out, "predictor", enum_name(kPredictors, p.predictor));
  kv(out, "budget",
     p.memory_budget == runtime::Policy::kUnbounded ? "unbounded"
                                                    : fmt_u64(p.memory_budget));
  kv(out, "victim", enum_name(kVictims, p.victim_policy));
  kv(out, "units", fmt_u64(p.decompress_units));
  kv(out, "background-compression", p.background_compression ? "1" : "0");
  kv(out, "background-decompression", p.background_decompression ? "1" : "0");
  kv(out, "remember-sets", p.use_remember_sets ? "1" : "0");
  kv(out, "recompress", p.recompress_for_real ? "1" : "0");
  kv(out, "paranoid", p.paranoid_verify ? "1" : "0");
}

void costs_kvs(std::string& out, const runtime::CostModel& c) {
  kv(out, "cpi", fmt_double(c.cycles_per_instruction));
  kv(out, "exception", fmt_u64(c.exception_cycles));
  kv(out, "patch", fmt_u64(c.patch_branch_cycles));
  kv(out, "unpatch", fmt_u64(c.unpatch_branch_cycles));
  kv(out, "delete", fmt_u64(c.delete_block_cycles));
  kv(out, "alloc", fmt_u64(c.alloc_block_cycles));
  kv(out, "dispatch", fmt_u64(c.dispatch_job_cycles));
}

void result_kvs(std::string& out, const sim::RunResult& r) {
  kv(out, "total-cycles", fmt_u64(r.total_cycles));
  kv(out, "baseline-cycles", fmt_u64(r.baseline_cycles));
  kv(out, "busy-cycles", fmt_u64(r.busy_cycles));
  kv(out, "stall-cycles", fmt_u64(r.stall_cycles));
  kv(out, "exception-cycles", fmt_u64(r.exception_cycles));
  kv(out, "critical-decompress-cycles",
     fmt_u64(r.critical_decompress_cycles));
  kv(out, "patch-cycles", fmt_u64(r.patch_cycles));
  kv(out, "block-entries", fmt_u64(r.block_entries));
  kv(out, "exceptions", fmt_u64(r.exceptions));
  kv(out, "demand-decompressions", fmt_u64(r.demand_decompressions));
  kv(out, "predecompressions", fmt_u64(r.predecompressions));
  kv(out, "predecompress-hits", fmt_u64(r.predecompress_hits));
  kv(out, "predecompress-partial", fmt_u64(r.predecompress_partial));
  kv(out, "wasted-predecompressions", fmt_u64(r.wasted_predecompressions));
  kv(out, "deletions", fmt_u64(r.deletions));
  kv(out, "evictions", fmt_u64(r.evictions));
  kv(out, "patches", fmt_u64(r.patches));
  kv(out, "unpatches", fmt_u64(r.unpatches));
  kv(out, "dropped-requests", fmt_u64(r.dropped_requests));
  kv(out, "decomp-helper-busy", fmt_u64(r.decomp_helper_busy_cycles));
  kv(out, "comp-helper-busy", fmt_u64(r.comp_helper_busy_cycles));
  kv(out, "original-bytes", fmt_u64(r.original_image_bytes));
  kv(out, "compressed-area-bytes", fmt_u64(r.compressed_area_bytes));
  kv(out, "peak-bytes", fmt_u64(r.peak_occupancy_bytes));
  kv(out, "avg-bytes", fmt_double(r.avg_occupancy_bytes));
  kv(out, "codec-ratio", fmt_double(r.codec_ratio));
  kv(out, "alloc-capacity", fmt_u64(r.allocator.capacity));
  kv(out, "alloc-used", fmt_u64(r.allocator.used));
  kv(out, "alloc-free", fmt_u64(r.allocator.free));
  kv(out, "alloc-largest-run", fmt_u64(r.allocator.largest_free_run));
  kv(out, "alloc-live", fmt_u64(r.allocator.live_allocations));
  kv(out, "alloc-total", fmt_u64(r.allocator.total_allocations));
  kv(out, "alloc-failed", fmt_u64(r.allocator.failed_allocations));
}

/// Key=value dispatcher for one kv line: registered handlers, duplicate
/// and unknown-key detection, positioned errors.
class KvParser {
 public:
  KvParser(std::size_t line, std::string_view snippet)
      : line_(line), snippet_(snippet) {}

  void add(const char* key, std::function<void(std::string_view)> handler) {
    handlers_[key] = std::move(handler);
  }

  void run(std::string_view rest) {
    for (const std::string_view token : split_fields(rest, " ")) {
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        fail("expected key=value, got '" + std::string(token) + "'", line_,
             snippet_);
      }
      const std::string key(token.substr(0, eq));
      const auto it = handlers_.find(key);
      if (it == handlers_.end()) {
        fail("unknown key '" + key + "'", line_, snippet_);
      }
      if (!seen_.insert(key).second) {
        fail("duplicate key '" + key + "'", line_, snippet_);
      }
      it->second(token.substr(eq + 1));
    }
  }

 private:
  std::size_t line_;
  std::string_view snippet_;
  std::map<std::string, std::function<void(std::string_view)>> handlers_;
  std::set<std::string> seen_;
};

void add_policy_keys(KvParser& p, runtime::Policy& policy, std::size_t line,
                     std::string_view snippet) {
  p.add("kc", [&policy, line, snippet](std::string_view v) {
    policy.compress_k = parse_u32(v, "kc", line, snippet);
  });
  p.add("strategy", [&policy, line, snippet](std::string_view v) {
    policy.strategy = parse_enum(kStrategies, v, "strategy", line, snippet);
  });
  p.add("kd", [&policy, line, snippet](std::string_view v) {
    policy.predecompress_k = parse_u32(v, "kd", line, snippet);
  });
  p.add("predictor", [&policy, line, snippet](std::string_view v) {
    policy.predictor = parse_enum(kPredictors, v, "predictor", line, snippet);
  });
  p.add("budget", [&policy, line, snippet](std::string_view v) {
    policy.memory_budget = v == "unbounded"
                               ? runtime::Policy::kUnbounded
                               : parse_u64(v, "budget", line, snippet);
  });
  p.add("victim", [&policy, line, snippet](std::string_view v) {
    policy.victim_policy = parse_enum(kVictims, v, "victim", line, snippet);
  });
  p.add("units", [&policy, line, snippet](std::string_view v) {
    policy.decompress_units = parse_unsigned(v, "units", line, snippet);
  });
  p.add("background-compression", [&policy, line, snippet](std::string_view v) {
    policy.background_compression =
        parse_bool01(v, "background-compression", line, snippet);
  });
  p.add("background-decompression",
        [&policy, line, snippet](std::string_view v) {
          policy.background_decompression =
              parse_bool01(v, "background-decompression", line, snippet);
        });
  p.add("remember-sets", [&policy, line, snippet](std::string_view v) {
    policy.use_remember_sets = parse_bool01(v, "remember-sets", line, snippet);
  });
  p.add("recompress", [&policy, line, snippet](std::string_view v) {
    policy.recompress_for_real = parse_bool01(v, "recompress", line, snippet);
  });
  p.add("paranoid", [&policy, line, snippet](std::string_view v) {
    policy.paranoid_verify = parse_bool01(v, "paranoid", line, snippet);
  });
}

void add_costs_keys(KvParser& p, runtime::CostModel& costs, std::size_t line,
                    std::string_view snippet) {
  p.add("cpi", [&costs, line, snippet](std::string_view v) {
    costs.cycles_per_instruction = parse_double(v, "cpi", line, snippet);
  });
  p.add("exception", [&costs, line, snippet](std::string_view v) {
    costs.exception_cycles = parse_u64(v, "exception", line, snippet);
  });
  p.add("patch", [&costs, line, snippet](std::string_view v) {
    costs.patch_branch_cycles = parse_u64(v, "patch", line, snippet);
  });
  p.add("unpatch", [&costs, line, snippet](std::string_view v) {
    costs.unpatch_branch_cycles = parse_u64(v, "unpatch", line, snippet);
  });
  p.add("delete", [&costs, line, snippet](std::string_view v) {
    costs.delete_block_cycles = parse_u64(v, "delete", line, snippet);
  });
  p.add("alloc", [&costs, line, snippet](std::string_view v) {
    costs.alloc_block_cycles = parse_u64(v, "alloc", line, snippet);
  });
  p.add("dispatch", [&costs, line, snippet](std::string_view v) {
    costs.dispatch_job_cycles = parse_u64(v, "dispatch", line, snippet);
  });
}

void add_result_keys(KvParser& p, sim::RunResult& r, std::size_t line,
                     std::string_view snippet) {
  const auto u64 = [line, snippet](std::uint64_t& field, const char* what) {
    return [&field, what, line, snippet](std::string_view v) {
      field = parse_u64(v, what, line, snippet);
    };
  };
  p.add("total-cycles", u64(r.total_cycles, "total-cycles"));
  p.add("baseline-cycles", u64(r.baseline_cycles, "baseline-cycles"));
  p.add("busy-cycles", u64(r.busy_cycles, "busy-cycles"));
  p.add("stall-cycles", u64(r.stall_cycles, "stall-cycles"));
  p.add("exception-cycles", u64(r.exception_cycles, "exception-cycles"));
  p.add("critical-decompress-cycles",
        u64(r.critical_decompress_cycles, "critical-decompress-cycles"));
  p.add("patch-cycles", u64(r.patch_cycles, "patch-cycles"));
  p.add("block-entries", u64(r.block_entries, "block-entries"));
  p.add("exceptions", u64(r.exceptions, "exceptions"));
  p.add("demand-decompressions",
        u64(r.demand_decompressions, "demand-decompressions"));
  p.add("predecompressions", u64(r.predecompressions, "predecompressions"));
  p.add("predecompress-hits", u64(r.predecompress_hits, "predecompress-hits"));
  p.add("predecompress-partial",
        u64(r.predecompress_partial, "predecompress-partial"));
  p.add("wasted-predecompressions",
        u64(r.wasted_predecompressions, "wasted-predecompressions"));
  p.add("deletions", u64(r.deletions, "deletions"));
  p.add("evictions", u64(r.evictions, "evictions"));
  p.add("patches", u64(r.patches, "patches"));
  p.add("unpatches", u64(r.unpatches, "unpatches"));
  p.add("dropped-requests", u64(r.dropped_requests, "dropped-requests"));
  p.add("decomp-helper-busy",
        u64(r.decomp_helper_busy_cycles, "decomp-helper-busy"));
  p.add("comp-helper-busy", u64(r.comp_helper_busy_cycles, "comp-helper-busy"));
  p.add("original-bytes", u64(r.original_image_bytes, "original-bytes"));
  p.add("compressed-area-bytes",
        u64(r.compressed_area_bytes, "compressed-area-bytes"));
  p.add("peak-bytes", u64(r.peak_occupancy_bytes, "peak-bytes"));
  p.add("avg-bytes", [&r, line, snippet](std::string_view v) {
    r.avg_occupancy_bytes = parse_double(v, "avg-bytes", line, snippet);
  });
  p.add("codec-ratio", [&r, line, snippet](std::string_view v) {
    r.codec_ratio = parse_double(v, "codec-ratio", line, snippet);
  });
  p.add("alloc-capacity", u64(r.allocator.capacity, "alloc-capacity"));
  p.add("alloc-used", u64(r.allocator.used, "alloc-used"));
  p.add("alloc-free", u64(r.allocator.free, "alloc-free"));
  p.add("alloc-largest-run",
        u64(r.allocator.largest_free_run, "alloc-largest-run"));
  p.add("alloc-live", u64(r.allocator.live_allocations, "alloc-live"));
  p.add("alloc-total", u64(r.allocator.total_allocations, "alloc-total"));
  p.add("alloc-failed", u64(r.allocator.failed_allocations, "alloc-failed"));
}

sim::RunResult parse_result_kvs(std::string_view rest, std::size_t line,
                                std::string_view snippet) {
  sim::RunResult r;
  KvParser p(line, snippet);
  add_result_keys(p, r, line, snippet);
  p.run(rest);
  return r;
}

/// One task line: the label plus the full engine knob set.
void task_line(std::string& out, const sweep::SweepTask& task) {
  out += "task";
  kv(out, "label", escape_field(task.label));
  policy_kvs(out, task.config.policy);
  costs_kvs(out, task.config.costs);
  kv(out, "fit", enum_name(kFits, task.config.fit));
  kv(out, "reference-scans", task.config.reference_scans ? "1" : "0");
  kv(out, "reference-frontiers", task.config.reference_frontiers ? "1" : "0");
  out += '\n';
}

/// Parse one task line over `base` -- the record-level engine config
/// (policy/costs/fit/reference flags), so a record's `policy`/`costs`
/// lines are the base every task inherits and task kvs override
/// per cell (exactly what the `grid strategy-k` sugar expands over).
sweep::SweepTask parse_task_kvs(std::string_view rest, std::size_t line,
                                std::string_view snippet,
                                const sim::EngineConfig& base) {
  sweep::SweepTask task;
  task.config = base;
  KvParser p(line, snippet);
  p.add("label", [&task, line, snippet](std::string_view v) {
    task.label = unescape_at(v, line, snippet);
  });
  add_policy_keys(p, task.config.policy, line, snippet);
  add_costs_keys(p, task.config.costs, line, snippet);
  p.add("fit", [&task, line, snippet](std::string_view v) {
    task.config.fit = parse_enum(kFits, v, "fit", line, snippet);
  });
  p.add("reference-scans", [&task, line, snippet](std::string_view v) {
    task.config.reference_scans =
        parse_bool01(v, "reference-scans", line, snippet);
  });
  p.add("reference-frontiers", [&task, line, snippet](std::string_view v) {
    task.config.reference_frontiers =
        parse_bool01(v, "reference-frontiers", line, snippet);
  });
  p.run(rest);
  return task;
}

/// One outcome line (sweep/campaign results).
void outcome_line(std::string& out, const sweep::SweepOutcome& outcome) {
  out += "outcome";
  kv(out, "index", fmt_u64(outcome.index));
  kv(out, "label", escape_field(outcome.label));
  result_kvs(out, outcome.result);
  out += '\n';
}

sweep::SweepOutcome parse_outcome_kvs(std::string_view rest, std::size_t line,
                                      std::string_view snippet) {
  sweep::SweepOutcome outcome;
  KvParser p(line, snippet);
  p.add("index", [&outcome, line, snippet](std::string_view v) {
    outcome.index =
        static_cast<std::size_t>(parse_u64(v, "index", line, snippet));
  });
  p.add("label", [&outcome, line, snippet](std::string_view v) {
    outcome.label = unescape_at(v, line, snippet);
  });
  add_result_keys(p, outcome.result, line, snippet);
  p.run(rest);
  return outcome;
}

// ------------------------------------------------------ line scanner

struct Line {
  std::string_view text;   // trimmed content
  std::size_t number = 0;  // absolute 1-based line
};

/// Iterates a record's lines, skipping blank and '#'-comment lines and
/// tracking absolute numbers.
class LineScanner {
 public:
  LineScanner(std::string_view text, std::size_t first_line)
      : text_(text), line_(first_line) {}

  std::optional<Line> next() {
    while (pos_ < text_.size()) {
      std::size_t eol = text_.find('\n', pos_);
      if (eol == std::string_view::npos) eol = text_.size();
      const std::string_view raw = text_.substr(pos_, eol - pos_);
      const std::size_t number = line_;
      pos_ = eol + 1;
      ++line_;
      const std::string_view content = trim(raw);
      if (content.empty() || content[0] == '#') continue;
      return Line{content, number};
    }
    return std::nullopt;
  }

  /// The line number just past the scanned text (for missing-end errors).
  [[nodiscard]] std::size_t eof_line() const { return line_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_;
};

/// Split "key rest..." on the first space run.
std::pair<std::string_view, std::string_view> key_rest(std::string_view s) {
  const std::size_t space = s.find(' ');
  if (space == std::string_view::npos) return {s, {}};
  return {s.substr(0, space), trim(s.substr(space + 1))};
}

void check_header(const Line& header, const std::string& expected,
                  const char* record_kind) {
  if (header.text == expected) return;
  if (starts_with(header.text, "apcc.job") ||
      starts_with(header.text, "apcc.result")) {
    fail("unsupported wire record header (expected '" + expected + "' -- a " +
             record_kind + " record of wire version " +
             std::to_string(kVersion) + ")",
         header.number, header.text);
  }
  fail("expected '" + expected + "' record header", header.number,
       header.text);
}

/// Tracks single-occurrence record keys.
class SeenKeys {
 public:
  void mark(std::string_view key, std::size_t line,
            std::string_view snippet) {
    if (!seen_.insert(std::string(key)).second) {
      fail("duplicate '" + std::string(key) + "' line", line, snippet);
    }
  }

 private:
  std::set<std::string> seen_;
};

}  // namespace

// ---------------------------------------------------- field encoding

std::string escape_field(std::string_view s) {
  if (s.empty()) return "-";
  if (s == "-") return "%2D";
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte > 0x20 && byte < 0x7F && byte != '%') {
      out += c;
    } else {
      out += '%';
      out += hex[byte >> 4];
      out += hex[byte & 0xF];
    }
  }
  return out;
}

std::string unescape_field(std::string_view s) {
  if (s == "-") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    const auto nibble = [&](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    APCC_CHECK(i + 2 < s.size() && nibble(s[i + 1]) >= 0 &&
                   nibble(s[i + 2]) >= 0,
               "malformed %-escape in wire field '" + std::string(s) + "'");
    out += static_cast<char>(nibble(s[i + 1]) * 16 + nibble(s[i + 2]));
    i += 2;
  }
  return out;
}

// --------------------------------------------------------------- jobs

std::string serialize_job(const JobSpec& spec) {
  std::string out = kJobHeader;
  out += '\n';
  out += "kind ";
  out += enum_name(kJobKinds, spec.kind);
  out += '\n';
  out += "client " + escape_field(spec.client) + '\n';
  out += "priority ";
  out += enum_name(kPriorities, spec.priority);
  out += '\n';
  out += "max-workers " + fmt_u64(spec.max_workers) + '\n';
  out += "deadline-ms " + fmt_u64(spec.deadline_ms) + '\n';
  out += "batch-cells " + fmt_u64(spec.batch_cells) + '\n';
  out += "share-frontiers ";
  out += spec.share_frontiers ? "1" : "0";
  out += '\n';
  for (const std::string& ref : spec.workloads) {
    out += "workload " + escape_field(ref) + '\n';
  }
  out += "codec ";
  out += enum_name(kCodecs, spec.config.codec);
  out += '\n';
  out += "fit ";
  out += enum_name(kFits, spec.config.fit);
  out += '\n';
  out += "reference-scans ";
  out += spec.config.reference_scans ? "1" : "0";
  out += '\n';
  out += "reference-frontiers ";
  out += spec.config.reference_frontiers ? "1" : "0";
  out += '\n';
  {
    std::string line = "policy";
    policy_kvs(line, spec.config.policy);
    out += line + '\n';
  }
  {
    std::string line = "costs";
    costs_kvs(line, spec.config.costs);
    out += line + '\n';
  }
  for (const sweep::SweepTask& task : spec.tasks) {
    task_line(out, task);
  }
  out += "end\n";
  return out;
}

JobSpec parse_job(std::string_view text, std::size_t first_line) {
  LineScanner lines(text, first_line);
  const auto header = lines.next();
  if (!header) fail("empty record", first_line, "");
  check_header(*header, kJobHeader, "job");

  JobSpec spec;
  SeenKeys seen;
  bool saw_kind = false;
  bool saw_end = false;
  bool saw_grid = false;
  std::size_t grid_line = 0;
  // Task lines are parsed after the whole record is read: keys may
  // appear in any order, and every task inherits the record-level
  // policy/costs/fit/reference flags as its base.
  struct RawTask {
    std::string_view rest;
    std::size_t number = 0;
    std::string_view snippet;
  };
  std::vector<RawTask> raw_tasks;
  while (const auto line = lines.next()) {
    if (line->text == "end") {
      saw_end = true;
      break;
    }
    const auto [key, rest] = key_rest(line->text);
    if (key != "workload" && key != "task") {
      seen.mark(key, line->number, line->text);
    }
    if (rest.empty()) {
      fail("'" + std::string(key) + "' needs a value", line->number,
           line->text);
    }
    if (key == "kind") {
      spec.kind = parse_enum(kJobKinds, rest, "job kind", line->number,
                             line->text);
      saw_kind = true;
    } else if (key == "client") {
      spec.client = unescape_at(rest, line->number, line->text);
    } else if (key == "priority") {
      spec.priority =
          parse_enum(kPriorities, rest, "priority", line->number, line->text);
    } else if (key == "max-workers") {
      spec.max_workers =
          parse_unsigned(rest, "max-workers", line->number, line->text);
    } else if (key == "deadline-ms") {
      spec.deadline_ms =
          parse_u64(rest, "deadline-ms", line->number, line->text);
    } else if (key == "batch-cells") {
      // Optional since v4; omitted means 0 (the per-engine path), which
      // keeps v3-era records meaningful under the v4 header.
      spec.batch_cells =
          parse_u32(rest, "batch-cells", line->number, line->text);
    } else if (key == "share-frontiers") {
      spec.share_frontiers =
          parse_bool01(rest, "share-frontiers", line->number, line->text);
    } else if (key == "workload") {
      spec.workloads.push_back(unescape_at(rest, line->number, line->text));
    } else if (key == "codec") {
      spec.config.codec =
          parse_enum(kCodecs, rest, "codec", line->number, line->text);
    } else if (key == "fit") {
      spec.config.fit =
          parse_enum(kFits, rest, "fit", line->number, line->text);
    } else if (key == "reference-scans") {
      spec.config.reference_scans =
          parse_bool01(rest, "reference-scans", line->number, line->text);
    } else if (key == "reference-frontiers") {
      spec.config.reference_frontiers =
          parse_bool01(rest, "reference-frontiers", line->number, line->text);
    } else if (key == "policy") {
      KvParser p(line->number, line->text);
      add_policy_keys(p, spec.config.policy, line->number, line->text);
      p.run(rest);
    } else if (key == "costs") {
      KvParser p(line->number, line->text);
      add_costs_keys(p, spec.config.costs, line->number, line->text);
      p.run(rest);
    } else if (key == "task") {
      raw_tasks.push_back(RawTask{rest, line->number, line->text});
    } else if (key == "grid") {
      if (rest != "strategy-k") {
        fail("unknown grid '" + std::string(rest) +
                 "' (expected strategy-k)",
             line->number, line->text);
      }
      saw_grid = true;
      grid_line = line->number;
    } else {
      fail("unknown key '" + std::string(key) + "'", line->number,
           line->text);
    }
  }
  if (!saw_end) {
    fail("unterminated record (missing 'end')", lines.eof_line(), "");
  }
  if (!saw_kind) {
    fail("record is missing 'kind'", header->number, header->text);
  }
  // Both explicit tasks and the grid sugar build on the same base: the
  // record-level engine config. (This is also why tasks parse after
  // the loop -- a `policy` line below a `task` line still applies.)
  const sim::EngineConfig base = core::engine_config(spec.config);
  for (const RawTask& raw : raw_tasks) {
    spec.tasks.push_back(
        parse_task_kvs(raw.rest, raw.number, raw.snippet, base));
  }
  if (saw_grid) {
    if (!spec.tasks.empty()) {
      fail("'grid' and explicit 'task' lines are exclusive", grid_line,
           "grid strategy-k");
    }
    // Expand over the record's own base config; serialization emits
    // the explicit tasks, so the canonical form never contains 'grid'.
    spec.tasks = strategy_k_grid(base);
  }
  // A grid job with no grid -- or a campaign with no workloads -- would
  // "succeed" with zero outcomes: the silent-ignore trap this format
  // rejects everywhere else. (The typed in-process API keeps its
  // empty-job semantics; only records are held to this. The old batch
  // format's bare `campaign` meant "whole suite"; a record spells its
  // workloads out.)
  if (spec.kind != JobKind::kRun && spec.tasks.empty()) {
    fail(std::string(job_kind_name(spec.kind)) +
             " record needs 'task' lines or 'grid strategy-k'",
         header->number, header->text);
  }
  if (spec.kind == JobKind::kCampaign && spec.workloads.empty()) {
    fail("campaign record needs at least one 'workload' line",
         header->number, header->text);
  }
  try {
    validate(spec);
  } catch (const WireError&) {
    throw;
  } catch (const CheckError& e) {
    fail(e.what(), header->number, header->text);
  }
  return spec;
}

// ------------------------------------------------------------ results

std::string serialize_result(const ResultRecord& record) {
  std::string out = kResultHeader;
  out += '\n';
  out += "job " + fmt_u64(record.job) + '\n';
  out += "client " + escape_field(record.client) + '\n';
  if (!record.ok()) {
    // Non-ok records never carry a payload -- they are byte-identical
    // however far the job got before failing/being cancelled.
    out += "status ";
    out += enum_name(kStatuses, record.status);
    out += '\n';
    if (!record.error.empty()) {
      out += "error " + escape_field(record.error) + '\n';
    }
    out += "end\n";
    return out;
  }
  out += "status ok\n";
  out += "kind ";
  out += enum_name(kJobKinds, record.result.kind);
  out += '\n';
  switch (record.result.kind) {
    case JobKind::kRun: {
      std::string line = "run";
      result_kvs(line, record.result.run);
      out += line + '\n';
      break;
    }
    case JobKind::kSweep:
      for (const auto& outcome : record.result.sweep) {
        outcome_line(out, outcome);
      }
      break;
    case JobKind::kCampaign:
      for (const auto& group : record.result.campaign) {
        out += "group " + escape_field(group.workload) + '\n';
        for (const auto& outcome : group.outcomes) {
          outcome_line(out, outcome);
        }
      }
      break;
  }
  out += "end\n";
  return out;
}

ResultRecord parse_result(std::string_view text, std::size_t first_line) {
  LineScanner lines(text, first_line);
  const auto header = lines.next();
  if (!header) fail("empty record", first_line, "");
  check_header(*header, kResultHeader, "result");

  ResultRecord record;
  SeenKeys seen;
  bool saw_status = false;
  bool status_ok = false;
  bool saw_kind = false;
  bool saw_run = false;
  bool saw_end = false;
  while (const auto line = lines.next()) {
    if (line->text == "end") {
      saw_end = true;
      break;
    }
    const auto [key, rest] = key_rest(line->text);
    if (key != "outcome" && key != "group") {
      seen.mark(key, line->number, line->text);
    }
    if (rest.empty()) {
      fail("'" + std::string(key) + "' needs a value", line->number,
           line->text);
    }
    if (key == "job") {
      record.job = parse_u64(rest, "job", line->number, line->text);
    } else if (key == "client") {
      record.client = unescape_at(rest, line->number, line->text);
    } else if (key == "status") {
      record.status =
          parse_enum(kStatuses, rest, "status", line->number, line->text);
      saw_status = true;
      status_ok = record.status == JobStatus::kOk;
    } else if (key == "error") {
      record.error = unescape_at(rest, line->number, line->text);
      if (record.error.empty()) {
        fail("'error' needs a non-empty message", line->number, line->text);
      }
    } else if (key == "kind") {
      record.result.kind = parse_enum(kJobKinds, rest, "result kind",
                                      line->number, line->text);
      saw_kind = true;
    } else if (key == "run") {
      record.result.run = parse_result_kvs(rest, line->number, line->text);
      saw_run = true;
    } else if (key == "outcome") {
      const auto outcome =
          parse_outcome_kvs(rest, line->number, line->text);
      if (!record.result.campaign.empty()) {
        record.result.campaign.back().outcomes.push_back(outcome);
      } else {
        record.result.sweep.push_back(outcome);
      }
    } else if (key == "group") {
      record.result.campaign.push_back(
          sweep::CampaignResult{unescape_at(rest, line->number, line->text), {}});
    } else {
      fail("unknown key '" + std::string(key) + "'", line->number,
           line->text);
    }
  }
  if (!saw_end) {
    fail("unterminated record (missing 'end')", lines.eof_line(), "");
  }
  if (!saw_status) {
    fail("record is missing 'status'", header->number, header->text);
  }
  if (!status_ok) {
    // kError always explains itself; the lifecycle statuses are
    // self-describing, so their message is optional.
    if (record.status == JobStatus::kError && record.error.empty()) {
      fail("status error record is missing 'error'", header->number,
           header->text);
    }
    if (saw_kind || saw_run || !record.result.sweep.empty() ||
        !record.result.campaign.empty()) {
      fail(std::string("status ") + status_name(record.status) +
               " record cannot carry a payload",
           header->number, header->text);
    }
    return record;
  }
  if (!record.error.empty()) {
    fail("status ok record cannot carry 'error'", header->number,
         header->text);
  }
  if (!saw_kind) {
    fail("status ok record is missing 'kind'", header->number, header->text);
  }
  switch (record.result.kind) {
    case JobKind::kRun:
      if (!saw_run || !record.result.sweep.empty() ||
          !record.result.campaign.empty()) {
        fail("run result needs exactly one 'run' line and no outcomes",
             header->number, header->text);
      }
      break;
    case JobKind::kSweep:
      if (saw_run || !record.result.campaign.empty()) {
        fail("sweep result carries only 'outcome' lines", header->number,
             header->text);
      }
      break;
    case JobKind::kCampaign:
      if (saw_run || !record.result.sweep.empty()) {
        fail("campaign outcomes must follow a 'group' line", header->number,
             header->text);
      }
      break;
  }
  return record;
}

// ------------------------------------------------------------ streams

std::optional<RawRecord> RecordReader::next() {
  std::string line;
  std::string_view content;
  // Skip blank / comment separators between records.
  for (;;) {
    if (!std::getline(in_, line)) return std::nullopt;
    ++line_;
    content = trim(line);
    if (!content.empty() && content[0] != '#') break;
  }

  RawRecord record;
  record.first_line = line_;
  if (starts_with(content, "apcc.result")) {
    record.is_result = true;
  } else if (!starts_with(content, "apcc.job")) {
    fail("expected an 'apcc.job' or 'apcc.result' record header", line_,
         content);
  }
  record.text = line;
  record.text += '\n';
  // Copied, not viewed: `line` is reused (and may reallocate) while the
  // record body is read, and the header is this error's snippet.
  const std::string header(content);
  for (;;) {
    if (!std::getline(in_, line)) {
      fail("unterminated record (missing 'end')", record.first_line, header);
    }
    ++line_;
    record.text += line;
    record.text += '\n';
    if (trim(line) == "end") break;
  }
  return record;
}

}  // namespace apcc::serving::wire
