// serving cache types: budgets, per-kind statistics, and the pure
// cost-aware eviction policy.
//
// PR 8 lifts these out of serving::Service so the eviction policy is a
// testable unit instead of private Service internals. The paper's whole
// premise is operating under a hard memory budget -- its engine manages
// decompressed blocks under a byte ceiling with budget-LRU machinery
// (bench_e5/bench_e9) -- and the Service's artifact cache inherits the
// same discipline at the serving layer: compressed BlockImages and
// materialized FrontierCaches are resident artifacts competing for a
// configurable byte budget, evicted cost-aware (not merely
// recency-aware) and transparently rebuilt through the existing
// claim-build/wait handshake when a later job needs them again.
//
// Division of labour:
//  * CacheBudget / ArtifactStats / CacheStats are plain values --
//    configuration in (ServiceOptions::cache_budget), observability out
//    (Service::cache_stats()).
//  * plan_evictions() is a pure function: resident set + budget ->
//    victim list. The Service merely snapshots its slots into
//    CacheEntry views under its mutex and applies the returned plan;
//    everything policy-shaped lives here, under unit test
//    (tests/serving/cache_test.cpp).
//
// The determinism contract (ROADMAP invariant): eviction only changes
// *when* an artifact is rebuilt, never any job outcome. Rebuilt
// artifacts are byte-identical to their first build (codec training
// over the same bytes, BFS over the same CFG), so the differential
// suites pass byte-identical with any budget -- including one small
// enough to force constant thrash (tests/serving/eviction_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace apcc::serving {

/// Byte ceilings for the Service's resident artifact cache. Every
/// ceiling is "0 = unbounded" -- the default preserves the historical
/// grow-without-bound behaviour (and its exact cache counters). The
/// per-kind ceilings bound images and frontier geometry separately;
/// total_bytes is a shared ceiling across both kinds, enforced after
/// the per-kind ones. Budgets are pressure, not hard guarantees: an
/// artifact borrowed by an in-flight cell is pinned and never evicted,
/// so the resident set may transiently exceed the budget until those
/// cells retire and the next publish re-evaluates.
struct CacheBudget {
  std::uint64_t image_bytes = 0;     // compressed BlockImage ceiling
  std::uint64_t frontier_bytes = 0;  // materialized geometry ceiling
  std::uint64_t total_bytes = 0;     // shared ceiling across both kinds

  [[nodiscard]] bool unbounded() const {
    return image_bytes == 0 && frontier_bytes == 0 && total_bytes == 0;
  }
};

/// Cumulative counters for one artifact kind (images or frontier
/// geometry). Two vocabularies, one ledger: built/borrows count
/// *successful* resolutions (the PR 4 names, kept stable), hits/
/// misses/rebuilds count *attempts* -- a miss is any claim of a build
/// (including ones that then fail and roll back), a hit is a
/// ready-artifact borrow, and a rebuild is a miss on a slot whose
/// previous build failed. Eviction adds the third vocabulary:
/// evictions/evicted_bytes count artifacts dropped under budget
/// pressure; an evicted key's next claim is an ordinary miss that
/// rebuilds the artifact bit-identically. `bytes` is the *resident*
/// footprint (grows at publish, shrinks at evict); `entries` is the
/// resident artifact count, snapshotted at cache_stats() query time.
struct ArtifactStats {
  std::size_t built = 0;          // artifacts materialized
  std::size_t borrows = 0;        // cells served by a cached artifact
  std::size_t hits = 0;           // ready-artifact borrows
  std::size_t misses = 0;         // build attempts claimed
  std::size_t rebuilds = 0;       // claims after a failed build
  std::size_t evictions = 0;      // artifacts evicted under budget
  std::uint64_t evicted_bytes = 0;  // cumulative bytes evicted
  std::uint64_t bytes = 0;        // approx resident bytes
  std::size_t entries = 0;        // resident artifacts (query time)
};

/// Artifact-cache observability, one ArtifactStats per kind. (The PR
/// 4-7 flat spellings -- images_built(), frontier_bytes(), ... -- were
/// a one-release deprecation shim, removed in PR 9: spell them
/// stats.images.built / stats.frontiers.bytes.)
struct CacheStats {
  ArtifactStats images;
  ArtifactStats frontiers;
};

/// One resident artifact, as the eviction policy sees it: how big it
/// is, what rebuilding it would cost, when it was last useful, and
/// whether an in-flight cell holds a borrow (pinned artifacts are never
/// victims -- a cell's artifact stays alive until the cell retires).
struct CacheEntry {
  std::uint64_t bytes = 0;         // resident footprint
  std::uint64_t rebuild_cost = 0;  // deterministic rebuild estimate
  std::uint64_t last_use = 0;      // ledger clock at last borrow/publish
  bool pinned = false;             // borrowed by an in-flight cell
};

/// Cost-aware LRU: pick victims until the resident set fits
/// `budget_bytes` (an exact ceiling here -- the caller interprets its
/// own "0 = unbounded" convention and simply doesn't call; budget 0 to
/// this function means "evict everything unpinned", the fault-injection
/// forced flush). `clock` is the ledger's current tick.
///
/// The score is a cost-weighted staleness: an entry's eviction
/// priority is (clock - last_use) * bytes / max(rebuild_cost, 1) --
/// "stale resident bytes per unit of rebuild cost". A big, stale,
/// cheap-to-rebuild artifact (one-BFS-per-block geometry) goes long
/// before a small, recent, expensive one (a trained codec image).
/// Pure LRU is the rebuild_cost == bytes special case. Ties break on
/// older last_use, then lower index, so the plan is a deterministic
/// function of its inputs. Pinned entries are never selected; if
/// evicting every unpinned entry still leaves the set over budget, the
/// plan simply returns all of them (budgets are pressure, not
/// guarantees).
///
/// Returns indices into `entries`, in eviction order.
[[nodiscard]] std::vector<std::size_t> plan_evictions(
    std::span<const CacheEntry> entries, std::uint64_t budget_bytes,
    std::uint64_t clock);

/// Deterministic rebuild-cost estimates, shared by the Service's ledger
/// and the policy tests. Units are abstract "work" (comparable across
/// kinds, not wall-clock): rebuilding an image means retraining the
/// codec over every block byte, so its cost scales with the original
/// image size; rebuilding frontier geometry means one k-bounded BFS per
/// block, so its cost scales with block_count * (k + 1). The estimates
/// only steer eviction *order*; they can be wrong by a constant factor
/// without affecting any job outcome.
[[nodiscard]] std::uint64_t estimate_image_cost(
    std::uint64_t original_bytes);
[[nodiscard]] std::uint64_t estimate_frontier_cost(std::size_t block_count,
                                                   unsigned k);

/// The one shared rendering of a CacheStats snapshot (bench_service,
/// the CLI batch summary, examples) -- two lines, one per artifact
/// kind, newline-terminated, eviction counters included so a log line
/// proves the budget machinery ran.
[[nodiscard]] std::string format_cache_stats(const CacheStats& stats);

}  // namespace apcc::serving
