#include "serving/cache.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/strings.hpp"

namespace apcc::serving {

std::vector<std::size_t> plan_evictions(std::span<const CacheEntry> entries,
                                        std::uint64_t budget_bytes,
                                        std::uint64_t clock) {
  std::uint64_t resident = 0;
  for (const CacheEntry& entry : entries) resident += entry.bytes;
  if (resident <= budget_bytes) return {};

  // Score every unpinned entry: stale resident bytes per unit of
  // rebuild cost. Scored in long double so bytes * age cannot wrap;
  // the comparator's (score, last_use, index) key makes the order a
  // deterministic function of the inputs alone.
  struct Candidate {
    std::size_t index;
    long double score;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CacheEntry& entry = entries[i];
    if (entry.pinned || entry.bytes == 0) continue;
    const std::uint64_t age =
        clock >= entry.last_use ? clock - entry.last_use : 0;
    const long double cost =
        static_cast<long double>(std::max<std::uint64_t>(entry.rebuild_cost, 1));
    candidates.push_back(
        {i, static_cast<long double>(age) * entry.bytes / cost});
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (entries[a.index].last_use != entries[b.index].last_use) {
                return entries[a.index].last_use < entries[b.index].last_use;
              }
              return a.index < b.index;
            });

  std::vector<std::size_t> victims;
  for (const Candidate& candidate : candidates) {
    if (resident <= budget_bytes) break;
    victims.push_back(candidate.index);
    resident -= entries[candidate.index].bytes;
  }
  return victims;
}

std::uint64_t estimate_image_cost(std::uint64_t original_bytes) {
  // Codec training + per-block compression touch every original byte
  // (some codecs several times); one abstract work unit per byte keeps
  // the estimate deterministic and comparable across workloads.
  return std::max<std::uint64_t>(original_bytes, 1);
}

std::uint64_t estimate_frontier_cost(std::size_t block_count, unsigned k) {
  // One k-bounded BFS per block: each BFS visits O(frontier) blocks,
  // which grows with k. (k + 1) keeps k = 0 geometry from costing
  // nothing.
  return std::max<std::uint64_t>(
      static_cast<std::uint64_t>(block_count) * (k + 1), 1);
}

namespace {

void format_kind(std::ostringstream& out, const char* label,
                 const ArtifactStats& s) {
  out << label << s.built << " built, " << s.borrows << " borrow(s), "
      << s.hits << " hit(s) / " << s.misses << " miss(es) / " << s.rebuilds
      << " rebuild(s), " << s.evictions << " eviction(s) ["
      << human_bytes(s.evicted_bytes) << " evicted], " << s.entries
      << " resident entr(ies) [" << human_bytes(s.bytes) << "]\n";
}

}  // namespace

std::string format_cache_stats(const CacheStats& stats) {
  std::ostringstream out;
  format_kind(out, "cache images:    ", stats.images);
  format_kind(out, "cache frontiers: ", stats.frontiers);
  return out.str();
}

}  // namespace apcc::serving
