#include "sim/trace_gen.hpp"

#include "support/assert.hpp"

namespace apcc::sim {

cfg::BlockTrace generate_trace(const cfg::Cfg& cfg,
                               const TraceGenOptions& options) {
  APCC_CHECK(cfg.block_count() > 0, "cannot trace an empty CFG");
  APCC_CHECK(cfg.entry() != cfg::kInvalidBlock, "CFG has no entry");
  Rng rng(options.seed);
  cfg::BlockTrace trace;
  cfg::BlockId current = cfg.entry();
  trace.push_back(current);
  while (trace.size() < options.max_blocks) {
    const auto& block = cfg.block(current);
    if (block.is_exit || block.out_edges.empty()) break;
    std::vector<double> weights;
    weights.reserve(block.out_edges.size());
    for (const cfg::EdgeId e : block.out_edges) {
      weights.push_back(cfg.edge(e).probability);
    }
    const std::size_t pick = rng.next_weighted(weights);
    current = cfg.edge(block.out_edges[pick]).to;
    trace.push_back(current);
  }
  return trace;
}

}  // namespace apcc::sim
