#include "sim/result.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace apcc::sim {

double RunResult::slowdown() const {
  if (baseline_cycles == 0) return 1.0;
  return static_cast<double>(total_cycles) /
         static_cast<double>(baseline_cycles);
}

double RunResult::peak_saving() const {
  if (original_image_bytes == 0) return 0.0;
  return 1.0 - static_cast<double>(peak_occupancy_bytes) /
                   static_cast<double>(original_image_bytes);
}

double RunResult::avg_saving() const {
  if (original_image_bytes == 0) return 0.0;
  return 1.0 - avg_occupancy_bytes /
                   static_cast<double>(original_image_bytes);
}

double RunResult::exception_rate() const {
  if (block_entries == 0) return 0.0;
  return static_cast<double>(exceptions) /
         static_cast<double>(block_entries);
}

std::string RunResult::summary() const {
  std::ostringstream os;
  os << "cycles: total=" << total_cycles << " baseline=" << baseline_cycles
     << " slowdown=" << slowdown() << "x\n";
  os << "  busy=" << busy_cycles << " stall=" << stall_cycles
     << " exception=" << exception_cycles
     << " critical-decompress=" << critical_decompress_cycles
     << " patch=" << patch_cycles << "\n";
  os << "events: entries=" << block_entries << " exceptions=" << exceptions
     << " demand-decomp=" << demand_decompressions
     << " pre-decomp=" << predecompressions
     << " (hits=" << predecompress_hits
     << ", partial=" << predecompress_partial
     << ", wasted=" << wasted_predecompressions << ")\n";
  os << "  deletions=" << deletions << " evictions=" << evictions
     << " patches=" << patches << " unpatches=" << unpatches
     << " dropped=" << dropped_requests << "\n";
  os << "helpers: decompressor-busy=" << decomp_helper_busy_cycles
     << " compressor-busy=" << comp_helper_busy_cycles << "\n";
  os << "memory: original=" << apcc::human_bytes(original_image_bytes)
     << " compressed-area=" << apcc::human_bytes(compressed_area_bytes)
     << " peak=" << apcc::human_bytes(peak_occupancy_bytes)
     << " avg=" << apcc::human_bytes(
            static_cast<std::uint64_t>(avg_occupancy_bytes))
     << "\n";
  os << "  codec-ratio=" << codec_ratio
     << " peak-saving=" << apcc::percent(peak_saving())
     << " avg-saving=" << apcc::percent(avg_saving())
     << " fragmentation=" << apcc::percent(allocator.external_fragmentation())
     << "\n";
  return os.str();
}

}  // namespace apcc::sim
