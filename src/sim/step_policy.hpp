// The policy/data-plane split of the APCC execution engine.
//
// StepPolicy is the *scalar* per-step decision logic of the paper's
// three-thread runtime (Figure 4): exception handling, demand and
// pre-decompression, k-edge deletion, patching, budget eviction. It is
// stateless apart from the immutable (CFG, image) pair and operates on
// one EngineCell at a time through the runtime::StateTable cell-view
// interface -- the same code drives the single-engine path (sim::Engine,
// one cell over a private single-cell StateBatch) and the batched path
// (sim::BatchEngine, N cells in lockstep over one shared StateBatch).
//
// EngineCell is everything one simulated configuration owns: its clock,
// helper-thread availability, memory layout, state-table view, k-edge
// manager, planner, predictor, and the accumulating RunResult. Cells
// never see each other; amortization happens strictly on immutable
// inputs (trace decode, slot layout, block sizes, predictors, frontier
// geometry), which is why batched and sequential runs are byte-identical.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <queue>

#include "cfg/trace.hpp"
#include "memory/layout.hpp"
#include "runtime/block_image.hpp"
#include "runtime/kedge.hpp"
#include "runtime/planner.hpp"
#include "runtime/policy.hpp"
#include "sim/result.hpp"

namespace apcc::sim {

/// Structured events for tests and the figure benches.
enum class EventKind : std::uint8_t {
  kBlockEnter,          // block begins executing
  kBlockExit,           // block finished; edge to `aux` traversed
  kException,           // protection fault on entering `block`
  kDemandDecompress,    // critical-path decompression of `block`
  kPredecompressIssue,  // planner requested `block` (issued from `aux`)
  kPredecompressDone,   // helper finished decompressing `block`
  kDelete,              // k-edge deleted `block`'s decompressed copy
  kEvict,               // LRU evicted `block` to make room for `aux`
  kPatch,               // branch in `aux` patched to `block`'s copy
  kUnpatch,             // branch in `aux` restored to compressed `block`
  kStall,               // execution waited on in-flight `block`
  kRequestDropped,      // no room and no victim for `block`
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct Event {
  EventKind kind{};
  std::uint64_t time = 0;          // execution-thread clock (cycles)
  cfg::BlockId block = cfg::kInvalidBlock;
  cfg::BlockId aux = cfg::kInvalidBlock;
  std::uint64_t value = 0;         // kind-specific (cost, duration, ...)
};

using EventSink = std::function<void(const Event&)>;

/// Engine configuration: policy + cost model + allocator behaviour.
struct EngineConfig {
  runtime::Policy policy{};
  runtime::CostModel costs{};
  memory::FitPolicy fit = memory::FitPolicy::kFirstFit;
  /// Debug: route settle / victim-selection / earliest-ready / k-edge
  /// queries through the pre-index O(B) full-table scans instead of the
  /// indexed structures. Both paths produce bit-identical RunResults and
  /// event streams; the differential test pins that.
  bool reference_scans = false;
  /// Debug: have the planner re-run the per-exit frontier BFS instead of
  /// reading the memoized FrontierCache. Same bit-identical guarantee,
  /// pinned by the same differential test.
  bool reference_frontiers = false;
  /// Optional shared read-only planner geometry: a *materialized*
  /// FrontierCache built on this engine's CFG with
  /// k == policy.predecompress_k. Campaign runs (sweep::run_campaign)
  /// set this so every engine over the same (workload, k) borrows one
  /// cache instead of rebuilding it; null means the planner/predictor
  /// own their own. Borrowed runs are bit-identical to owned runs.
  const runtime::FrontierCache* shared_frontiers = nullptr;
};

/// One simulated configuration's complete mutable run state. Plain
/// aggregate: StepPolicy::init_cell wires it up, step()/finish() advance
/// it. The state-table view and the exec-cycles table are borrowed --
/// their owners (Engine's or BatchEngine's StateBatch / cost cache)
/// outlive the cell.
struct EngineCell {
  struct ExtraBlockInfo {
    bool from_predecomp = false;
    bool used_since_decomp = false;
  };

  EngineConfig config;
  EventSink sink;
  /// Per-block execution cost, hoisted out of the step loop; shared
  /// across cells with the same cycles_per_instruction.
  const std::vector<std::uint64_t>* exec_cycles = nullptr;

  std::uint64_t now = 0;  // execution-thread clock
  // Min-heap of (completion time, block) for in-flight decompressions.
  // Entries are invalidated lazily: an entry is live only while its
  // block is still kDecompressing with the same ready_time, so settling
  // and earliest-ready queries pop stale entries as they surface.
  using ReadyEntry = std::pair<std::uint64_t, cfg::BlockId>;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                      std::greater<ReadyEntry>>
      ready_queue;
  std::vector<cfg::BlockId> settle_scratch;
  std::vector<std::uint64_t> decomp_free;  // per-unit availability
  std::uint64_t comp_free_at = 0;          // compression helper availability
  std::unique_ptr<memory::MemoryLayout> layout;
  runtime::StateTable* states = nullptr;   // borrowed cell view
  std::unique_ptr<runtime::KEdgeCompressionManager> kedge;
  std::unique_ptr<runtime::Predictor> owned_predictor;  // unless shared
  const runtime::Predictor* predictor = nullptr;
  std::unique_ptr<runtime::DecompressionPlanner> planner;
  std::vector<ExtraBlockInfo> extra;
  RunResult result;

  // Batched stepping: a cell that threw stops stepping; its siblings
  // continue and the error is reported per cell.
  bool failed = false;
  std::exception_ptr error;
};

/// The scalar decision logic, shared verbatim by Engine and BatchEngine.
class StepPolicy {
 public:
  StepPolicy(const cfg::Cfg& cfg, const runtime::BlockImage& image);

  /// Reset `cell` for a fresh run over `trace`. `states` is the cell's
  /// view (its lane of a StateBatch); `slots` / `block_sizes` are the
  /// immutable per-image tables the caller computed once per batch. If
  /// `cell.predictor` is pre-set (batch-shared) it is kept; otherwise
  /// the cell builds and owns one.
  void init_cell(EngineCell& cell, runtime::StateTable& states,
                 const cfg::BlockTrace& trace,
                 std::vector<memory::CompressedSlot> slots,
                 const std::vector<std::uint64_t>& block_sizes) const;

  /// Advance `cell` over trace entry `i` (settle, ensure executable,
  /// execute, plan pre-decompressions, apply k-edge deletions).
  void step(EngineCell& cell, const cfg::BlockTrace& trace,
            std::size_t i) const;

  /// Drain the helper threads and finalise the cell's RunResult.
  void finish(EngineCell& cell) const;

 private:
  void emit(EngineCell& c, EventKind kind, std::uint64_t time,
            cfg::BlockId block, cfg::BlockId aux = cfg::kInvalidBlock,
            std::uint64_t value = 0) const;

  /// Place a decompressed copy of `block`, evicting victims (per the
  /// policy's VictimPolicy) if the budget requires it. Returns nullopt
  /// when impossible.
  [[nodiscard]] std::optional<std::uint64_t> place_with_eviction(
      EngineCell& c, cfg::BlockId block) const;

  /// Choose the budget-mode eviction victim; kInvalidBlock if none.
  [[nodiscard]] cfg::BlockId select_victim(const EngineCell& c,
                                           cfg::BlockId protect) const;

  /// Index of the decompression unit that frees up first.
  [[nodiscard]] std::size_t earliest_decomp_unit(const EngineCell& c) const;

  /// Completion time of the earliest in-flight decompression, if any.
  /// Indexed path: lazily prunes stale ready-queue entries, O(log B).
  [[nodiscard]] std::optional<std::uint64_t> earliest_inflight_ready(
      EngineCell& c) const;

  /// Apply a deletion ("compress back"): free memory, unpatch branches,
  /// reset state; charges the compression thread (or the execution
  /// thread when inline). `evicted_for` marks budget evictions.
  void delete_block(EngineCell& c, cfg::BlockId block,
                    cfg::BlockId evicted_for = cfg::kInvalidBlock) const;

  /// Issue one pre-decompression request to the helper.
  void issue_predecompression(EngineCell& c, cfg::BlockId block,
                              cfg::BlockId from) const;

  /// Make `block` executable at the execution thread's clock; `pred` is
  /// the block the edge came from (kInvalidBlock for the trace start).
  void ensure_executable(EngineCell& c, cfg::BlockId block,
                         cfg::BlockId pred) const;

  /// Flip in-flight blocks whose helper completion time has passed into
  /// the decompressed state, so the k-edge manager sees (and can later
  /// delete) them. Called as the execution clock advances.
  void settle_ready_blocks(EngineCell& c) const;

  /// Finalise a decompression of `block` at `completion_time`: mark it
  /// resident and patch the branch sites of its currently-decompressed
  /// predecessors (Figure 4's ideal case -- the execution thread "finds
  /// the blocks directly in the executable state"). Patching cost lands
  /// on the decompression helper (or inline when `inline_cost`).
  void complete_decompression(EngineCell& c, cfg::BlockId block,
                              std::uint64_t completion_time,
                              bool inline_cost) const;

  const cfg::Cfg& cfg_;
  const runtime::BlockImage& image_;
};

/// Per-block execution cost table for `costs.cycles_per_instruction`.
[[nodiscard]] std::vector<std::uint64_t> exec_cycles_table(
    const cfg::Cfg& cfg, const runtime::CostModel& costs);

}  // namespace apcc::sim
