#include "sim/step_policy.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace apcc::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kBlockEnter: return "enter";
    case EventKind::kBlockExit: return "exit";
    case EventKind::kException: return "exception";
    case EventKind::kDemandDecompress: return "demand-decompress";
    case EventKind::kPredecompressIssue: return "pre-decompress-issue";
    case EventKind::kPredecompressDone: return "pre-decompress-done";
    case EventKind::kDelete: return "delete";
    case EventKind::kEvict: return "evict";
    case EventKind::kPatch: return "patch";
    case EventKind::kUnpatch: return "unpatch";
    case EventKind::kStall: return "stall";
    case EventKind::kRequestDropped: return "request-dropped";
  }
  return "?";
}

std::vector<std::uint64_t> exec_cycles_table(const cfg::Cfg& cfg,
                                             const runtime::CostModel& costs) {
  std::vector<std::uint64_t> out;
  out.reserve(cfg.block_count());
  for (cfg::BlockId b = 0; b < cfg.block_count(); ++b) {
    out.push_back(static_cast<std::uint64_t>(
        std::llround(costs.cycles_per_instruction *
                     static_cast<double>(cfg.block(b).word_count))));
  }
  return out;
}

StepPolicy::StepPolicy(const cfg::Cfg& cfg, const runtime::BlockImage& image)
    : cfg_(cfg), image_(image) {
  APCC_CHECK(image_.block_count() == cfg_.block_count(),
             "image and CFG disagree on block count");
}

void StepPolicy::emit(EngineCell& c, EventKind kind, std::uint64_t time,
                      cfg::BlockId block, cfg::BlockId aux,
                      std::uint64_t value) const {
  if (c.sink) {
    c.sink(Event{kind, time, block, aux, value});
  }
}

cfg::BlockId StepPolicy::select_victim(const EngineCell& c,
                                       cfg::BlockId protect) const {
  const runtime::StateTable& states = *c.states;
  switch (c.config.policy.victim_policy) {
    case runtime::VictimPolicy::kLru:
      return c.config.reference_scans ? states.lru_victim_reference(protect)
                                      : states.lru_victim(protect);
    case runtime::VictimPolicy::kMru:
      return c.config.reference_scans ? states.mru_victim_reference(protect)
                                      : states.mru_victim(protect);
    case runtime::VictimPolicy::kLargest:
      return c.config.reference_scans
                 ? states.largest_victim_reference(protect)
                 : states.largest_victim(protect);
  }
  return cfg::kInvalidBlock;
}

std::size_t StepPolicy::earliest_decomp_unit(const EngineCell& c) const {
  std::size_t best = 0;
  for (std::size_t u = 1; u < c.decomp_free.size(); ++u) {
    if (c.decomp_free[u] < c.decomp_free[best]) best = u;
  }
  return best;
}

std::optional<std::uint64_t> StepPolicy::earliest_inflight_ready(
    EngineCell& c) const {
  if (c.config.reference_scans) {
    std::uint64_t earliest = UINT64_MAX;
    for (cfg::BlockId b = 0; b < c.states->size(); ++b) {
      const auto s = (*c.states)[b];
      if (s.form() == runtime::BlockForm::kDecompressing) {
        earliest = std::min(earliest, s.ready_time);
      }
    }
    if (earliest == UINT64_MAX) return std::nullopt;
    return earliest;
  }
  while (!c.ready_queue.empty()) {
    const auto [time, block] = c.ready_queue.top();
    const auto s = (*c.states)[block];
    if (s.form() == runtime::BlockForm::kDecompressing &&
        s.ready_time == time) {
      return time;
    }
    c.ready_queue.pop();  // stale: settled early, deleted, or re-issued
  }
  return std::nullopt;
}

std::optional<std::uint64_t> StepPolicy::place_with_eviction(
    EngineCell& c, cfg::BlockId block) const {
  for (;;) {
    if (auto address = c.layout->place_decompressed(block, c.now)) {
      return address;
    }
    const cfg::BlockId victim = select_victim(c, block);
    if (victim == cfg::kInvalidBlock) {
      return std::nullopt;
    }
    delete_block(c, victim, block);
    ++c.result.evictions;
  }
}

void StepPolicy::delete_block(EngineCell& c, cfg::BlockId block,
                              cfg::BlockId evicted_for) const {
  auto s = (*c.states)[block];
  APCC_ASSERT(s.form() == runtime::BlockForm::kDecompressed,
              "delete of non-resident block");
  // Cost: metadata delete + one unpatch per remember-set entry, plus the
  // real codec compression time under the recompress_for_real ablation.
  std::uint64_t cost = c.config.costs.delete_block_cycles;
  const auto patches = static_cast<std::uint64_t>(s.remember_set().size());
  if (c.config.policy.use_remember_sets) {
    cost += patches * c.config.costs.unpatch_branch_cycles;
    for (const cfg::BlockId pred : s.remember_set()) {
      emit(c, EventKind::kUnpatch, c.now, block, pred);
    }
    c.result.unpatches += patches;
  }
  if (c.config.policy.recompress_for_real) {
    cost += image_.codec().costs().compress_cycles(
        image_.original_size(block));
  }
  if (c.config.policy.background_compression) {
    const std::uint64_t start = std::max(c.now, c.comp_free_at);
    c.comp_free_at = start + cost;
    c.result.comp_helper_busy_cycles += cost;
  } else {
    c.now += cost;
  }
  // The memory itself is released immediately: in the paper's design the
  // compressed original never moved, so "compressing back" is dropping
  // the copy (§5) -- the helper cost above models the bookkeeping.
  c.layout->drop_decompressed(s.address, c.now);
  c.states->set_form(block, runtime::BlockForm::kCompressed);
  s.address = 0;
  s.kedge_counter = 0;
  s.clear_patches();
  if (!c.extra[block].used_since_decomp && c.extra[block].from_predecomp) {
    ++c.result.wasted_predecompressions;
  }
  c.extra[block] = EngineCell::ExtraBlockInfo{};
  ++c.result.deletions;
  if (evicted_for != cfg::kInvalidBlock) {
    emit(c, EventKind::kEvict, c.now, block, evicted_for);
  } else {
    emit(c, EventKind::kDelete, c.now, block);
  }
}

void StepPolicy::issue_predecompression(EngineCell& c, cfg::BlockId block,
                                        cfg::BlockId from) const {
  auto s = (*c.states)[block];
  if (s.form() != runtime::BlockForm::kCompressed) return;

  c.now += c.config.costs.dispatch_job_cycles;
  const auto address = place_with_eviction(c, block);
  if (!address) {
    ++c.result.dropped_requests;
    emit(c, EventKind::kRequestDropped, c.now, block, from);
    return;
  }
  const std::uint64_t duration =
      c.config.costs.alloc_block_cycles +
      image_.codec().costs().decompress_cycles(image_.original_size(block));

  emit(c, EventKind::kPredecompressIssue, c.now, block, from, duration);
  if (c.config.policy.background_decompression) {
    std::uint64_t& unit = c.decomp_free[earliest_decomp_unit(c)];
    const std::uint64_t start = std::max(c.now, unit);
    unit = start + duration;
    c.result.decomp_helper_busy_cycles += duration;
    c.states->set_form(block, runtime::BlockForm::kDecompressing);
    s.ready_time = start + duration;
    if (!c.config.reference_scans) {
      // The reference path settles by scanning; feeding the queue there
      // would only grow an unread heap for the whole run.
      c.ready_queue.emplace(s.ready_time, block);
    }
  } else {
    // Single-threaded ablation: the work lands in the critical path.
    c.now += duration;
    s.ready_time = c.now;
    complete_decompression(c, block, c.now, /*inline_cost=*/true);
  }
  s.address = *address;
  c.extra[block].from_predecomp = true;
  c.extra[block].used_since_decomp = false;
  ++c.result.predecompressions;
  if (c.config.policy.paranoid_verify) {
    image_.verify_block(block);
  }
}

void StepPolicy::complete_decompression(EngineCell& c, cfg::BlockId block,
                                        std::uint64_t completion_time,
                                        bool inline_cost) const {
  auto s = (*c.states)[block];
  c.states->set_form(block, runtime::BlockForm::kDecompressed);
  s.kedge_counter = 0;  // its k-edge window starts now
  emit(c, EventKind::kPredecompressDone, completion_time, block);
  if (!c.config.policy.use_remember_sets) return;
  // Patch the branch sites of already-decompressed predecessors so the
  // execution thread can enter without a fault. Compressed predecessors
  // cannot be patched (their branch bytes are immutable); entries from
  // them pay the exception-and-patch path on arrival instead.
  std::uint64_t patch_cost = 0;
  for (const cfg::BlockId pred : cfg_.predecessor_ids(block)) {
    const auto ps = (*c.states)[pred];
    if (ps.form() != runtime::BlockForm::kDecompressed) continue;
    if (s.is_patched_for(pred)) continue;
    s.add_patch(pred);
    ++c.result.patches;
    patch_cost += c.config.costs.patch_branch_cycles;
    emit(c, EventKind::kPatch, completion_time, block, pred);
  }
  if (patch_cost == 0) return;
  if (inline_cost) {
    c.now += patch_cost;
    c.result.patch_cycles += patch_cost;
  } else {
    // The unit that produced the copy applies the patches right after
    // completion; approximate it as the earliest-free unit.
    std::uint64_t& unit = c.decomp_free[earliest_decomp_unit(c)];
    unit = std::max(unit, completion_time) + patch_cost;
    c.result.decomp_helper_busy_cycles += patch_cost;
  }
}

void StepPolicy::settle_ready_blocks(EngineCell& c) const {
  if (c.config.reference_scans) {
    for (cfg::BlockId b = 0; b < c.states->size(); ++b) {
      const auto s = (*c.states)[b];
      if (s.form() == runtime::BlockForm::kDecompressing &&
          s.ready_time <= c.now) {
        complete_decompression(c, b, s.ready_time, /*inline_cost=*/false);
      }
    }
    return;
  }
  if (c.ready_queue.empty() || c.ready_queue.top().first > c.now) return;
  // Pop everything due, drop stale entries, and settle in ascending block
  // id -- the reference scan's order, which fixes the order of the
  // completion events and of the patch costs landing on helper units.
  c.settle_scratch.clear();
  while (!c.ready_queue.empty() && c.ready_queue.top().first <= c.now) {
    const auto [time, block] = c.ready_queue.top();
    c.ready_queue.pop();
    const auto s = (*c.states)[block];
    if (s.form() == runtime::BlockForm::kDecompressing &&
        s.ready_time == time) {
      c.settle_scratch.push_back(block);
    }
  }
  std::sort(c.settle_scratch.begin(), c.settle_scratch.end());
  for (const cfg::BlockId block : c.settle_scratch) {
    const auto s = (*c.states)[block];
    if (s.form() != runtime::BlockForm::kDecompressing) continue;  // dup entry
    complete_decompression(c, block, s.ready_time, /*inline_cost=*/false);
  }
}

void StepPolicy::ensure_executable(EngineCell& c, cfg::BlockId block,
                                   cfg::BlockId pred) const {
  auto s = (*c.states)[block];

  // Settle an in-flight copy first: if the helper has already finished by
  // the execution thread's clock, the block is simply decompressed;
  // otherwise the execution thread stalls until it is ready.
  if (s.form() == runtime::BlockForm::kDecompressing) {
    const std::uint64_t wait =
        s.ready_time > c.now ? s.ready_time - c.now : 0;
    const std::uint64_t demand_cost =
        c.config.costs.exception_cycles + c.config.costs.alloc_block_cycles +
        image_.codec().costs().decompress_cycles(
            image_.original_size(block));
    if (wait > demand_cost) {
      // The helper is backlogged: the fetch faults and the handler
      // decompresses in the critical path, beating the queued job (the
      // helper's later completion finds the block already resident).
      // The copy's memory was already allocated at issue time.
      ++c.result.exceptions;
      c.result.exception_cycles += c.config.costs.exception_cycles;
      ++c.result.demand_decompressions;
      c.result.critical_decompress_cycles +=
          demand_cost - c.config.costs.exception_cycles;
      c.now += demand_cost;
      emit(c, EventKind::kException, c.now, block, pred);
      emit(c, EventKind::kDemandDecompress, c.now, block, pred, demand_cost);
      complete_decompression(c, block, c.now, /*inline_cost=*/true);
    } else {
      if (wait > 0) {
        c.result.stall_cycles += wait;
        emit(c, EventKind::kStall, c.now, block, cfg::kInvalidBlock, wait);
        c.now = s.ready_time;
        ++c.result.predecompress_partial;
      } else {
        ++c.result.predecompress_hits;
      }
      complete_decompression(c, block, c.now, /*inline_cost=*/false);
    }
  } else if (s.form() == runtime::BlockForm::kDecompressed &&
             c.extra[block].from_predecomp &&
             !c.extra[block].used_since_decomp) {
    ++c.result.predecompress_hits;
  }

  if (s.form() == runtime::BlockForm::kDecompressed) {
    if (c.config.policy.use_remember_sets) {
      // Re-entry through an already patched branch is exception-free;
      // a new branch site pays one exception + one patch.
      if (pred != cfg::kInvalidBlock && !s.is_patched_for(pred)) {
        ++c.result.exceptions;
        c.result.exception_cycles += c.config.costs.exception_cycles;
        c.result.patch_cycles += c.config.costs.patch_branch_cycles;
        c.now += c.config.costs.exception_cycles +
                 c.config.costs.patch_branch_cycles;
        s.add_patch(pred);
        ++c.result.patches;
        emit(c, EventKind::kException, c.now, block, pred);
        emit(c, EventKind::kPatch, c.now, block, pred);
      }
    } else {
      // Ablation: every entry to a relocated block faults (the handler
      // redirects the PC but never patches).
      ++c.result.exceptions;
      c.result.exception_cycles += c.config.costs.exception_cycles;
      c.now += c.config.costs.exception_cycles;
      emit(c, EventKind::kException, c.now, block, pred);
    }
    return;
  }

  // Compressed: the fetch faults and the handler decompresses in the
  // critical path (on-demand / lazy decompression, §4).
  APCC_ASSERT(s.form() == runtime::BlockForm::kCompressed,
              "unexpected block form");
  ++c.result.exceptions;
  c.result.exception_cycles += c.config.costs.exception_cycles;
  c.now += c.config.costs.exception_cycles;
  emit(c, EventKind::kException, c.now, block, pred);

  auto address = place_with_eviction(c, block);
  while (!address) {
    // Every decompressed victim is gone; the remaining occupants are
    // in-flight helper jobs, which become evictable once complete. Wait
    // for the earliest one, settle it, and retry.
    const auto earliest_ready = earliest_inflight_ready(c);
    APCC_CHECK(earliest_ready.has_value(),
               "decompressed area exhausted with no evictable victim "
               "(budget too small for the working set)");
    const std::uint64_t earliest = *earliest_ready;
    if (earliest > c.now) {
      c.result.stall_cycles += earliest - c.now;
      emit(c, EventKind::kStall, c.now, block, cfg::kInvalidBlock,
           earliest - c.now);
      c.now = earliest;
    }
    settle_ready_blocks(c);
    address = place_with_eviction(c, block);
  }
  const std::uint64_t cost =
      c.config.costs.alloc_block_cycles +
      image_.codec().costs().decompress_cycles(image_.original_size(block));
  c.now += cost;
  c.result.critical_decompress_cycles += cost;
  ++c.result.demand_decompressions;
  c.states->set_form(block, runtime::BlockForm::kDecompressed);
  s.address = *address;
  c.extra[block].from_predecomp = false;
  c.extra[block].used_since_decomp = false;
  emit(c, EventKind::kDemandDecompress, c.now, block, pred, cost);
  if (c.config.policy.paranoid_verify) {
    image_.verify_block(block);
  }

  if (c.config.policy.use_remember_sets && pred != cfg::kInvalidBlock) {
    c.now += c.config.costs.patch_branch_cycles;
    c.result.patch_cycles += c.config.costs.patch_branch_cycles;
    s.add_patch(pred);
    ++c.result.patches;
    emit(c, EventKind::kPatch, c.now, block, pred);
  }
}

void StepPolicy::init_cell(EngineCell& cell, runtime::StateTable& states,
                           const cfg::BlockTrace& trace,
                           std::vector<memory::CompressedSlot> slots,
                           const std::vector<std::uint64_t>& block_sizes) const {
  APCC_CHECK(cell.config.policy.decompress_units >= 1,
             "at least one decompression unit is required");
  APCC_CHECK(cell.exec_cycles != nullptr &&
                 cell.exec_cycles->size() == cfg_.block_count(),
             "cell is missing its execution-cost table");
  cell.now = 0;
  cell.decomp_free.assign(cell.config.policy.decompress_units, 0);
  cell.comp_free_at = 0;
  cell.ready_queue = {};
  cell.result = RunResult{};
  cell.layout = std::make_unique<memory::MemoryLayout>(
      std::move(slots),
      cell.config.policy.memory_budget == runtime::Policy::kUnbounded
          ? memory::MemoryLayout::kUnbounded
          : cell.config.policy.memory_budget,
      cell.config.fit);
  cell.states = &states;
  states.set_block_sizes(block_sizes);
  cell.kedge = std::make_unique<runtime::KEdgeCompressionManager>(
      states, cell.config.policy.compress_k, cell.config.reference_scans);
  if (cell.predictor == nullptr) {
    cell.owned_predictor = runtime::make_predictor(
        cell.config.policy.predictor, cfg_, cell.config.policy.predecompress_k,
        trace, cell.config.shared_frontiers);
    cell.predictor = cell.owned_predictor.get();
  }
  cell.planner = std::make_unique<runtime::DecompressionPlanner>(
      cfg_, states, cell.config.policy, cell.predictor,
      cell.config.reference_frontiers, cell.config.shared_frontiers);
  cell.extra.assign(cfg_.block_count(), EngineCell::ExtraBlockInfo{});
  cell.failed = false;
  cell.error = nullptr;

  cell.result.original_image_bytes = cell.layout->original_image_bytes();
  cell.result.compressed_area_bytes = cell.layout->compressed_area_bytes();
  cell.result.codec_ratio = image_.ratio();
}

void StepPolicy::step(EngineCell& cell, const cfg::BlockTrace& trace,
                      std::size_t i) const {
  EngineCell& c = cell;
  const cfg::BlockId block = trace[i];
  const cfg::BlockId pred = (i == 0) ? cfg::kInvalidBlock : trace[i - 1];

  settle_ready_blocks(c);
  ensure_executable(c, block, pred);

  // Execute the block.
  c.states->set_executing(block, true);
  c.states->touch(block, c.now);
  c.extra[block].used_since_decomp = true;
  c.kedge->on_block_executed(block);
  ++c.result.block_entries;
  emit(c, EventKind::kBlockEnter, c.now, block, pred);
  const std::uint64_t exec_cycles = (*c.exec_cycles)[block];
  c.now += exec_cycles;
  c.result.busy_cycles += exec_cycles;
  c.result.baseline_cycles += exec_cycles;
  c.states->set_executing(block, false);

  if (i + 1 == trace.size()) return;
  const cfg::BlockId next = trace[i + 1];
  emit(c, EventKind::kBlockExit, c.now, block, next);

  // Pre-decompression planning happens at the block's exit (§4).
  for (const cfg::BlockId req : c.planner->plan_on_exit(block, i)) {
    if (req == next) {
      // The next block is entered immediately; issuing a background
      // job for it cannot complete in time -- the demand path will
      // handle it (and the helper would only duplicate the work).
      continue;
    }
    issue_predecompression(c, req, block);
  }

  // k-edge compression on the traversed edge (§3, §5).
  for (const cfg::BlockId victim : c.kedge->on_edge_traversed(next)) {
    delete_block(c, victim);
  }
}

void StepPolicy::finish(EngineCell& cell) const {
  // Drain helper threads: the run is over when all three threads are done.
  std::uint64_t decomp_drain = 0;
  for (const std::uint64_t unit : cell.decomp_free) {
    decomp_drain = std::max(decomp_drain, unit);
  }
  cell.result.total_cycles =
      std::max({cell.now, decomp_drain, cell.comp_free_at});
  cell.result.peak_occupancy_bytes = cell.layout->peak_occupancy_bytes();
  cell.result.avg_occupancy_bytes =
      cell.layout->average_occupancy_bytes(cell.result.total_cycles);
  cell.result.allocator = cell.layout->allocator().stats();
}

}  // namespace apcc::sim
