// Profile-driven trace generation.
//
// Walks the CFG as a Markov chain using the edge probabilities (uniform
// unless a profile has been applied), producing the basic-block access
// pattern that drives the runtime. Deterministic given the seed.
#pragma once

#include <cstdint>

#include "cfg/cfg.hpp"
#include "cfg/trace.hpp"
#include "support/rng.hpp"

namespace apcc::sim {

struct TraceGenOptions {
  std::uint64_t seed = 1;
  /// Stop after this many block entries even if no exit is reached
  /// (guards against non-terminating walks through loops).
  std::uint64_t max_blocks = 100'000;
};

/// Random walk from the entry block until a block with no successors (or
/// an is_exit block) is executed, or max_blocks is reached.
[[nodiscard]] cfg::BlockTrace generate_trace(const cfg::Cfg& cfg,
                                             const TraceGenOptions& options);

}  // namespace apcc::sim
