#include "sim/batch_engine.hpp"

#include <map>
#include <tuple>
#include <utility>

#include "runtime/frontier_cache.hpp"
#include "runtime/state.hpp"
#include "support/assert.hpp"

namespace apcc::sim {

BatchEngine::BatchEngine(const cfg::Cfg& cfg, const runtime::BlockImage& image,
                         std::vector<EngineConfig> configs)
    : cfg_(cfg),
      image_(image),
      configs_(std::move(configs)),
      sinks_(configs_.size()),
      policy_(cfg, image) {
  APCC_CHECK(!configs_.empty(), "batch needs at least one cell");
}

void BatchEngine::set_event_sink(std::size_t cell, EventSink sink) {
  APCC_CHECK(cell < sinks_.size(), "cell index out of range");
  sinks_[cell] = std::move(sink);
}

std::vector<CellOutcome> BatchEngine::run(const cfg::BlockTrace& trace) {
  APCC_CHECK(!trace.empty(), "cannot run an empty trace");
  cfg::validate_trace(cfg_, trace);

  // Batch-amortized immutable inputs. Declared before `cells` so the
  // borrowing planners/predictors are destroyed first.
  const std::vector<memory::CompressedSlot> slots =
      memory::layout_slots(image_.slot_sizes());
  std::vector<std::uint64_t> sizes;
  sizes.reserve(cfg_.block_count());
  for (cfg::BlockId b = 0; b < cfg_.block_count(); ++b) {
    sizes.push_back(image_.original_size(b));
  }

  // One materialized FrontierCache per distinct predecompress_k, lent to
  // every planning cell that does not already borrow campaign/service
  // geometry. Borrowed geometry is pinned bit-identical to owned, so
  // this changes no cell's results.
  std::map<std::uint32_t, std::unique_ptr<runtime::FrontierCache>> frontiers;
  std::vector<EngineConfig> cell_configs = configs_;
  for (EngineConfig& config : cell_configs) {
    if (config.shared_frontiers != nullptr) continue;
    if (config.policy.strategy == runtime::DecompressionStrategy::kOnDemand) {
      continue;  // never plans: building geometry would be pure waste
    }
    const std::uint32_t k = config.policy.predecompress_k;
    auto it = frontiers.find(k);
    if (it == frontiers.end()) {
      auto cache = std::make_unique<runtime::FrontierCache>(cfg_, k);
      cache->materialize();
      it = frontiers.emplace(k, std::move(cache)).first;
    }
    config.shared_frontiers = it->second.get();
  }

  // Shared execution-cost tables (per distinct cycles_per_instruction)
  // and predictors (per kind / k / geometry; predict() is const and the
  // batch steps cells on one thread).
  std::map<double, std::unique_ptr<std::vector<std::uint64_t>>> cost_tables;
  using PredictorKey = std::tuple<int, std::uint32_t,
                                  const runtime::FrontierCache*>;
  std::map<PredictorKey, std::unique_ptr<runtime::Predictor>> predictors;

  runtime::StateBatch batch(cfg_.block_count(), cell_configs.size());
  std::vector<EngineCell> cells(cell_configs.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EngineCell& cell = cells[i];
    cell.config = cell_configs[i];
    cell.sink = sinks_[i];

    const double cpi = cell.config.costs.cycles_per_instruction;
    auto ct = cost_tables.find(cpi);
    if (ct == cost_tables.end()) {
      ct = cost_tables
               .emplace(cpi, std::make_unique<std::vector<std::uint64_t>>(
                                 exec_cycles_table(cfg_, cell.config.costs)))
               .first;
    }
    cell.exec_cycles = ct->second.get();

    const PredictorKey key{static_cast<int>(cell.config.policy.predictor),
                           cell.config.policy.predecompress_k,
                           cell.config.shared_frontiers};
    auto pr = predictors.find(key);
    if (pr == predictors.end()) {
      pr = predictors
               .emplace(key, runtime::make_predictor(
                                 cell.config.policy.predictor, cfg_,
                                 cell.config.policy.predecompress_k, trace,
                                 cell.config.shared_frontiers))
               .first;
    }
    cell.predictor = pr->second.get();

    try {
      policy_.init_cell(cell, batch.cell(i), trace, slots, sizes);
    } catch (...) {
      cell.failed = true;
      cell.error = std::current_exception();
    }
  }

  // Tiled lockstep scan: the batch advances through the trace one
  // cache-resident tile at a time, and within a tile each live cell
  // steps through every event before the next cell runs. Cells are
  // independent, so this interleaving is byte-identical to any other --
  // the tile keeps the trace hot across cells while each cell's state
  // stays hot for a whole tile instead of one event (rotating cells
  // per event measured ~4% *slower* than per-engine on the fig3 grid;
  // tiling recovers that, leaving the shared setup above as pure
  // savings -- a measured win where setup is a real fraction of the
  // cell, see bench_sweep_scaling's bm_sweep_batch_widecfg). A
  // throwing cell is retired in place; its siblings keep stepping.
  constexpr std::size_t kTraceTile = 4096;
  for (std::size_t begin = 0; begin < trace.size(); begin += kTraceTile) {
    const std::size_t end = std::min(trace.size(), begin + kTraceTile);
    for (EngineCell& cell : cells) {
      if (cell.failed) continue;
      try {
        for (std::size_t i = begin; i < end; ++i) {
          policy_.step(cell, trace, i);
        }
      } catch (...) {
        cell.failed = true;
        cell.error = std::current_exception();
      }
    }
  }

  std::vector<CellOutcome> outcomes(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].failed) {
      outcomes[i].error = cells[i].error;
      continue;
    }
    policy_.finish(cells[i]);
    outcomes[i].result = cells[i].result;
  }
  return outcomes;
}

}  // namespace apcc::sim
