#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace apcc::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kBlockEnter: return "enter";
    case EventKind::kBlockExit: return "exit";
    case EventKind::kException: return "exception";
    case EventKind::kDemandDecompress: return "demand-decompress";
    case EventKind::kPredecompressIssue: return "pre-decompress-issue";
    case EventKind::kPredecompressDone: return "pre-decompress-done";
    case EventKind::kDelete: return "delete";
    case EventKind::kEvict: return "evict";
    case EventKind::kPatch: return "patch";
    case EventKind::kUnpatch: return "unpatch";
    case EventKind::kStall: return "stall";
    case EventKind::kRequestDropped: return "request-dropped";
  }
  return "?";
}

Engine::Engine(const cfg::Cfg& cfg, const runtime::BlockImage& image,
               EngineConfig config)
    : cfg_(cfg), image_(image), config_(config) {
  APCC_CHECK(image_.block_count() == cfg_.block_count(),
             "image and CFG disagree on block count");
  // Note: the memory budget is not validated against block sizes here --
  // a budget smaller than some cold block is fine as long as that block
  // is never executed. run() raises CheckError if an executed block
  // cannot be placed even after evicting every victim.
  exec_cycles_.reserve(cfg_.block_count());
  for (cfg::BlockId b = 0; b < cfg_.block_count(); ++b) {
    exec_cycles_.push_back(static_cast<std::uint64_t>(
        std::llround(config_.costs.cycles_per_instruction *
                     static_cast<double>(cfg_.block(b).word_count))));
  }
}

void Engine::emit(EventKind kind, std::uint64_t time, cfg::BlockId block,
                  cfg::BlockId aux, std::uint64_t value) {
  if (sink_) {
    sink_(Event{kind, time, block, aux, value});
  }
}

cfg::BlockId Engine::select_victim(cfg::BlockId protect) const {
  switch (config_.policy.victim_policy) {
    case runtime::VictimPolicy::kLru:
      return config_.reference_scans ? states_->lru_victim_reference(protect)
                                     : states_->lru_victim(protect);
    case runtime::VictimPolicy::kMru:
      return config_.reference_scans ? states_->mru_victim_reference(protect)
                                     : states_->mru_victim(protect);
    case runtime::VictimPolicy::kLargest:
      return config_.reference_scans
                 ? states_->largest_victim_reference(protect)
                 : states_->largest_victim(protect);
  }
  return cfg::kInvalidBlock;
}

std::size_t Engine::earliest_decomp_unit() const {
  std::size_t best = 0;
  for (std::size_t u = 1; u < decomp_free_.size(); ++u) {
    if (decomp_free_[u] < decomp_free_[best]) best = u;
  }
  return best;
}

std::optional<std::uint64_t> Engine::earliest_inflight_ready() {
  if (config_.reference_scans) {
    std::uint64_t earliest = UINT64_MAX;
    for (cfg::BlockId b = 0; b < states_->size(); ++b) {
      const runtime::BlockState& s = (*states_)[b];
      if (s.form() == runtime::BlockForm::kDecompressing) {
        earliest = std::min(earliest, s.ready_time);
      }
    }
    if (earliest == UINT64_MAX) return std::nullopt;
    return earliest;
  }
  while (!ready_queue_.empty()) {
    const auto [time, block] = ready_queue_.top();
    const runtime::BlockState& s = (*states_)[block];
    if (s.form() == runtime::BlockForm::kDecompressing &&
        s.ready_time == time) {
      return time;
    }
    ready_queue_.pop();  // stale: settled early, deleted, or re-issued
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Engine::place_with_eviction(cfg::BlockId block) {
  for (;;) {
    if (auto address = layout_->place_decompressed(block, now_)) {
      return address;
    }
    const cfg::BlockId victim = select_victim(block);
    if (victim == cfg::kInvalidBlock) {
      return std::nullopt;
    }
    delete_block(victim, block);
    ++result_.evictions;
  }
}

void Engine::delete_block(cfg::BlockId block, cfg::BlockId evicted_for) {
  runtime::BlockState& s = (*states_)[block];
  APCC_ASSERT(s.form() == runtime::BlockForm::kDecompressed,
              "delete of non-resident block");
  // Cost: metadata delete + one unpatch per remember-set entry, plus the
  // real codec compression time under the recompress_for_real ablation.
  std::uint64_t cost = config_.costs.delete_block_cycles;
  const auto patches = static_cast<std::uint64_t>(s.remember_set().size());
  if (config_.policy.use_remember_sets) {
    cost += patches * config_.costs.unpatch_branch_cycles;
    for (const cfg::BlockId pred : s.remember_set()) {
      emit(EventKind::kUnpatch, now_, block, pred);
    }
    result_.unpatches += patches;
  }
  if (config_.policy.recompress_for_real) {
    cost += image_.codec().costs().compress_cycles(
        image_.original_size(block));
  }
  if (config_.policy.background_compression) {
    const std::uint64_t start = std::max(now_, comp_free_at_);
    comp_free_at_ = start + cost;
    result_.comp_helper_busy_cycles += cost;
  } else {
    now_ += cost;
  }
  // The memory itself is released immediately: in the paper's design the
  // compressed original never moved, so "compressing back" is dropping
  // the copy (§5) -- the helper cost above models the bookkeeping.
  layout_->drop_decompressed(s.address, now_);
  states_->set_form(block, runtime::BlockForm::kCompressed);
  s.address = 0;
  s.kedge_counter = 0;
  s.clear_patches();
  if (!extra_[block].used_since_decomp && extra_[block].from_predecomp) {
    ++result_.wasted_predecompressions;
  }
  extra_[block] = ExtraBlockInfo{};
  ++result_.deletions;
  if (evicted_for != cfg::kInvalidBlock) {
    emit(EventKind::kEvict, now_, block, evicted_for);
  } else {
    emit(EventKind::kDelete, now_, block);
  }
}

void Engine::issue_predecompression(cfg::BlockId block, cfg::BlockId from) {
  runtime::BlockState& s = (*states_)[block];
  if (s.form() != runtime::BlockForm::kCompressed) return;

  now_ += config_.costs.dispatch_job_cycles;
  const auto address = place_with_eviction(block);
  if (!address) {
    ++result_.dropped_requests;
    emit(EventKind::kRequestDropped, now_, block, from);
    return;
  }
  const std::uint64_t duration =
      config_.costs.alloc_block_cycles +
      image_.codec().costs().decompress_cycles(image_.original_size(block));

  emit(EventKind::kPredecompressIssue, now_, block, from, duration);
  if (config_.policy.background_decompression) {
    std::uint64_t& unit = decomp_free_[earliest_decomp_unit()];
    const std::uint64_t start = std::max(now_, unit);
    unit = start + duration;
    result_.decomp_helper_busy_cycles += duration;
    states_->set_form(block, runtime::BlockForm::kDecompressing);
    s.ready_time = start + duration;
    if (!config_.reference_scans) {
      // The reference path settles by scanning; feeding the queue there
      // would only grow an unread heap for the whole run.
      ready_queue_.emplace(s.ready_time, block);
    }
  } else {
    // Single-threaded ablation: the work lands in the critical path.
    now_ += duration;
    s.ready_time = now_;
    complete_decompression(block, now_, /*inline_cost=*/true);
  }
  s.address = *address;
  extra_[block].from_predecomp = true;
  extra_[block].used_since_decomp = false;
  ++result_.predecompressions;
  if (config_.policy.paranoid_verify) {
    image_.verify_block(block);
  }
}

void Engine::complete_decompression(cfg::BlockId block,
                                    std::uint64_t completion_time,
                                    bool inline_cost) {
  runtime::BlockState& s = (*states_)[block];
  states_->set_form(block, runtime::BlockForm::kDecompressed);
  s.kedge_counter = 0;  // its k-edge window starts now
  emit(EventKind::kPredecompressDone, completion_time, block);
  if (!config_.policy.use_remember_sets) return;
  // Patch the branch sites of already-decompressed predecessors so the
  // execution thread can enter without a fault. Compressed predecessors
  // cannot be patched (their branch bytes are immutable); entries from
  // them pay the exception-and-patch path on arrival instead.
  std::uint64_t patch_cost = 0;
  for (const cfg::BlockId pred : cfg_.predecessor_ids(block)) {
    runtime::BlockState& ps = (*states_)[pred];
    if (ps.form() != runtime::BlockForm::kDecompressed) continue;
    if (s.is_patched_for(pred)) continue;
    s.add_patch(pred);
    ++result_.patches;
    patch_cost += config_.costs.patch_branch_cycles;
    emit(EventKind::kPatch, completion_time, block, pred);
  }
  if (patch_cost == 0) return;
  if (inline_cost) {
    now_ += patch_cost;
    result_.patch_cycles += patch_cost;
  } else {
    // The unit that produced the copy applies the patches right after
    // completion; approximate it as the earliest-free unit.
    std::uint64_t& unit = decomp_free_[earliest_decomp_unit()];
    unit = std::max(unit, completion_time) + patch_cost;
    result_.decomp_helper_busy_cycles += patch_cost;
  }
}

void Engine::settle_ready_blocks() {
  if (config_.reference_scans) {
    for (cfg::BlockId b = 0; b < states_->size(); ++b) {
      runtime::BlockState& s = (*states_)[b];
      if (s.form() == runtime::BlockForm::kDecompressing &&
          s.ready_time <= now_) {
        complete_decompression(b, s.ready_time, /*inline_cost=*/false);
      }
    }
    return;
  }
  if (ready_queue_.empty() || ready_queue_.top().first > now_) return;
  // Pop everything due, drop stale entries, and settle in ascending block
  // id -- the reference scan's order, which fixes the order of the
  // completion events and of the patch costs landing on helper units.
  settle_scratch_.clear();
  while (!ready_queue_.empty() && ready_queue_.top().first <= now_) {
    const auto [time, block] = ready_queue_.top();
    ready_queue_.pop();
    const runtime::BlockState& s = (*states_)[block];
    if (s.form() == runtime::BlockForm::kDecompressing &&
        s.ready_time == time) {
      settle_scratch_.push_back(block);
    }
  }
  std::sort(settle_scratch_.begin(), settle_scratch_.end());
  for (const cfg::BlockId block : settle_scratch_) {
    const runtime::BlockState& s = (*states_)[block];
    if (s.form() != runtime::BlockForm::kDecompressing) continue;  // dup entry
    complete_decompression(block, s.ready_time, /*inline_cost=*/false);
  }
}

void Engine::ensure_executable(cfg::BlockId block, cfg::BlockId pred) {
  runtime::BlockState& s = (*states_)[block];

  // Settle an in-flight copy first: if the helper has already finished by
  // the execution thread's clock, the block is simply decompressed;
  // otherwise the execution thread stalls until it is ready.
  if (s.form() == runtime::BlockForm::kDecompressing) {
    const std::uint64_t wait =
        s.ready_time > now_ ? s.ready_time - now_ : 0;
    const std::uint64_t demand_cost =
        config_.costs.exception_cycles + config_.costs.alloc_block_cycles +
        image_.codec().costs().decompress_cycles(
            image_.original_size(block));
    if (wait > demand_cost) {
      // The helper is backlogged: the fetch faults and the handler
      // decompresses in the critical path, beating the queued job (the
      // helper's later completion finds the block already resident).
      // The copy's memory was already allocated at issue time.
      ++result_.exceptions;
      result_.exception_cycles += config_.costs.exception_cycles;
      ++result_.demand_decompressions;
      result_.critical_decompress_cycles +=
          demand_cost - config_.costs.exception_cycles;
      now_ += demand_cost;
      emit(EventKind::kException, now_, block, pred);
      emit(EventKind::kDemandDecompress, now_, block, pred, demand_cost);
      complete_decompression(block, now_, /*inline_cost=*/true);
    } else {
      if (wait > 0) {
        result_.stall_cycles += wait;
        emit(EventKind::kStall, now_, block, cfg::kInvalidBlock, wait);
        now_ = s.ready_time;
        ++result_.predecompress_partial;
      } else {
        ++result_.predecompress_hits;
      }
      complete_decompression(block, now_, /*inline_cost=*/false);
    }
  } else if (s.form() == runtime::BlockForm::kDecompressed &&
             extra_[block].from_predecomp &&
             !extra_[block].used_since_decomp) {
    ++result_.predecompress_hits;
  }

  if (s.form() == runtime::BlockForm::kDecompressed) {
    if (config_.policy.use_remember_sets) {
      // Re-entry through an already patched branch is exception-free;
      // a new branch site pays one exception + one patch.
      if (pred != cfg::kInvalidBlock && !s.is_patched_for(pred)) {
        ++result_.exceptions;
        result_.exception_cycles += config_.costs.exception_cycles;
        result_.patch_cycles += config_.costs.patch_branch_cycles;
        now_ += config_.costs.exception_cycles +
                config_.costs.patch_branch_cycles;
        s.add_patch(pred);
        ++result_.patches;
        emit(EventKind::kException, now_, block, pred);
        emit(EventKind::kPatch, now_, block, pred);
      }
    } else {
      // Ablation: every entry to a relocated block faults (the handler
      // redirects the PC but never patches).
      ++result_.exceptions;
      result_.exception_cycles += config_.costs.exception_cycles;
      now_ += config_.costs.exception_cycles;
      emit(EventKind::kException, now_, block, pred);
    }
    return;
  }

  // Compressed: the fetch faults and the handler decompresses in the
  // critical path (on-demand / lazy decompression, §4).
  APCC_ASSERT(s.form() == runtime::BlockForm::kCompressed,
              "unexpected block form");
  ++result_.exceptions;
  result_.exception_cycles += config_.costs.exception_cycles;
  now_ += config_.costs.exception_cycles;
  emit(EventKind::kException, now_, block, pred);

  auto address = place_with_eviction(block);
  while (!address) {
    // Every decompressed victim is gone; the remaining occupants are
    // in-flight helper jobs, which become evictable once complete. Wait
    // for the earliest one, settle it, and retry.
    const auto earliest_ready = earliest_inflight_ready();
    APCC_CHECK(earliest_ready.has_value(),
               "decompressed area exhausted with no evictable victim "
               "(budget too small for the working set)");
    const std::uint64_t earliest = *earliest_ready;
    if (earliest > now_) {
      result_.stall_cycles += earliest - now_;
      emit(EventKind::kStall, now_, block, cfg::kInvalidBlock,
           earliest - now_);
      now_ = earliest;
    }
    settle_ready_blocks();
    address = place_with_eviction(block);
  }
  const std::uint64_t cost =
      config_.costs.alloc_block_cycles +
      image_.codec().costs().decompress_cycles(image_.original_size(block));
  now_ += cost;
  result_.critical_decompress_cycles += cost;
  ++result_.demand_decompressions;
  states_->set_form(block, runtime::BlockForm::kDecompressed);
  s.address = *address;
  extra_[block].from_predecomp = false;
  extra_[block].used_since_decomp = false;
  emit(EventKind::kDemandDecompress, now_, block, pred, cost);
  if (config_.policy.paranoid_verify) {
    image_.verify_block(block);
  }

  if (config_.policy.use_remember_sets && pred != cfg::kInvalidBlock) {
    now_ += config_.costs.patch_branch_cycles;
    result_.patch_cycles += config_.costs.patch_branch_cycles;
    s.add_patch(pred);
    ++result_.patches;
    emit(EventKind::kPatch, now_, block, pred);
  }
}

RunResult Engine::run(const cfg::BlockTrace& trace) {
  APCC_CHECK(!trace.empty(), "cannot run an empty trace");
  cfg::validate_trace(cfg_, trace);

  // Fresh per-run state.
  now_ = 0;
  APCC_CHECK(config_.policy.decompress_units >= 1,
             "at least one decompression unit is required");
  decomp_free_.assign(config_.policy.decompress_units, 0);
  comp_free_at_ = 0;
  ready_queue_ = {};
  result_ = RunResult{};
  layout_ = std::make_unique<memory::MemoryLayout>(
      memory::layout_slots(image_.slot_sizes()),
      config_.policy.memory_budget == runtime::Policy::kUnbounded
          ? memory::MemoryLayout::kUnbounded
          : config_.policy.memory_budget,
      config_.fit);
  states_ = std::make_unique<runtime::StateTable>(cfg_.block_count());
  {
    std::vector<std::uint64_t> sizes;
    sizes.reserve(cfg_.block_count());
    for (cfg::BlockId b = 0; b < cfg_.block_count(); ++b) {
      sizes.push_back(image_.original_size(b));
    }
    states_->set_block_sizes(std::move(sizes));
  }
  kedge_ = std::make_unique<runtime::KEdgeCompressionManager>(
      *states_, config_.policy.compress_k, config_.reference_scans);
  predictor_ = runtime::make_predictor(config_.policy.predictor, cfg_,
                                       config_.policy.predecompress_k, trace,
                                       config_.shared_frontiers);
  planner_ = std::make_unique<runtime::DecompressionPlanner>(
      cfg_, *states_, config_.policy, predictor_.get(),
      config_.reference_frontiers, config_.shared_frontiers);
  extra_.assign(cfg_.block_count(), ExtraBlockInfo{});

  result_.original_image_bytes = layout_->original_image_bytes();
  result_.compressed_area_bytes = layout_->compressed_area_bytes();
  result_.codec_ratio = image_.ratio();

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const cfg::BlockId block = trace[i];
    const cfg::BlockId pred =
        (i == 0) ? cfg::kInvalidBlock : trace[i - 1];

    settle_ready_blocks();
    ensure_executable(block, pred);

    // Execute the block.
    states_->set_executing(block, true);
    states_->touch(block, now_);
    extra_[block].used_since_decomp = true;
    kedge_->on_block_executed(block);
    ++result_.block_entries;
    emit(EventKind::kBlockEnter, now_, block, pred);
    const std::uint64_t exec_cycles = exec_cycles_[block];
    now_ += exec_cycles;
    result_.busy_cycles += exec_cycles;
    result_.baseline_cycles += exec_cycles;
    states_->set_executing(block, false);

    if (i + 1 == trace.size()) break;
    const cfg::BlockId next = trace[i + 1];
    emit(EventKind::kBlockExit, now_, block, next);

    // Pre-decompression planning happens at the block's exit (§4).
    for (const cfg::BlockId req : planner_->plan_on_exit(block, i)) {
      if (req == next) {
        // The next block is entered immediately; issuing a background
        // job for it cannot complete in time -- the demand path will
        // handle it (and the helper would only duplicate the work).
        continue;
      }
      issue_predecompression(req, block);
    }

    // k-edge compression on the traversed edge (§3, §5).
    for (const cfg::BlockId victim : kedge_->on_edge_traversed(next)) {
      delete_block(victim);
    }
  }

  // Drain helper threads: the run is over when all three threads are done.
  std::uint64_t decomp_drain = 0;
  for (const std::uint64_t unit : decomp_free_) {
    decomp_drain = std::max(decomp_drain, unit);
  }
  result_.total_cycles = std::max({now_, decomp_drain, comp_free_at_});
  result_.peak_occupancy_bytes = layout_->peak_occupancy_bytes();
  result_.avg_occupancy_bytes =
      layout_->average_occupancy_bytes(result_.total_cycles);
  result_.allocator = layout_->allocator().stats();
  return result_;
}

}  // namespace apcc::sim
