#include "sim/engine.hpp"

#include "runtime/state.hpp"
#include "support/assert.hpp"

namespace apcc::sim {

Engine::Engine(const cfg::Cfg& cfg, const runtime::BlockImage& image,
               EngineConfig config)
    : cfg_(cfg),
      image_(image),
      config_(config),
      policy_(cfg, image),
      exec_cycles_(exec_cycles_table(cfg, config.costs)) {
  // Note: the memory budget is not validated against block sizes here --
  // a budget smaller than some cold block is fine as long as that block
  // is never executed. run() raises CheckError if an executed block
  // cannot be placed even after evicting every victim.
}

RunResult Engine::run(const cfg::BlockTrace& trace) {
  APCC_CHECK(!trace.empty(), "cannot run an empty trace");
  cfg::validate_trace(cfg_, trace);

  runtime::StateBatch batch(cfg_.block_count(), 1);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(cfg_.block_count());
  for (cfg::BlockId b = 0; b < cfg_.block_count(); ++b) {
    sizes.push_back(image_.original_size(b));
  }

  EngineCell cell;
  cell.config = config_;
  cell.sink = sink_;
  cell.exec_cycles = &exec_cycles_;
  policy_.init_cell(cell, batch.cell(0), trace,
                    memory::layout_slots(image_.slot_sizes()), sizes);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    policy_.step(cell, trace, i);
  }
  policy_.finish(cell);
  return cell.result;
}

}  // namespace apcc::sim
