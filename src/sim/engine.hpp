// The APCC execution engine: a discrete-event model of the paper's
// three-thread runtime (Figure 4).
//
//  * The execution thread walks the block trace; entering a block in
//    compressed form raises a memory-protection exception whose handler
//    decompresses it in the critical path (on-demand), or waits for the
//    background decompressor if the block is in flight.
//  * The decompression thread consumes pre-decompression requests issued
//    by the planner at each block exit; it is modelled as a single helper
//    that is busy for the codec's decompression time per job.
//  * The compression thread applies the k-edge deletions; in the paper's
//    design "compression" is deleting the decompressed copy (§5), so the
//    job cost is metadata work plus remember-set unpatching -- unless the
//    recompress_for_real ablation charges the codec's compression time.
//
// Timing rules:
//  * helper work overlaps execution when background_* is set, otherwise
//    it stalls the execution thread inline;
//  * an execution-thread arrival at an in-flight block stalls until the
//    helper's completion time;
//  * memory is allocated when a decompression starts and freed when a
//    deletion is applied, with the §2 LRU budget loop on allocation
//    failure.
#pragma once

#include <functional>
#include <optional>
#include <queue>

#include "cfg/trace.hpp"
#include "memory/layout.hpp"
#include "runtime/block_image.hpp"
#include "runtime/kedge.hpp"
#include "runtime/planner.hpp"
#include "runtime/policy.hpp"
#include "sim/result.hpp"

namespace apcc::sim {

/// Structured events for tests and the figure benches.
enum class EventKind : std::uint8_t {
  kBlockEnter,          // block begins executing
  kBlockExit,           // block finished; edge to `aux` traversed
  kException,           // protection fault on entering `block`
  kDemandDecompress,    // critical-path decompression of `block`
  kPredecompressIssue,  // planner requested `block` (issued from `aux`)
  kPredecompressDone,   // helper finished decompressing `block`
  kDelete,              // k-edge deleted `block`'s decompressed copy
  kEvict,               // LRU evicted `block` to make room for `aux`
  kPatch,               // branch in `aux` patched to `block`'s copy
  kUnpatch,             // branch in `aux` restored to compressed `block`
  kStall,               // execution waited on in-flight `block`
  kRequestDropped,      // no room and no victim for `block`
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct Event {
  EventKind kind{};
  std::uint64_t time = 0;          // execution-thread clock (cycles)
  cfg::BlockId block = cfg::kInvalidBlock;
  cfg::BlockId aux = cfg::kInvalidBlock;
  std::uint64_t value = 0;         // kind-specific (cost, duration, ...)
};

using EventSink = std::function<void(const Event&)>;

/// Engine configuration: policy + cost model + allocator behaviour.
struct EngineConfig {
  runtime::Policy policy{};
  runtime::CostModel costs{};
  memory::FitPolicy fit = memory::FitPolicy::kFirstFit;
  /// Debug: route settle / victim-selection / earliest-ready / k-edge
  /// queries through the pre-index O(B) full-table scans instead of the
  /// indexed structures. Both paths produce bit-identical RunResults and
  /// event streams; the differential test pins that.
  bool reference_scans = false;
  /// Debug: have the planner re-run the per-exit frontier BFS instead of
  /// reading the memoized FrontierCache. Same bit-identical guarantee,
  /// pinned by the same differential test.
  bool reference_frontiers = false;
  /// Optional shared read-only planner geometry: a *materialized*
  /// FrontierCache built on this engine's CFG with
  /// k == policy.predecompress_k. Campaign runs (sweep::run_campaign)
  /// set this so every engine over the same (workload, k) borrows one
  /// cache instead of rebuilding it; null means the planner/predictor
  /// own their own. Borrowed runs are bit-identical to owned runs.
  const runtime::FrontierCache* shared_frontiers = nullptr;
};

/// Simulates one trace against one compressed image. Engines are
/// single-shot state machines: construct, optionally attach a sink, run.
class Engine {
 public:
  Engine(const cfg::Cfg& cfg, const runtime::BlockImage& image,
         EngineConfig config);

  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  /// Run the trace to completion and return the metrics.
  [[nodiscard]] RunResult run(const cfg::BlockTrace& trace);

 private:
  struct ExtraBlockInfo {
    bool from_predecomp = false;
    bool used_since_decomp = false;
  };

  void emit(EventKind kind, std::uint64_t time, cfg::BlockId block,
            cfg::BlockId aux = cfg::kInvalidBlock, std::uint64_t value = 0);

  /// Place a decompressed copy of `block`, evicting victims (per the
  /// policy's VictimPolicy) if the budget requires it. Returns nullopt
  /// when impossible.
  [[nodiscard]] std::optional<std::uint64_t> place_with_eviction(
      cfg::BlockId block);

  /// Choose the budget-mode eviction victim; kInvalidBlock if none.
  [[nodiscard]] cfg::BlockId select_victim(cfg::BlockId protect) const;

  /// Index of the decompression unit that frees up first.
  [[nodiscard]] std::size_t earliest_decomp_unit() const;

  /// Completion time of the earliest in-flight decompression, if any.
  /// Indexed path: lazily prunes stale ready-queue entries, O(log B).
  [[nodiscard]] std::optional<std::uint64_t> earliest_inflight_ready();

  /// Apply a deletion ("compress back"): free memory, unpatch branches,
  /// reset state; charges the compression thread (or the execution
  /// thread when inline). `evicted_for` marks budget evictions.
  void delete_block(cfg::BlockId block,
                    cfg::BlockId evicted_for = cfg::kInvalidBlock);

  /// Issue one pre-decompression request to the helper.
  void issue_predecompression(cfg::BlockId block, cfg::BlockId from);

  /// Make `block` executable at the execution thread's clock; `pred` is
  /// the block the edge came from (kInvalidBlock for the trace start).
  void ensure_executable(cfg::BlockId block, cfg::BlockId pred);

  /// Flip in-flight blocks whose helper completion time has passed into
  /// the decompressed state, so the k-edge manager sees (and can later
  /// delete) them. Called as the execution clock advances.
  void settle_ready_blocks();

  /// Finalise a decompression of `block` at `completion_time`: mark it
  /// resident and patch the branch sites of its currently-decompressed
  /// predecessors (Figure 4's ideal case -- the execution thread "finds
  /// the blocks directly in the executable state"). Patching cost lands
  /// on the decompression helper (or inline when `inline_cost`).
  void complete_decompression(cfg::BlockId block,
                              std::uint64_t completion_time,
                              bool inline_cost);

  // Immutable inputs.
  const cfg::Cfg& cfg_;
  const runtime::BlockImage& image_;
  EngineConfig config_;
  EventSink sink_;
  std::vector<std::uint64_t> exec_cycles_;  // per-block execution cost,
                                            // hoisted out of the step loop

  // Mutable per-run state (reset by run()).
  std::uint64_t now_ = 0;  // execution-thread clock
  // Min-heap of (completion time, block) for in-flight decompressions.
  // Entries are invalidated lazily: an entry is live only while its
  // block is still kDecompressing with the same ready_time, so settling
  // and earliest-ready queries pop stale entries as they surface.
  using ReadyEntry = std::pair<std::uint64_t, cfg::BlockId>;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                      std::greater<ReadyEntry>>
      ready_queue_;
  std::vector<cfg::BlockId> settle_scratch_;
  std::vector<std::uint64_t> decomp_free_;  // per-unit availability
  std::uint64_t comp_free_at_ = 0;          // compression helper availability
  std::unique_ptr<memory::MemoryLayout> layout_;
  std::unique_ptr<runtime::StateTable> states_;
  std::unique_ptr<runtime::KEdgeCompressionManager> kedge_;
  std::unique_ptr<runtime::Predictor> predictor_;
  std::unique_ptr<runtime::DecompressionPlanner> planner_;
  std::vector<ExtraBlockInfo> extra_;
  RunResult result_;
};

}  // namespace apcc::sim
