// The APCC execution engine: a discrete-event model of the paper's
// three-thread runtime (Figure 4).
//
//  * The execution thread walks the block trace; entering a block in
//    compressed form raises a memory-protection exception whose handler
//    decompresses it in the critical path (on-demand), or waits for the
//    background decompressor if the block is in flight.
//  * The decompression thread consumes pre-decompression requests issued
//    by the planner at each block exit; it is modelled as a single helper
//    that is busy for the codec's decompression time per job.
//  * The compression thread applies the k-edge deletions; in the paper's
//    design "compression" is deleting the decompressed copy (§5), so the
//    job cost is metadata work plus remember-set unpatching -- unless the
//    recompress_for_real ablation charges the codec's compression time.
//
// Timing rules:
//  * helper work overlaps execution when background_* is set, otherwise
//    it stalls the execution thread inline;
//  * an execution-thread arrival at an in-flight block stalls until the
//    helper's completion time;
//  * memory is allocated when a decompression starts and freed when a
//    deletion is applied, with the §2 LRU budget loop on allocation
//    failure.
//
// The per-step decision logic lives in sim::StepPolicy (the scalar
// policy half of the policy/data-plane split); Engine is the
// single-cell driver over a private StateBatch. sim::BatchEngine
// (batch_engine.hpp) drives N cells in lockstep over one shared batch.
#pragma once

#include "sim/step_policy.hpp"

namespace apcc::sim {

/// Simulates one trace against one compressed image. Engines are
/// single-shot state machines: construct, optionally attach a sink, run.
class Engine {
 public:
  Engine(const cfg::Cfg& cfg, const runtime::BlockImage& image,
         EngineConfig config);

  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  /// Run the trace to completion and return the metrics.
  [[nodiscard]] RunResult run(const cfg::BlockTrace& trace);

 private:
  const cfg::Cfg& cfg_;
  const runtime::BlockImage& image_;
  EngineConfig config_;
  EventSink sink_;
  StepPolicy policy_;
  std::vector<std::uint64_t> exec_cycles_;  // per-block execution cost,
                                            // hoisted out of the step loop
};

}  // namespace apcc::sim
