// Batched multi-cell engine: N configurations advance in lockstep over
// one trace read.
//
// The design-space sweeps (fig3/e4/campaigns) run many engines over the
// *same* immutable (CFG, trace, image); per-engine runs re-validate the
// trace, recompute the slot layout and block-size tables, rebuild
// predictors, and rebuild frontier geometry for every cell. BatchEngine
// hoists everything immutable out of the per-cell loop:
//
//  * trace validation and decode        -- once per batch,
//  * compressed slot layout             -- computed once, copied per cell,
//  * block-size table                   -- computed once, copied per cell,
//  * predictors                         -- shared per (kind, k, geometry),
//  * planner frontier geometry          -- one materialized FrontierCache
//                                          per distinct predecompress_k,
//  * per-block dynamic state            -- one SoA runtime::StateBatch
//                                          instead of N pointer-chased
//                                          tables.
//
// Stepping is lockstep: trace entry i is applied to every live cell
// before advancing to i+1, so the trace is streamed once per batch
// instead of once per cell. Cells are isolated: a cell that throws
// (bad budget, fault injection, sink error) stops stepping and reports
// its exception in its CellOutcome while the siblings run to
// completion.
//
// Equivalence: a batched run is byte-identical to running each cell in
// its own Engine -- cells share only immutable inputs, and borrowed
// frontier geometry is pinned bit-identical to owned geometry. The
// extended engine_equivalence_test enforces this across the full config
// grid at batch sizes {1, 4, 16}.
#pragma once

#include <vector>

#include "sim/step_policy.hpp"

namespace apcc::sim {

/// Per-cell result of a batched run. `error` is null on success;
/// `result` is meaningful only when it is.
struct CellOutcome {
  RunResult result;
  std::exception_ptr error;

  [[nodiscard]] bool ok() const { return error == nullptr; }
};

/// Runs N engine configurations over one trace in lockstep. Like
/// Engine, a BatchEngine is a single-shot state machine: construct,
/// optionally attach sinks, run.
class BatchEngine {
 public:
  BatchEngine(const cfg::Cfg& cfg, const runtime::BlockImage& image,
              std::vector<EngineConfig> configs);

  [[nodiscard]] std::size_t cell_count() const { return configs_.size(); }

  /// Attach an event sink to cell `cell` (same stream the equivalent
  /// single Engine would produce).
  void set_event_sink(std::size_t cell, EventSink sink);

  /// Run every cell over the trace; outcomes are index-aligned with the
  /// constructor's config list.
  [[nodiscard]] std::vector<CellOutcome> run(const cfg::BlockTrace& trace);

 private:
  const cfg::Cfg& cfg_;
  const runtime::BlockImage& image_;
  std::vector<EngineConfig> configs_;
  std::vector<EventSink> sinks_;
  StepPolicy policy_;
};

}  // namespace apcc::sim
