// Run metrics: what every experiment in EXPERIMENTS.md reports.
#pragma once

#include <cstdint>
#include <string>

#include "memory/allocator.hpp"

namespace apcc::sim {

/// Aggregate outcome of simulating one trace under one policy.
struct RunResult {
  // -- time ----------------------------------------------------------
  std::uint64_t total_cycles = 0;     // execution thread finish time
  std::uint64_t baseline_cycles = 0;  // same trace, no compression at all
  std::uint64_t busy_cycles = 0;      // pure instruction execution
  std::uint64_t stall_cycles = 0;     // waiting for in-flight decompression
  std::uint64_t exception_cycles = 0; // handler entry/exit time
  std::uint64_t critical_decompress_cycles = 0;  // on-demand, in path
  std::uint64_t patch_cycles = 0;     // branch patching in path

  // -- event counts ---------------------------------------------------
  std::uint64_t block_entries = 0;
  std::uint64_t exceptions = 0;
  std::uint64_t demand_decompressions = 0;
  std::uint64_t predecompressions = 0;       // issued to the helper
  std::uint64_t predecompress_hits = 0;      // entered fully ready
  std::uint64_t predecompress_partial = 0;   // entered while in flight
  std::uint64_t wasted_predecompressions = 0;// deleted before any use
  std::uint64_t deletions = 0;               // k-edge "compressions"
  std::uint64_t evictions = 0;               // budget-mode LRU victims
  std::uint64_t patches = 0;
  std::uint64_t unpatches = 0;
  std::uint64_t dropped_requests = 0;        // no room, no victim

  // -- helper threads (Figure 4) --------------------------------------
  std::uint64_t decomp_helper_busy_cycles = 0;
  std::uint64_t comp_helper_busy_cycles = 0;

  // -- memory ----------------------------------------------------------
  std::uint64_t original_image_bytes = 0;   // uncompressed code size
  std::uint64_t compressed_area_bytes = 0;  // fixed area incl. index
  std::uint64_t peak_occupancy_bytes = 0;
  double avg_occupancy_bytes = 0.0;
  double codec_ratio = 0.0;                 // compressed/original
  memory::AllocatorStats allocator{};

  // -- derived ----------------------------------------------------------
  /// Execution-time dilation vs an uncompressed image (1.0 = free).
  [[nodiscard]] double slowdown() const;
  /// Peak memory saved vs the uncompressed image (positive = saving).
  [[nodiscard]] double peak_saving() const;
  /// Time-average memory saved vs the uncompressed image.
  [[nodiscard]] double avg_saving() const;
  /// Fraction of block entries that raised an exception.
  [[nodiscard]] double exception_rate() const;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string summary() const;
};

}  // namespace apcc::sim
