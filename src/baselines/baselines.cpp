#include "baselines/baselines.hpp"

#include <cmath>

namespace apcc::baselines {

namespace {
std::uint64_t execution_cycles(const cfg::Cfg& cfg,
                               const cfg::BlockTrace& trace,
                               const runtime::CostModel& costs) {
  std::uint64_t cycles = 0;
  for (const cfg::BlockId b : trace) {
    cycles += static_cast<std::uint64_t>(
        std::llround(costs.cycles_per_instruction *
                     static_cast<double>(cfg.block(b).word_count)));
  }
  return cycles;
}
}  // namespace

sim::RunResult run_no_compression(const cfg::Cfg& cfg,
                                  const cfg::BlockTrace& trace,
                                  const runtime::CostModel& costs) {
  sim::RunResult r;
  const std::uint64_t exec = execution_cycles(cfg, trace, costs);
  r.total_cycles = exec;
  r.baseline_cycles = exec;
  r.busy_cycles = exec;
  r.block_entries = trace.size();
  r.original_image_bytes = cfg.total_code_bytes();
  r.compressed_area_bytes = r.original_image_bytes;
  r.peak_occupancy_bytes = r.original_image_bytes;
  r.avg_occupancy_bytes = static_cast<double>(r.original_image_bytes);
  r.codec_ratio = 1.0;
  return r;
}

sim::RunResult run_load_time_decompression(const cfg::Cfg& cfg,
                                           const runtime::BlockImage& image,
                                           const cfg::BlockTrace& trace,
                                           const runtime::CostModel& costs) {
  sim::RunResult r;
  const std::uint64_t exec = execution_cycles(cfg, trace, costs);
  const std::uint64_t original = cfg.total_code_bytes();
  const std::uint64_t startup =
      image.codec().costs().decompress_cycles(original);
  r.total_cycles = exec + startup;
  r.baseline_cycles = exec;
  r.busy_cycles = exec;
  r.critical_decompress_cycles = startup;
  r.demand_decompressions = 1;
  r.block_entries = trace.size();
  r.original_image_bytes = original;
  std::uint64_t compressed = 0;
  for (cfg::BlockId b = 0; b < image.block_count(); ++b) {
    compressed += image.compressed_size(b);
  }
  r.compressed_area_bytes = compressed;
  // After startup both the compressed source (in flash) and the full
  // uncompressed image (in RAM) exist; RAM is what the paper's metric
  // tracks, so occupancy is the uncompressed image.
  r.peak_occupancy_bytes = original;
  r.avg_occupancy_bytes = static_cast<double>(original);
  r.codec_ratio = image.ratio();
  return r;
}

}  // namespace apcc::baselines
