#include "baselines/function_compression.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace apcc::baselines {

namespace {

/// Map every CFG block to a function index; blocks outside any function
/// (possible only for synthetic graphs) become singleton pseudo-functions.
struct FunctionMap {
  std::vector<std::size_t> block_to_function;
  std::vector<std::uint64_t> function_bytes;          // original sizes
  std::vector<std::uint64_t> function_compressed;     // codec output sizes
};

FunctionMap build_function_map(const workloads::Workload& w,
                               compress::CodecKind codec_kind) {
  FunctionMap m;
  const auto& functions = w.program.functions();
  m.block_to_function.assign(w.cfg.block_count(), SIZE_MAX);
  m.function_bytes.assign(functions.size(), 0);

  for (const auto& block : w.cfg.blocks()) {
    for (std::size_t f = 0; f < functions.size(); ++f) {
      if (block.first_word >= functions[f].first_word &&
          block.first_word < functions[f].end_word()) {
        m.block_to_function[block.id] = f;
        break;
      }
    }
    APCC_CHECK(m.block_to_function[block.id] != SIZE_MAX,
               "block outside every function");
  }

  // Whole-function byte strings compress better than per-block ones; that
  // is the granularity advantage these baselines get.
  std::vector<compress::Bytes> function_blobs;
  function_blobs.reserve(functions.size());
  for (const auto& f : functions) {
    function_blobs.push_back(w.program.bytes(f.first_word, f.word_count));
    m.function_bytes[function_blobs.size() - 1] =
        function_blobs.back().size();
  }
  const auto codec = compress::make_codec(codec_kind, function_blobs);
  m.function_compressed.reserve(functions.size());
  for (const auto& blob : function_blobs) {
    m.function_compressed.push_back(codec->compress(blob).size());
  }
  return m;
}

}  // namespace

sim::RunResult run_function_compression(
    const workloads::Workload& w, const FunctionCompressionConfig& config) {
  APCC_CHECK(!w.trace.empty(), "workload has no trace");
  APCC_CHECK(config.train_fraction > 0.0 && config.train_fraction <= 1.0,
             "train_fraction must be in (0, 1]");
  const FunctionMap map = build_function_map(w, config.codec);
  const auto codec = compress::make_codec(config.codec, {});
  const auto& codec_costs = codec->costs();
  const std::size_t nfuncs = map.function_bytes.size();

  // Hot/cold classification from the training prefix (kColdOnly).
  std::vector<bool> hot(nfuncs, false);
  if (config.mode == FunctionCompressionConfig::Mode::kColdOnly) {
    const auto train_len = static_cast<std::size_t>(
        std::llround(config.train_fraction *
                     static_cast<double>(w.trace.size())));
    for (std::size_t i = 0; i < std::min(train_len, w.trace.size()); ++i) {
      hot[map.block_to_function[w.trace[i]]] = true;
    }
  }

  sim::RunResult r;
  r.original_image_bytes = w.cfg.total_code_bytes();

  // Static layout.
  std::uint64_t resident = 0;  // always-resident bytes
  for (std::size_t f = 0; f < nfuncs; ++f) {
    if (config.mode == FunctionCompressionConfig::Mode::kColdOnly && hot[f]) {
      resident += map.function_bytes[f];  // hot code stored uncompressed
    } else {
      resident += map.function_compressed[f];
    }
  }
  r.compressed_area_bytes = resident;

  std::uint64_t compressed_total = 0;
  std::uint64_t original_total = 0;
  for (std::size_t f = 0; f < nfuncs; ++f) {
    compressed_total += map.function_compressed[f];
    original_total += map.function_bytes[f];
  }
  r.codec_ratio = original_total == 0
                      ? 1.0
                      : static_cast<double>(compressed_total) /
                            static_cast<double>(original_total);

  // Dynamic walk over the trace at function granularity.
  std::uint64_t now = 0;
  apcc::TimeWeightedAverage occupancy;
  std::uint64_t dynamic_bytes = 0;  // decompressed copies currently live
  occupancy.sample(0, static_cast<double>(resident));

  // kColdOnly: cold functions decompressed once, kept forever.
  std::vector<bool> materialised(nfuncs, false);
  // kProcedureCache: LRU of (function -> last use), bytes used.
  std::map<std::size_t, std::uint64_t> cache_last_use;
  std::uint64_t cache_used = 0;

  std::size_t current_function = SIZE_MAX;
  for (const cfg::BlockId b : w.trace) {
    const std::size_t f = map.block_to_function[b];
    const auto exec = static_cast<std::uint64_t>(
        std::llround(config.costs.cycles_per_instruction *
                     static_cast<double>(w.cfg.block(b).word_count)));
    r.baseline_cycles += exec;
    r.busy_cycles += exec;
    ++r.block_entries;

    if (f != current_function) {
      current_function = f;
      if (config.mode == FunctionCompressionConfig::Mode::kColdOnly) {
        if (!hot[f] && !materialised[f]) {
          // First entry into a cold function: fault + one-time expansion.
          ++r.exceptions;
          ++r.demand_decompressions;
          const std::uint64_t cost =
              config.costs.exception_cycles +
              codec_costs.decompress_cycles(map.function_bytes[f]);
          now += cost;
          r.exception_cycles += config.costs.exception_cycles;
          r.critical_decompress_cycles +=
              cost - config.costs.exception_cycles;
          materialised[f] = true;
          dynamic_bytes += map.function_bytes[f];
          occupancy.sample(now,
                           static_cast<double>(resident + dynamic_bytes));
        }
      } else {  // procedure cache
        auto it = cache_last_use.find(f);
        if (it == cache_last_use.end()) {
          ++r.exceptions;
          ++r.demand_decompressions;
          r.exception_cycles += config.costs.exception_cycles;
          now += config.costs.exception_cycles;
          // Evict LRU functions until the new one fits.
          while (cache_used + map.function_bytes[f] > config.cache_bytes &&
                 !cache_last_use.empty()) {
            auto victim = cache_last_use.begin();
            for (auto cit = cache_last_use.begin();
                 cit != cache_last_use.end(); ++cit) {
              if (cit->second < victim->second) victim = cit;
            }
            cache_used -= map.function_bytes[victim->first];
            cache_last_use.erase(victim);
            ++r.evictions;
            now += config.costs.delete_block_cycles;
          }
          APCC_CHECK(cache_used + map.function_bytes[f] <=
                         config.cache_bytes,
                     "procedure cache smaller than one function");
          const std::uint64_t cost =
              codec_costs.decompress_cycles(map.function_bytes[f]);
          now += cost;
          r.critical_decompress_cycles += cost;
          cache_used += map.function_bytes[f];
          cache_last_use[f] = now;
          dynamic_bytes = cache_used;
          occupancy.sample(now,
                           static_cast<double>(resident + dynamic_bytes));
        } else {
          it->second = now;  // LRU touch
        }
      }
    }
    now += exec;
  }

  r.total_cycles = now;
  r.peak_occupancy_bytes = static_cast<std::uint64_t>(occupancy.peak());
  r.avg_occupancy_bytes = occupancy.average(now);
  return r;
}

}  // namespace apcc::baselines
