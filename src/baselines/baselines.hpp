// Whole-image baselines the paper's scheme is judged against.
//
//  * no-compression: the conventional system; defines baseline cycles and
//    the uncompressed memory footprint.
//  * load-time decompression: image stored compressed, decompressed in
//    full at startup (classic flash-to-RAM); RAM cost equals the
//    uncompressed image, the startup delay is the entire codec cost.
#pragma once

#include "cfg/trace.hpp"
#include "runtime/block_image.hpp"
#include "runtime/policy.hpp"
#include "sim/result.hpp"

namespace apcc::baselines {

/// Execute `trace` with the whole image resident and uncompressed.
[[nodiscard]] sim::RunResult run_no_compression(
    const cfg::Cfg& cfg, const cfg::BlockTrace& trace,
    const runtime::CostModel& costs);

/// Execute `trace` after decompressing the whole image at startup.
[[nodiscard]] sim::RunResult run_load_time_decompression(
    const cfg::Cfg& cfg, const runtime::BlockImage& image,
    const cfg::BlockTrace& trace, const runtime::CostModel& costs);

}  // namespace apcc::baselines
