// Function-granularity compression baselines (paper §6 related work).
//
//  * Cold-code compression (Debray & Evans [6]): a training profile marks
//    functions hot or cold. Hot functions are stored uncompressed; cold
//    functions stay compressed and are decompressed on first entry into a
//    one-way buffer (never recompressed). The paper contrasts its
//    basic-block granularity against exactly this scheme.
//
//  * Procedure cache (Kirovski et al. [15]): every function is stored
//    compressed; decompressed copies live in a fixed-size procedure
//    cache with whole-function LRU eviction.
//
// Both run on assembled workloads (they need function extents); block
// traces are mapped to function entry sequences internally.
#pragma once

#include "runtime/policy.hpp"
#include "sim/result.hpp"
#include "workloads/suite.hpp"

namespace apcc::baselines {

struct FunctionCompressionConfig {
  enum class Mode : std::uint8_t { kColdOnly, kProcedureCache };
  Mode mode = Mode::kColdOnly;

  /// Procedure-cache capacity (kProcedureCache only).
  std::uint64_t cache_bytes = 16 * 1024;

  /// Fraction of the trace used as the training profile for hot/cold
  /// classification (kColdOnly). 1.0 trains on the full run, which is the
  /// most favourable case for the baseline.
  double train_fraction = 1.0;

  runtime::CostModel costs{};
  compress::CodecKind codec = compress::CodecKind::kLzss;
};

/// Simulate `workload.trace` under a function-granularity scheme.
[[nodiscard]] sim::RunResult run_function_compression(
    const workloads::Workload& workload,
    const FunctionCompressionConfig& config);

}  // namespace apcc::baselines
