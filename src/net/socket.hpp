// POSIX socket plumbing for the TCP front door: an RAII fd and the
// three operations net::Server needs (listen, accept, nonblocking
// mode). Deliberately tiny -- IPv4 only, no name resolution (hosts are
// dotted quads: the front door binds loopback by default and tests
// never want a DNS dependency) -- so the interesting state machine
// lives in server.cpp, not here.
#pragma once

#include <cstdint>
#include <string>

namespace apcc::net {

/// Owning file descriptor: closes on destruction, move-only. -1 means
/// empty (moved-from / not yet opened / failed accept).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Close now (idempotent).
  void reset();

 private:
  int fd_ = -1;
};

/// Bind and listen a nonblocking TCP socket on `host:port` (IPv4
/// dotted quad; port 0 asks the kernel for an ephemeral port).
/// `bound_port` receives the actual port -- how callers learn an
/// ephemeral choice. SO_REUSEADDR is set so restarts do not trip over
/// TIME_WAIT. Throws CheckError with errno text on failure.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            std::uint16_t* bound_port);

/// One nonblocking accept on `listen_fd`: the connection (already
/// nonblocking) or an empty Fd when no connection is pending
/// (EAGAIN/EWOULDBLOCK). Throws CheckError on real accept failures.
[[nodiscard]] Fd accept_client(int listen_fd);

/// O_NONBLOCK on an existing fd. Throws CheckError on failure.
void set_nonblocking(int fd);

/// Connect a blocking TCP client socket to `host:port` (IPv4 dotted
/// quad). Test plumbing for loopback round-trips; the server side
/// never calls it. Throws CheckError on failure.
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port);

}  // namespace apcc::net
