// RecordFramer: the length-tolerant per-connection framing stage
// between raw socket reads and the wire codec.
//
// TCP delivers byte chunks at arbitrary boundaries; serving::wire's
// RecordReader wants a stream it can getline() from. The framer
// bridges the two without inventing a second grammar: feed() buffers
// whatever read() produced, next() cuts one *complete* record's text
// (header line through its "end" line, exactly RecordReader's framing
// rules: blank and '#'-comment lines between records are skipped, a
// record opens with an apcc.job/apcc.result header) -- and then hands
// that text to the real serving::wire::RecordReader, so the socket
// path parses byte-for-byte like the stdin path. The chunked-input
// differential in tests pins exactly that: any split of a stream into
// feed() chunks yields the same records as one whole-stream read.
//
// Absolute line numbers are tracked across the connection's lifetime,
// so a WireError from record 400 points at the 400th record's real
// line, not line 1 of its slice.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "serving/wire.hpp"

namespace apcc::net {

/// Framing limits. A record larger than max_record_bytes (or a single
/// line longer than the same bound) is a protocol error -- the one
/// DoS-shaped guard a length-tolerant text protocol needs.
struct FramerOptions {
  std::size_t max_record_bytes = 1 << 20;
};

class RecordFramer {
 public:
  explicit RecordFramer(FramerOptions options = {}) : options_(options) {}

  /// Append raw socket bytes (any chunking, including one byte at a
  /// time).
  void feed(std::string_view bytes);

  /// The next complete record, or nullopt until more bytes arrive.
  /// Throws serving::wire::WireError (absolute line numbers) on
  /// framing errors: garbage between records, an oversized record, or
  /// -- after finish() -- a truncated one.
  [[nodiscard]] std::optional<serving::wire::RawRecord> next();

  /// The peer half-closed its write side: no more bytes will ever
  /// arrive. Marks the stream; keep calling next() -- it drains any
  /// still-buffered complete records, then throws WireError if the
  /// stream ended mid-line or mid-record (a truncated record is a
  /// protocol error, exactly like RecordReader's missing-'end' case).
  /// A clean end-of-stream -- between records, last line terminated --
  /// just yields nullopt.
  void finish();

  /// 1-based number of the last line consumed (diagnostics).
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  /// Consume one complete line (without its '\n') from buffer_;
  /// nullopt when no full line is buffered yet.
  [[nodiscard]] std::optional<std::string> take_line();

  FramerOptions options_;
  std::string buffer_;       // bytes fed, not yet cut into lines
  std::string record_;       // lines of the record being assembled
  std::size_t record_first_line_ = 0;  // 0 = not inside a record
  bool record_is_result_ = false;
  std::size_t line_ = 0;
  bool finished_ = false;
};

}  // namespace apcc::net
