#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/assert.hpp"

namespace apcc::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  APCC_CHECK(false, what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  APCC_CHECK(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "not an IPv4 address: '" + host + "'");
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    // EINTR on close is not retried: POSIX leaves the fd state
    // unspecified and Linux has already released it.
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
}

Fd listen_tcp(const std::string& host, std::uint16_t port,
              std::uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    fail_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    fail_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) fail_errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &len) < 0) {
      fail_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd accept_client(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      // Nothing usable right now -- an aborted handshake is a
      // non-event, not a server error.
      return Fd();
    }
    fail_errno("accept");
  }
  Fd client(fd);
  set_nonblocking(client.get());
  return client;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    fail_errno("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

}  // namespace apcc::net
