#include "net/framer.hpp"

#include <sstream>
#include <utility>

#include "support/strings.hpp"

namespace apcc::net {

using serving::wire::RawRecord;
using serving::wire::WireError;

void RecordFramer::feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<std::string> RecordFramer::take_line() {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    if (buffer_.size() > options_.max_record_bytes) {
      throw WireError("line exceeds the record size limit (" +
                          std::to_string(options_.max_record_bytes) +
                          " bytes)",
                      line_ + 1, buffer_.substr(0, 64));
    }
    return std::nullopt;
  }
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  ++line_;
  return line;
}

std::optional<RawRecord> RecordFramer::next() {
  for (;;) {
    std::optional<std::string> line = take_line();
    if (!line) {
      if (finished_) {
        if (record_first_line_ != 0) {
          throw WireError("unterminated record (missing 'end')",
                          record_first_line_, record_.substr(0, 64));
        }
        if (!buffer_.empty()) {
          throw WireError("stream ends mid-line (no trailing newline)",
                          line_ + 1, buffer_.substr(0, 64));
        }
      }
      return std::nullopt;
    }
    const std::string_view content = trim(*line);
    if (record_first_line_ == 0) {
      // Between records: skip separators, demand a known header --
      // the same three rules RecordReader::next applies.
      if (content.empty() || content[0] == '#') continue;
      if (!starts_with(content, "apcc.job") &&
          !starts_with(content, "apcc.result")) {
        throw WireError(
            "expected an 'apcc.job' or 'apcc.result' record header", line_,
            std::string(content));
      }
      record_first_line_ = line_;
      record_is_result_ = starts_with(content, "apcc.result");
      record_.clear();
    }
    record_ += *line;
    record_ += '\n';
    if (record_.size() > options_.max_record_bytes) {
      throw WireError("record exceeds the size limit (" +
                          std::to_string(options_.max_record_bytes) +
                          " bytes)",
                      record_first_line_, record_.substr(0, 64));
    }
    if (trim(*line) != "end") continue;

    // A complete record: run it through the real RecordReader so the
    // socket path shares the stdin path's framing code exactly (the
    // reader re-checks the header and the 'end' we just found), then
    // rebase its slice-relative first_line onto this stream's.
    std::istringstream slice(record_);
    serving::wire::RecordReader reader(slice);
    std::optional<RawRecord> record = reader.next();
    APCC_CHECK(record.has_value() && record->is_result == record_is_result_,
               "framer/reader disagreement on a complete record");
    record->first_line = record_first_line_;
    record_.clear();
    record_first_line_ = 0;
    return record;
  }
}

void RecordFramer::finish() {
  // Only mark: complete lines may still sit in the buffer, so the
  // truncation checks belong in next(), which drains them first --
  // finish() then next()-until-nullopt is correct in any feed order.
  finished_ = true;
}

}  // namespace apcc::net
