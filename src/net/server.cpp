#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serving/wire.hpp"
#include "support/assert.hpp"

namespace apcc::net {

namespace {

/// Session-fatal framing diagnostics carry the connection-absolute
/// line, in the same shape cmd_serve's stdin diagnostics use.
std::string framing_message(const serving::wire::WireError& error) {
  return "tcp:" + std::to_string(error.line()) + ": " + error.what();
}

}  // namespace

Server::Server(serving::Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  listen_ = listen_tcp(options_.host, options_.port, &port_);
  int pipe_fds[2] = {-1, -1};
  APCC_CHECK(::pipe(pipe_fds) == 0,
             std::string("pipe: ") + std::strerror(errno));
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  // Both ends nonblocking: the IO thread drains without stalling, and
  // a pool thread's nudge into a full pipe just returns EAGAIN (the
  // pipe being full already guarantees a wakeup).
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());
}

Server::~Server() {
  // Any armed on_ready callback captures `this`; draining the service
  // fires the last of them before the members go away. A no-op when
  // run() completed its drain (the common path).
  service_.drain();
}

std::string Server::address() const {
  return options_.host + ":" + std::to_string(port_);
}

void Server::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // The byte is only a wakeup; EAGAIN means the pipe already has one.
  (void)!::write(wake_write_.get(), &byte, 1);
}

void Server::notify_ready(std::uint64_t session_id) {
  {
    const std::lock_guard<std::mutex> lock(ready_mutex_);
    ready_.push_back(session_id);
  }
  const char byte = 1;
  (void)!::write(wake_write_.get(), &byte, 1);
}

void Server::begin_drain() {
  draining_ = true;
  listen_.reset();  // no new connections
  // The stdin SIGTERM semantics over live sockets: stop admitting,
  // in-flight jobs finish, still-queued jobs resolve `status
  // cancelled`. Blocks this (the IO) thread -- nothing is read while
  // draining anyway, and completion callbacks only queue nudges, so
  // once shutdown returns every accepted job's record is ready to
  // serialize and flush below.
  service_.shutdown();
}

void Server::accept_ready() {
  for (;;) {
    Fd client = accept_client(listen_.get());
    if (!client.valid()) return;
    const std::uint64_t id = ++next_session_;
    Session session;
    session.fd = std::move(client);
    session.id = id;
    session.tag = "conn-" + std::to_string(id);
    session.framer = RecordFramer(FramerOptions{options_.max_record_bytes});
    sessions_.emplace(id, std::move(session));
  }
}

void Server::submit_record(Session& session,
                           const serving::wire::RawRecord& raw) {
  Slot slot;
  slot.seq = ++session.seq;
  slot.client = session.tag;
  if (raw.is_result) {
    // Same non-fatal contract as stdin serve: the slot becomes a
    // status-error record and the session keeps going.
    slot.error = "expected a job record, got a result record";
  } else {
    try {
      serving::JobSpec spec =
          serving::wire::parse_job(raw.text, raw.first_line);
      // The per-client submission context: untagged records inherit
      // the connection's tag, so admission limits and fair share see
      // one tenant per connection by default. The echo below reports
      // the tag actually used.
      if (spec.client.empty()) spec.client = session.tag;
      slot.client = spec.client;
      if (options_.prepare) options_.prepare(spec);
      serving::JobHandle<serving::JobResult> handle =
          service_.submit(std::move(spec));
      const std::uint64_t sid = session.id;
      handle.on_ready([this, sid] { notify_ready(sid); });
      slot.handle = std::move(handle);
    } catch (const serving::wire::WireError& e) {
      slot.error = framing_message(e);
    } catch (const std::exception& e) {
      slot.error = e.what();
    }
  }
  session.inflight.push_back(std::move(slot));
}

void Server::pump_records(Session& session) {
  try {
    while (const auto record = session.framer.next()) {
      submit_record(session, *record);
    }
  } catch (const serving::wire::WireError& e) {
    // Framing errors are session-fatal (the stream position is lost):
    // one final error record explains it, accepted jobs still deliver,
    // then flush-and-close.
    Slot slot;
    slot.seq = ++session.seq;
    slot.client = session.tag;
    slot.error = framing_message(e);
    session.inflight.push_back(std::move(slot));
    session.read_done = true;
  }
}

bool Server::read_ready(Session& session) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(session.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      session.framer.feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Peer half-close (shutdown(SHUT_WR)) or full close: no more
      // jobs from this session; results for accepted ones still flow.
      session.read_done = true;
      session.framer.finish();
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // connection reset: nobody left to answer
  }
  pump_records(session);
  collect_finished(session);
  return write_ready(session);
}

void Server::collect_finished(Session& session) {
  while (!session.inflight.empty()) {
    Slot& slot = session.inflight.front();
    if (slot.handle.valid() && !slot.handle.ready()) break;
    serving::wire::ResultRecord record;
    record.job = slot.seq;
    record.client = slot.client;
    if (slot.handle.valid()) {
      try {
        // ready() above: wait() returns immediately. Rejected /
        // cancelled / deadline-exceeded come back as structured
        // results (wait() only throws for kError).
        const serving::JobResult& result = slot.handle.wait();
        record.status = result.status;
        if (result.ok()) {
          record.result = result;
        } else {
          record.error = result.error;
        }
      } catch (const std::exception& e) {
        record.status = serving::JobStatus::kError;
        record.error = e.what();
      }
    } else {
      record.status = serving::JobStatus::kError;
      record.error = slot.error;
    }
    session.out += serving::wire::serialize_result(record);
    session.inflight.pop_front();
  }
}

bool Server::write_ready(Session& session) {
  while (!session.out.empty()) {
    const ssize_t n = ::send(session.fd.get(), session.out.data(),
                             session.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      session.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // EPIPE and friends: the reader is gone
  }
  return true;
}

bool Server::done_sending(const Session& session) const {
  return (session.read_done || draining_) && session.inflight.empty() &&
         session.out.empty();
}

void Server::drop_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  // Cancel what is still unfinished: nobody is left to read the
  // results, and a disconnected tenant should not keep eating pool
  // time. Completed slots just vanish with the session.
  for (Slot& slot : it->second.inflight) {
    if (slot.handle.valid() && !slot.handle.ready()) slot.handle.cancel();
  }
  sessions_.erase(it);
}

void Server::run() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> owners;  // 0 = wake pipe / listener
  for (;;) {
    if (!draining_ &&
        (stop_requested_.load(std::memory_order_relaxed) ||
         (options_.interrupted && options_.interrupted()))) {
      begin_drain();
    }
    if (draining_) {
      // Every handle resolved in begin_drain: serialize and flush what
      // remains, shed finished sessions, and poll only for writability.
      std::vector<std::uint64_t> finished;
      for (auto& [id, session] : sessions_) {
        collect_finished(session);
        if (!write_ready(session) || done_sending(session)) {
          finished.push_back(id);
        }
      }
      for (const std::uint64_t id : finished) drop_session(id);
      if (sessions_.empty()) return;
    }

    fds.clear();
    owners.clear();
    fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    owners.push_back(0);
    if (!draining_ && listen_.valid()) {
      fds.push_back(pollfd{listen_.get(), POLLIN, 0});
      owners.push_back(0);
    }
    for (auto& [id, session] : sessions_) {
      short events = 0;
      if (!draining_ && !session.read_done) events |= POLLIN;
      if (!session.out.empty()) events |= POLLOUT;
      // A session waiting only on job completions has no events: the
      // self-pipe wakes us for it.
      if (events == 0) continue;
      fds.push_back(pollfd{session.fd.get(), events, 0});
      owners.push_back(id);
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: re-check interrupted()
      APCC_CHECK(false, std::string("poll: ") + std::strerror(errno));
    }

    if (fds[0].revents != 0) {
      char drain[256];
      while (::read(wake_read_.get(), drain, sizeof(drain)) > 0) {
      }
      std::vector<std::uint64_t> ready;
      {
        const std::lock_guard<std::mutex> lock(ready_mutex_);
        ready.swap(ready_);
      }
      for (const std::uint64_t id : ready) {
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) continue;  // dropped meanwhile
        collect_finished(it->second);
        if (!write_ready(it->second) || done_sending(it->second)) {
          drop_session(id);
        }
      }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (owners[i] == 0) {
        accept_ready();
        continue;
      }
      const auto it = sessions_.find(owners[i]);
      if (it == sessions_.end()) continue;  // dropped by the pipe pass
      Session& session = it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0 &&
          !session.read_done) {
        alive = read_ready(session);
      }
      if (alive && (fds[i].revents & POLLOUT) != 0) {
        alive = write_ready(session);
      }
      if (!alive || done_sending(session)) drop_session(owners[i]);
    }
  }
}

}  // namespace apcc::net
