// net::Server -- the concurrent TCP front door over serving::Service.
//
// `apcc_cli serve --listen <port>` promotes the stdin/stdout wire
// stream to a socket: any number of clients connect, each connection
// is one *session* speaking exactly the stdin protocol -- wire job
// records in, wire result records out -- with the same statuses
// (ok / error / rejected / cancelled / deadline-exceeded) unchanged on
// the wire. Structure:
//
//  * **One IO thread.** run() owns a poll() loop over the listener,
//    every session socket, and a self-pipe. All session state is
//    touched only from that thread; the only cross-thread structure is
//    the completion queue the self-pipe drains. (TSan runs the whole
//    loopback suite; keeping the server single-threaded is what makes
//    that cheap.) Sockets are nonblocking throughout -- a slow client
//    never stalls the loop, let alone another client.
//  * **Per-session ordering.** Each session numbers its jobs 1,2,...
//    in arrival order and emits exactly one result record per job *in
//    that order*, each the moment its job retires (and every earlier
//    record is out) -- the stdin contract, per connection. Jobs from
//    different sessions interleave freely: ordering is a session
//    property, never a server-wide barrier.
//  * **Per-client submission contexts.** A record that carries no
//    client tag inherits the session's tag ("conn-<n>"), so admission
//    (ServiceLimits::max_queued_per_client) and the pool's weighted
//    fair share see one tenant per connection by default; an explicit
//    `client` line overrides (several connections may share a tenant).
//    Result records echo the tag that was actually used.
//  * **Event-driven write-back.** JobHandle::on_ready callbacks (fired
//    on pool threads) enqueue the session id and nudge the self-pipe;
//    the IO thread then drains each nudged session's in-order prefix
//    of finished jobs. No thread ever blocks in wait().
//  * **Errors.** A record that parses but cannot run (unknown
//    workload, invalid spec) occupies its slot with a `status error`
//    record -- the session keeps going, exactly like stdin serve. A
//    *framing* error (garbage between records, oversized or truncated
//    record) is fatal to that session only: one final `status error`
//    record explains it, accepted jobs still deliver their results,
//    then the server closes the connection. Disconnects cancel the
//    session's unfinished jobs (nobody is left to read the results).
//  * **Drain.** request_stop() -- or the interrupted() hook, polled
//    after every wakeup so a SIGTERM'd poll() reacts immediately --
//    stops accept and reads, drains the service (in-flight jobs
//    finish, still-queued ones resolve cancelled -- the stdin SIGTERM
//    semantics, over live sockets), flushes every session's remaining
//    records, then run() returns. Every accepted job gets exactly one
//    record.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/framer.hpp"
#include "net/socket.hpp"
#include "serving/service.hpp"

namespace apcc::net {

struct ServerOptions {
  /// IPv4 dotted quad to bind; loopback by default (exposing the front
  /// door beyond the host is an explicit decision).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Per-session framing bound (see FramerOptions).
  std::size_t max_record_bytes = 1 << 20;
  /// Called on the IO thread for every parsed job record before
  /// submit(): resolve workload references (register them with the
  /// Service), apply server-side policy. A throw resolves the record
  /// as a `status error` result. Null = submit specs as-is.
  std::function<void(serving::JobSpec&)> prepare;
  /// Polled after every poll() wakeup: true begins the graceful drain.
  /// The hook is how a signal handler's flag reaches the loop (the
  /// handler itself can only set the flag; EINTR does the waking).
  std::function<bool()> interrupted;
};

class Server {
 public:
  /// Binds and listens immediately (throws CheckError on failure);
  /// serving starts when run() is called.
  Server(serving::Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the kernel's pick when options.port was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// "host:port", as printed by `serve --listen`.
  [[nodiscard]] std::string address() const;

  /// Serve until a graceful drain completes. Blocking: the calling
  /// thread becomes the IO thread. Call once.
  void run();

  /// Begin the graceful drain from any thread (idempotent,
  /// non-blocking; run() returns once the drain finishes). Not
  /// async-signal-safe -- from a signal handler, set a flag and let
  /// options.interrupted report it.
  void request_stop();

 private:
  /// One job slot of a session, in submission order. An invalid handle
  /// means the job never reached the pool (parse / prepare / submit
  /// error); `error` holds the record's message instead.
  struct Slot {
    std::uint64_t seq = 0;
    std::string client;
    serving::JobHandle<serving::JobResult> handle;
    std::string error;
  };

  /// One connection's state. Only the IO thread touches it.
  struct Session {
    Fd fd;
    std::uint64_t id = 0;
    std::string tag;  // default client tag: "conn-<id>"
    RecordFramer framer;
    std::uint64_t seq = 0;  // per-session submission sequence numbers
    std::deque<Slot> inflight;
    std::string out;  // serialized records not yet written
    /// Read side is done: peer half-closed (shutdown(SHUT_WR)) or a
    /// fatal framing error. Remaining slots still resolve and flush;
    /// the fd closes once nothing is left to send.
    bool read_done = false;
  };

  void accept_ready();
  /// Drain readable bytes into the session's framer and submit every
  /// complete record. Returns false when the session died (peer reset)
  /// and must be dropped.
  [[nodiscard]] bool read_ready(Session& session);
  /// Cut and submit records the framer has complete. A framing error
  /// appends one final `status error` slot and marks the read side
  /// done (the session switches to flush-then-close).
  void pump_records(Session& session);
  /// Submit one raw record into a slot (never throws: every failure
  /// becomes the slot's error record).
  void submit_record(Session& session, const serving::wire::RawRecord& raw);
  /// Serialize the in-order prefix of finished slots into `out`.
  void collect_finished(Session& session);
  /// Nonblocking flush of `out`. Returns false when the session died.
  [[nodiscard]] bool write_ready(Session& session);
  /// Cancel unfinished jobs and erase the session.
  void drop_session(std::uint64_t id);
  /// True when the session has nothing more to send and never will.
  [[nodiscard]] bool done_sending(const Session& session) const;
  void begin_drain();
  /// Completion-queue push (any thread) + self-pipe nudge.
  void notify_ready(std::uint64_t session_id);

  serving::Service& service_;
  const ServerOptions options_;
  Fd listen_;
  std::uint16_t port_ = 0;
  Fd wake_read_;
  Fd wake_write_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  std::uint64_t next_session_ = 0;
  std::map<std::uint64_t, Session> sessions_;

  /// Sessions whose jobs resolved since the last drain of the pipe.
  /// The one structure shared with pool threads.
  std::mutex ready_mutex_;
  std::vector<std::uint64_t> ready_;
};

}  // namespace apcc::net
