#include "core/report.hpp"

#include "support/strings.hpp"
#include "support/table.hpp"

namespace apcc::core {

std::string render_comparison(const std::vector<ReportRow>& rows) {
  TextTable t;
  t.row()
      .cell("config")
      .cell("cycles")
      .cell("slowdown")
      .cell("peak-mem")
      .cell("peak-saving")
      .cell("avg-saving")
      .cell("excepts")
      .cell("decomp")
      .cell("deletes")
      .cell("stall-cyc");
  for (const auto& row : rows) {
    const auto& r = row.result;
    t.row()
        .cell(row.label)
        .cell(r.total_cycles)
        .cell(r.slowdown(), 3)
        .cell(human_bytes(r.peak_occupancy_bytes))
        .cell(percent(r.peak_saving()))
        .cell(percent(r.avg_saving()))
        .cell(r.exceptions)
        .cell(r.demand_decompressions + r.predecompressions)
        .cell(r.deletions)
        .cell(r.stall_cycles);
  }
  return t.render();
}

std::string render_memory_sweep(const std::vector<ReportRow>& rows) {
  TextTable t;
  t.row()
      .cell("config")
      .cell("peak-mem")
      .cell("avg-mem")
      .cell("peak-saving")
      .cell("avg-saving")
      .cell("slowdown");
  for (const auto& row : rows) {
    const auto& r = row.result;
    t.row()
        .cell(row.label)
        .cell(human_bytes(r.peak_occupancy_bytes))
        .cell(human_bytes(static_cast<std::uint64_t>(r.avg_occupancy_bytes)))
        .cell(percent(r.peak_saving()))
        .cell(percent(r.avg_saving()))
        .cell(r.slowdown(), 3);
  }
  return t.render();
}

}  // namespace apcc::core
