// CSV export of experiment results, for plotting outside the repo.
#pragma once

#include <string>
#include <vector>

#include "core/report.hpp"

namespace apcc::core {

/// Render rows as CSV with a fixed header:
/// label,total_cycles,baseline_cycles,slowdown,peak_bytes,avg_bytes,
/// compressed_area_bytes,original_bytes,codec_ratio,exceptions,
/// demand_decompressions,predecompressions,deletions,evictions,
/// stall_cycles
[[nodiscard]] std::string to_csv(const std::vector<ReportRow>& rows);

}  // namespace apcc::core
