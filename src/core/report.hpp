// Standardised experiment reporting: one row per (label, RunResult).
//
// Every bench binary prints through this so the tables stay comparable
// across experiments (and with EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "sim/result.hpp"

namespace apcc::core {

/// One labelled result row.
struct ReportRow {
  std::string label;
  sim::RunResult result;
};

/// Render the standard comparison table:
/// label | cycles | slowdown | peak mem | peak saving | avg saving |
/// exceptions | decompressions | deletions | stalls.
[[nodiscard]] std::string render_comparison(const std::vector<ReportRow>& rows);

/// Render a compact memory-focused table (for the k-sweep experiments).
[[nodiscard]] std::string render_memory_sweep(
    const std::vector<ReportRow>& rows);

}  // namespace apcc::core
