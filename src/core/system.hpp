// CodeCompressionSystem: the one-shot APCC API.
//
// Wraps the full pipeline -- CFG, per-block compression, runtime policy,
// and the three-thread execution engine -- behind one object. This is
// the synchronous, build-per-call veneer: each from_workload call
// compresses the image afresh and each run owns its engine state. For
// repeated submissions over a persistent workload set -- cached
// compressed images, cached frontier geometry, several grids in flight
// on one shared pool -- use serving::Service (docs/API.md), for which
// these entry points are the kept-for-compatibility reference: a
// Service job's outcome is byte-identical to the equivalent call here.
//
//   auto workload = workloads::make_workload(WorkloadKind::kGsmLike);
//   core::SystemConfig config;
//   config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
//   config.policy.compress_k = 2;
//   auto system = core::CodeCompressionSystem::from_workload(workload, config);
//   sim::RunResult result = system.run();
//   std::cout << result.summary();
//
// Systems are immutable after construction; run() may be called multiple
// times (each run gets fresh runtime state) and with different traces.
#pragma once

#include <functional>
#include <memory>

#include "cfg/cfg.hpp"
#include "runtime/block_image.hpp"
#include "sim/engine.hpp"
#include "sweep/campaign.hpp"
#include "sweep/sweep.hpp"
#include "workloads/suite.hpp"

namespace apcc::core {

/// Everything configurable about an APCC deployment.
struct SystemConfig {
  compress::CodecKind codec = compress::CodecKind::kSharedHuffman;
  runtime::Policy policy{};
  runtime::CostModel costs{};
  memory::FitPolicy fit = memory::FitPolicy::kFirstFit;
  /// Debug cross-check paths (see sim::EngineConfig).
  bool reference_scans = false;
  bool reference_frontiers = false;
};

/// The engine knob subset of a SystemConfig -- the one mapping every
/// layer (CodeCompressionSystem, serving::Service cells, the CLI's grid
/// builder) uses, so they cannot drift field by field.
[[nodiscard]] sim::EngineConfig engine_config(const SystemConfig& config);

class CodeCompressionSystem {
 public:
  /// Build from an assembled workload: uses its CFG, image bytes, and
  /// (by default) its executed trace.
  [[nodiscard]] static CodeCompressionSystem from_workload(
      const workloads::Workload& workload, SystemConfig config = {});

  /// Build from a bare CFG; block bytes come from `provider`.
  [[nodiscard]] static CodeCompressionSystem from_cfg(
      cfg::Cfg cfg,
      const std::function<compress::Bytes(const cfg::BasicBlock&)>& provider,
      SystemConfig config = {});

  /// Simulate the default trace (the workload's executed access pattern).
  [[nodiscard]] sim::RunResult run() const;

  /// Simulate an explicit trace.
  [[nodiscard]] sim::RunResult run(const cfg::BlockTrace& trace) const;

  /// Like run(), but streaming engine events into `sink`.
  [[nodiscard]] sim::RunResult run_with_events(const cfg::BlockTrace& trace,
                                               sim::EventSink sink) const;

  /// Run a policy grid over this system's image and default trace,
  /// sharded across worker threads (sweep::run_sweep). Every task shares
  /// the immutable image; outcomes come back in task order, identical to
  /// running the grid sequentially.
  [[nodiscard]] std::vector<sweep::SweepOutcome> run_sweep(
      const std::vector<sweep::SweepTask>& tasks,
      const sweep::SweepOptions& options = {}) const;

  /// Same, over an explicit trace.
  [[nodiscard]] std::vector<sweep::SweepOutcome> run_sweep(
      const cfg::BlockTrace& trace, const std::vector<sweep::SweepTask>& tasks,
      const sweep::SweepOptions& options = {}) const;

  /// The engine knob subset of this system's config, the starting point
  /// for building SweepTasks that vary one policy axis at a time.
  [[nodiscard]] sim::EngineConfig engine_config() const;

  [[nodiscard]] const cfg::Cfg& cfg() const { return cfg_; }
  [[nodiscard]] const runtime::BlockImage& image() const { return *image_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] const cfg::BlockTrace& default_trace() const {
    return default_trace_;
  }

  /// Static memory summary: minimum image (all compressed) vs original.
  [[nodiscard]] std::uint64_t compressed_image_bytes() const;
  [[nodiscard]] std::uint64_t original_image_bytes() const;

 private:
  CodeCompressionSystem(cfg::Cfg cfg, runtime::BlockImage image,
                        SystemConfig config, cfg::BlockTrace default_trace);

  cfg::Cfg cfg_;
  std::unique_ptr<runtime::BlockImage> image_;
  SystemConfig config_;
  cfg::BlockTrace default_trace_;
};

/// One named system in a suite campaign. The system must outlive the
/// run_campaign call.
struct CampaignEntry {
  std::string name;
  const CodeCompressionSystem* system = nullptr;
};

/// Run `grid` over every entry's image and default trace through
/// sweep::run_campaign: the whole (workload x task) matrix flattened
/// onto one shared pool, with per-(workload, predecompress_k)
/// FrontierCache geometry built once and borrowed by every engine when
/// options.share_frontiers is set. Outcomes come back grouped per
/// entry, in task order, byte-identical to running each entry's grid
/// sequentially.
[[nodiscard]] std::vector<sweep::CampaignResult> run_campaign(
    const std::vector<CampaignEntry>& entries,
    const std::vector<sweep::SweepTask>& grid,
    const sweep::CampaignOptions& options = {});

}  // namespace apcc::core
