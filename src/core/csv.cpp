#include "core/csv.hpp"

#include <sstream>

namespace apcc::core {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string to_csv(const std::vector<ReportRow>& rows) {
  std::ostringstream os;
  os << "label,total_cycles,baseline_cycles,slowdown,peak_bytes,avg_bytes,"
        "compressed_area_bytes,original_bytes,codec_ratio,exceptions,"
        "demand_decompressions,predecompressions,deletions,evictions,"
        "stall_cycles\n";
  for (const auto& row : rows) {
    const auto& r = row.result;
    os << escape(row.label) << ',' << r.total_cycles << ','
       << r.baseline_cycles << ',' << r.slowdown() << ','
       << r.peak_occupancy_bytes << ',' << r.avg_occupancy_bytes << ','
       << r.compressed_area_bytes << ',' << r.original_image_bytes << ','
       << r.codec_ratio << ',' << r.exceptions << ','
       << r.demand_decompressions << ',' << r.predecompressions << ','
       << r.deletions << ',' << r.evictions << ',' << r.stall_cycles
       << '\n';
  }
  return os.str();
}

}  // namespace apcc::core
