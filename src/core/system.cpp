#include "core/system.hpp"

#include "memory/layout.hpp"
#include "support/assert.hpp"

namespace apcc::core {

CodeCompressionSystem::CodeCompressionSystem(cfg::Cfg cfg,
                                             runtime::BlockImage image,
                                             SystemConfig config,
                                             cfg::BlockTrace default_trace)
    : cfg_(std::move(cfg)),
      image_(std::make_unique<runtime::BlockImage>(std::move(image))),
      config_(config),
      default_trace_(std::move(default_trace)) {}

CodeCompressionSystem CodeCompressionSystem::from_workload(
    const workloads::Workload& workload, SystemConfig config) {
  std::vector<compress::Bytes> bytes = workload.block_bytes;
  auto codec = compress::make_codec(config.codec, bytes);
  runtime::BlockImage image(workload.cfg, std::move(bytes), std::move(codec));
  return CodeCompressionSystem(workload.cfg, std::move(image), config,
                               workload.trace);
}

CodeCompressionSystem CodeCompressionSystem::from_cfg(
    cfg::Cfg cfg,
    const std::function<compress::Bytes(const cfg::BasicBlock&)>& provider,
    SystemConfig config) {
  runtime::BlockImage image =
      runtime::make_block_image(cfg, provider, config.codec);
  return CodeCompressionSystem(std::move(cfg), std::move(image), config, {});
}

sim::RunResult CodeCompressionSystem::run() const {
  APCC_CHECK(!default_trace_.empty(),
             "no default trace; pass one to run(trace)");
  return run(default_trace_);
}

sim::EngineConfig engine_config(const SystemConfig& config) {
  sim::EngineConfig engine;
  engine.policy = config.policy;
  engine.costs = config.costs;
  engine.fit = config.fit;
  engine.reference_scans = config.reference_scans;
  engine.reference_frontiers = config.reference_frontiers;
  return engine;
}

sim::EngineConfig CodeCompressionSystem::engine_config() const {
  return core::engine_config(config_);
}

sim::RunResult CodeCompressionSystem::run(const cfg::BlockTrace& trace) const {
  sim::Engine engine(cfg_, *image_, engine_config());
  return engine.run(trace);
}

sim::RunResult CodeCompressionSystem::run_with_events(
    const cfg::BlockTrace& trace, sim::EventSink sink) const {
  sim::Engine engine(cfg_, *image_, engine_config());
  engine.set_event_sink(std::move(sink));
  return engine.run(trace);
}

std::vector<sweep::SweepOutcome> CodeCompressionSystem::run_sweep(
    const std::vector<sweep::SweepTask>& tasks,
    const sweep::SweepOptions& options) const {
  APCC_CHECK(!default_trace_.empty(),
             "no default trace; pass one to run_sweep(trace, tasks)");
  return run_sweep(default_trace_, tasks, options);
}

std::vector<sweep::SweepOutcome> CodeCompressionSystem::run_sweep(
    const cfg::BlockTrace& trace, const std::vector<sweep::SweepTask>& tasks,
    const sweep::SweepOptions& options) const {
  return sweep::run_sweep(cfg_, *image_, trace, tasks, options);
}

std::vector<sweep::CampaignResult> run_campaign(
    const std::vector<CampaignEntry>& entries,
    const std::vector<sweep::SweepTask>& grid,
    const sweep::CampaignOptions& options) {
  std::vector<sweep::CampaignWorkload> workloads;
  workloads.reserve(entries.size());
  for (const CampaignEntry& entry : entries) {
    APCC_CHECK(entry.system != nullptr,
               "campaign entry '" + entry.name + "' has no system");
    APCC_CHECK(!entry.system->default_trace().empty(),
               "campaign entry '" + entry.name + "' has no default trace");
    workloads.push_back(sweep::CampaignWorkload{
        entry.name, &entry.system->cfg(), &entry.system->image(),
        &entry.system->default_trace()});
  }
  return sweep::run_campaign(workloads, grid, options);
}

std::uint64_t CodeCompressionSystem::compressed_image_bytes() const {
  const memory::MemoryLayout layout(memory::layout_slots(image_->slot_sizes()),
                                    memory::MemoryLayout::kUnbounded);
  return layout.compressed_area_bytes();
}

std::uint64_t CodeCompressionSystem::original_image_bytes() const {
  return cfg_.total_code_bytes();
}

}  // namespace apcc::core
