// Graph analyses over the CFG.
//
// The load-bearing primitive for the paper is `frontier_within`: the set
// of blocks whose entry is at most k edges away from the exit of a given
// block. It drives both k-edge pre-decompression variants (§4). The rest
// (RPO, dominators, natural loops) supports workload characterisation,
// static prediction and tests.
#pragma once

#include <optional>
#include <vector>

#include "cfg/cfg.hpp"

namespace apcc::cfg {

/// Blocks in reverse post-order from the entry. Unreachable blocks are
/// appended at the end in id order so every block appears exactly once.
[[nodiscard]] std::vector<BlockId> reverse_post_order(const Cfg& cfg);

/// Immediate dominators (Cooper–Harvey–Kennedy iterative algorithm).
/// idom[entry] == entry; unreachable blocks get kInvalidBlock.
[[nodiscard]] std::vector<BlockId> immediate_dominators(const Cfg& cfg);

/// True if `a` dominates `b` under the given idom tree.
[[nodiscard]] bool dominates(const std::vector<BlockId>& idom, BlockId a,
                             BlockId b);

/// A natural loop: back edge target (header) plus its body blocks.
struct NaturalLoop {
  BlockId header = kInvalidBlock;
  std::vector<BlockId> body;  // sorted, includes header

  [[nodiscard]] bool contains(BlockId b) const;
};

/// All natural loops (one per back edge, loops with the same header are
/// merged).
[[nodiscard]] std::vector<NaturalLoop> natural_loops(const Cfg& cfg);

/// Loop nesting depth per block (0 = not in any loop).
[[nodiscard]] std::vector<unsigned> loop_depths(const Cfg& cfg);

/// Blocks whose entry is reachable from the exit of `from` by traversing
/// between 1 and k edges (paper §4: "at most k edges away from the exit of
/// the currently processed block"). `from` itself is included only if a
/// cycle of length <= k returns to it. Sorted by block id.
[[nodiscard]] std::vector<BlockId> frontier_within(const Cfg& cfg,
                                                   BlockId from, unsigned k);

/// A frontier block together with its distance from the exit of the
/// query block (the number of edges on the shortest path, in [1, k]).
struct FrontierEntry {
  BlockId block = kInvalidBlock;
  unsigned distance = 0;
};

/// `frontier_within` plus each block's edge distance, from one bounded
/// BFS, sorted by (distance, id) -- the planner's request order. The
/// blocks are exactly frontier_within(cfg, from, k), and each distance
/// equals edge_distance(cfg, from, block).
[[nodiscard]] std::vector<FrontierEntry> frontier_distances(const Cfg& cfg,
                                                            BlockId from,
                                                            unsigned k);

/// Minimum number of edges on a non-empty path from `from` to `to`;
/// nullopt if unreachable. For from == to this is the shortest cycle
/// through `from` (nullopt when no cycle returns to it), consistent with
/// frontier_within's treatment of self-reachability.
[[nodiscard]] std::optional<unsigned> edge_distance(const Cfg& cfg,
                                                    BlockId from, BlockId to);

/// Expected-visit score of each block within k steps of a Markov walk
/// starting at `from` (edge probabilities must be normalised). Used by the
/// profile-guided predictor of pre-decompress-single: the block with the
/// highest score among the frontier is the predicted next decompression
/// target. Scores can exceed 1 for blocks revisited by short cycles.
struct ReachScore {
  BlockId block = kInvalidBlock;
  double score = 0.0;
  unsigned min_distance = 0;
};
[[nodiscard]] std::vector<ReachScore> reach_scores(const Cfg& cfg,
                                                   BlockId from, unsigned k);

}  // namespace apcc::cfg
