#include "cfg/trace.hpp"

namespace apcc::cfg {

BlockTraceBuilder::BlockTraceBuilder(const Cfg& cfg,
                                     std::span<const BlockId> word_to_block)
    : cfg_(cfg), word_to_block_(word_to_block.begin(), word_to_block.end()) {}

void BlockTraceBuilder::on_pc(std::uint32_t word) {
  APCC_CHECK(word < word_to_block_.size(), "pc outside mapped image");
  const BlockId b = word_to_block_[word];
  APCC_CHECK(b != kInvalidBlock, "pc in unmapped word");
  const bool entered_new_block = (b != current_);
  const bool reentered_same_block =
      (b == current_ && word == cfg_.block(b).first_word);
  if (entered_new_block || reentered_same_block) {
    current_ = b;
    trace_.push_back(b);
  }
}

void validate_trace(const Cfg& cfg, const BlockTrace& trace) {
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const BlockId from = trace[i];
    const BlockId to = trace[i + 1];
    APCC_CHECK(from < cfg.block_count() && to < cfg.block_count(),
               "trace block id out of range");
    if (cfg.block(from).has_indirect_successors) continue;
    APCC_CHECK(cfg.find_edge(from, to) != Cfg::kNoEdge,
               "trace transition " + std::to_string(from) + " -> " +
                   std::to_string(to) + " has no CFG edge");
  }
}

}  // namespace apcc::cfg
