#include "cfg/cfg.hpp"

#include <cmath>

namespace apcc::cfg {

const char* edge_kind_name(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kFallThrough: return "fallthrough";
    case EdgeKind::kBranchTaken: return "taken";
    case EdgeKind::kJump: return "jump";
    case EdgeKind::kCall: return "call";
    case EdgeKind::kReturn: return "return";
  }
  return "?";
}

BlockId Cfg::add_block(std::uint32_t first_word, std::uint32_t word_count,
                       std::string note) {
  const auto id = static_cast<BlockId>(blocks_.size());
  BasicBlock b;
  b.id = id;
  b.first_word = first_word;
  b.word_count = word_count;
  b.note = std::move(note);
  blocks_.push_back(std::move(b));
  if (entry_ == kInvalidBlock) {
    entry_ = id;
  }
  return id;
}

EdgeId Cfg::add_edge(BlockId from, BlockId to, EdgeKind kind,
                     double probability) {
  APCC_CHECK(from < blocks_.size() && to < blocks_.size(),
             "edge endpoint out of range");
  for (const EdgeId e : blocks_[from].out_edges) {
    APCC_CHECK(!(edges_[e].to == to && edges_[e].kind == kind),
               "duplicate edge");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, kind, probability});
  blocks_[from].out_edges.push_back(id);
  blocks_[to].in_edges.push_back(id);
  return id;
}

const BasicBlock& Cfg::block(BlockId id) const {
  APCC_CHECK(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

BasicBlock& Cfg::block(BlockId id) {
  APCC_CHECK(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

const Edge& Cfg::edge(EdgeId id) const {
  APCC_CHECK(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

Edge& Cfg::edge(EdgeId id) {
  APCC_CHECK(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

void Cfg::set_entry(BlockId id) {
  APCC_CHECK(id < blocks_.size(), "entry id out of range");
  entry_ = id;
}

std::vector<BlockId> Cfg::successor_ids(BlockId id) const {
  std::vector<BlockId> out;
  out.reserve(block(id).out_edges.size());
  for (const EdgeId e : block(id).out_edges) {
    out.push_back(edges_[e].to);
  }
  return out;
}

std::vector<BlockId> Cfg::predecessor_ids(BlockId id) const {
  std::vector<BlockId> out;
  out.reserve(block(id).in_edges.size());
  for (const EdgeId e : block(id).in_edges) {
    out.push_back(edges_[e].from);
  }
  return out;
}

EdgeId Cfg::find_edge(BlockId from, BlockId to) const {
  for (const EdgeId e : block(from).out_edges) {
    if (edges_[e].to == to) return e;
  }
  return kNoEdge;
}

void Cfg::normalize_probabilities() {
  for (auto& b : blocks_) {
    if (b.out_edges.empty()) continue;
    double assigned = 0.0;
    std::size_t unset = 0;
    for (const EdgeId e : b.out_edges) {
      if (edges_[e].probability > 0.0) {
        assigned += edges_[e].probability;
      } else {
        ++unset;
      }
    }
    if (unset > 0) {
      const double residual = assigned < 1.0 ? (1.0 - assigned) : 0.0;
      const double each = residual / static_cast<double>(unset);
      for (const EdgeId e : b.out_edges) {
        if (edges_[e].probability <= 0.0) {
          edges_[e].probability = each;
        }
      }
      assigned += residual;
    }
    // Rescale so probabilities sum to exactly 1.
    if (assigned > 0.0) {
      for (const EdgeId e : b.out_edges) {
        edges_[e].probability /= assigned;
      }
    } else {
      const double each = 1.0 / static_cast<double>(b.out_edges.size());
      for (const EdgeId e : b.out_edges) {
        edges_[e].probability = each;
      }
    }
  }
}

std::uint64_t Cfg::total_code_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : blocks_) {
    total += b.size_bytes();
  }
  return total;
}

void Cfg::validate() const {
  APCC_ASSERT(entry_ == kInvalidBlock || entry_ < blocks_.size(),
              "entry out of range");
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const auto& b = blocks_[i];
    APCC_ASSERT(b.id == i, "block id mismatch");
    for (const EdgeId e : b.out_edges) {
      APCC_ASSERT(e < edges_.size(), "out-edge id out of range");
      APCC_ASSERT(edges_[e].from == b.id, "out-edge from mismatch");
    }
    for (const EdgeId e : b.in_edges) {
      APCC_ASSERT(e < edges_.size(), "in-edge id out of range");
      APCC_ASSERT(edges_[e].to == b.id, "in-edge to mismatch");
    }
  }
  for (const auto& e : edges_) {
    APCC_ASSERT(e.from < blocks_.size() && e.to < blocks_.size(),
                "edge endpoint out of range");
    APCC_ASSERT(std::isfinite(e.probability) && e.probability >= 0.0,
                "edge probability must be finite and non-negative");
  }
}

}  // namespace apcc::cfg
