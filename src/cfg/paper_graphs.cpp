#include "cfg/paper_graphs.hpp"

namespace apcc::cfg {

namespace {

/// Create `count` blocks named B0..B(count-1) laid out back to back.
Cfg make_blocks(std::uint32_t count, const PaperGraphOptions& options) {
  Cfg cfg;
  std::uint32_t word = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t size =
        options.base_words_per_block + (options.vary_sizes ? i : 0);
    cfg.add_block(word, size, "B" + std::to_string(i));
    word += size;
  }
  cfg.set_entry(0);
  return cfg;
}

}  // namespace

Cfg figure1_cfg(const PaperGraphOptions& options) {
  Cfg cfg = make_blocks(6, options);
  cfg.add_edge(0, 1, EdgeKind::kBranchTaken);   // B0 -> B1 (left arm)
  cfg.add_edge(0, 2, EdgeKind::kFallThrough);   // B0 -> B2 (right arm)
  cfg.add_edge(1, 3, EdgeKind::kJump);          // edge "a"
  cfg.add_edge(2, 3, EdgeKind::kJump);          // join
  cfg.add_edge(3, 4, EdgeKind::kBranchTaken);   // edge "b"
  cfg.add_edge(3, 5, EdgeKind::kFallThrough);
  cfg.add_edge(4, 3, EdgeKind::kJump);          // inner loop B3<->B4
  cfg.add_edge(5, 0, EdgeKind::kJump);          // outer loop back to B0
  cfg.normalize_probabilities();
  cfg.validate();
  return cfg;
}

BlockTrace figure1_trace() { return {0, 1, 3, 4}; }

Cfg figure2_cfg(const PaperGraphOptions& options) {
  Cfg cfg = make_blocks(10, options);
  cfg.add_edge(0, 1, EdgeKind::kBranchTaken);   // B0 -> B1
  cfg.add_edge(0, 2, EdgeKind::kFallThrough);   // B0 -> B2
  cfg.add_edge(1, 3, EdgeKind::kBranchTaken);   // B1 -> B3
  cfg.add_edge(1, 4, EdgeKind::kFallThrough);   // B1 -> B4
  cfg.add_edge(2, 4, EdgeKind::kBranchTaken);   // B2 -> B4
  cfg.add_edge(2, 5, EdgeKind::kFallThrough);   // B2 -> B5
  cfg.add_edge(2, 8, EdgeKind::kJump);          // early exit to B8
  cfg.add_edge(2, 9, EdgeKind::kBranchTaken);   // early exit to B9
  cfg.add_edge(3, 6, EdgeKind::kJump);          // B3 -> B6
  cfg.add_edge(4, 6, EdgeKind::kJump);          // B4 -> B6
  cfg.add_edge(5, 6, EdgeKind::kFallThrough);   // B5 -> B6
  cfg.add_edge(6, 7, EdgeKind::kBranchTaken);   // B6 -> B7
  cfg.add_edge(6, 8, EdgeKind::kFallThrough);   // B6 -> B8
  cfg.add_edge(7, 9, EdgeKind::kJump);          // B7 -> B9
  cfg.add_edge(8, 9, EdgeKind::kFallThrough);   // B8 -> B9
  cfg.block(9).is_exit = true;
  cfg.normalize_probabilities();
  cfg.validate();
  return cfg;
}

BlockTrace figure4_trace() { return {0, 2, 5, 6, 8, 9}; }

Cfg figure5_cfg(const PaperGraphOptions& options) {
  Cfg cfg = make_blocks(4, options);
  cfg.add_edge(0, 1, EdgeKind::kBranchTaken);   // B0 -> B1
  cfg.add_edge(0, 2, EdgeKind::kFallThrough);   // B0 -> B2
  cfg.add_edge(1, 0, EdgeKind::kBranchTaken);   // loop back B1 -> B0
  cfg.add_edge(1, 3, EdgeKind::kFallThrough);   // B1 -> B3
  cfg.add_edge(2, 3, EdgeKind::kJump);          // B2 -> B3
  cfg.block(3).is_exit = true;
  cfg.normalize_probabilities();
  cfg.validate();
  return cfg;
}

BlockTrace figure5_trace() { return {0, 1, 0, 1, 3}; }

}  // namespace apcc::cfg
