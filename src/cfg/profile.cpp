#include "cfg/profile.hpp"

#include <algorithm>

namespace apcc::cfg {

EdgeProfile::EdgeProfile(const Cfg& cfg)
    : cfg_(cfg),
      edge_counts_(cfg.edge_count(), 0),
      block_counts_(cfg.block_count(), 0) {}

void EdgeProfile::add_trace(const BlockTrace& trace) {
  if (trace.empty()) return;
  ++block_counts_[trace.front()];
  ++total_;
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    record_transition(trace[i], trace[i + 1]);
    ++block_counts_[trace[i + 1]];
    ++total_;
  }
}

void EdgeProfile::record_transition(BlockId from, BlockId to) {
  APCC_CHECK(from < cfg_.block_count() && to < cfg_.block_count(),
             "transition block id out of range");
  const EdgeId e = cfg_.find_edge(from, to);
  if (e == Cfg::kNoEdge) {
    ++unmatched_;
    return;
  }
  ++edge_counts_[e];
}

std::uint64_t EdgeProfile::edge_count(EdgeId e) const {
  APCC_CHECK(e < edge_counts_.size(), "edge id out of range");
  return edge_counts_[e];
}

std::uint64_t EdgeProfile::block_count(BlockId b) const {
  APCC_CHECK(b < block_counts_.size(), "block id out of range");
  return block_counts_[b];
}

void EdgeProfile::apply_to(Cfg& cfg) const {
  APCC_CHECK(cfg.edge_count() == edge_counts_.size(),
             "profile built for a different CFG");
  for (BlockId b = 0; b < cfg.block_count(); ++b) {
    const auto& out = cfg.block(b).out_edges;
    std::uint64_t total = 0;
    for (const EdgeId e : out) total += edge_counts_[e];
    if (total == 0) continue;  // unobserved: keep prior probabilities
    for (const EdgeId e : out) {
      cfg.edge(e).probability = static_cast<double>(edge_counts_[e]) /
                                static_cast<double>(total);
    }
  }
  cfg.normalize_probabilities();
}

EdgeId EdgeProfile::hottest_out_edge(BlockId b) const {
  APCC_CHECK(b < cfg_.block_count(), "block id out of range");
  EdgeId best = Cfg::kNoEdge;
  std::uint64_t best_count = 0;
  for (const EdgeId e : cfg_.block(b).out_edges) {
    if (edge_counts_[e] > best_count) {
      best_count = edge_counts_[e];
      best = e;
    }
  }
  return best;
}

double EdgeProfile::hot_block_coverage(std::size_t n) const {
  if (total_ == 0) return 0.0;
  std::vector<std::uint64_t> counts = block_counts_;
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < std::min(n, counts.size()); ++i) {
    covered += counts[i];
  }
  return static_cast<double>(covered) / static_cast<double>(total_);
}

}  // namespace apcc::cfg
