#include "cfg/analysis.hpp"

#include <algorithm>
#include <climits>
#include <deque>
#include <map>
#include <set>

namespace apcc::cfg {

std::vector<BlockId> reverse_post_order(const Cfg& cfg) {
  const std::size_t n = cfg.block_count();
  std::vector<BlockId> order;
  if (n == 0) return order;
  std::vector<bool> visited(n, false);

  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<BlockId> post;
  post.reserve(n);
  auto dfs = [&](BlockId root) {
    if (visited[root]) return;
    std::vector<std::pair<BlockId, std::size_t>> stack;
    stack.emplace_back(root, 0);
    visited[root] = true;
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      const auto& out = cfg.block(b).out_edges;
      if (next < out.size()) {
        const BlockId succ = cfg.edge(out[next]).to;
        ++next;
        if (!visited[succ]) {
          visited[succ] = true;
          stack.emplace_back(succ, 0);
        }
      } else {
        post.push_back(b);
        stack.pop_back();
      }
    }
  };

  if (cfg.entry() != kInvalidBlock) dfs(cfg.entry());
  order.assign(post.rbegin(), post.rend());
  // Unreachable blocks, in id order, so callers see every block once.
  for (BlockId b = 0; b < n; ++b) {
    if (!visited[b]) order.push_back(b);
  }
  return order;
}

std::vector<BlockId> immediate_dominators(const Cfg& cfg) {
  const std::size_t n = cfg.block_count();
  std::vector<BlockId> idom(n, kInvalidBlock);
  if (n == 0 || cfg.entry() == kInvalidBlock) return idom;

  const std::vector<BlockId> rpo = reverse_post_order(cfg);
  std::vector<std::size_t> rpo_index(n, SIZE_MAX);
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[rpo[i]] = i;
  }

  const BlockId entry = cfg.entry();
  idom[entry] = entry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const BlockId b : rpo) {
      if (b == entry) continue;
      BlockId new_idom = kInvalidBlock;
      for (const BlockId p : cfg.predecessor_ids(b)) {
        if (idom[p] == kInvalidBlock) continue;  // not yet processed
        new_idom = (new_idom == kInvalidBlock) ? p : intersect(p, new_idom);
      }
      if (new_idom != kInvalidBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b) {
  APCC_CHECK(a < idom.size() && b < idom.size(), "block id out of range");
  if (idom[b] == kInvalidBlock) return false;  // b unreachable
  BlockId x = b;
  while (true) {
    if (x == a) return true;
    if (idom[x] == x) return false;  // reached the entry
    x = idom[x];
    if (x == kInvalidBlock) return false;
  }
}

bool NaturalLoop::contains(BlockId b) const {
  return std::binary_search(body.begin(), body.end(), b);
}

std::vector<NaturalLoop> natural_loops(const Cfg& cfg) {
  const auto idom = immediate_dominators(cfg);
  std::map<BlockId, std::set<BlockId>> bodies;  // header -> body
  for (const auto& e : cfg.edges()) {
    if (!dominates(idom, e.to, e.from)) continue;  // not a back edge
    auto& body = bodies[e.to];
    body.insert(e.to);
    // Walk predecessors backwards from the latch, staying off the header.
    std::vector<BlockId> work;
    if (body.insert(e.from).second) work.push_back(e.from);
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      if (b == e.to) continue;
      for (const BlockId p : cfg.predecessor_ids(b)) {
        if (body.insert(p).second) work.push_back(p);
      }
    }
  }
  std::vector<NaturalLoop> loops;
  loops.reserve(bodies.size());
  for (auto& [header, body] : bodies) {
    NaturalLoop loop;
    loop.header = header;
    loop.body.assign(body.begin(), body.end());
    loops.push_back(std::move(loop));
  }
  return loops;
}

std::vector<unsigned> loop_depths(const Cfg& cfg) {
  std::vector<unsigned> depth(cfg.block_count(), 0);
  for (const auto& loop : natural_loops(cfg)) {
    for (const BlockId b : loop.body) {
      ++depth[b];
    }
  }
  return depth;
}

namespace {

/// Shared BFS for the exit-of-`from` metric: every block's minimum edge
/// count from the exit of `from`, bounded to depth `k` (UINT_MAX for
/// unbounded). Direct successors seed at distance 1, so `from` itself
/// only gets a distance if a cycle returns to it -- the shortest cycle
/// length. dist[b] == UINT_MAX means "not reachable within k".
std::vector<unsigned> exit_distances(const Cfg& cfg, BlockId from,
                                     unsigned k) {
  std::vector<unsigned> dist(cfg.block_count(), UINT_MAX);
  if (k == 0) return dist;
  std::deque<BlockId> queue;
  for (const BlockId s : cfg.successor_ids(from)) {
    if (dist[s] == UINT_MAX) {
      dist[s] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const BlockId b = queue.front();
    queue.pop_front();
    if (dist[b] >= k) continue;
    for (const BlockId s : cfg.successor_ids(b)) {
      if (dist[s] == UINT_MAX) {
        dist[s] = dist[b] + 1;
        queue.push_back(s);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<BlockId> frontier_within(const Cfg& cfg, BlockId from,
                                     unsigned k) {
  APCC_CHECK(from < cfg.block_count(), "block id out of range");
  std::vector<BlockId> result;
  if (k == 0) return result;
  // BFS bounded to depth k; `dist` records membership directly, so the
  // id-ordered sweep below yields the sorted frontier. `from` enters the
  // result only if re-reached through a cycle of length <= k.
  const std::vector<unsigned> dist = exit_distances(cfg, from, k);
  for (BlockId b = 0; b < cfg.block_count(); ++b) {
    if (dist[b] != UINT_MAX) result.push_back(b);
  }
  return result;
}

std::vector<FrontierEntry> frontier_distances(const Cfg& cfg, BlockId from,
                                              unsigned k) {
  APCC_CHECK(from < cfg.block_count(), "block id out of range");
  std::vector<FrontierEntry> result;
  if (k == 0) return result;
  const std::vector<unsigned> dist = exit_distances(cfg, from, k);
  for (BlockId b = 0; b < cfg.block_count(); ++b) {
    if (dist[b] != UINT_MAX) result.push_back(FrontierEntry{b, dist[b]});
  }
  std::sort(result.begin(), result.end(),
            [](const FrontierEntry& a, const FrontierEntry& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.block < b.block;
            });
  return result;
}

std::optional<unsigned> edge_distance(const Cfg& cfg, BlockId from,
                                      BlockId to) {
  APCC_CHECK(from < cfg.block_count() && to < cfg.block_count(),
             "block id out of range");
  // Seeding from the successors (distance 1) makes from == to mean "the
  // shortest cycle through `from`", matching frontier_within's view of
  // self-reachability instead of the old hard-coded 0.
  std::vector<unsigned> dist(cfg.block_count(), UINT_MAX);
  std::deque<BlockId> queue;
  for (const BlockId s : cfg.successor_ids(from)) {
    if (dist[s] == UINT_MAX) {
      dist[s] = 1;
      if (s == to) return dist[s];
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const BlockId b = queue.front();
    queue.pop_front();
    for (const BlockId s : cfg.successor_ids(b)) {
      if (dist[s] == UINT_MAX) {
        dist[s] = dist[b] + 1;
        if (s == to) return dist[s];
        queue.push_back(s);
      }
    }
  }
  return std::nullopt;
}

std::vector<ReachScore> reach_scores(const Cfg& cfg, BlockId from,
                                     unsigned k) {
  APCC_CHECK(from < cfg.block_count(), "block id out of range");
  const std::size_t n = cfg.block_count();
  // Markov chain power iteration: mass[t][b] = probability the walk is at
  // b after t steps. score(b) = sum over t in [1,k] of mass[t][b], an
  // expected-visit count within k steps.
  std::vector<double> mass(n, 0.0);
  std::vector<double> score(n, 0.0);
  std::vector<unsigned> min_dist(n, UINT_MAX);
  mass[from] = 1.0;
  for (unsigned step = 1; step <= k; ++step) {
    std::vector<double> next(n, 0.0);
    for (BlockId b = 0; b < n; ++b) {
      if (mass[b] <= 0.0) continue;
      for (const EdgeId e : cfg.block(b).out_edges) {
        const auto& edge = cfg.edge(e);
        next[edge.to] += mass[b] * edge.probability;
      }
    }
    for (BlockId b = 0; b < n; ++b) {
      if (next[b] > 0.0) {
        score[b] += next[b];
        if (min_dist[b] == UINT_MAX) min_dist[b] = step;
      }
    }
    mass = std::move(next);
  }
  std::vector<ReachScore> out;
  for (BlockId b = 0; b < n; ++b) {
    if (score[b] > 0.0) {
      out.push_back(ReachScore{b, score[b], min_dist[b]});
    }
  }
  std::sort(out.begin(), out.end(), [](const ReachScore& a,
                                       const ReachScore& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.block < b.block;
  });
  return out;
}

}  // namespace apcc::cfg
