#include "cfg/builder.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/assert.hpp"

namespace apcc::cfg {

namespace {

/// Resolved direct target of a control instruction at `word`, or nullopt.
std::optional<std::uint32_t> direct_target(const isa::Instruction& inst,
                                           std::uint32_t word) {
  const auto& info = isa::opcode_info(inst.opcode);
  if (info.is_branch) {
    return static_cast<std::uint32_t>(
        static_cast<std::int64_t>(word) + 1 + inst.imm);
  }
  if (info.is_jump) {
    return static_cast<std::uint32_t>(inst.imm);
  }
  return std::nullopt;
}

}  // namespace

BuildResult build_cfg(const isa::Program& program) {
  const std::uint32_t n = program.word_count();
  APCC_CHECK(n > 0, "cannot build a CFG for an empty program");

  // Pass 1: find leaders.
  std::set<std::uint32_t> leaders;
  leaders.insert(program.entry_word());
  for (const auto& f : program.functions()) {
    if (f.word_count > 0) leaders.insert(f.first_word);
  }
  for (std::uint32_t w = 0; w < n; ++w) {
    const isa::Instruction inst = program.instruction(w);
    if (!inst.is_control()) continue;
    if (const auto target = direct_target(inst, w)) {
      APCC_CHECK(*target < n, "control target outside image at word " +
                                  std::to_string(w));
      leaders.insert(*target);
    }
    if (w + 1 < n) {
      leaders.insert(w + 1);  // instruction after a control transfer
    }
  }

  // Pass 2: create blocks between consecutive leaders.
  BuildResult result;
  Cfg& cfg = result.cfg;
  std::map<std::uint32_t, BlockId> block_at;  // leader word -> block
  auto it = leaders.begin();
  while (it != leaders.end()) {
    const std::uint32_t first = *it;
    ++it;
    const std::uint32_t end = (it == leaders.end()) ? n : *it;
    APCC_ASSERT(end > first, "empty block span");
    std::string note;
    if (const auto* f = program.function_containing(first);
        f != nullptr && f->first_word == first) {
      note = f->name;
    }
    block_at[first] = cfg.add_block(first, end - first, std::move(note));
  }
  cfg.set_entry(block_at.at(program.entry_word()));

  result.word_to_block.assign(n, kInvalidBlock);
  for (const auto& [first, id] : block_at) {
    const auto& b = cfg.block(id);
    for (std::uint32_t w = b.first_word; w < b.first_word + b.word_count;
         ++w) {
      result.word_to_block[w] = id;
    }
  }

  // Record call sites for return-edge wiring: callee entry word ->
  // list of blocks following a call to it.
  std::map<std::uint32_t, std::vector<BlockId>> resume_blocks_of_callee;

  // Pass 3: edges.
  for (const auto& [first, id] : block_at) {
    const auto& b = cfg.block(id);
    const std::uint32_t last = b.first_word + b.word_count - 1;
    const isa::Instruction term = program.instruction(last);
    const auto& info = isa::opcode_info(term.opcode);

    if (info.is_branch) {
      const auto target = direct_target(term, last);
      APCC_ASSERT(target.has_value(), "branch without target");
      cfg.add_edge(id, block_at.at(*target), EdgeKind::kBranchTaken);
      if (last + 1 < n) {
        const BlockId ft = block_at.at(last + 1);
        if (cfg.find_edge(id, ft) == Cfg::kNoEdge) {
          cfg.add_edge(id, ft, EdgeKind::kFallThrough);
        }
      }
    } else if (info.is_call) {
      const auto target = direct_target(term, last);
      APCC_ASSERT(target.has_value(), "call without target");
      cfg.add_edge(id, block_at.at(*target), EdgeKind::kCall);
      if (last + 1 < n) {
        resume_blocks_of_callee[*target].push_back(block_at.at(last + 1));
      }
    } else if (info.is_jump) {
      const auto target = direct_target(term, last);
      APCC_ASSERT(target.has_value(), "jump without target");
      cfg.add_edge(id, block_at.at(*target), EdgeKind::kJump);
    } else if (info.is_return) {
      // Wired in pass 4 once all call sites are known.
    } else if (info.is_indirect) {
      cfg.block(id).has_indirect_successors = true;
    } else if (info.is_halt) {
      cfg.block(id).is_exit = true;
    } else if (last + 1 < n) {
      // Straight-line fall-through into the next leader.
      cfg.add_edge(id, block_at.at(last + 1), EdgeKind::kFallThrough);
    } else {
      cfg.block(id).is_exit = true;  // runs off the end of the image
    }
  }

  // Pass 4: return edges. A `ret` block of function F flows to every
  // block that resumes after a call to F.
  for (const auto& [first, id] : block_at) {
    const auto& b = cfg.block(id);
    const std::uint32_t last = b.first_word + b.word_count - 1;
    const isa::Instruction term = program.instruction(last);
    if (!isa::opcode_info(term.opcode).is_return) continue;
    const auto* f = program.function_containing(last);
    if (f == nullptr) {
      cfg.block(id).has_indirect_successors = true;
      continue;
    }
    const auto resumes = resume_blocks_of_callee.find(f->first_word);
    if (resumes == resume_blocks_of_callee.end()) {
      // Function never called directly (e.g. the entry function): its
      // return exits the program.
      cfg.block(id).is_exit = true;
      continue;
    }
    for (const BlockId resume : resumes->second) {
      if (cfg.find_edge(id, resume) == Cfg::kNoEdge) {
        cfg.add_edge(id, resume, EdgeKind::kReturn);
      }
    }
  }

  cfg.normalize_probabilities();
  cfg.validate();
  return result;
}

}  // namespace apcc::cfg
