// Control flow graph representation (paper §2).
//
// Each node is a basic block: a straight-line run of instructions with a
// single entry (jump target) and single exit (jump). Directed edges model
// every potential control transfer; probabilities annotate edges for the
// profile-driven predictor used by pre-decompress-single.
//
// A Cfg can be built from an assembled isa::Program (cfg::build_cfg) or
// constructed directly for synthetic graphs (the paper's Figures 1/2/5).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace apcc::cfg {

using BlockId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr BlockId kInvalidBlock =
    std::numeric_limits<BlockId>::max();

/// What kind of control transfer an edge models.
enum class EdgeKind : std::uint8_t {
  kFallThrough,  // sequential flow / branch not taken
  kBranchTaken,  // conditional branch taken
  kJump,         // unconditional direct jump
  kCall,         // call-site block -> callee entry block
  kReturn,       // callee return block -> block after the call site
};

[[nodiscard]] const char* edge_kind_name(EdgeKind kind);

/// A directed CFG edge.
struct Edge {
  BlockId from = kInvalidBlock;
  BlockId to = kInvalidBlock;
  EdgeKind kind = EdgeKind::kFallThrough;
  /// Probability that control leaving `from` takes this edge. Out-edge
  /// probabilities of a block sum to 1 after normalize_probabilities().
  double probability = 0.0;
};

/// A basic block node.
struct BasicBlock {
  BlockId id = kInvalidBlock;
  std::uint32_t first_word = 0;   // word index in the program image
  std::uint32_t word_count = 0;   // straight-line length
  std::string note;               // display name ("B3", function name, ...)
  std::vector<EdgeId> out_edges;  // indices into Cfg::edges()
  std::vector<EdgeId> in_edges;
  bool has_indirect_successors = false;  // jr through unknown target
  bool is_exit = false;                  // ends in halt (program exit)

  [[nodiscard]] std::uint64_t size_bytes() const {
    return std::uint64_t{word_count} * 4;
  }
};

/// The graph. Blocks and edges are stored in flat vectors; ids are stable.
class Cfg {
 public:
  /// Append a block; returns its id.
  BlockId add_block(std::uint32_t first_word, std::uint32_t word_count,
                    std::string note = {});

  /// Append an edge; returns its id. Duplicate (from,to,kind) pairs are
  /// rejected -- the builder must merge parallel edges itself.
  EdgeId add_edge(BlockId from, BlockId to, EdgeKind kind,
                  double probability = 0.0);

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const BasicBlock& block(BlockId id) const;
  [[nodiscard]] BasicBlock& block(BlockId id);
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const {
    return blocks_;
  }

  [[nodiscard]] const Edge& edge(EdgeId id) const;
  [[nodiscard]] Edge& edge(EdgeId id);
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  [[nodiscard]] BlockId entry() const { return entry_; }
  void set_entry(BlockId id);

  /// Successor block ids of `id` (one per out-edge, in insertion order).
  [[nodiscard]] std::vector<BlockId> successor_ids(BlockId id) const;
  [[nodiscard]] std::vector<BlockId> predecessor_ids(BlockId id) const;

  /// Edge from `from` to `to` if one exists (first match).
  [[nodiscard]] EdgeId find_edge(BlockId from, BlockId to) const;
  inline static constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

  /// Give every block's out-edges probabilities summing to 1. Edges whose
  /// probability is unset (0) share the residual mass uniformly.
  void normalize_probabilities();

  /// Total image size covered by the blocks.
  [[nodiscard]] std::uint64_t total_code_bytes() const;

  /// Structural sanity checks; throws AssertionError on corruption.
  void validate() const;

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<Edge> edges_;
  BlockId entry_ = kInvalidBlock;
};

}  // namespace apcc::cfg
