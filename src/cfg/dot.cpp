#include "cfg/dot.hpp"

#include <sstream>

namespace apcc::cfg {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const Cfg& cfg, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& b : cfg.blocks()) {
    os << "  n" << b.id << " [label=\"";
    if (!b.note.empty()) {
      os << escape(b.note);
    } else {
      os << 'B' << b.id;
    }
    if (options.show_sizes) {
      os << "\\n" << b.size_bytes() << " B";
    }
    os << '"';
    if (b.id == cfg.entry()) os << ", penwidth=2";
    if (b.is_exit) os << ", peripheries=2";
    os << "];\n";
  }
  for (const auto& e : cfg.edges()) {
    os << "  n" << e.from << " -> n" << e.to << " [label=\""
       << edge_kind_name(e.kind);
    if (options.show_probabilities) {
      os << "\\np=" << e.probability;
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace apcc::cfg
