// Basic-block access traces -- the paper's "instruction access pattern".
//
// A BlockTrace is the sequence of basic blocks entered by an execution.
// Traces come from two sources: the functional interpreter (real program
// runs, via BlockTraceBuilder) and the profile-driven random walker in
// sim/ (for synthetic workloads).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cfg/cfg.hpp"

namespace apcc::cfg {

/// Sequence of blocks entered, in execution order.
using BlockTrace = std::vector<BlockId>;

/// Converts a per-instruction pc stream into a block-entry trace using a
/// word->block map (from cfg::build_cfg). A block entry is recorded each
/// time execution moves into a different block or re-enters the same
/// block's first word (a self-loop iteration).
class BlockTraceBuilder {
 public:
  explicit BlockTraceBuilder(const Cfg& cfg,
                             std::span<const BlockId> word_to_block);

  /// Feed the next executed word index.
  void on_pc(std::uint32_t word);

  [[nodiscard]] const BlockTrace& trace() const { return trace_; }
  [[nodiscard]] BlockTrace take() { return std::move(trace_); }

 private:
  const Cfg& cfg_;
  std::vector<BlockId> word_to_block_;
  BlockId current_ = kInvalidBlock;
  BlockTrace trace_;
};

/// Verify that consecutive trace entries follow CFG edges (the entry may
/// appear first without a predecessor). Throws CheckError on a violation;
/// used by tests and to validate externally supplied traces.
void validate_trace(const Cfg& cfg, const BlockTrace& trace);

}  // namespace apcc::cfg
