// The example CFG fragments from the paper's figures, reconstructed so
// that every property the prose asserts holds:
//
// Figure 1 (six blocks, two loops): after visiting B1, traversing edges
//   a (B1->B3) and b (B3->B4) makes the 2-edge algorithm compress B1 just
//   before execution enters B4.
//
// Figure 2 (ten blocks): the minimum edge distance from the exit of B1 to
//   the entry of B7 is exactly 3, so with k=3 pre-decompression of B7
//   starts when execution leaves B1. Blocks B4, B5, B8 and B9 are all
//   within 2 edges of the exit of B0, so pre-decompress-all with k=2
//   requests exactly those four when they are the compressed ones.
//   (The scanned figure does not fully determine the edge set; this
//   reconstruction satisfies every constraint stated in the text.)
//
// Figure 5 (four blocks): supports the access pattern B0,B1,B0,B1,B3 whose
//   nine-step memory-image evolution §5 traces with k=2.
#pragma once

#include "cfg/cfg.hpp"
#include "cfg/trace.hpp"

namespace apcc::cfg {

/// Options shared by the figure builders.
struct PaperGraphOptions {
  /// Instruction words per block. Blocks get slightly different sizes
  /// (base + id) so memory numbers are distinguishable in tests.
  std::uint32_t base_words_per_block = 12;
  bool vary_sizes = true;
};

/// Figure 1: B0 {B1|B2} -> B3 -> {B4|B5}; B4->B3 back edge (inner loop),
/// B5->B0 back edge (outer loop). Edge a = B1->B3, edge b = B3->B4.
[[nodiscard]] Cfg figure1_cfg(const PaperGraphOptions& options = {});

/// The execution path discussed for Figure 1: B0, B1, B3, B4.
[[nodiscard]] BlockTrace figure1_trace();

/// Figure 2/4 graph: diamond ladder B0..B9 with early-exit edges
/// B2->B8 and B2->B9 (see header comment for the constraints).
[[nodiscard]] Cfg figure2_cfg(const PaperGraphOptions& options = {});

/// The highlighted Figure 4 path through the Figure 2 graph:
/// B0, B2, B5, B6, B8, B9.
[[nodiscard]] BlockTrace figure4_trace();

/// Figure 5: B0 -> {B1|B2} -> B3, plus back edge B1->B0.
[[nodiscard]] Cfg figure5_cfg(const PaperGraphOptions& options = {});

/// The Figure 5 access pattern: B0, B1, B0, B1, B3.
[[nodiscard]] BlockTrace figure5_trace();

}  // namespace apcc::cfg
