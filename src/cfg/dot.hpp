// Graphviz DOT export of CFGs for debugging and documentation.
#pragma once

#include <string>

#include "cfg/cfg.hpp"

namespace apcc::cfg {

struct DotOptions {
  bool show_probabilities = true;
  bool show_sizes = true;
  const char* graph_name = "cfg";
};

/// Render the CFG as a DOT digraph.
[[nodiscard]] std::string to_dot(const Cfg& cfg, const DotOptions& options = {});

}  // namespace apcc::cfg
