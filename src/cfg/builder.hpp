// CFG construction from an assembled program (leader algorithm).
//
// Produces an interprocedural CFG: call sites get kCall edges to callee
// entries, and every return block of a callee gets kReturn edges back to
// the blocks following each of its call sites. Blocks whose terminator is
// an indirect jump other than `ret` are flagged has_indirect_successors.
#pragma once

#include "cfg/cfg.hpp"
#include "isa/program.hpp"

namespace apcc::cfg {

/// CFG plus the word->block mapping for the image it was built from.
struct BuildResult {
  Cfg cfg;
  std::vector<BlockId> word_to_block;  // one entry per program word
};

/// Build the interprocedural CFG of `program`.
[[nodiscard]] BuildResult build_cfg(const isa::Program& program);

}  // namespace apcc::cfg
