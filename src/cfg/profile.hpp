// Edge profiles: execution-frequency annotations on the CFG.
//
// The pre-decompress-single strategy predicts "the block most likely to be
// reached" (paper §4); with a profile, likelihood comes from observed edge
// frequencies. A profile is gathered from one or more block traces
// (training inputs) and can then be applied to the CFG's edge
// probabilities for use on other inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.hpp"
#include "cfg/trace.hpp"

namespace apcc::cfg {

/// Accumulates block and edge execution counts from traces.
class EdgeProfile {
 public:
  explicit EdgeProfile(const Cfg& cfg);

  /// Record every transition of `trace`.
  void add_trace(const BlockTrace& trace);

  /// Record a single observed transition. Transitions with no matching
  /// CFG edge are counted separately (indirect control).
  void record_transition(BlockId from, BlockId to);

  [[nodiscard]] std::uint64_t edge_count(EdgeId e) const;
  [[nodiscard]] std::uint64_t block_count(BlockId b) const;
  [[nodiscard]] std::uint64_t unmatched_transitions() const {
    return unmatched_;
  }

  /// Total block entries observed.
  [[nodiscard]] std::uint64_t total_entries() const { return total_; }

  /// Overwrite `cfg`'s edge probabilities with the observed frequencies
  /// (blocks never observed keep their existing probabilities), then
  /// re-normalise.
  void apply_to(Cfg& cfg) const;

  /// Most frequently taken out-edge of `b`; Cfg::kNoEdge if unobserved.
  [[nodiscard]] EdgeId hottest_out_edge(BlockId b) const;

  /// Fraction of block entries attributable to the `n` hottest blocks --
  /// a hot/cold skew measure used in workload characterisation.
  [[nodiscard]] double hot_block_coverage(std::size_t n) const;

 private:
  const Cfg& cfg_;
  std::vector<std::uint64_t> edge_counts_;
  std::vector<std::uint64_t> block_counts_;
  std::uint64_t unmatched_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace apcc::cfg
