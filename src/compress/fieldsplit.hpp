// Field-split codec: instruction-aware stream separation + Huffman.
//
// A classic code-compression trick (cf. Lekatsas/Wolf and the stream
// separation in several DATE/CASES-era compressors): fixed-width
// instruction words have per-field statistics -- opcodes cluster, hot
// registers repeat, immediates are small -- so coding each byte *lane*
// of the 32-bit word with its own canonical Huffman table beats one
// table over the interleaved stream.
//
// Lane l of an input holds bytes {l, l+4, l+8, ...}; each lane gets a
// shared CanonicalCode trained over the whole image. Streams carry no
// headers; lanes are concatenated bit-wise in lane order with no
// alignment between them (the decoder knows each lane's length from the
// original size). Inputs whose size is not a multiple of 4 still work:
// lane l simply has ceil((n-l)/4) symbols.
#pragma once

#include <array>

#include "compress/codec.hpp"
#include "compress/huffman.hpp"

namespace apcc::compress {

class FieldSplitCodec final : public Codec {
 public:
  static constexpr std::size_t kLanes = 4;

  /// Train one table per byte lane over `training_blocks`.
  explicit FieldSplitCodec(std::span<const Bytes> training_blocks);

  [[nodiscard]] std::string_view name() const override {
    return "field-split";
  }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  /// Expected bits/symbol of lane `l` under its training distribution
  /// (introspection for tests: lane 3, the opcode-carrying byte in
  /// ERISC-32 little-endian words, should code tightest).
  [[nodiscard]] double lane_expected_bits(std::size_t lane) const;

 private:
  [[nodiscard]] static std::size_t lane_length(std::size_t original_size,
                                               std::size_t lane);

  std::array<std::unique_ptr<CanonicalCode>, kLanes> lanes_;
  std::array<std::array<std::uint64_t, kAlphabetSize>, kLanes> freqs_{};
};

}  // namespace apcc::compress
