// Codec interface for basic-block compression.
//
// The paper is codec-agnostic ("several compression and decompression
// strategies"); APCC ships five codecs spanning the classic code
// compression design space:
//
//   kNull          identity (baseline / plumbing tests)
//   kMtfRle        move-to-front + run-length, cheap and weak
//   kHuffman       canonical Huffman, per-stream table header
//   kSharedHuffman canonical Huffman with one table trained over the whole
//                  image (no per-block header -- the right choice for
//                  small basic blocks)
//   kLzss          LZ77-family sliding window
//   kCodePack      IBM CodePack-style halfword dictionary (two dictionary
//                  classes + raw escape), trained over the image
//   kFieldSplit    per-byte-lane canonical Huffman (instruction field
//                  separation), trained over the image
//   kFpc           frequent-pattern compression: 3-bit prefix per 32-bit
//                  word (zero runs, sign-extended literals, repeated
//                  halfwords, raw), word-at-a-time decode
//   kBdi           base-delta-immediate: per-chunk base + packed narrow
//                  deltas with a zero-immediate second base
//   kAdaptive      per-block best-of meta-codec: 1-byte codec-id header
//                  + the smallest candidate encoding (compress/adaptive.hpp)
//
// Codecs carry a cycle cost model consumed by the simulator; costs scale
// with the *original* byte count, matching how decompressors are bounded
// in practice.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace apcc::compress {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Cycle cost model for the simulator. Costs are per *original* byte.
struct CodecCosts {
  double decompress_cycles_per_byte = 4.0;
  double compress_cycles_per_byte = 8.0;
  std::uint64_t decompress_fixed_cycles = 64;
  std::uint64_t compress_fixed_cycles = 64;

  [[nodiscard]] std::uint64_t decompress_cycles(std::size_t original_bytes) const;
  [[nodiscard]] std::uint64_t compress_cycles(std::size_t original_bytes) const;
};

/// Abstract lossless codec. Implementations must satisfy, for all inputs:
///   decompress(compress(x), x.size()) == x.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compress `input`. Never fails; may expand incompressible input.
  [[nodiscard]] virtual Bytes compress(ByteView input) const = 0;

  /// Decompress `input` into exactly `original_size` bytes. Throws
  /// CheckError on corrupt streams.
  [[nodiscard]] virtual Bytes decompress(ByteView input,
                                         std::size_t original_size) const = 0;

  [[nodiscard]] virtual const CodecCosts& costs() const { return costs_; }
  void set_costs(const CodecCosts& costs) { costs_ = costs; }

 protected:
  CodecCosts costs_{};
};

/// Selector for make_codec.
enum class CodecKind : std::uint8_t {
  kNull,
  kMtfRle,
  kHuffman,
  kSharedHuffman,
  kLzss,
  kCodePack,
  kFieldSplit,
  kFpc,
  kBdi,
  kAdaptive,
};

[[nodiscard]] const char* codec_kind_name(CodecKind kind);

/// Construct a codec. `training_blocks` is the set of byte strings the
/// codec will later see (typically all basic blocks of the image); only
/// the trained codecs (kSharedHuffman, kCodePack) consult it.
[[nodiscard]] std::unique_ptr<Codec> make_codec(
    CodecKind kind, std::span<const Bytes> training_blocks = {});

/// Sum of compressed sizes divided by sum of original sizes (< 1 is good).
[[nodiscard]] double compression_ratio(const Codec& codec,
                                       std::span<const Bytes> blocks);

/// Multi-line usage summary for codecs that track per-pattern or
/// per-candidate statistics (FpcCodec's pattern counts, AdaptiveCodec's
/// selection distribution -- populated by prior compress() calls, e.g.
/// a compression_ratio() pass); empty string for every other codec.
/// The fig3/e4 tables print this under their ratio rows.
[[nodiscard]] std::string usage_summary(const Codec& codec);

}  // namespace apcc::compress
