// CodePack-style halfword dictionary codec.
//
// Models IBM CodePack (Kemp et al., cited as [14] in the paper): the image
// is split into 16-bit units; frequent units are replaced by short
// dictionary indices, the rest are escaped raw. Two dictionary classes:
//
//   tag 00 + 4-bit index   the 16 hottest halfwords       (6 bits)
//   tag 01 + 8-bit index   the next 256 halfwords         (10 bits)
//   tag 1  + 16 raw bits   everything else                (17 bits)
//
// Dictionaries are trained once over the program image and shared by
// compressor and decompressor (they live in ROM on real hardware), so
// streams carry no header. Decode is tag-dispatch table lookups -- the
// cheapest real codec here, mirroring why CodePack suited hardware.
#pragma once

#include <unordered_map>

#include "compress/codec.hpp"

namespace apcc::compress {

class CodePackCodec final : public Codec {
 public:
  /// Train dictionaries over `training_blocks` (halfword frequencies).
  explicit CodePackCodec(std::span<const Bytes> training_blocks);

  [[nodiscard]] std::string_view name() const override { return "codepack"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  static constexpr std::size_t kDictASize = 16;
  static constexpr std::size_t kDictBSize = 256;

  /// Number of trained entries (for introspection/tests).
  [[nodiscard]] std::size_t dict_a_size() const { return dict_a_.size(); }
  [[nodiscard]] std::size_t dict_b_size() const { return dict_b_.size(); }

 private:
  std::vector<std::uint16_t> dict_a_;
  std::vector<std::uint16_t> dict_b_;
  // halfword -> (dictionary class 0/1, index)
  std::unordered_map<std::uint16_t, std::pair<int, std::uint16_t>> lookup_;
};

}  // namespace apcc::compress
