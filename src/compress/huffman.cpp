#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "support/assert.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

namespace {

/// Tree node for the initial (unlimited-depth) Huffman construction.
struct Node {
  std::uint64_t weight = 0;
  int left = -1;    // child indices; -1 marks a leaf
  int right = -1;
  int symbol = -1;  // valid for leaves
};

void collect_depths(const std::vector<Node>& nodes, int index, unsigned depth,
                    CodeLengths& lengths) {
  const Node& n = nodes[static_cast<std::size_t>(index)];
  if (n.symbol >= 0) {
    lengths[static_cast<std::size_t>(n.symbol)] =
        static_cast<std::uint8_t>(std::max(1u, depth));
    return;
  }
  collect_depths(nodes, n.left, depth + 1, lengths);
  collect_depths(nodes, n.right, depth + 1, lengths);
}

/// Scaled Kraft sum: sum over coded symbols of 2^(L - len), where a valid
/// prefix code requires the sum to be <= 2^L.
std::uint64_t kraft_sum(const CodeLengths& lengths) {
  std::uint64_t sum = 0;
  for (const std::uint8_t len : lengths) {
    if (len > 0) {
      sum += std::uint64_t{1} << (kMaxCodeLength - len);
    }
  }
  return sum;
}

}  // namespace

CodeLengths build_code_lengths(
    const std::array<std::uint64_t, kAlphabetSize>& freqs) {
  CodeLengths lengths{};
  std::vector<int> symbols;
  for (std::size_t s = 0; s < kAlphabetSize; ++s) {
    if (freqs[s] > 0) symbols.push_back(static_cast<int>(s));
  }
  if (symbols.empty()) return lengths;
  if (symbols.size() == 1) {
    lengths[static_cast<std::size_t>(symbols[0])] = 1;
    return lengths;
  }

  // Standard greedy tree construction.
  std::vector<Node> nodes;
  nodes.reserve(symbols.size() * 2);
  using Entry = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const int s : symbols) {
    nodes.push_back(Node{freqs[static_cast<std::size_t>(s)], -1, -1, s});
    heap.emplace(nodes.back().weight, static_cast<int>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{wa + wb, a, b, -1});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }
  collect_depths(nodes, heap.top().second, 0, lengths);

  // Length-limit: clamp overlong codes, then restore the Kraft inequality
  // by lengthening the deepest still-shortenable codes (zlib's approach).
  for (auto& len : lengths) {
    if (len > kMaxCodeLength) len = kMaxCodeLength;
  }
  const std::uint64_t budget = std::uint64_t{1} << kMaxCodeLength;
  std::uint64_t sum = kraft_sum(lengths);
  while (sum > budget) {
    // Lengthen the coded symbol with the largest length < kMaxCodeLength;
    // among ties prefer the lowest frequency (least cost).
    int best = -1;
    for (std::size_t s = 0; s < kAlphabetSize; ++s) {
      if (lengths[s] == 0 || lengths[s] >= kMaxCodeLength) continue;
      if (best < 0 || lengths[s] > lengths[static_cast<std::size_t>(best)] ||
          (lengths[s] == lengths[static_cast<std::size_t>(best)] &&
           freqs[s] < freqs[static_cast<std::size_t>(best)])) {
        best = static_cast<int>(s);
      }
    }
    APCC_ASSERT(best >= 0, "length limiting failed to converge");
    sum -= std::uint64_t{1} << (kMaxCodeLength - lengths[static_cast<std::size_t>(best)]);
    ++lengths[static_cast<std::size_t>(best)];
    sum += std::uint64_t{1} << (kMaxCodeLength - lengths[static_cast<std::size_t>(best)]);
  }
  return lengths;
}

CanonicalCode::CanonicalCode(const CodeLengths& lengths,
                             bool build_decode_tables)
    : lengths_(lengths) {
  // Histogram code lengths and verify Kraft.
  std::array<std::uint16_t, kMaxCodeLength + 1> bl_count{};
  for (std::size_t s = 0; s < kAlphabetSize; ++s) {
    const std::uint8_t len = lengths_[s];
    APCC_CHECK(len <= kMaxCodeLength, "code length exceeds limit");
    if (len > 0) {
      ++bl_count[len];
      ++symbol_count_;
    }
  }
  count_ = bl_count;
  if (symbol_count_ == 0) return;
  APCC_CHECK(kraft_sum(lengths_) <= (std::uint64_t{1} << kMaxCodeLength),
             "code lengths violate the Kraft inequality");

  // Canonical first codes per length.
  std::array<std::uint16_t, kMaxCodeLength + 1> next_code{};
  std::uint32_t code = 0;
  for (unsigned bits = 1; bits <= kMaxCodeLength; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = static_cast<std::uint16_t>(code);
    first_code_[bits] = static_cast<std::uint16_t>(code);
  }

  // Sort symbols by (length, symbol value) and assign codes.
  std::uint16_t index = 0;
  for (unsigned bits = 1; bits <= kMaxCodeLength; ++bits) {
    first_index_[bits] = index;
    for (std::size_t s = 0; s < kAlphabetSize; ++s) {
      if (lengths_[s] == bits) {
        sorted_symbols_[index++] = static_cast<std::uint8_t>(s);
        codes_[s] = next_code[bits]++;
      }
    }
  }

  if (build_decode_tables) {
    this->build_decode_tables();
    tables_built_ = true;
  }
}

void CanonicalCode::build_decode_tables() {
  // Pass 1: for every kPrimaryBits-wide prefix shared by codes longer
  // than the primary table resolves, record the deepest code under it --
  // that fixes the subtable's index width.
  std::array<std::uint8_t, (std::size_t{1} << kPrimaryBits)> prefix_len{};
  for (std::size_t s = 0; s < kAlphabetSize; ++s) {
    const unsigned len = lengths_[s];
    if (len <= kPrimaryBits) continue;
    const std::uint32_t prefix = codes_[s] >> (len - kPrimaryBits);
    prefix_len[prefix] =
        std::max<std::uint8_t>(prefix_len[prefix],
                               static_cast<std::uint8_t>(len));
  }
  for (std::size_t p = 0; p < prefix_len.size(); ++p) {
    if (prefix_len[p] == 0) continue;
    const auto sub_bits =
        static_cast<std::uint8_t>(prefix_len[p] - kPrimaryBits);
    primary_[p] = PrimaryEntry{static_cast<std::uint16_t>(sub_.size()),
                               kSubtableTag, sub_bits};
    sub_.resize(sub_.size() + (std::size_t{1} << sub_bits));
  }

  // Pass 2: replicate each code across every table slot it prefixes.
  for (std::size_t s = 0; s < kAlphabetSize; ++s) {
    const unsigned len = lengths_[s];
    if (len == 0) continue;
    const std::uint32_t code = codes_[s];
    if (len <= kPrimaryBits) {
      const std::uint32_t start = code << (kPrimaryBits - len);
      const std::uint32_t span = 1u << (kPrimaryBits - len);
      const PrimaryEntry entry{static_cast<std::uint16_t>(s),
                               static_cast<std::uint8_t>(len), 0};
      std::fill_n(primary_.begin() + start, span, entry);
    } else {
      const PrimaryEntry& head = primary_[code >> (len - kPrimaryBits)];
      const std::uint32_t low = code & ((1u << (len - kPrimaryBits)) - 1u);
      const unsigned spare = head.sub_bits - (len - kPrimaryBits);
      const SubEntry entry{static_cast<std::uint8_t>(s),
                           static_cast<std::uint8_t>(len)};
      std::fill_n(sub_.begin() + head.payload + (low << spare),
                  std::size_t{1} << spare, entry);
    }
  }
}

void CanonicalCode::encode(BitWriter& writer, std::uint8_t symbol) const {
  const std::uint8_t len = lengths_[symbol];
  APCC_CHECK(len > 0, "symbol has no code (not in training data)");
  writer.write_bits(codes_[symbol], len);
}

void CanonicalCode::encode_all(BitWriter& writer, ByteView input) const {
  // Local accumulator of pending code bits, right-aligned. Before an
  // append it holds < 32 bits and a code adds <= kMaxCodeLength == 15,
  // so it never overflows 64; the oldest 32 bits flush in one
  // write_bits call, preserving the per-symbol MSB-first bit order.
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (const std::uint8_t symbol : input) {
    const unsigned len = lengths_[symbol];
    APCC_CHECK(len > 0, "symbol has no code (not in training data)");
    acc = (acc << len) | codes_[symbol];
    acc_bits += len;
    if (acc_bits >= 32) {
      writer.write_bits(static_cast<std::uint32_t>(acc >> (acc_bits - 32)),
                        32);
      acc_bits -= 32;
      acc &= (std::uint64_t{1} << acc_bits) - 1;
    }
  }
  if (acc_bits > 0) {
    writer.write_bits(static_cast<std::uint32_t>(acc), acc_bits);
  }
}

std::uint8_t CanonicalCode::decode_reference(BitReader& reader) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code << 1) | (reader.read_bit() ? 1u : 0u);
    if (count_[len] != 0 && code >= first_code_[len] &&
        code < static_cast<std::uint32_t>(first_code_[len] + count_[len])) {
      return sorted_symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw CheckError("huffman: invalid code prefix (corrupt stream)");
}

double CanonicalCode::expected_bits(
    const std::array<std::uint64_t, kAlphabetSize>& freqs) const {
  std::uint64_t total = 0;
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < kAlphabetSize; ++s) {
    if (freqs[s] == 0) continue;
    total += freqs[s];
    bits += freqs[s] * (lengths_[s] > 0 ? lengths_[s] : 8);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(bits) / static_cast<double>(total);
}

HuffmanCodec::HuffmanCodec() {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 6.0,
                      .compress_cycles_per_byte = 12.0,
                      .decompress_fixed_cycles = 128,
                      .compress_fixed_cycles = 256};
}

Bytes HuffmanCodec::compress(ByteView input) const {
  if (input.empty()) return {};
  std::array<std::uint64_t, kAlphabetSize> freqs{};
  for (const std::uint8_t b : input) ++freqs[b];
  const CodeLengths lengths = build_code_lengths(freqs);
  const CanonicalCode code(lengths, /*build_decode_tables=*/false);

  BitWriter writer;
  // Header: 256 x 4-bit code lengths (fits because kMaxCodeLength == 15).
  for (const std::uint8_t len : lengths) {
    writer.write_bits(len, 4);
  }
  code.encode_all(writer, input);
  return writer.take();
}

Bytes HuffmanCodec::decompress(ByteView input,
                               std::size_t original_size) const {
  if (original_size == 0) return {};
  BitReader reader(input);
  CodeLengths lengths{};
  for (auto& len : lengths) {
    len = static_cast<std::uint8_t>(reader.read_bits(4));
  }
  // The lookup table is rebuilt per stream (the header is per stream);
  // only amortize that on payloads with enough symbols to win. Short
  // blocks decode through the reference path.
  constexpr std::size_t kTableWorthwhileSymbols = 192;
  const CanonicalCode code(lengths,
                           original_size >= kTableWorthwhileSymbols);
  Bytes out;
  out.reserve(original_size);
  for (std::size_t i = 0; i < original_size; ++i) {
    out.push_back(code.decode(reader));
  }
  return out;
}

SharedHuffmanCodec::SharedHuffmanCodec(std::span<const Bytes> training_blocks)
    : code_([&] {
        std::array<std::uint64_t, kAlphabetSize> freqs{};
        for (const auto& block : training_blocks) {
          for (const std::uint8_t b : block) ++freqs[b];
        }
        // Add-one smoothing: every byte value stays encodable even if it
        // never appeared in training (e.g. patched or synthetic blocks).
        std::array<std::uint64_t, kAlphabetSize> smoothed{};
        for (std::size_t s = 0; s < kAlphabetSize; ++s) {
          smoothed[s] = freqs[s] * 16 + 1;
        }
        return CanonicalCode(build_code_lengths(smoothed));
      }()) {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 6.0,
                      .compress_cycles_per_byte = 10.0,
                      .decompress_fixed_cycles = 64,
                      .compress_fixed_cycles = 96};
}

Bytes SharedHuffmanCodec::compress(ByteView input) const {
  if (input.empty()) return {};
  BitWriter writer;
  code_.encode_all(writer, input);
  return writer.take();
}

Bytes SharedHuffmanCodec::decompress(ByteView input,
                                     std::size_t original_size) const {
  if (original_size == 0) return {};
  BitReader reader(input);
  Bytes out;
  out.reserve(original_size);
  for (std::size_t i = 0; i < original_size; ++i) {
    out.push_back(code_.decode(reader));
  }
  return out;
}

}  // namespace apcc::compress
