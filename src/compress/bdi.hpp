// Base-delta-immediate (BDI) compression.
//
// Models Pekhimenko et al.: values inside a small chunk tend to sit in
// a narrow numeric range, so a chunk can be stored as one full-width
// base plus a packed array of narrow deltas. The "immediate" half of
// the name is the second, implicit base of zero: each word either
// deltas off the chunk base or off zero (small constants and pointers
// coexist in one chunk), selected by a per-word mask bit.
//
// The input is split into fixed 32-byte chunks (the last chunk may be
// short); each chunk is encoded independently as a 1-byte mode header
// plus the mode's payload:
//
//   mode 0  zeros     chunk is all zero bytes            (payload: none)
//   mode 1  b8-d1     8-byte base, 1-byte deltas
//   mode 2  b8-d2     8-byte base, 2-byte deltas
//   mode 3  b8-d4     8-byte base, 4-byte deltas
//   mode 4  b4-d1     4-byte base, 1-byte deltas
//   mode 5  b4-d2     4-byte base, 2-byte deltas
//   mode 6  b2-d1     2-byte base, 1-byte deltas
//   mode 7  raw       chunk bytes verbatim (uncompressed fallback)
//
// Delta-mode payload: base (LE) + mask (one bit per word, LSB-first;
// 1 = delta from base, 0 = delta from zero) + one LE two's-complement
// delta per word. The base is the first word whose delta from zero
// does not fit -- deterministic, no search. Per chunk the encoder
// tries every mode in id order and keeps the smallest valid encoding
// (strict improvement, so ties resolve to the lowest mode id); mode 7
// is always valid, so decompress(compress(x), n) == x holds for every
// input. Decode is a header dispatch plus word-at-a-time base+delta
// adds -- no bit-granular extraction at all, the cheapest real decode
// loop in the codec family.
#pragma once

#include <array>
#include <cstddef>

#include "compress/codec.hpp"

namespace apcc::compress {

class BdiCodec final : public Codec {
 public:
  BdiCodec();

  [[nodiscard]] std::string_view name() const override { return "bdi"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  static constexpr std::size_t kChunkBytes = 32;
  static constexpr std::size_t kNumModes = 8;

  [[nodiscard]] static const char* mode_name(std::size_t mode);
};

}  // namespace apcc::compress
