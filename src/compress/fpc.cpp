#include "compress/fpc.hpp"

#include "support/assert.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

namespace {

constexpr unsigned kPrefixBits = 3;
constexpr unsigned kRunBits = 3;  // encodes (run - 1): 1..8 zero words
constexpr std::size_t kMaxZeroRun = 1u << kRunBits;

/// True when `word` round-trips through a `bits`-wide sign-extended
/// literal, i.e. every bit above bit (bits-1) equals the sign bit.
constexpr bool fits_signed(std::uint32_t word, unsigned bits) {
  const std::uint32_t shifted =
      static_cast<std::uint32_t>(static_cast<std::int32_t>(word << (32 - bits)) >>
                                 (32 - bits));
  return shifted == word;
}

/// Expand the low `bits` of `payload` by sign extension.
constexpr std::uint32_t sign_extend(std::uint32_t payload, unsigned bits) {
  return static_cast<std::uint32_t>(
      static_cast<std::int32_t>(payload << (32 - bits)) >> (32 - bits));
}

constexpr std::uint32_t load_word_le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

}  // namespace

FpcCodec::FpcCodec() {
  // Word-at-a-time decode: one 3-bit dispatch plus a shift/mask expand
  // per 4 original bytes (~4 cycles/word). Cheaper than CodePack's
  // per-halfword dictionary lookups (1.2 cyc/B), costlier than a bare
  // memcpy. Encode classifies each word against the pattern ladder
  // (a handful of mask compares), roughly twice the decode work.
  costs_ = CodecCosts{.decompress_cycles_per_byte = 1.0,
                      .compress_cycles_per_byte = 2.0,
                      .decompress_fixed_cycles = 16,
                      .compress_fixed_cycles = 16};
}

const char* FpcCodec::pattern_name(std::size_t pattern) {
  switch (pattern) {
    case kZeroRun: return "zero-run";
    case kSigned4: return "signed-4";
    case kSigned8: return "signed-8";
    case kSigned16: return "signed-16";
    case kRepeatedHalf: return "repeated-half";
    case kRaw: return "raw";
  }
  return "?";
}

std::array<std::uint64_t, FpcCodec::kNumPatterns> FpcCodec::pattern_counts()
    const {
  std::array<std::uint64_t, kNumPatterns> out{};
  for (std::size_t i = 0; i < kNumPatterns; ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Bytes FpcCodec::compress(ByteView input) const {
  BitWriter writer;
  const std::size_t words = input.size() / 4;
  std::array<std::uint64_t, kNumPatterns> counts{};
  std::size_t i = 0;
  while (i < words) {
    const std::uint32_t word = load_word_le(&input[i * 4]);
    if (word == 0) {
      std::size_t run = 1;
      while (i + run < words && run < kMaxZeroRun &&
             load_word_le(&input[(i + run) * 4]) == 0) {
        ++run;
      }
      writer.write_bits(kZeroRun, kPrefixBits);
      writer.write_bits(static_cast<std::uint32_t>(run - 1), kRunBits);
      ++counts[kZeroRun];
      i += run;
      continue;
    }
    if (fits_signed(word, 4)) {
      writer.write_bits(kSigned4, kPrefixBits);
      writer.write_bits(word & 0xfu, 4);
      ++counts[kSigned4];
    } else if (fits_signed(word, 8)) {
      writer.write_bits(kSigned8, kPrefixBits);
      writer.write_bits(word & 0xffu, 8);
      ++counts[kSigned8];
    } else if (fits_signed(word, 16)) {
      writer.write_bits(kSigned16, kPrefixBits);
      writer.write_bits(word & 0xffffu, 16);
      ++counts[kSigned16];
    } else if ((word >> 16) == (word & 0xffffu)) {
      writer.write_bits(kRepeatedHalf, kPrefixBits);
      writer.write_bits(word & 0xffffu, 16);
      ++counts[kRepeatedHalf];
    } else {
      writer.write_bits(kRaw, kPrefixBits);
      writer.write_bits(word, 32);
      ++counts[kRaw];
    }
    ++i;
  }
  // Tail bytes (input not a multiple of 4): raw, prefix-free -- the
  // decoder derives the tail length from original_size.
  for (std::size_t t = words * 4; t < input.size(); ++t) {
    writer.write_byte(input[t]);
  }
  for (std::size_t p = 0; p < kNumPatterns; ++p) {
    if (counts[p] != 0) {
      counts_[p].fetch_add(counts[p], std::memory_order_relaxed);
    }
  }
  return writer.take();
}

Bytes FpcCodec::decompress(ByteView input, std::size_t original_size) const {
  BitReader reader(input);
  Bytes out;
  out.reserve(original_size);
  const std::size_t words = original_size / 4;
  auto push_word = [&out](std::uint32_t word) {
    out.push_back(static_cast<std::uint8_t>(word));
    out.push_back(static_cast<std::uint8_t>(word >> 8));
    out.push_back(static_cast<std::uint8_t>(word >> 16));
    out.push_back(static_cast<std::uint8_t>(word >> 24));
  };
  std::size_t decoded = 0;
  while (decoded < words) {
    const std::uint32_t prefix = reader.read_bits(kPrefixBits);
    switch (prefix) {
      case kZeroRun: {
        const std::size_t run = std::size_t{reader.read_bits(kRunBits)} + 1;
        APCC_CHECK(decoded + run <= words, "fpc: zero run overruns stream");
        for (std::size_t r = 0; r < run; ++r) push_word(0);
        decoded += run;
        break;
      }
      case kSigned4:
        push_word(sign_extend(reader.read_bits(4), 4));
        ++decoded;
        break;
      case kSigned8:
        push_word(sign_extend(reader.read_bits(8), 8));
        ++decoded;
        break;
      case kSigned16:
        push_word(sign_extend(reader.read_bits(16), 16));
        ++decoded;
        break;
      case kRepeatedHalf: {
        const std::uint32_t half = reader.read_bits(16);
        push_word(half | half << 16);
        ++decoded;
        break;
      }
      case kRaw:
        push_word(reader.read_bits(32));
        ++decoded;
        break;
      default:
        APCC_CHECK(false, "fpc: reserved pattern prefix (corrupt stream)");
    }
  }
  for (std::size_t t = words * 4; t < original_size; ++t) {
    out.push_back(reader.read_byte());
  }
  return out;
}

}  // namespace apcc::compress
