// Canonical Huffman coding over the byte alphabet.
//
// Two operating modes:
//
//  * Per-stream (HuffmanCodec): each compressed stream carries its own
//    code-length table (256 x 4-bit lengths = 128 bytes). Correct but the
//    header dominates for small basic blocks.
//
//  * Shared model (SharedHuffmanCodec): one table is trained over the
//    whole program image at build time and held by both compressor and
//    decompressor, so streams carry no header. This matches how embedded
//    code compressors deploy Huffman tables in ROM and is the default
//    codec for APCC experiments.
//
// Codes are canonical (sorted by (length, symbol)), length-limited to
// kMaxCodeLength bits, and decoded with a deflate-style two-level lookup
// table: one peek of kPrimaryBits resolves every code up to that length
// in a single table hit, and longer codes fall through to a per-prefix
// subtable. The first-code/offset method is kept as decode_reference()
// so differential tests can pin the table decoder against it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "compress/codec.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

inline constexpr unsigned kMaxCodeLength = 15;
inline constexpr std::size_t kAlphabetSize = 256;

/// Code lengths per symbol; 0 means the symbol does not occur.
using CodeLengths = std::array<std::uint8_t, kAlphabetSize>;

/// Build length-limited Huffman code lengths from symbol frequencies.
/// Symbols with zero frequency get length 0. If only one distinct symbol
/// occurs it gets length 1.
[[nodiscard]] CodeLengths build_code_lengths(
    const std::array<std::uint64_t, kAlphabetSize>& freqs);

/// A realised canonical code: encode and decode tables.
class CanonicalCode {
 public:
  /// `build_decode_tables` = false skips the lookup-table construction
  /// for encode-only uses (the per-stream compressor); decode() then
  /// transparently falls back to the reference decoder.
  explicit CanonicalCode(const CodeLengths& lengths,
                         bool build_decode_tables = true);

  /// Encode one symbol into the writer (the reference path; the batch
  /// encoder below must produce bit-identical streams).
  void encode(apcc::BitWriter& writer, std::uint8_t symbol) const;

  /// Encode every byte of `input`: the (code, length) pairs are
  /// pre-concatenated through a local 64-bit accumulator and flushed to
  /// the writer 32 bits at a time, so the stream costs one write_bits
  /// call per ~32 output bits instead of one per symbol. Bit-identical
  /// to calling encode() per symbol (differential-tested).
  void encode_all(apcc::BitWriter& writer, ByteView input) const;

  /// Decode one symbol from the reader via the two-level lookup table.
  /// Throws CheckError on invalid prefixes (corrupt stream).
  [[nodiscard]] std::uint8_t decode(apcc::BitReader& reader) const {
    if (!tables_built_) return decode_reference(reader);
    const PrimaryEntry e = primary_[reader.peek_bits(kPrimaryBits)];
    if (e.length != 0 && e.length != kSubtableTag) {
      reader.consume_bits(e.length);
      return static_cast<std::uint8_t>(e.payload);
    }
    if (e.length == kSubtableTag) {
      const std::uint32_t window =
          reader.peek_bits(kPrimaryBits + e.sub_bits);
      const SubEntry s =
          sub_[e.payload + (window & ((1u << e.sub_bits) - 1u))];
      if (s.length != 0) {
        reader.consume_bits(s.length);
        return s.symbol;
      }
    }
    throw CheckError("huffman: invalid code prefix (corrupt stream)");
  }

  /// Bit-at-a-time first-code/offset decoder: the pre-table reference
  /// path, kept for differential tests and as executable documentation.
  [[nodiscard]] std::uint8_t decode_reference(apcc::BitReader& reader) const;

  [[nodiscard]] const CodeLengths& lengths() const { return lengths_; }

  /// Expected bits/symbol under the given frequency distribution.
  [[nodiscard]] double expected_bits(
      const std::array<std::uint64_t, kAlphabetSize>& freqs) const;

  /// Primary decode-table width: codes up to this length resolve with one
  /// table hit; longer ones take one extra subtable hit.
  static constexpr unsigned kPrimaryBits = 10;

 private:
  /// Primary table entry. length semantics: 0 = invalid prefix,
  /// 1..kPrimaryBits = direct hit (payload is the symbol),
  /// kSubtableTag = long code (payload is the base index into sub_ and
  /// sub_bits is that subtable's index width).
  struct PrimaryEntry {
    std::uint16_t payload = 0;
    std::uint8_t length = 0;
    std::uint8_t sub_bits = 0;
  };
  static constexpr std::uint8_t kSubtableTag = 0xff;
  /// Subtable entry; length is the full code length (0 = invalid).
  struct SubEntry {
    std::uint8_t symbol = 0;
    std::uint8_t length = 0;
  };

  void build_decode_tables();

  CodeLengths lengths_{};
  std::array<std::uint16_t, kAlphabetSize> codes_{};   // code value per symbol
  // Reference-decoder tables, indexed by code length 1..kMaxCodeLength.
  std::array<std::uint16_t, kMaxCodeLength + 1> first_code_{};
  std::array<std::uint16_t, kMaxCodeLength + 1> first_index_{};
  std::array<std::uint16_t, kMaxCodeLength + 1> count_{};
  std::array<std::uint8_t, kAlphabetSize> sorted_symbols_{};
  std::size_t symbol_count_ = 0;
  // Table-decoder state.
  bool tables_built_ = false;
  std::array<PrimaryEntry, (std::size_t{1} << kPrimaryBits)> primary_{};
  std::vector<SubEntry> sub_;
};

/// Per-stream canonical Huffman codec (self-describing streams).
class HuffmanCodec final : public Codec {
 public:
  HuffmanCodec();

  [[nodiscard]] std::string_view name() const override { return "huffman"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;
};

/// Shared-model canonical Huffman codec (table trained over the image).
class SharedHuffmanCodec final : public Codec {
 public:
  /// Train the shared table over `training_blocks`. If no training data
  /// is supplied, falls back to a uniform table (8-bit codes).
  explicit SharedHuffmanCodec(std::span<const Bytes> training_blocks);

  [[nodiscard]] std::string_view name() const override {
    return "huffman-shared";
  }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  [[nodiscard]] const CanonicalCode& code() const { return code_; }

 private:
  CanonicalCode code_;
};

}  // namespace apcc::compress
