// Canonical Huffman coding over the byte alphabet.
//
// Two operating modes:
//
//  * Per-stream (HuffmanCodec): each compressed stream carries its own
//    code-length table (256 x 4-bit lengths = 128 bytes). Correct but the
//    header dominates for small basic blocks.
//
//  * Shared model (SharedHuffmanCodec): one table is trained over the
//    whole program image at build time and held by both compressor and
//    decompressor, so streams carry no header. This matches how embedded
//    code compressors deploy Huffman tables in ROM and is the default
//    codec for APCC experiments.
//
// Codes are canonical (sorted by (length, symbol)), length-limited to
// kMaxCodeLength bits, and decoded with the first-code/offset method.
#pragma once

#include <array>
#include <cstdint>

#include "compress/codec.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

inline constexpr unsigned kMaxCodeLength = 15;
inline constexpr std::size_t kAlphabetSize = 256;

/// Code lengths per symbol; 0 means the symbol does not occur.
using CodeLengths = std::array<std::uint8_t, kAlphabetSize>;

/// Build length-limited Huffman code lengths from symbol frequencies.
/// Symbols with zero frequency get length 0. If only one distinct symbol
/// occurs it gets length 1.
[[nodiscard]] CodeLengths build_code_lengths(
    const std::array<std::uint64_t, kAlphabetSize>& freqs);

/// A realised canonical code: encode and decode tables.
class CanonicalCode {
 public:
  explicit CanonicalCode(const CodeLengths& lengths);

  /// Encode one symbol into the writer.
  void encode(apcc::BitWriter& writer, std::uint8_t symbol) const;

  /// Decode one symbol from the reader. Throws CheckError on invalid
  /// prefixes (corrupt stream).
  [[nodiscard]] std::uint8_t decode(apcc::BitReader& reader) const;

  [[nodiscard]] const CodeLengths& lengths() const { return lengths_; }

  /// Expected bits/symbol under the given frequency distribution.
  [[nodiscard]] double expected_bits(
      const std::array<std::uint64_t, kAlphabetSize>& freqs) const;

 private:
  CodeLengths lengths_{};
  std::array<std::uint16_t, kAlphabetSize> codes_{};   // left-aligned? no: value
  // Decode tables, indexed by code length 1..kMaxCodeLength.
  std::array<std::uint16_t, kMaxCodeLength + 1> first_code_{};
  std::array<std::uint16_t, kMaxCodeLength + 1> first_index_{};
  std::array<std::uint16_t, kMaxCodeLength + 1> count_{};
  std::array<std::uint8_t, kAlphabetSize> sorted_symbols_{};
  std::size_t symbol_count_ = 0;
};

/// Per-stream canonical Huffman codec (self-describing streams).
class HuffmanCodec final : public Codec {
 public:
  HuffmanCodec();

  [[nodiscard]] std::string_view name() const override { return "huffman"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;
};

/// Shared-model canonical Huffman codec (table trained over the image).
class SharedHuffmanCodec final : public Codec {
 public:
  /// Train the shared table over `training_blocks`. If no training data
  /// is supplied, falls back to a uniform table (8-bit codes).
  explicit SharedHuffmanCodec(std::span<const Bytes> training_blocks);

  [[nodiscard]] std::string_view name() const override {
    return "huffman-shared";
  }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  [[nodiscard]] const CanonicalCode& code() const { return code_; }

 private:
  CanonicalCode code_;
};

}  // namespace apcc::compress
