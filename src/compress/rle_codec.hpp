// Move-to-front + run-length codec.
//
// MTF maps locality in the byte stream to small values; RLE then encodes
// runs of equal values. Cheap to decode, modest compression -- included
// as the low-cost end of the codec spectrum and as an ablation point.
//
// Stream format, repeated until the original size is reached:
//   run:       0x01 <count-1> <index>            `count` copies of one
//                                                MTF index
//   literals:  0x00 <count-1> <count indices>    a literal block
// Values are MTF indices; decoding reverses the MTF transform. Worst-case
// expansion is 2 bytes per 256 input bytes (the literal-block header).
#pragma once

#include "compress/codec.hpp"

namespace apcc::compress {

class MtfRleCodec final : public Codec {
 public:
  MtfRleCodec();

  [[nodiscard]] std::string_view name() const override { return "mtf-rle"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;
};

}  // namespace apcc::compress
