#include "compress/lzss.hpp"

#include <algorithm>
#include <array>

#include "support/assert.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

namespace {

constexpr std::size_t kHashSize = 1 << 13;
constexpr int kMaxChainProbes = 64;

std::size_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
                          (std::uint32_t{p[2]} << 16);
  return (v * 2654435761u) >> 19 & (kHashSize - 1);
}

}  // namespace

LzssCodec::LzssCodec() {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 2.5,
                      .compress_cycles_per_byte = 20.0,
                      .decompress_fixed_cycles = 48,
                      .compress_fixed_cycles = 256};
}

Bytes LzssCodec::compress(ByteView input) const {
  BitWriter writer;
  const std::size_t n = input.size();
  // Hash-chain matcher: head[h] is the most recent position with hash h,
  // prev[pos & mask] chains to the previous one.
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(kWindowSize, -1);

  std::size_t pos = 0;
  auto insert = [&](std::size_t at) {
    if (at + kMinMatch > n) return;
    const std::size_t h = hash3(input.data() + at);
    prev[at & (kWindowSize - 1)] = head[h];
    head[h] = static_cast<std::int32_t>(at);
  };

  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    if (pos + kMinMatch <= n) {
      std::int32_t candidate = head[hash3(input.data() + pos)];
      int probes = kMaxChainProbes;
      while (candidate >= 0 && probes-- > 0) {
        const auto cand = static_cast<std::size_t>(candidate);
        if (pos - cand > kWindowSize) break;
        const std::size_t limit = std::min(kMaxMatch, n - pos);
        std::size_t len = 0;
        while (len < limit && input[cand + len] == input[pos + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_offset = pos - cand;
          if (len == kMaxMatch) break;
        }
        candidate = prev[cand & (kWindowSize - 1)];
      }
    }
    if (best_len >= kMinMatch) {
      writer.write_bit(false);
      writer.write_bits(static_cast<std::uint32_t>(best_offset - 1), 12);
      writer.write_bits(static_cast<std::uint32_t>(best_len - kMinMatch), 4);
      for (std::size_t i = 0; i < best_len; ++i) {
        insert(pos + i);
      }
      pos += best_len;
    } else {
      writer.write_bit(true);
      writer.write_byte(input[pos]);
      insert(pos);
      ++pos;
    }
  }
  return writer.take();
}

Bytes LzssCodec::decompress(ByteView input, std::size_t original_size) const {
  Bytes out;
  out.reserve(original_size);
  BitReader reader(input);
  while (out.size() < original_size) {
    if (reader.read_bit()) {
      out.push_back(reader.read_byte());
    } else {
      const std::size_t offset = reader.read_bits(12) + 1;
      const std::size_t length = reader.read_bits(4) + kMinMatch;
      APCC_CHECK(offset <= out.size(), "lzss match before stream start");
      APCC_CHECK(out.size() + length <= original_size + kMaxMatch,
                 "lzss output overrun");
      const std::size_t start = out.size() - offset;
      for (std::size_t i = 0; i < length; ++i) {
        out.push_back(out[start + i]);  // may overlap; byte-serial is correct
      }
    }
  }
  APCC_CHECK(out.size() == original_size, "lzss size mismatch");
  return out;
}

}  // namespace apcc::compress
