// Per-block adaptive best-of codec selection.
//
// No single codec wins on every basic block: FPC flattens zero/small-
// literal words, BDI flattens narrow value ranges, the trained
// dictionary/entropy codecs win on text-like instruction mixes, and
// nothing beats raw on incompressible bytes. AdaptiveCodec makes the
// choice *per block*: compress() runs every candidate codec on the
// block, keeps the smallest encoding, and emits
//
//   byte 0    codec id: the winning candidate's CodecKind value
//   byte 1..  the winner's stream, verbatim
//
// Ties resolve by codec-id order (the numeric CodecKind value), so the
// output is a deterministic function of (input bytes, training bytes,
// candidate set) -- never of thread schedule or candidate list order;
// the candidate list is sorted by id at construction. decompress()
// dispatches on the header byte; an id outside the candidate set is a
// corrupt stream (CheckError).
//
// The candidate set is configurable; the default spans the design
// space: null (raw floor), shared Huffman (entropy), CodePack
// (dictionary), FPC and BDI (pattern). Per-candidate win counts and
// byte totals are tracked for the fig3/e4 usage tables.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "compress/codec.hpp"

namespace apcc::compress {

class AdaptiveCodec final : public Codec {
 public:
  /// {kNull, kSharedHuffman, kCodePack, kFpc, kBdi} -- one codec per
  /// family, in id order.
  [[nodiscard]] static std::vector<CodecKind> default_candidates();

  /// Build each candidate via make_codec (trained candidates consult
  /// `training_blocks`). Candidates must be non-empty, unique, and may
  /// not include kAdaptive itself.
  explicit AdaptiveCodec(std::span<const Bytes> training_blocks,
                         std::vector<CodecKind> candidates =
                             default_candidates());

  [[nodiscard]] std::string_view name() const override { return "adaptive"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  /// The candidate kinds, in dispatch (= tie-break) order.
  [[nodiscard]] const std::vector<CodecKind>& candidate_kinds() const {
    return kinds_;
  }

  /// One candidate's cumulative selection record. Counters are relaxed
  /// atomics (a shared instance may compress from several threads) and
  /// never influence the output bytes.
  struct CandidateStats {
    CodecKind kind{};
    std::uint64_t wins = 0;            // blocks this candidate encoded
    std::uint64_t input_bytes = 0;     // original bytes of those blocks
    std::uint64_t output_bytes = 0;    // emitted bytes incl. the header
  };
  [[nodiscard]] std::vector<CandidateStats> selection_stats() const;

 private:
  std::vector<CodecKind> kinds_;
  std::vector<std::unique_ptr<Codec>> candidates_;
  mutable std::vector<std::atomic<std::uint64_t>> wins_;
  mutable std::vector<std::atomic<std::uint64_t>> in_bytes_;
  mutable std::vector<std::atomic<std::uint64_t>> out_bytes_;
};

}  // namespace apcc::compress
