// Identity codec: output == input. Baseline plumbing and the degenerate
// point of every codec comparison.
#pragma once

#include "compress/codec.hpp"

namespace apcc::compress {

class NullCodec final : public Codec {
 public:
  NullCodec();

  [[nodiscard]] std::string_view name() const override { return "null"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;
};

}  // namespace apcc::compress
