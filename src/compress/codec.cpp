#include "compress/codec.hpp"

#include <cmath>

#include "compress/codepack.hpp"
#include "compress/fieldsplit.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "compress/null_codec.hpp"
#include "compress/rle_codec.hpp"
#include "support/assert.hpp"

namespace apcc::compress {

std::uint64_t CodecCosts::decompress_cycles(std::size_t original_bytes) const {
  return decompress_fixed_cycles +
         static_cast<std::uint64_t>(
             std::llround(decompress_cycles_per_byte *
                          static_cast<double>(original_bytes)));
}

std::uint64_t CodecCosts::compress_cycles(std::size_t original_bytes) const {
  return compress_fixed_cycles +
         static_cast<std::uint64_t>(
             std::llround(compress_cycles_per_byte *
                          static_cast<double>(original_bytes)));
}

const char* codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNull: return "null";
    case CodecKind::kMtfRle: return "mtf-rle";
    case CodecKind::kHuffman: return "huffman";
    case CodecKind::kSharedHuffman: return "huffman-shared";
    case CodecKind::kLzss: return "lzss";
    case CodecKind::kCodePack: return "codepack";
    case CodecKind::kFieldSplit: return "field-split";
  }
  return "?";
}

std::unique_ptr<Codec> make_codec(CodecKind kind,
                                  std::span<const Bytes> training_blocks) {
  switch (kind) {
    case CodecKind::kNull:
      return std::make_unique<NullCodec>();
    case CodecKind::kMtfRle:
      return std::make_unique<MtfRleCodec>();
    case CodecKind::kHuffman:
      return std::make_unique<HuffmanCodec>();
    case CodecKind::kSharedHuffman:
      return std::make_unique<SharedHuffmanCodec>(training_blocks);
    case CodecKind::kLzss:
      return std::make_unique<LzssCodec>();
    case CodecKind::kCodePack:
      return std::make_unique<CodePackCodec>(training_blocks);
    case CodecKind::kFieldSplit:
      return std::make_unique<FieldSplitCodec>(training_blocks);
  }
  APCC_ASSERT(false, "unknown codec kind");
}

double compression_ratio(const Codec& codec, std::span<const Bytes> blocks) {
  std::uint64_t original = 0;
  std::uint64_t compressed = 0;
  for (const auto& block : blocks) {
    original += block.size();
    compressed += codec.compress(block).size();
  }
  return original == 0 ? 1.0
                       : static_cast<double>(compressed) /
                             static_cast<double>(original);
}

}  // namespace apcc::compress
