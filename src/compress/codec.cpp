#include "compress/codec.hpp"

#include <cmath>
#include <sstream>

#include "compress/adaptive.hpp"
#include "compress/bdi.hpp"
#include "compress/codepack.hpp"
#include "compress/fieldsplit.hpp"
#include "compress/fpc.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "compress/null_codec.hpp"
#include "compress/rle_codec.hpp"
#include "support/assert.hpp"

namespace apcc::compress {

std::uint64_t CodecCosts::decompress_cycles(std::size_t original_bytes) const {
  return decompress_fixed_cycles +
         static_cast<std::uint64_t>(
             std::llround(decompress_cycles_per_byte *
                          static_cast<double>(original_bytes)));
}

std::uint64_t CodecCosts::compress_cycles(std::size_t original_bytes) const {
  return compress_fixed_cycles +
         static_cast<std::uint64_t>(
             std::llround(compress_cycles_per_byte *
                          static_cast<double>(original_bytes)));
}

const char* codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNull: return "null";
    case CodecKind::kMtfRle: return "mtf-rle";
    case CodecKind::kHuffman: return "huffman";
    case CodecKind::kSharedHuffman: return "huffman-shared";
    case CodecKind::kLzss: return "lzss";
    case CodecKind::kCodePack: return "codepack";
    case CodecKind::kFieldSplit: return "field-split";
    case CodecKind::kFpc: return "fpc";
    case CodecKind::kBdi: return "bdi";
    case CodecKind::kAdaptive: return "adaptive";
  }
  return "?";
}

std::unique_ptr<Codec> make_codec(CodecKind kind,
                                  std::span<const Bytes> training_blocks) {
  switch (kind) {
    case CodecKind::kNull:
      return std::make_unique<NullCodec>();
    case CodecKind::kMtfRle:
      return std::make_unique<MtfRleCodec>();
    case CodecKind::kHuffman:
      return std::make_unique<HuffmanCodec>();
    case CodecKind::kSharedHuffman:
      return std::make_unique<SharedHuffmanCodec>(training_blocks);
    case CodecKind::kLzss:
      return std::make_unique<LzssCodec>();
    case CodecKind::kCodePack:
      return std::make_unique<CodePackCodec>(training_blocks);
    case CodecKind::kFieldSplit:
      return std::make_unique<FieldSplitCodec>(training_blocks);
    case CodecKind::kFpc:
      return std::make_unique<FpcCodec>();
    case CodecKind::kBdi:
      return std::make_unique<BdiCodec>();
    case CodecKind::kAdaptive:
      return std::make_unique<AdaptiveCodec>(training_blocks);
  }
  APCC_ASSERT(false, "unknown codec kind");
}

double compression_ratio(const Codec& codec, std::span<const Bytes> blocks) {
  std::uint64_t original = 0;
  std::uint64_t compressed = 0;
  for (const auto& block : blocks) {
    original += block.size();
    compressed += codec.compress(block).size();
  }
  return original == 0 ? 1.0
                       : static_cast<double>(compressed) /
                             static_cast<double>(original);
}

std::string usage_summary(const Codec& codec) {
  std::ostringstream out;
  if (const auto* fpc = dynamic_cast<const FpcCodec*>(&codec)) {
    const auto counts = fpc->pattern_counts();
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    if (total == 0) return "";
    out << "fpc pattern usage (" << total << " prefixes):";
    for (std::size_t p = 0; p < FpcCodec::kNumPatterns; ++p) {
      out << ' ' << FpcCodec::pattern_name(p) << '=' << counts[p];
    }
    out << '\n';
  } else if (const auto* adaptive =
                 dynamic_cast<const AdaptiveCodec*>(&codec)) {
    const auto stats = adaptive->selection_stats();
    std::uint64_t blocks = 0;
    for (const auto& s : stats) blocks += s.wins;
    if (blocks == 0) return "";
    out << "adaptive selection (" << blocks << " blocks):";
    for (const auto& s : stats) {
      out << ' ' << codec_kind_name(s.kind) << '=' << s.wins;
    }
    out << '\n';
    for (const auto& s : stats) {
      if (s.wins == 0) continue;
      out << "  " << codec_kind_name(s.kind) << ": " << s.input_bytes
          << " -> " << s.output_bytes << " bytes\n";
    }
  }
  return out.str();
}

}  // namespace apcc::compress
