#include "compress/null_codec.hpp"

#include "support/assert.hpp"

namespace apcc::compress {

NullCodec::NullCodec() {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 0.25,
                      .compress_cycles_per_byte = 0.25,
                      .decompress_fixed_cycles = 8,
                      .compress_fixed_cycles = 8};
}

Bytes NullCodec::compress(ByteView input) const {
  return Bytes(input.begin(), input.end());
}

Bytes NullCodec::decompress(ByteView input, std::size_t original_size) const {
  APCC_CHECK(input.size() == original_size,
             "null codec stream size mismatch");
  return Bytes(input.begin(), input.end());
}

}  // namespace apcc::compress
