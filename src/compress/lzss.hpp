// LZSS: LZ77-family sliding-window codec.
//
// Stream format: a flag bit per token (1 = literal byte, 0 = match),
// matches are (offset-1: 12 bits, length-3: 4 bits) against a 4 KiB
// window, so match lengths span [3, 18]. Greedy parsing with a 3-byte
// hash-chain matcher. Good ratio on instruction streams thanks to
// repeated opcode/register idioms; moderate decode cost.
#pragma once

#include "compress/codec.hpp"

namespace apcc::compress {

class LzssCodec final : public Codec {
 public:
  LzssCodec();

  [[nodiscard]] std::string_view name() const override { return "lzss"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  static constexpr std::size_t kWindowSize = 4096;
  static constexpr std::size_t kMinMatch = 3;
  static constexpr std::size_t kMaxMatch = 18;
};

}  // namespace apcc::compress
