#include "compress/adaptive.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace apcc::compress {

std::vector<CodecKind> AdaptiveCodec::default_candidates() {
  return {CodecKind::kNull, CodecKind::kSharedHuffman, CodecKind::kCodePack,
          CodecKind::kFpc, CodecKind::kBdi};
}

AdaptiveCodec::AdaptiveCodec(std::span<const Bytes> training_blocks,
                             std::vector<CodecKind> candidates)
    : kinds_(std::move(candidates)) {
  APCC_CHECK(!kinds_.empty(), "adaptive: candidate set is empty");
  // Dispatch/tie-break order is the numeric codec id, whatever order
  // the caller supplied -- the selection must not depend on list order.
  std::sort(kinds_.begin(), kinds_.end(), [](CodecKind a, CodecKind b) {
    return static_cast<std::uint8_t>(a) < static_cast<std::uint8_t>(b);
  });
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    APCC_CHECK(kinds_[i] != CodecKind::kAdaptive,
               "adaptive: cannot nest adaptive inside itself");
    APCC_CHECK(i == 0 || kinds_[i] != kinds_[i - 1],
               "adaptive: duplicate candidate codec");
    candidates_.push_back(make_codec(kinds_[i], training_blocks));
  }
  wins_ = std::vector<std::atomic<std::uint64_t>>(kinds_.size());
  in_bytes_ = std::vector<std::atomic<std::uint64_t>>(kinds_.size());
  out_bytes_ = std::vector<std::atomic<std::uint64_t>>(kinds_.size());

  // Cost model: the simulator charges one number per codec, but an
  // adaptive image mixes winners, so decompress carries the *worst*
  // candidate's per-byte rate plus a fixed header-dispatch tax -- a
  // conservative bound (most blocks resolve to the cheap pattern
  // codecs). Compress pays the sum: best-of runs every candidate.
  CodecCosts costs{.decompress_cycles_per_byte = 0.0,
                   .compress_cycles_per_byte = 0.0,
                   .decompress_fixed_cycles = 0,
                   .compress_fixed_cycles = 0};
  for (const auto& c : candidates_) {
    costs.decompress_cycles_per_byte =
        std::max(costs.decompress_cycles_per_byte,
                 c->costs().decompress_cycles_per_byte);
    costs.compress_cycles_per_byte += c->costs().compress_cycles_per_byte;
    costs.decompress_fixed_cycles = std::max(costs.decompress_fixed_cycles,
                                             c->costs().decompress_fixed_cycles);
    costs.compress_fixed_cycles += c->costs().compress_fixed_cycles;
  }
  costs.decompress_fixed_cycles += 4;  // header byte dispatch
  costs_ = costs;
}

Bytes AdaptiveCodec::compress(ByteView input) const {
  Bytes best;
  std::size_t best_index = 0;
  bool have_best = false;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    Bytes encoded = candidates_[i]->compress(input);
    // Strict improvement only: at equal size the lower codec id (the
    // earlier candidate) keeps the block -- the documented tie-break.
    if (!have_best || encoded.size() < best.size()) {
      best = std::move(encoded);
      best_index = i;
      have_best = true;
    }
  }
  Bytes out;
  out.reserve(best.size() + 1);
  out.push_back(static_cast<std::uint8_t>(kinds_[best_index]));
  out.insert(out.end(), best.begin(), best.end());
  wins_[best_index].fetch_add(1, std::memory_order_relaxed);
  in_bytes_[best_index].fetch_add(input.size(), std::memory_order_relaxed);
  out_bytes_[best_index].fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Bytes AdaptiveCodec::decompress(ByteView input,
                                std::size_t original_size) const {
  APCC_CHECK(!input.empty(), "adaptive: stream truncated (missing codec id)");
  const std::uint8_t id = input[0];
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (static_cast<std::uint8_t>(kinds_[i]) == id) {
      return candidates_[i]->decompress(input.subspan(1), original_size);
    }
  }
  APCC_CHECK(false, "adaptive: codec id " + std::to_string(int{id}) +
                        " is not in the candidate set (corrupt stream)");
}

std::vector<AdaptiveCodec::CandidateStats> AdaptiveCodec::selection_stats()
    const {
  std::vector<CandidateStats> out;
  out.reserve(kinds_.size());
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    out.push_back({kinds_[i], wins_[i].load(std::memory_order_relaxed),
                   in_bytes_[i].load(std::memory_order_relaxed),
                   out_bytes_[i].load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace apcc::compress
