#include "compress/rle_codec.hpp"

#include <array>
#include <numeric>

#include "support/assert.hpp"

namespace apcc::compress {

namespace {

/// Move-to-front transform state.
class MtfTable {
 public:
  MtfTable() { std::iota(order_.begin(), order_.end(), 0); }

  /// Encode: value -> current index, then move to front.
  std::uint8_t encode(std::uint8_t value) {
    std::size_t index = 0;
    while (order_[index] != value) ++index;
    move_to_front(index);
    return static_cast<std::uint8_t>(index);
  }

  /// Decode: index -> value, then move to front.
  std::uint8_t decode(std::uint8_t index) {
    const std::uint8_t value = order_[index];
    move_to_front(index);
    return value;
  }

 private:
  void move_to_front(std::size_t index) {
    const std::uint8_t value = order_[index];
    for (std::size_t i = index; i > 0; --i) {
      order_[i] = order_[i - 1];
    }
    order_[0] = value;
  }

  std::array<std::uint8_t, 256> order_{};
};

constexpr std::uint8_t kLiteralTag = 0x00;
constexpr std::uint8_t kRunTag = 0x01;
constexpr std::size_t kMaxRun = 256;

}  // namespace

MtfRleCodec::MtfRleCodec() {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 1.5,
                      .compress_cycles_per_byte = 3.0,
                      .decompress_fixed_cycles = 24,
                      .compress_fixed_cycles = 24};
}

Bytes MtfRleCodec::compress(ByteView input) const {
  MtfTable mtf;
  Bytes transformed;
  transformed.reserve(input.size());
  for (const std::uint8_t b : input) {
    transformed.push_back(mtf.encode(b));
  }

  Bytes out;
  std::size_t i = 0;
  std::size_t literal_start = 0;  // pending literals in [literal_start, i)
  auto flush_literals = [&](std::size_t end) {
    std::size_t pos = literal_start;
    while (pos < end) {
      const std::size_t count = std::min(end - pos, kMaxRun);
      out.push_back(kLiteralTag);
      out.push_back(static_cast<std::uint8_t>(count - 1));
      out.insert(out.end(), transformed.begin() + static_cast<std::ptrdiff_t>(pos),
                 transformed.begin() + static_cast<std::ptrdiff_t>(pos + count));
      pos += count;
    }
  };
  while (i < transformed.size()) {
    std::size_t run = 1;
    while (i + run < transformed.size() && run < kMaxRun &&
           transformed[i + run] == transformed[i]) {
      ++run;
    }
    if (run >= 3) {
      flush_literals(i);
      out.push_back(kRunTag);
      out.push_back(static_cast<std::uint8_t>(run - 1));
      out.push_back(transformed[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(transformed.size());
  return out;
}

Bytes MtfRleCodec::decompress(ByteView input, std::size_t original_size) const {
  MtfTable mtf;
  Bytes out;
  out.reserve(original_size);
  std::size_t i = 0;
  while (out.size() < original_size) {
    APCC_CHECK(i < input.size(), "mtf-rle stream truncated");
    const std::uint8_t tag = input[i++];
    if (tag == kRunTag) {
      APCC_CHECK(i + 1 < input.size(), "mtf-rle run truncated");
      const std::size_t run = std::size_t{input[i]} + 1;
      const std::uint8_t index = input[i + 1];
      i += 2;
      // A run is `run` copies of the same MTF *index*. Decoding each
      // element through the table is the exact inverse of encoding; note
      // an index-X run with X != 0 decodes to alternating values.
      for (std::size_t r = 0; r < run; ++r) {
        out.push_back(mtf.decode(index));
      }
    } else {
      APCC_CHECK(tag == kLiteralTag, "mtf-rle bad tag");
      APCC_CHECK(i < input.size(), "mtf-rle literal header truncated");
      const std::size_t count = std::size_t{input[i++]} + 1;
      APCC_CHECK(i + count <= input.size(), "mtf-rle literals truncated");
      for (std::size_t r = 0; r < count; ++r) {
        out.push_back(mtf.decode(input[i++]));
      }
    }
  }
  APCC_CHECK(out.size() == original_size, "mtf-rle size overrun");
  return out;
}

}  // namespace apcc::compress
