#include "compress/fieldsplit.hpp"

#include "support/assert.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

FieldSplitCodec::FieldSplitCodec(std::span<const Bytes> training_blocks) {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 6.5,
                      .compress_cycles_per_byte = 11.0,
                      .decompress_fixed_cycles = 96,
                      .compress_fixed_cycles = 128};
  for (const auto& block : training_blocks) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      ++freqs_[i % kLanes][block[i]];
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    // Add-one smoothing keeps every byte encodable (cf. SharedHuffman).
    std::array<std::uint64_t, kAlphabetSize> smoothed{};
    for (std::size_t s = 0; s < kAlphabetSize; ++s) {
      smoothed[s] = freqs_[l][s] * 16 + 1;
    }
    lanes_[l] =
        std::make_unique<CanonicalCode>(build_code_lengths(smoothed));
  }
}

std::size_t FieldSplitCodec::lane_length(std::size_t original_size,
                                         std::size_t lane) {
  // Number of indices i < original_size with i % kLanes == lane.
  return (original_size + kLanes - 1 - lane) / kLanes;
}

Bytes FieldSplitCodec::compress(ByteView input) const {
  if (input.empty()) return {};
  BitWriter writer;
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t i = l; i < input.size(); i += kLanes) {
      lanes_[l]->encode(writer, input[i]);
    }
  }
  return writer.take();
}

Bytes FieldSplitCodec::decompress(ByteView input,
                                  std::size_t original_size) const {
  if (original_size == 0) return {};
  Bytes out(original_size, 0);
  BitReader reader(input);
  for (std::size_t l = 0; l < kLanes; ++l) {
    const std::size_t count = lane_length(original_size, l);
    for (std::size_t j = 0; j < count; ++j) {
      out[l + j * kLanes] = lanes_[l]->decode(reader);
    }
  }
  return out;
}

double FieldSplitCodec::lane_expected_bits(std::size_t lane) const {
  APCC_CHECK(lane < kLanes, "lane index out of range");
  return lanes_[lane]->expected_bits(freqs_[lane]);
}

}  // namespace apcc::compress
