#include "compress/bdi.hpp"

#include <array>

#include "support/assert.hpp"

namespace apcc::compress {

namespace {

/// Base/delta widths (bytes) of the six delta modes, mode id 1..6.
struct ModeSpec {
  unsigned base_bytes;
  unsigned delta_bytes;
};
constexpr std::array<ModeSpec, 6> kDeltaModes = {{
    {8, 1}, {8, 2}, {8, 4}, {4, 1}, {4, 2}, {2, 1},
}};

constexpr std::size_t kModeZeros = 0;
constexpr std::size_t kModeRaw = 7;

std::uint64_t load_le(const std::uint8_t* p, unsigned bytes) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    v |= std::uint64_t{p[i]} << (8 * i);
  }
  return v;
}

void store_le(Bytes& out, std::uint64_t v, unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

constexpr std::uint64_t width_mask(unsigned bytes) {
  return bytes == 8 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (8 * bytes)) - 1;
}

constexpr std::uint64_t sign_extend64(std::uint64_t v, unsigned bits) {
  const unsigned shift = 64 - bits;
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(v << shift) >> shift);
}

/// True when `delta` (a base_bytes-wide two's-complement value) survives
/// narrowing to delta_bytes and sign-extending back.
constexpr bool fits_narrow(std::uint64_t delta, unsigned delta_bytes,
                           std::uint64_t mask) {
  return (sign_extend64(delta, 8 * delta_bytes) & mask) == delta;
}

}  // namespace

BdiCodec::BdiCodec() {
  // Decode is one header dispatch per 32-byte chunk plus a base+delta
  // add and store per word -- no bit extraction, no tables. Modelled
  // below CodePack (1.2) and FPC (1.0): the cheapest real decode in
  // the family. Encode tries up to eight modes per chunk, each a
  // masked-subtract scan, so it pays roughly 3x the decode work.
  costs_ = CodecCosts{.decompress_cycles_per_byte = 0.75,
                      .compress_cycles_per_byte = 2.5,
                      .decompress_fixed_cycles = 16,
                      .compress_fixed_cycles = 16};
}

const char* BdiCodec::mode_name(std::size_t mode) {
  switch (mode) {
    case 0: return "zeros";
    case 1: return "b8-d1";
    case 2: return "b8-d2";
    case 3: return "b8-d4";
    case 4: return "b4-d1";
    case 5: return "b4-d2";
    case 6: return "b2-d1";
    case 7: return "raw";
  }
  return "?";
}

Bytes BdiCodec::compress(ByteView input) const {
  Bytes out;
  out.reserve(input.size() + input.size() / kChunkBytes + 2);
  Bytes candidate;
  for (std::size_t start = 0; start < input.size(); start += kChunkBytes) {
    const std::size_t len = std::min(kChunkBytes, input.size() - start);
    const std::uint8_t* chunk = &input[start];

    // Mode 0: all-zero chunk.
    bool all_zero = true;
    for (std::size_t i = 0; i < len; ++i) {
      if (chunk[i] != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      out.push_back(kModeZeros);
      continue;
    }

    // Raw is the fallback to beat: 1 + len bytes.
    std::size_t best_size = 1 + len;
    std::size_t best_mode = kModeRaw;
    Bytes best_payload;  // empty = raw (copied directly at emit)

    for (std::size_t m = 0; m < kDeltaModes.size(); ++m) {
      const auto [base_bytes, delta_bytes] = kDeltaModes[m];
      if (len % base_bytes != 0) continue;
      const std::size_t words = len / base_bytes;
      const std::size_t size =
          1 + base_bytes + (words + 7) / 8 + words * delta_bytes;
      if (size >= best_size) continue;  // strict win only: lowest id ties
      const std::uint64_t mask = width_mask(base_bytes);

      // The base is the first word whose delta from zero does not fit.
      std::uint64_t base = 0;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t word = load_le(chunk + w * base_bytes, base_bytes);
        if (!fits_narrow(word, delta_bytes, mask)) {
          base = word;
          break;
        }
      }

      candidate.clear();
      store_le(candidate, base, base_bytes);
      const std::size_t mask_at = candidate.size();
      candidate.resize(mask_at + (words + 7) / 8, 0);
      bool ok = true;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t word = load_le(chunk + w * base_bytes, base_bytes);
        if (fits_narrow(word, delta_bytes, mask)) {
          store_le(candidate, word, delta_bytes);  // immediate: base zero
        } else {
          const std::uint64_t delta = (word - base) & mask;
          if (!fits_narrow(delta, delta_bytes, mask)) {
            ok = false;
            break;
          }
          candidate[mask_at + w / 8] |=
              static_cast<std::uint8_t>(1u << (w % 8));
          store_le(candidate, delta, delta_bytes);
        }
      }
      if (!ok) continue;
      best_size = size;
      best_mode = m + 1;
      best_payload = candidate;
    }

    out.push_back(static_cast<std::uint8_t>(best_mode));
    if (best_mode == kModeRaw) {
      out.insert(out.end(), chunk, chunk + len);
    } else {
      out.insert(out.end(), best_payload.begin(), best_payload.end());
    }
  }
  return out;
}

Bytes BdiCodec::decompress(ByteView input, std::size_t original_size) const {
  Bytes out;
  out.reserve(original_size);
  std::size_t pos = 0;
  while (out.size() < original_size) {
    const std::size_t len = std::min(kChunkBytes, original_size - out.size());
    APCC_CHECK(pos < input.size(), "bdi: stream truncated at chunk header");
    const std::uint8_t mode = input[pos++];
    if (mode == kModeZeros) {
      out.resize(out.size() + len, 0);
      continue;
    }
    if (mode == kModeRaw) {
      APCC_CHECK(pos + len <= input.size(), "bdi: raw chunk truncated");
      out.insert(out.end(), &input[pos], &input[pos] + len);
      pos += len;
      continue;
    }
    APCC_CHECK(mode <= kDeltaModes.size(), "bdi: bad chunk mode");
    const auto [base_bytes, delta_bytes] = kDeltaModes[mode - 1];
    APCC_CHECK(len % base_bytes == 0,
               "bdi: delta mode on a misaligned chunk (corrupt stream)");
    const std::size_t words = len / base_bytes;
    const std::size_t mask_bytes = (words + 7) / 8;
    APCC_CHECK(pos + base_bytes + mask_bytes + words * delta_bytes <=
                   input.size(),
               "bdi: delta chunk truncated");
    const std::uint64_t mask = width_mask(base_bytes);
    const std::uint64_t base = load_le(&input[pos], base_bytes);
    pos += base_bytes;
    const std::uint8_t* flags = &input[pos];
    pos += mask_bytes;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t delta =
          sign_extend64(load_le(&input[pos], delta_bytes), 8 * delta_bytes);
      pos += delta_bytes;
      const bool from_base = (flags[w / 8] >> (w % 8)) & 1u;
      store_le(out, ((from_base ? base : 0) + delta) & mask,
               static_cast<unsigned>(base_bytes));
    }
  }
  return out;
}

}  // namespace apcc::compress
