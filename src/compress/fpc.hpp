// Frequent-pattern compression (FPC), word-at-a-time.
//
// Models Alameldeen & Wood's significance-based scheme (as carried in
// the DisaggregatedSystemsResearch / gpgpusim compression models): the
// input is scanned as 32-bit little-endian words and each word is
// classified against a small, fixed pattern set -- the statically
// frequent shapes of instruction and data words -- then emitted as a
// 3-bit pattern prefix plus only the significant payload bits:
//
//   prefix 000  zero run          3-bit (run-1): 1..8 zero words
//   prefix 001  4-bit literal     sign-extended from 4 payload bits
//   prefix 010  8-bit literal     sign-extended from 8 payload bits
//   prefix 011  16-bit literal    sign-extended from 16 payload bits
//   prefix 100  repeated halfword both 16-bit halves equal; 16 payload bits
//   prefix 101  raw               32 payload bits (incompressible word)
//
// Prefixes 110/111 are reserved; seeing one on decode is a corrupt
// stream (CheckError). A trailing 1-3 bytes (inputs are byte strings,
// not word strings) are emitted raw, 8 bits each, with no prefix --
// the decoder knows the original size, so the tail length is implied.
// Patterns are matched in prefix order, so encoding is deterministic.
//
// Unlike the trained codecs there is no dictionary and no header: the
// pattern table *is* the model, shared by construction. Decode is one
// 3-bit dispatch per word with shift/mask payload expansion --
// near-branchless and word-at-a-time, the cheap-decompress end of the
// design space the paper's memory-constrained targets care about.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>

#include "compress/codec.hpp"

namespace apcc::compress {

class FpcCodec final : public Codec {
 public:
  FpcCodec();

  [[nodiscard]] std::string_view name() const override { return "fpc"; }
  [[nodiscard]] Bytes compress(ByteView input) const override;
  [[nodiscard]] Bytes decompress(ByteView input,
                                 std::size_t original_size) const override;

  /// The pattern classes, in prefix (= match-priority) order.
  enum Pattern : std::uint8_t {
    kZeroRun = 0,
    kSigned4 = 1,
    kSigned8 = 2,
    kSigned16 = 3,
    kRepeatedHalf = 4,
    kRaw = 5,
  };
  static constexpr std::size_t kNumPatterns = 6;

  [[nodiscard]] static const char* pattern_name(std::size_t pattern);

  /// Cumulative per-pattern encode counts (one count per prefix
  /// emitted; a zero *run* counts once, however many words it covers).
  /// Counters are relaxed atomics so a shared codec instance may be
  /// exercised from several threads; they never influence the output
  /// bytes.
  [[nodiscard]] std::array<std::uint64_t, kNumPatterns> pattern_counts() const;

 private:
  mutable std::array<std::atomic<std::uint64_t>, kNumPatterns> counts_{};
};

}  // namespace apcc::compress
