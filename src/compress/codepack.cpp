#include "compress/codepack.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"
#include "support/bitstream.hpp"

namespace apcc::compress {

CodePackCodec::CodePackCodec(std::span<const Bytes> training_blocks) {
  costs_ = CodecCosts{.decompress_cycles_per_byte = 1.2,
                      .compress_cycles_per_byte = 4.0,
                      .decompress_fixed_cycles = 32,
                      .compress_fixed_cycles = 64};

  std::map<std::uint16_t, std::uint64_t> freqs;
  for (const auto& block : training_blocks) {
    for (std::size_t i = 0; i + 1 < block.size(); i += 2) {
      const auto half = static_cast<std::uint16_t>(
          block[i] | (std::uint16_t{block[i + 1]} << 8));
      ++freqs[half];
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint16_t>> ranked;
  ranked.reserve(freqs.size());
  for (const auto& [half, count] : freqs) {
    ranked.emplace_back(count, half);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break
  });
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const std::uint16_t half = ranked[i].second;
    if (i < kDictASize) {
      lookup_[half] = {0, static_cast<std::uint16_t>(dict_a_.size())};
      dict_a_.push_back(half);
    } else if (i < kDictASize + kDictBSize) {
      lookup_[half] = {1, static_cast<std::uint16_t>(dict_b_.size())};
      dict_b_.push_back(half);
    } else {
      break;
    }
  }
}

Bytes CodePackCodec::compress(ByteView input) const {
  BitWriter writer;
  std::size_t i = 0;
  for (; i + 1 < input.size(); i += 2) {
    const auto half = static_cast<std::uint16_t>(
        input[i] | (std::uint16_t{input[i + 1]} << 8));
    const auto it = lookup_.find(half);
    if (it == lookup_.end()) {
      writer.write_bit(true);
      writer.write_bits(half, 16);
    } else if (it->second.first == 0) {
      writer.write_bits(0b00, 2);
      writer.write_bits(it->second.second, 4);
    } else {
      writer.write_bits(0b01, 2);
      writer.write_bits(it->second.second, 8);
    }
  }
  if (i < input.size()) {  // odd trailing byte
    writer.write_byte(input[i]);
  }
  return writer.take();
}

Bytes CodePackCodec::decompress(ByteView input,
                                std::size_t original_size) const {
  Bytes out;
  out.reserve(original_size);
  BitReader reader(input);
  while (out.size() + 1 < original_size) {
    std::uint16_t half = 0;
    if (reader.read_bit()) {
      half = static_cast<std::uint16_t>(reader.read_bits(16));
    } else if (reader.read_bit()) {
      const std::uint32_t index = reader.read_bits(8);
      APCC_CHECK(index < dict_b_.size(), "codepack: bad dict-B index");
      half = dict_b_[index];
    } else {
      const std::uint32_t index = reader.read_bits(4);
      APCC_CHECK(index < dict_a_.size(), "codepack: bad dict-A index");
      half = dict_a_[index];
    }
    out.push_back(static_cast<std::uint8_t>(half & 0xff));
    out.push_back(static_cast<std::uint8_t>(half >> 8));
  }
  if (out.size() < original_size) {  // odd trailing byte
    out.push_back(reader.read_byte());
  }
  APCC_CHECK(out.size() == original_size, "codepack size mismatch");
  return out;
}

}  // namespace apcc::compress
