// Seeded random structured-program generator.
//
// Emits well-formed ERISC-32 programs from a structured grammar (sequence
// / counted loop / if / if-else / rare path / cold region / leaf call), so
// every generated program terminates and assembles. Used for property
// tests ("for any program, invariants hold") and for scaling studies where
// the six-kernel suite is too small.
#pragma once

#include "workloads/suite.hpp"

namespace apcc::workloads {

struct RandomProgramOptions {
  std::uint64_t seed = 42;
  int leaf_functions = 3;      // callable leaves in addition to main
  int max_depth = 3;           // structural nesting limit
  int statements_per_body = 5; // structured statements per body
  int straight_line_run = 4;   // ALU/mem instructions per plain statement
  int loop_iters_min = 2;
  int loop_iters_max = 10;
  double p_loop = 0.30;
  double p_if = 0.25;
  double p_if_else = 0.15;
  double p_call = 0.10;        // only at depth 0 of main's body
  double p_rare = 0.08;
  double p_cold = 0.07;
  std::uint64_t max_steps = 20'000'000;
  bool apply_profile = true;
};

/// Generate the assembly source only.
[[nodiscard]] std::string random_program_source(
    const RandomProgramOptions& options);

/// Generate, assemble, build the CFG and execute -- a full Workload.
[[nodiscard]] Workload make_random_workload(
    const RandomProgramOptions& options);

}  // namespace apcc::workloads
