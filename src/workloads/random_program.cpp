#include "workloads/random_program.hpp"

#include "cfg/builder.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "workloads/asm_builder.hpp"

namespace apcc::workloads {

namespace {

/// Emits one function body from the grammar. Loop counters use r5/r6/r7
/// by nesting depth; r1-r4 are data scratch; r10 is the data base.
class BodyGenerator {
 public:
  /// `counter_offset` shifts the loop-counter register bank so that
  /// callers and leaf callees never share counters: main uses r5/r6/r7,
  /// leaves (offset 1, starting at depth 1) use r7/r8. Calls are only
  /// emitted at depth <= 1, so a callee can clobber r7/r8 without
  /// touching any live caller counter (r5/r6).
  BodyGenerator(AsmBuilder& b, apcc::Rng& rng,
                const RandomProgramOptions& options,
                const std::vector<std::string>& callees, int counter_offset)
      : b_(b),
        rng_(rng),
        options_(options),
        callees_(callees),
        counter_offset_(counter_offset) {}

  void emit_body(int depth, bool allow_calls) {
    for (int i = 0; i < options_.statements_per_body; ++i) {
      emit_statement(depth, allow_calls);
    }
  }

 private:
  void straight_line() {
    for (int i = 0; i < options_.straight_line_run; ++i) {
      switch (rng_.next_below(6)) {
        case 0:
          b_.ins("addi r1, r1, " + std::to_string(rng_.next_in(1, 31)));
          break;
        case 1: b_.ins("add r2, r1, r3"); break;
        case 2: b_.ins("mul r3, r2, r1"); break;
        case 3:
          b_.ins("andi r4, r3, " + std::to_string((1 << rng_.next_in(2, 8)) - 1));
          break;
        case 4: b_.ins("sw r2, 0(r10)"); break;
        case 5: b_.ins("lw r3, 0(r10)"); break;
      }
    }
  }

  void emit_statement(int depth, bool allow_calls) {
    const double u = rng_.next_double();
    double cut = options_.p_loop;
    if (u < cut && depth < options_.max_depth) {
      const std::string counter = loop_counter(depth);
      const auto iters = static_cast<int>(rng_.next_in(
          options_.loop_iters_min, options_.loop_iters_max));
      b_.counted_loop(counter, iters,
                      [&] { emit_body_shallow(depth + 1, allow_calls); });
      return;
    }
    cut += options_.p_if;
    if (u < cut) {
      b_.ins("andi r4, r1, 1");
      b_.if_ne("r4", "r0", [&] { straight_line(); });
      return;
    }
    cut += options_.p_if_else;
    if (u < cut) {
      b_.ins("andi r4, r1, 3");
      b_.if_eq_else(
          "r4", "r0", [&] { straight_line(); }, [&] { straight_line(); });
      return;
    }
    cut += options_.p_call;
    if (u < cut && allow_calls && depth <= 1 && !callees_.empty()) {
      b_.ins("jal " + callees_[rng_.next_below(callees_.size())]);
      return;
    }
    cut += options_.p_rare;
    if (u < cut && depth >= 1) {
      b_.rare_path(loop_counter(depth - 1), "r4", 3,
                   [&] { straight_line(); });
      return;
    }
    cut += options_.p_cold;
    if (u < cut) {
      b_.cold_region([&] { straight_line(); });
      return;
    }
    straight_line();
  }

  /// Inside loops, emit a shorter body (1-2 statements) to bound both the
  /// image size and the dynamic instruction count.
  void emit_body_shallow(int depth, bool allow_calls) {
    const int n = 1 + static_cast<int>(rng_.next_below(2));
    for (int i = 0; i < n; ++i) {
      emit_statement(depth, allow_calls);
    }
  }

  [[nodiscard]] std::string loop_counter(int depth) const {
    static const char* kCounters[] = {"r5", "r6", "r7", "r8", "r9"};
    const int index = depth + counter_offset_;
    APCC_ASSERT(index >= 0 && index < 5,
                "loop nesting exceeds counter registers");
    return kCounters[index];
  }

  AsmBuilder& b_;
  apcc::Rng& rng_;
  const RandomProgramOptions& options_;
  const std::vector<std::string>& callees_;
  int counter_offset_;
};

}  // namespace

std::string random_program_source(const RandomProgramOptions& options) {
  APCC_CHECK(options.max_depth >= 1 && options.max_depth <= 3,
             "max_depth must be in [1,3]");
  apcc::Rng rng(options.seed);
  AsmBuilder b;
  b.entry("main");

  std::vector<std::string> callees;
  for (int f = 0; f < options.leaf_functions; ++f) {
    const std::string name = "leaf" + std::to_string(f);
    callees.push_back(name);
    b.func(name);
    b.ins("addi r10, r0, " + std::to_string(4096 + 512 * f));
    BodyGenerator gen(b, rng, options, callees, /*counter_offset=*/1);
    gen.emit_body(/*depth=*/1, /*allow_calls=*/false);
    b.ins("ret");
  }

  b.func("main");
  b.ins("addi r10, r0, 2048");
  b.ins("addi r1, r0, 7");
  BodyGenerator gen(b, rng, options, callees, /*counter_offset=*/0);
  gen.emit_body(/*depth=*/0, /*allow_calls=*/true);
  b.ins("halt");
  return b.source();
}

Workload make_random_workload(const RandomProgramOptions& options) {
  Workload w;
  w.name = "random-" + std::to_string(options.seed);
  w.program = isa::assemble(random_program_source(options));

  auto built = cfg::build_cfg(w.program);
  w.cfg = std::move(built.cfg);
  w.word_to_block = std::move(built.word_to_block);

  isa::InterpreterOptions iopts;
  iopts.max_steps = options.max_steps;
  isa::Interpreter interp(w.program, iopts);
  cfg::BlockTraceBuilder tracer(w.cfg, w.word_to_block);
  interp.set_trace_hook([&tracer](std::uint32_t pc) { tracer.on_pc(pc); });
  const isa::ExecResult exec = interp.run();
  APCC_CHECK(exec.stop == isa::StopReason::kHalted,
             "random program did not halt (seed " +
                 std::to_string(options.seed) + ")");
  w.trace = tracer.take();
  cfg::validate_trace(w.cfg, w.trace);

  if (options.apply_profile) {
    cfg::EdgeProfile profile(w.cfg);
    profile.add_trace(w.trace);
    profile.apply_to(w.cfg);
  }
  w.block_bytes.reserve(w.cfg.block_count());
  for (const auto& block : w.cfg.blocks()) {
    w.block_bytes.push_back(
        w.program.bytes(block.first_word, block.word_count));
  }
  return w;
}

}  // namespace apcc::workloads
