// The APCC synthetic embedded benchmark suite.
//
// The paper's evaluation class is media/DSP embedded code; in place of the
// (unavailable) proprietary binaries, the suite provides six synthetic
// kernels with the control structure of the MediaBench programs they are
// named after: hot inner loops, occasional rare paths, cold error/setup
// code, and small call graphs. Each workload is real ERISC-32 assembly --
// assembled, CFG-built, and *executed* on the interpreter, so its block
// trace is an actual instruction access pattern, not a synthetic walk.
#pragma once

#include <string>
#include <vector>

#include "cfg/builder.hpp"
#include "cfg/profile.hpp"
#include "cfg/trace.hpp"
#include "compress/codec.hpp"
#include "isa/program.hpp"

namespace apcc::workloads {

enum class WorkloadKind : std::uint8_t {
  kAdpcmLike,    // speech codec: 1-D sample loop, quantiser diamonds
  kGsmLike,      // frames x samples nested loops, multiply-accumulate
  kJpegLike,     // 8x8 block transform loop nest + zigzag walk
  kMpeg2Like,    // motion search with early-exit inner loop
  kG721Like,     // predictor update: chain of small if/else diamonds
  kPegwitLike,   // wide-integer arithmetic with carry branches, deep cold code
  kDijkstraLike, // relaxation sweeps: data-dependent branch per edge
  kCrcLike,      // table-driven checksum: tight loop, table setup once
};

[[nodiscard]] const char* workload_name(WorkloadKind kind);
[[nodiscard]] std::vector<WorkloadKind> all_workload_kinds();

struct WorkloadOptions {
  /// Multiplies loop trip counts (image size is unaffected).
  int scale = 1;
  /// Interpreter safety limit.
  std::uint64_t max_steps = 20'000'000;
  /// Apply the trace's own edge profile to the CFG probabilities (the
  /// paper's profile-guided mode). When false, probabilities stay uniform.
  bool apply_profile = true;
};

/// A ready-to-simulate workload.
struct Workload {
  std::string name;
  isa::Program program;
  cfg::Cfg cfg;
  std::vector<cfg::BlockId> word_to_block;
  cfg::BlockTrace trace;                     // real executed access pattern
  std::vector<compress::Bytes> block_bytes;  // per-CFG-block image bytes

  [[nodiscard]] std::uint64_t image_bytes() const {
    return program.size_bytes();
  }
};

/// Build (assemble + CFG + execute) one workload.
[[nodiscard]] Workload make_workload(WorkloadKind kind,
                                     const WorkloadOptions& options = {});

/// The assembly text of a workload (exposed for tests and examples).
[[nodiscard]] std::string workload_source(WorkloadKind kind,
                                          const WorkloadOptions& options = {});

}  // namespace apcc::workloads
