// Synthetic instruction bytes for CFG blocks that have no backing program
// (the paper-figure graphs and generated topologies).
//
// Real compiled code has heavily skewed opcode and register distributions;
// the synthesizer mimics that so codec ratios on synthetic blocks are in
// the same regime as on assembled programs: ~60% of instructions come
// from the five hottest opcodes, registers are Zipf-ish with r0-r3 hot,
// and immediates are small.
#pragma once

#include "cfg/cfg.hpp"
#include "compress/codec.hpp"

namespace apcc::workloads {

/// Deterministically synthesize `block.word_count` encoded instructions
/// for `block` (the block id and `seed` fix the stream).
[[nodiscard]] compress::Bytes synthesize_block_bytes(
    const cfg::BasicBlock& block, std::uint64_t seed = 0x5eed);

}  // namespace apcc::workloads
