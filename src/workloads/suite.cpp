#include "workloads/suite.hpp"

#include "cfg/builder.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "support/assert.hpp"
#include "workloads/asm_builder.hpp"

namespace apcc::workloads {

namespace {

// Each kernel emits assembly through AsmBuilder. Register conventions in
// the kernels: r1-r9 scratch/induction, r10-r12 buffer bases and
// constants, r13 saved link for nested calls, r15 link (jal/ret).
//
// Every kernel carries substantial *cold* code -- both never-executed
// blocks inside hot functions and entire never-called functions -- which
// is representative of embedded binaries (error handling, alternative
// configurations) and is exactly the slack the paper's scheme and the
// cold-code baselines exploit.

std::string adpcm_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Leaf: quantise one sample (r1 in, r2 out; r3/r4 scratch;
  // r5 = predictor state, r6 = step size -- live across calls).
  b.func("adpcm_step");
  b.ins("sub r3, r1, r5");
  const std::string pos = b.gensym("pos");
  b.ins("slt r4, r3, r0");
  b.ins("beq r4, r0, " + pos);
  b.ins("sub r3, r0, r3");
  b.label(pos);
  b.ins("addi r2, r0, 0");
  b.if_eq_else(
      "r4", "r0",
      [&] {  // positive branch: code = diff / step (2 quantiser bits)
        b.ins("div r2, r3, r6");
        b.ins("andi r2, r2, 3");
        b.compute_run(6);
      },
      [&] {  // negative branch: set the sign bit
        b.ins("div r2, r3, r6");
        b.ins("andi r2, r2, 3");
        b.ins("ori r2, r2, 4");
        b.compute_run(6);
      });
  // Predictor update: pred += (code & 3) * step / 2.
  b.ins("andi r3, r2, 3");
  b.ins("mul r3, r3, r6");
  b.ins("addi r4, r0, 2");
  b.ins("div r3, r3, r4");
  b.ins("add r5, r5, r3");
  b.ins("ret");

  // Cold: saturation recovery, never called (only referenced from a
  // never-taken guard in main).
  b.func("adpcm_saturate");
  b.compute_run(90);
  b.ins("ret");

  // Warm-once: drains the encoder state after the sample loop; first
  // (and only) call happens late in the run.
  b.func("adpcm_flush");
  b.compute_run(24);
  b.ins("sw r5, 0(r10)");
  b.ins("sw r6, 4(r10)");
  b.ins("ret");

  b.func("main");
  b.ins("addi r5, r0, 0");      // predictor
  b.ins("addi r6, r0, 16");     // step size
  b.ins("addi r8, r0, 37");     // sample mixer
  b.ins("addi r10, r0, 2048");  // output buffer base
  b.counted_loop("r7", 256 * scale, [&] {
    b.ins("mul r1, r7, r8");
    b.ins("andi r1, r1, 255");
    b.ins("jal adpcm_step");
    b.ins("sw r2, 0(r10)");
    b.ins("addi r10, r10, 4");
    b.compute_run(14);
    // Step-size adaptation every 16 samples.
    b.rare_path("r7", "r9", 4, [&] {
      b.ins("addi r6, r6, 4");
      b.ins("andi r6, r6, 63");
      b.ins("ori r6, r6, 8");
      b.compute_run(10);
    });
    // Cold: saturation error handling, never reached.
    b.cold_region([&] {
      b.compute_run(40);
      b.ins("jal adpcm_saturate");
    });
  });
  b.ins("jal adpcm_flush");
  // Cold tail: bitstream-error reporting, present in the image only.
  b.cold_region([&] { b.compute_run(50); });
  b.ins("halt");
  return b.source();
}

std::string gsm_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Cold: comfort-noise generator for DTX mode, never engaged.
  b.func("gsm_dtx_fill");
  b.compute_run(110);
  b.ins("ret");

  b.func("main");
  b.ins("addi r10, r0, 4096");  // sample buffer
  b.ins("addi r11, r0, 8192");  // coefficient table
  b.ins("addi r9, r0, 0");      // frame accumulator
  // Fill a small coefficient table once (cold-ish setup, runs once).
  b.counted_loop("r1", 8, [&] {
    b.ins("mul r2, r1, r1");
    b.ins("sw r2, 0(r11)");
    b.ins("addi r11, r11, 4");
  });
  b.ins("addi r11, r0, 8192");
  // frames x samples: long-term-prediction style MAC loops.
  b.counted_loop("r7", 24 * scale, [&] {       // frames
    b.ins("addi r8, r0, 0");                   // frame energy
    b.counted_loop("r6", 40, [&] {             // samples per frame
      b.ins("mul r1, r6, r7");
      b.ins("andi r1, r1, 1023");
      b.ins("lw r2, 0(r11)");
      b.ins("mul r3, r1, r2");
      b.ins("add r8, r8, r3");
      b.ins("sra r8, r8, r4");  // r4 = 0 initially: harmless shift
      b.compute_run(8);
    });
    b.ins("add r9, r9, r8");
    b.ins("sw r9, 0(r10)");
    // Rare: silence detection path every 8 frames.
    b.rare_path("r7", "r2", 3, [&] {
      b.ins("addi r9, r9, -1");
      b.ins("slt r3, r9, r0");
      b.if_ne("r3", "r0", [&] { b.ins("addi r9, r0, 0"); });
      b.compute_run(12);
    });
    b.cold_region([&] {
      b.compute_run(50);
      b.ins("jal gsm_dtx_fill");
    });
  });
  b.ins("halt");
  return b.source();
}

std::string jpeg_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Leaf: 1-D butterfly pass over one row (r1 = row base address).
  b.func("dct_row");
  b.ins("lw r2, 0(r1)");
  b.ins("lw r3, 4(r1)");
  b.ins("add r4, r2, r3");
  b.ins("sub r5, r2, r3");
  b.ins("sw r4, 0(r1)");
  b.ins("sw r5, 4(r1)");
  b.ins("lw r2, 8(r1)");
  b.ins("lw r3, 12(r1)");
  b.ins("add r4, r2, r3");
  b.ins("sub r5, r2, r3");
  b.ins("sw r4, 8(r1)");
  b.ins("sw r5, 12(r1)");
  b.compute_run(10);
  b.ins("ret");

  // Cold: progressive-mode entropy tables, never built in this profile.
  b.func("jpeg_progressive_tables");
  b.compute_run(120);
  b.ins("ret");

  b.func("main");
  b.ins("addi r10, r0, 16384");  // image buffer
  // Cold: quantisation table setup for an alternative profile.
  b.cold_region([&] {
    b.compute_run(45);
    b.ins("jal jpeg_progressive_tables");
  });
  b.counted_loop("r7", 16 * scale, [&] {  // macroblocks
    // Initialise an 8x4-word tile.
    b.ins("add r9, r10, r0");
    b.counted_loop("r6", 8, [&] {
      b.ins("mul r2, r6, r7");
      b.ins("andi r2, r2, 255");
      b.ins("sw r2, 0(r9)");
      b.ins("addi r9, r9, 4");
    });
    // Row transform over 8 rows of the tile.
    b.ins("add r1, r10, r0");
    b.counted_loop("r6", 8, [&] {
      b.ins("jal dct_row");
      b.ins("addi r1, r1, 16");
    });
    // Zigzag + quantise walk with a skip diamond per element.
    b.ins("add r9, r10, r0");
    b.counted_loop("r6", 16, [&] {
      b.ins("lw r2, 0(r9)");
      b.ins("slt r3, r2, r0");
      b.if_eq_else(
          "r3", "r0",
          [&] {
            b.ins("srl r2, r2, r4");  // r4 = 0: identity
            b.compute_run(4);
          },
          [&] {
            b.ins("sub r2, r0, r2");
            b.compute_run(4);
          });
      b.ins("sw r2, 0(r9)");
      b.ins("addi r9, r9, 4");
    });
  });
  b.ins("halt");
  return b.source();
}

std::string mpeg2_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Cold: rate-control panic path for buffer overrun, never taken.
  b.func("mpeg2_rate_panic");
  b.compute_run(100);
  b.ins("ret");

  b.func("main");
  b.ins("addi r10, r0, 24576");  // reference frame
  b.ins("addi r11, r0, 28672");  // current frame
  b.ins("addi r12, r0, 64");     // early-exit threshold
  b.counted_loop("r7", 12 * scale, [&] {  // macroblocks
    b.ins("addi r9, r0, 16384");          // best SAD so far (big)
    b.counted_loop("r6", 9, [&] {         // candidate motion vectors
      b.ins("addi r8, r0, 0");            // SAD accumulator
      const std::string give_up = b.gensym("giveup");
      b.counted_loop("r5", 16, [&] {  // pixels
        b.ins("mul r1, r5, r6");
        b.ins("andi r1, r1, 255");
        b.ins("mul r2, r5, r7");
        b.ins("andi r2, r2, 255");
        b.ins("sub r3, r1, r2");
        b.ins("slt r4, r3, r0");
        b.if_ne("r4", "r0", [&] { b.ins("sub r3, r0, r3"); });
        b.ins("add r8, r8, r3");
        b.compute_run(6);
        // Early exit once the partial SAD exceeds the running best.
        b.ins("slt r4, r9, r8");
        b.ins("bne r4, r0, " + give_up);
      });
      b.label(give_up);
      b.ins("slt r4, r8, r9");
      b.if_ne("r4", "r0", [&] { b.ins("add r9, r8, r0"); });
    });
    b.ins("sw r9, 0(r11)");
    b.ins("addi r11, r11, 4");
    // Rare: scene-change handling every 4 macroblocks.
    b.rare_path("r7", "r2", 2, [&] {
      b.ins("addi r12, r12, 8");
      b.ins("andi r12, r12, 127");
      b.ins("ori r12, r12, 16");
    });
    b.cold_region([&] {
      b.compute_run(60);
      b.ins("jal mpeg2_rate_panic");
    });
  });
  // Cold tail: field-picture handling, absent from this stream type.
  b.cold_region([&] { b.compute_run(55); });
  b.ins("halt");
  return b.source();
}

std::string g721_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Cold: tone/transition detector reset, never triggered.
  b.func("g721_tone_reset");
  b.compute_run(80);
  b.ins("ret");

  b.func("main");
  b.ins("addi r5, r0, 32");  // predictor pole
  b.ins("addi r6, r0, 8");   // predictor zero
  b.ins("addi r10, r0, 32768");
  b.counted_loop("r7", 300 * scale, [&] {
    b.ins("mul r1, r7, r5");
    b.ins("andi r1, r1, 511");
    // A chain of small decision diamonds, one per coefficient.
    for (int stage = 0; stage < 4; ++stage) {
      b.ins("andi r2, r1, " + std::to_string(1 << stage));
      b.if_eq_else(
          "r2", "r0",
          [&] {
            b.ins("addi r5, r5, 1");
            b.ins("andi r5, r5, 255");
            b.compute_run(4);
          },
          [&] {
            b.ins("addi r6, r6, 1");
            b.ins("andi r6, r6, 63");
            b.compute_run(4);
          });
    }
    b.ins("add r3, r5, r6");
    b.ins("sw r3, 0(r10)");
    b.compute_run(12);
    b.rare_path("r7", "r4", 5, [&] {  // step adaptation every 32 samples
      b.ins("srl r5, r5, r9");        // r9 = 0: identity shift
      b.ins("addi r6, r6, 2");
      b.compute_run(8);
    });
    b.cold_region([&] {
      b.compute_run(35);
      b.ins("jal g721_tone_reset");
    });
  });
  // Cold tail: law-conversion tables for the other companding mode.
  b.cold_region([&] { b.compute_run(60); });
  b.ins("halt");
  return b.source();
}

std::string pegwit_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Cold: big-number division fallback, never needed by this key size.
  b.func("mp_div_fallback");
  b.compute_run(130);
  b.ins("ret");

  // mul_word: multiply-with-carry over a 4-word limb array at r1.
  // Uses r13 to preserve the link register across the nested call.
  b.func("mul_word");
  b.ins("addi r4, r0, 0");  // carry
  b.counted_loop("r5", 4, [&] {
    b.ins("lw r2, 0(r1)");
    b.ins("mul r3, r2, r6");  // r6 = multiplier
    b.ins("add r3, r3, r4");
    b.ins("srl r4, r3, r8");  // r8 = 16: carry = high half
    b.ins("andi r3, r3, 16383");
    b.ins("sw r3, 0(r1)");
    b.ins("addi r1, r1, 4");
  });
  b.ins("ret");

  // square_into: calls mul_word twice (nested call, saved link).
  b.func("square_into");
  b.ins("add r13, r15, r0");  // save link
  b.ins("jal mul_word");
  b.ins("addi r1, r1, -16");  // rewind limb pointer
  b.ins("jal mul_word");
  b.ins("add r15, r13, r0");  // restore link
  b.ins("ret");

  b.func("main");
  b.ins("addi r10, r0, 40960");  // limb buffer
  b.ins("addi r8, r0, 16");      // carry shift
  // Initialise limbs.
  b.ins("add r1, r10, r0");
  b.counted_loop("r5", 4, [&] {
    b.ins("addi r2, r5, 9");
    b.ins("sw r2, 0(r1)");
    b.ins("addi r1, r1, 4");
  });
  b.counted_loop("r7", 80 * scale, [&] {
    b.ins("andi r6, r7, 1023");
    b.ins("ori r6, r6, 3");
    b.ins("add r1, r10, r0");
    b.ins("jal square_into");
    // Carry-propagation diamond.
    b.ins("slt r2, r0, r4");
    b.if_ne("r2", "r0", [&] {
      b.ins("lw r3, 0(r10)");
      b.ins("add r3, r3, r4");
      b.ins("andi r3, r3, 16383");
      b.ins("sw r3, 0(r10)");
    });
    b.compute_run(12);
    b.rare_path("r7", "r3", 4, [&] {  // renormalise every 16 rounds
      b.ins("add r1, r10, r0");
      b.ins("lw r2, 0(r1)");
      b.ins("ori r2, r2, 1");
      b.ins("sw r2, 0(r1)");
      b.compute_run(10);
    });
    // Deep cold code: parameter validation / error reporting.
    b.cold_region([&] {
      b.compute_run(70);
      b.ins("jal mp_div_fallback");
    });
  });
  b.ins("halt");
  return b.source();
}

std::string dijkstra_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Cold: path reconstruction, only needed when a query is issued.
  b.func("dij_reconstruct");
  b.compute_run(95);
  b.ins("ret");

  b.func("main");
  b.ins("addi r10, r0, 49152");  // dist[] array (16 nodes)
  // Initialise distances to a large value, source to 0.
  b.ins("add r1, r10, r0");
  b.counted_loop("r5", 16, [&] {
    b.ins("addi r2, r0, 16383");
    b.ins("sw r2, 0(r1)");
    b.ins("addi r1, r1, 4");
  });
  b.ins("sw r0, 0(r10)");
  // Relaxation sweeps: for each round, walk all node pairs (u, v) with a
  // synthetic edge weight; relax when it improves -- the data-dependent
  // branch that makes this workload's access pattern irregular.
  b.counted_loop("r7", 6 * scale, [&] {          // rounds
    b.counted_loop("r6", 16, [&] {               // u
      b.ins("addi r1, r6, -1");
      b.ins("slli r1, r1, 2");
      b.ins("add r1, r1, r10");
      b.ins("lw r2, 0(r1)");                     // dist[u]
      b.counted_loop("r5", 4, [&] {              // 4 neighbours of u
        // v = (u * 5 + r5 * 3) % 16, w = ((u + r5) & 7) + 1
        b.ins("mul r3, r6, r5");
        b.ins("andi r3, r3, 15");
        b.ins("slli r3, r3, 2");
        b.ins("add r3, r3, r10");
        b.ins("lw r4, 0(r3)");                   // dist[v]
        b.ins("add r1, r6, r5");
        b.ins("andi r1, r1, 7");
        b.ins("addi r1, r1, 1");                 // weight
        b.ins("add r1, r2, r1");                 // cand = dist[u] + w
        b.ins("slt r2, r1, r4");
        b.if_ne("r2", "r0", [&] {                // relax
          b.ins("sw r1, 0(r3)");
          b.compute_run(5);
        });
        // Reload dist[u] (r1/r2 were clobbered).
        b.ins("addi r2, r6, -1");
        b.ins("slli r2, r2, 2");
        b.ins("add r2, r2, r10");
        b.ins("lw r2, 0(r2)");
      });
    });
    b.rare_path("r7", "r3", 2, [&] {  // periodic queue compaction
      b.compute_run(14);
    });
    b.cold_region([&] {
      b.compute_run(40);
      b.ins("jal dij_reconstruct");
    });
  });
  b.ins("halt");
  return b.source();
}

std::string crc_like_source(int scale) {
  AsmBuilder b;
  b.entry("main");

  // Cold: table regeneration for the reflected polynomial variant.
  b.func("crc_reflected_table");
  b.compute_run(105);
  b.ins("ret");

  b.func("main");
  b.ins("addi r10, r0, 53248");  // 16-entry nibble table
  b.ins("addi r11, r0, 57344");  // message buffer
  // Build the table once (hot at start, never again): entry = f(i).
  b.ins("add r1, r10, r0");
  b.counted_loop("r5", 16, [&] {
    b.ins("mul r2, r5, r5");
    b.ins("xori r2, r2, 1021");
    b.ins("andi r2, r2, 16383");
    b.ins("sw r2, 0(r1)");
    b.ins("addi r1, r1, 4");
  });
  // Checksum loop: the tightest kernel in the suite -- one block body,
  // table lookup per byte, rarely leaves the loop.
  b.ins("addi r8, r0, 0");  // crc state
  b.counted_loop("r7", 600 * scale, [&] {
    b.ins("andi r1, r7, 255");       // message byte
    b.ins("xor r2, r8, r1");
    b.ins("andi r2, r2, 15");        // low nibble index
    b.ins("slli r2, r2, 2");
    b.ins("add r2, r2, r10");
    b.ins("lw r3, 0(r2)");
    b.ins("srli r8, r8, 4");
    b.ins("xor r8, r8, r3");
    b.rare_path("r7", "r4", 6, [&] {  // flush digest every 64 bytes
      b.ins("sw r8, 0(r11)");
      b.ins("addi r11, r11, 4");
      b.compute_run(8);
    });
    b.cold_region([&] {
      b.compute_run(30);
      b.ins("jal crc_reflected_table");
    });
  });
  b.ins("sw r8, 0(r11)");
  b.ins("halt");
  return b.source();
}

}  // namespace

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kAdpcmLike: return "adpcm-like";
    case WorkloadKind::kGsmLike: return "gsm-like";
    case WorkloadKind::kJpegLike: return "jpeg-like";
    case WorkloadKind::kMpeg2Like: return "mpeg2-like";
    case WorkloadKind::kG721Like: return "g721-like";
    case WorkloadKind::kPegwitLike: return "pegwit-like";
    case WorkloadKind::kDijkstraLike: return "dijkstra-like";
    case WorkloadKind::kCrcLike: return "crc-like";
  }
  return "?";
}

std::vector<WorkloadKind> all_workload_kinds() {
  return {WorkloadKind::kAdpcmLike,    WorkloadKind::kGsmLike,
          WorkloadKind::kJpegLike,     WorkloadKind::kMpeg2Like,
          WorkloadKind::kG721Like,     WorkloadKind::kPegwitLike,
          WorkloadKind::kDijkstraLike, WorkloadKind::kCrcLike};
}

std::string workload_source(WorkloadKind kind,
                            const WorkloadOptions& options) {
  APCC_CHECK(options.scale >= 1, "workload scale must be >= 1");
  switch (kind) {
    case WorkloadKind::kAdpcmLike: return adpcm_like_source(options.scale);
    case WorkloadKind::kGsmLike: return gsm_like_source(options.scale);
    case WorkloadKind::kJpegLike: return jpeg_like_source(options.scale);
    case WorkloadKind::kMpeg2Like: return mpeg2_like_source(options.scale);
    case WorkloadKind::kG721Like: return g721_like_source(options.scale);
    case WorkloadKind::kPegwitLike: return pegwit_like_source(options.scale);
    case WorkloadKind::kDijkstraLike:
      return dijkstra_like_source(options.scale);
    case WorkloadKind::kCrcLike: return crc_like_source(options.scale);
  }
  APCC_ASSERT(false, "unknown workload kind");
}

Workload make_workload(WorkloadKind kind, const WorkloadOptions& options) {
  Workload w;
  w.name = workload_name(kind);
  w.program = isa::assemble(workload_source(kind, options));

  auto built = cfg::build_cfg(w.program);
  w.cfg = std::move(built.cfg);
  w.word_to_block = std::move(built.word_to_block);

  // Execute for the real access pattern.
  isa::InterpreterOptions iopts;
  iopts.max_steps = options.max_steps;
  isa::Interpreter interp(w.program, iopts);
  cfg::BlockTraceBuilder tracer(w.cfg, w.word_to_block);
  interp.set_trace_hook([&tracer](std::uint32_t pc) { tracer.on_pc(pc); });
  const isa::ExecResult exec = interp.run();
  APCC_CHECK(exec.stop == isa::StopReason::kHalted,
             std::string("workload did not halt cleanly: ") + w.name);
  w.trace = tracer.take();
  cfg::validate_trace(w.cfg, w.trace);

  if (options.apply_profile) {
    cfg::EdgeProfile profile(w.cfg);
    profile.add_trace(w.trace);
    profile.apply_to(w.cfg);
  }

  w.block_bytes.reserve(w.cfg.block_count());
  for (const auto& block : w.cfg.blocks()) {
    w.block_bytes.push_back(
        w.program.bytes(block.first_word, block.word_count));
  }
  return w;
}

}  // namespace apcc::workloads
