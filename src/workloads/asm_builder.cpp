#include "workloads/asm_builder.hpp"

namespace apcc::workloads {

void AsmBuilder::func(const std::string& name) {
  out_ << ".func " << name << "\n";
}

void AsmBuilder::ins(const std::string& line) { out_ << "  " << line << "\n"; }

void AsmBuilder::label(const std::string& name) { out_ << name << ":\n"; }

std::string AsmBuilder::gensym(const std::string& prefix) {
  return prefix + "_" + std::to_string(next_label_++);
}

void AsmBuilder::counted_loop(const std::string& counter, int iters,
                              const std::function<void()>& body) {
  const std::string head = gensym("loop");
  ins("addi " + counter + ", r0, " + std::to_string(iters));
  label(head);
  body();
  ins("addi " + counter + ", " + counter + ", -1");
  ins("bne " + counter + ", r0, " + head);
}

void AsmBuilder::if_ne(const std::string& lhs, const std::string& rhs,
                       const std::function<void()>& then_body) {
  const std::string skip = gensym("endif");
  ins("beq " + lhs + ", " + rhs + ", " + skip);
  then_body();
  label(skip);
}

void AsmBuilder::if_eq_else(const std::string& lhs, const std::string& rhs,
                            const std::function<void()>& then_body,
                            const std::function<void()>& else_body) {
  const std::string else_label = gensym("else");
  const std::string end_label = gensym("endif");
  ins("bne " + lhs + ", " + rhs + ", " + else_label);
  then_body();
  ins("jmp " + end_label);
  label(else_label);
  else_body();
  label(end_label);
}

void AsmBuilder::rare_path(const std::string& counter,
                           const std::string& scratch, int log2_period,
                           const std::function<void()>& body) {
  const std::string skip = gensym("norare");
  const int mask = (1 << log2_period) - 1;
  ins("andi " + scratch + ", " + counter + ", " + std::to_string(mask));
  ins("bne " + scratch + ", r0, " + skip);
  body();
  label(skip);
}

void AsmBuilder::cold_region(const std::function<void()>& body) {
  const std::string cold = gensym("cold");
  const std::string resume = gensym("resume");
  // r0 != r0 never holds, so the cold body is never entered; it still
  // occupies image space and appears in the CFG.
  ins("bne r0, r0, " + cold);
  ins("jmp " + resume);
  label(cold);
  body();
  ins("jmp " + resume);
  label(resume);
}

void AsmBuilder::compute_run(int n) {
  for (int i = 0; i < n; ++i) {
    switch ((compute_phase_++) % 8) {
      case 0: ins("addi r1, r1, 3"); break;
      case 1: ins("add r2, r1, r3"); break;
      case 2: ins("andi r3, r2, 255"); break;
      case 3: ins("sw r2, 0(r10)"); break;
      case 4: ins("mul r4, r3, r1"); break;
      case 5: ins("lw r3, 0(r10)"); break;
      case 6: ins("xor r2, r2, r4"); break;
      case 7: ins("srli r4, r4, 1"); break;
    }
  }
}

void AsmBuilder::entry(const std::string& name) {
  out_ << ".entry " << name << "\n";
}

}  // namespace apcc::workloads
