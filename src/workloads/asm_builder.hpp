// AsmBuilder: a small structured-assembly DSL.
//
// The workload suite and the random program generator both emit ERISC-32
// assembly text; AsmBuilder supplies unique labels and structured control
// flow (counted loops, if/else, rare paths, never-taken cold paths) so
// kernels stay readable and are guaranteed well formed.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace apcc::workloads {

class AsmBuilder {
 public:
  /// Begin a function (emits .func and its label).
  void func(const std::string& name);

  /// Emit a raw instruction or label line.
  void ins(const std::string& line);
  void label(const std::string& name);

  /// Fresh unique label with the given prefix.
  [[nodiscard]] std::string gensym(const std::string& prefix);

  /// Counted loop: `counter` counts `iters` down to 0 around `body`.
  /// The body must preserve `counter`.
  void counted_loop(const std::string& counter, int iters,
                    const std::function<void()>& body);

  /// if (lhs != rhs) { then_body } -- no else.
  void if_ne(const std::string& lhs, const std::string& rhs,
             const std::function<void()>& then_body);

  /// if (lhs == rhs) { then_body } else { else_body }.
  void if_eq_else(const std::string& lhs, const std::string& rhs,
                  const std::function<void()>& then_body,
                  const std::function<void()>& else_body);

  /// Body executes only when `counter % (2^log2_period) == 0`: a rare
  /// path. Clobbers `scratch`.
  void rare_path(const std::string& counter, const std::string& scratch,
                 int log2_period, const std::function<void()>& body);

  /// Cold code: emitted into the image but guarded so it never executes
  /// (models error handlers / dead configuration paths). The body must
  /// end by *not* falling through -- the builder appends a jump back.
  void cold_region(const std::function<void()>& body);

  /// Emit `n` deterministic straight-line compute instructions over
  /// r1-r4 (loads/stores against r10). Lengthens blocks realistically
  /// without changing control flow; the pattern phase-shifts per call
  /// site so the code is repetitive but not identical.
  void compute_run(int n);

  /// Set the program entry point.
  void entry(const std::string& name);

  [[nodiscard]] std::string source() const { return out_.str(); }

 private:
  std::ostringstream out_;
  int next_label_ = 0;
  int compute_phase_ = 0;
};

}  // namespace apcc::workloads
