#include "workloads/synth_bytes.hpp"

#include "isa/isa.hpp"
#include "support/rng.hpp"

namespace apcc::workloads {

namespace {

using isa::Opcode;

/// Hot-opcode mix loosely matching embedded integer code: loads/stores
/// and small ALU ops dominate.
constexpr Opcode kHotOpcodes[] = {Opcode::kAddi, Opcode::kLw, Opcode::kSw,
                                  Opcode::kAdd, Opcode::kBne};
constexpr Opcode kWarmOpcodes[] = {Opcode::kSub,  Opcode::kAndi, Opcode::kOri,
                                   Opcode::kSlli, Opcode::kBeq,  Opcode::kMul,
                                   Opcode::kSlt,  Opcode::kXor};

std::uint8_t pick_register(apcc::Rng& rng) {
  // Zipf-flavoured: r0..r3 hot, the rest cold.
  const double u = rng.next_double();
  if (u < 0.55) return static_cast<std::uint8_t>(rng.next_below(4));
  if (u < 0.85) return static_cast<std::uint8_t>(4 + rng.next_below(4));
  return static_cast<std::uint8_t>(8 + rng.next_below(8));
}

std::int32_t pick_immediate(apcc::Rng& rng) {
  const double u = rng.next_double();
  if (u < 0.5) return static_cast<std::int32_t>(rng.next_below(16));
  if (u < 0.85) return static_cast<std::int32_t>(rng.next_below(256));
  return static_cast<std::int32_t>(rng.next_in(-1024, 1024));
}

}  // namespace

compress::Bytes synthesize_block_bytes(const cfg::BasicBlock& block,
                                       std::uint64_t seed) {
  apcc::Rng rng(seed ^ (std::uint64_t{block.id} * 0x9e3779b97f4a7c15ULL));
  compress::Bytes out;
  out.reserve(std::size_t{block.word_count} * isa::kInstructionBytes);
  for (std::uint32_t i = 0; i < block.word_count; ++i) {
    isa::Instruction inst;
    const double u = rng.next_double();
    if (u < 0.60) {
      inst.opcode = kHotOpcodes[rng.next_below(std::size(kHotOpcodes))];
    } else if (u < 0.95) {
      inst.opcode = kWarmOpcodes[rng.next_below(std::size(kWarmOpcodes))];
    } else {
      inst.opcode = Opcode::kNop;
    }
    const auto& info = isa::opcode_info(inst.opcode);
    switch (info.format) {
      case isa::Format::kR:
        inst.rd = pick_register(rng);
        inst.rs1 = pick_register(rng);
        inst.rs2 = pick_register(rng);
        break;
      case isa::Format::kI:
        inst.rd = pick_register(rng);
        inst.rs1 = pick_register(rng);
        inst.imm = pick_immediate(rng);
        break;
      case isa::Format::kB:
        inst.rs1 = pick_register(rng);
        inst.rs2 = pick_register(rng);
        // Small local offsets, as compilers emit.
        inst.imm = static_cast<std::int32_t>(rng.next_in(-32, 32));
        break;
      case isa::Format::kJ:
        inst.imm = static_cast<std::int32_t>(rng.next_below(1024));
        break;
      case isa::Format::kNone:
        break;
    }
    const std::uint32_t word = isa::encode(inst);
    out.push_back(static_cast<std::uint8_t>(word & 0xff));
    out.push_back(static_cast<std::uint8_t>((word >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((word >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((word >> 24) & 0xff));
  }
  return out;
}

}  // namespace apcc::workloads
