#include "support/assert.hpp"

#include <sstream>

namespace apcc::detail {

namespace {
std::string render(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " -- " << msg;
  }
  return os.str();
}
}  // namespace

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  throw AssertionError(render("APCC_ASSERT", expr, file, line, msg));
}

void check_fail(const char* expr, const char* file, int line,
                const std::string& msg) {
  throw CheckError(render("APCC_CHECK", expr, file, line, msg));
}

}  // namespace apcc::detail
