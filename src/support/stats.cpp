#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace apcc {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  APCC_ASSERT(hi > lo, "histogram range must be non-empty");
  APCC_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

void TimeWeightedAverage::sample(std::uint64_t time, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = time;
    last_time_ = time;
    last_value_ = value;
    peak_ = value;
    return;
  }
  APCC_ASSERT(time >= last_time_, "samples must be time-ordered");
  integral_ += last_value_ * static_cast<double>(time - last_time_);
  last_time_ = time;
  last_value_ = value;
  peak_ = std::max(peak_, value);
}

double TimeWeightedAverage::integral(std::uint64_t end_time) const {
  if (!started_) return 0.0;
  APCC_ASSERT(end_time >= last_time_, "end time precedes last sample");
  return integral_ + last_value_ * static_cast<double>(end_time - last_time_);
}

double TimeWeightedAverage::average(std::uint64_t end_time) const {
  if (!started_ || end_time <= start_time_) return last_value_;
  return integral(end_time) / static_cast<double>(end_time - start_time_);
}

}  // namespace apcc
