// Aligned plain-text table rendering for benchmark and report output.
//
// The benchmark binaries print paper-style tables; this keeps their
// formatting consistent and the bench code free of manual padding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace apcc {

/// Column-aligned text table. First row added is treated as the header.
class TextTable {
 public:
  /// Start a new row.
  TextTable& row();

  /// Append a cell to the current row.
  TextTable& cell(std::string value);
  TextTable& cell(const char* value) { return cell(std::string(value)); }
  TextTable& cell(double value, int decimals = 2);
  TextTable& cell(std::uint64_t value);
  TextTable& cell(std::int64_t value);
  TextTable& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  /// Render with a separator line under the header row.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apcc
