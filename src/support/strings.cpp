#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace apcc {

std::vector<std::string_view> split_fields(std::string_view s,
                                           std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? s.size() : end;
    if (stop > start) {
      out.push_back(s.substr(start, stop - start));
    }
    start = stop + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_int(std::string_view s) {
  s = trim(s);
  APCC_CHECK(!s.empty(), "cannot parse empty integer");
  bool negative = false;
  if (s.front() == '-' || s.front() == '+') {
    negative = s.front() == '-';
    s.remove_prefix(1);
    APCC_CHECK(!s.empty(), "sign with no digits");
  }
  int base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
    APCC_CHECK(!s.empty(), "0x with no digits");
  }
  std::int64_t value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, base);
  APCC_CHECK(ec == std::errc{} && ptr == last,
             "malformed integer literal: '" + std::string(s) + "'");
  return negative ? -value : value;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (unit == 0) {
    os << bytes << " B";
  } else {
    os.precision(1);
    os << std::fixed << value << ' ' << kUnits[unit];
  }
  return os.str();
}

std::string percent(double fraction, int decimals) {
  std::ostringstream os;
  os.precision(decimals);
  os << std::fixed << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace apcc
