#include "support/bitstream.hpp"

namespace apcc {

void BitWriter::write_bits(std::uint32_t value, unsigned count) {
  APCC_ASSERT(count <= 32, "write_bits count out of range");
  if (count < 32) {
    value &= (count == 0) ? 0u : ((1u << count) - 1u);
  }
  bit_count_ += count;
  // Feed bits most-significant-first into the pending accumulator.
  for (unsigned i = count; i > 0; --i) {
    const std::uint32_t bit = (value >> (i - 1)) & 1u;
    pending_ = (pending_ << 1) | bit;
    ++pending_bits_;
    if (pending_bits_ == 8) {
      bytes_.push_back(static_cast<std::uint8_t>(pending_));
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

void BitWriter::align_to_byte() {
  if (pending_bits_ != 0) {
    write_bits(0, 8 - pending_bits_);
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  align_to_byte();
  std::vector<std::uint8_t> out = std::move(bytes_);
  bytes_.clear();
  pending_ = 0;
  pending_bits_ = 0;
  bit_count_ = 0;
  return out;
}

std::uint32_t BitReader::read_bits(unsigned count) {
  APCC_ASSERT(count <= 32, "read_bits count out of range");
  APCC_CHECK(bit_pos_ + count <= bytes_.size() * 8,
             "bitstream underflow: corrupt or truncated stream");
  std::uint32_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    const std::size_t byte_index = bit_pos_ >> 3;
    const unsigned bit_index = 7u - static_cast<unsigned>(bit_pos_ & 7u);
    const std::uint32_t bit = (bytes_[byte_index] >> bit_index) & 1u;
    value = (value << 1) | bit;
    ++bit_pos_;
  }
  return value;
}

void BitReader::align_to_byte() {
  bit_pos_ = (bit_pos_ + 7) & ~std::size_t{7};
}

}  // namespace apcc
