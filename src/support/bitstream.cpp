#include "support/bitstream.hpp"

namespace apcc {

void BitWriter::write_bits(std::uint32_t value, unsigned count) {
  APCC_ASSERT(count <= 32, "write_bits count out of range");
  if (count < 32) {
    value &= (count == 0) ? 0u : ((1u << count) - 1u);
  }
  bit_count_ += count;
  // pending_ holds < 8 bits between calls, so count + pending fits in 64.
  pending_ = (pending_ << count) | value;
  pending_bits_ += count;
  while (pending_bits_ >= 8) {
    bytes_.push_back(
        static_cast<std::uint8_t>(pending_ >> (pending_bits_ - 8)));
    pending_bits_ -= 8;
  }
  pending_ &= (std::uint64_t{1} << pending_bits_) - 1;
}

void BitWriter::align_to_byte() {
  if (pending_bits_ != 0) {
    write_bits(0, 8 - pending_bits_);
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  align_to_byte();
  std::vector<std::uint8_t> out = std::move(bytes_);
  bytes_.clear();
  pending_ = 0;
  pending_bits_ = 0;
  bit_count_ = 0;
  return out;
}

}  // namespace apcc
