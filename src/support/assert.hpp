// Assertion and error-reporting primitives for the APCC library.
//
// Two severities:
//   APCC_ASSERT  -- internal invariant; violation is a library bug.
//   APCC_CHECK   -- precondition on caller-supplied data; violation is a
//                   usage error (bad program, malformed stream, ...).
//
// Both throw (AssertionError / CheckError) rather than abort so that the
// simulator and the test suite can exercise failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace apcc {

/// Thrown when an internal invariant of the library is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when caller-supplied data violates a documented precondition.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
[[noreturn]] void check_fail(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace apcc

#define APCC_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::apcc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                   \
  } while (false)

#define APCC_CHECK(expr, msg)                                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::apcc::detail::check_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (false)
