// Bit-granular output/input streams used by the compression codecs.
//
// Bits are packed MSB-first within each byte, which matches the canonical
// Huffman convention and makes streams easy to inspect in hex dumps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace apcc {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `count` bits of `value`, most significant first.
  /// `count` must be in [0, 32].
  void write_bits(std::uint32_t value, unsigned count);

  /// Append a single bit (0 or 1).
  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  /// Append a full byte.
  void write_byte(std::uint8_t byte) { write_bits(byte, 8); }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

  /// Finish the stream (pads to a byte boundary) and return the bytes.
  [[nodiscard]] std::vector<std::uint8_t> take();

  /// Bytes written so far, excluding any partial trailing byte.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t pending_ = 0;   // bits not yet flushed, left-aligned count
  unsigned pending_bits_ = 0;   // how many bits of pending_ are valid
  std::size_t bit_count_ = 0;
};

/// Reads bits MSB-first from a byte span. Reading past the end throws
/// CheckError, so corrupt streams are detected rather than mis-decoded.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Read `count` bits (MSB-first) as an unsigned value. count <= 32.
  [[nodiscard]] std::uint32_t read_bits(unsigned count);

  /// Read one bit.
  [[nodiscard]] bool read_bit() { return read_bits(1) != 0; }

  /// Read a full byte.
  [[nodiscard]] std::uint8_t read_byte() {
    return static_cast<std::uint8_t>(read_bits(8));
  }

  /// Skip forward to the next byte boundary.
  void align_to_byte();

  /// Bits consumed so far.
  [[nodiscard]] std::size_t bit_position() const { return bit_pos_; }

  /// True if every bit has been consumed (ignoring byte-alignment padding).
  [[nodiscard]] bool exhausted() const {
    return bit_pos_ >= bytes_.size() * 8;
  }

  /// Bits remaining.
  [[nodiscard]] std::size_t bits_remaining() const {
    return bytes_.size() * 8 - bit_pos_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_pos_ = 0;
};

}  // namespace apcc
