// Bit-granular output/input streams used by the compression codecs.
//
// Bits are packed MSB-first within each byte, which matches the canonical
// Huffman convention and makes streams easy to inspect in hex dumps.
//
// Both directions run through a 64-bit accumulator so per-symbol work is
// a couple of shifts instead of a loop over individual bits. The reader
// additionally exposes a peek/consume split (peek_bits / consume_bits):
// table-driven decoders peek a fixed window, look the whole symbol up,
// and consume only the bits the matched code actually used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace apcc {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `count` bits of `value`, most significant first.
  /// `count` must be in [0, 32].
  void write_bits(std::uint32_t value, unsigned count);

  /// Append a single bit (0 or 1).
  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  /// Append a full byte.
  void write_byte(std::uint8_t byte) { write_bits(byte, 8); }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

  /// Finish the stream (pads to a byte boundary) and return the bytes.
  [[nodiscard]] std::vector<std::uint8_t> take();

  /// Bytes written so far, excluding any partial trailing byte.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t pending_ = 0;   // not-yet-flushed bits, right-aligned
  unsigned pending_bits_ = 0;   // how many bits of pending_ are valid (< 8
                                // between calls)
  std::size_t bit_count_ = 0;
};

/// Reads bits MSB-first from a byte span. Reading past the end throws
/// CheckError, so corrupt streams are detected rather than mis-decoded.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Read `count` bits (MSB-first) as an unsigned value. count <= 32.
  [[nodiscard]] std::uint32_t read_bits(unsigned count) {
    const std::uint32_t value = peek_bits(count);
    consume_bits(count);
    return value;
  }

  /// Read one bit.
  [[nodiscard]] bool read_bit() { return read_bits(1) != 0; }

  /// Read a full byte.
  [[nodiscard]] std::uint8_t read_byte() {
    return static_cast<std::uint8_t>(read_bits(8));
  }

  /// Return the next `count` bits (MSB-first) WITHOUT consuming them.
  /// Bits past the end of the stream read as zero, so fixed-width decode
  /// windows can be peeked near the end; the bounds check happens on
  /// consume_bits. count <= 32.
  [[nodiscard]] std::uint32_t peek_bits(unsigned count) {
    APCC_ASSERT(count <= 32, "peek_bits count out of range");
    if (count == 0) return 0;
    if (buf_bits_ < count) refill();
    return static_cast<std::uint32_t>(buf_ >> (64 - count));
  }

  /// Advance past `count` bits previously peeked. Throws CheckError when
  /// fewer than `count` real bits remain (corrupt / truncated stream).
  void consume_bits(unsigned count) {
    APCC_ASSERT(count <= 32, "consume_bits count out of range");
    APCC_CHECK(bit_pos_ + count <= bytes_.size() * 8,
               "bitstream underflow: corrupt or truncated stream");
    if (buf_bits_ < count) refill();
    buf_ <<= count;
    buf_bits_ -= count;
    bit_pos_ += count;
  }

  /// Skip forward to the next byte boundary.
  void align_to_byte() {
    consume_bits(static_cast<unsigned>((8 - (bit_pos_ & 7)) & 7));
  }

  /// Bits consumed so far.
  [[nodiscard]] std::size_t bit_position() const { return bit_pos_; }

  /// True if every bit has been consumed (ignoring byte-alignment padding).
  [[nodiscard]] bool exhausted() const {
    return bit_pos_ >= bytes_.size() * 8;
  }

  /// Bits remaining.
  [[nodiscard]] std::size_t bits_remaining() const {
    return bytes_.size() * 8 - bit_pos_;
  }

 private:
  // Top up the accumulator. Afterwards it holds >= 57 bits, or every bit
  // left in the stream. The invariant between calls: the top buf_bits_
  // bits of buf_ are the stream bits starting at bit_pos_, and the low
  // 64 - buf_bits_ bits are zero (consume shifts zeros in), which is what
  // gives peek_bits its zero-padding past the end.
  void refill() {
    while (buf_bits_ <= 56 && fill_pos_ < bytes_.size()) {
      buf_ |= static_cast<std::uint64_t>(bytes_[fill_pos_++])
              << (56 - buf_bits_);
      buf_bits_ += 8;
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t bit_pos_ = 0;   // consumed bits
  std::uint64_t buf_ = 0;     // upcoming bits, MSB-aligned
  unsigned buf_bits_ = 0;     // valid bits in buf_
  std::size_t fill_pos_ = 0;  // next byte index to load into buf_
};

}  // namespace apcc
