// Deterministic pseudo-random number generation.
//
// Everything in APCC that needs randomness (trace generation, synthetic
// program construction, property tests) takes an explicit Rng so runs are
// reproducible from a single seed. The generator is xoshiro256** seeded
// via splitmix64, which has excellent statistical quality and is trivially
// portable -- no dependence on the standard library's unspecified
// distribution implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace apcc {

/// Deterministic 64-bit PRNG (xoshiro256**, splitmix64-seeded).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p);

  /// Pick an index in [0, weights.size()) with probability proportional
  /// to weights[i]. All weights must be >= 0 and their sum > 0.
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Geometric-ish trip count: returns at least 1; expected value ~= mean.
  std::uint64_t next_trip_count(double mean);

  /// Split off an independent child generator (for parallel structures).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace apcc
