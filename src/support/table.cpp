#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace apcc {

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  APCC_ASSERT(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(double value, int decimals) {
  std::ostringstream os;
  os.precision(decimals);
  os << std::fixed << value;
  return cell(os.str());
}

TextTable& TextTable::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

std::string TextTable::render() const {
  if (rows_.empty()) return {};
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  std::ostringstream os;
  for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
    const auto& r = rows_[ri];
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << r[i];
      if (i + 1 < r.size()) {
        os << std::string(widths[i] - r[i].size() + 2, ' ');
      }
    }
    os << '\n';
    if (ri == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < widths.size(); ++i) {
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
      }
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

}  // namespace apcc
