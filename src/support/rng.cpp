#include "support/rng.hpp"

#include <cmath>

namespace apcc {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  APCC_ASSERT(bound > 0, "next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  APCC_ASSERT(lo <= hi, "next_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 on full range
  if (span == 0) {
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  APCC_ASSERT(!weights.empty(), "next_weighted requires weights");
  double total = 0.0;
  for (double w : weights) {
    APCC_ASSERT(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  APCC_ASSERT(total > 0.0, "weights must not all be zero");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // guard against FP rounding
}

std::uint64_t Rng::next_trip_count(double mean) {
  APCC_ASSERT(mean >= 1.0, "trip count mean must be >= 1");
  if (mean == 1.0) return 1;
  // Geometric distribution with success probability 1/mean, shifted to be
  // at least 1. E[X] = mean.
  const double p = 1.0 / mean;
  const double u = next_double();
  const double draw = std::floor(std::log1p(-u) / std::log1p(-p));
  return 1 + static_cast<std::uint64_t>(draw);
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL);
}

}  // namespace apcc
