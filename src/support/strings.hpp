// Small string utilities shared by the assembler, report printers, etc.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace apcc {

/// Split `s` on any character in `delims`, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split_fields(
    std::string_view s, std::string_view delims = " \t,");

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a decimal or 0x-prefixed hexadecimal integer. Throws CheckError
/// on malformed input or overflow.
[[nodiscard]] std::int64_t parse_int(std::string_view s);

/// "12.3 KiB"-style rendering for byte counts.
[[nodiscard]] std::string human_bytes(std::uint64_t bytes);

/// Fixed-precision percentage string, e.g. 0.1234 -> "12.34%".
[[nodiscard]] std::string percent(double fraction, int decimals = 2);

}  // namespace apcc
