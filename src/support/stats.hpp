// Streaming statistics helpers used by the simulator and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace apcc {

/// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render as an ASCII bar chart, one bucket per line.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Time-weighted average of a step function sampled at event times.
/// Feed (time, value) pairs with non-decreasing times; `average(end)` is
/// the integral of the step function divided by elapsed time. Used for
/// "average memory occupancy over the run" metrics (byte-cycles / cycles).
class TimeWeightedAverage {
 public:
  void sample(std::uint64_t time, double value);

  /// Average value over [first_sample_time, end_time].
  [[nodiscard]] double average(std::uint64_t end_time) const;

  /// Integral of the step function up to `end_time` (e.g. byte-cycles).
  [[nodiscard]] double integral(std::uint64_t end_time) const;

  [[nodiscard]] bool empty() const { return !started_; }
  [[nodiscard]] double peak() const { return peak_; }

 private:
  bool started_ = false;
  std::uint64_t start_time_ = 0;
  std::uint64_t last_time_ = 0;
  double last_value_ = 0.0;
  double integral_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace apcc
