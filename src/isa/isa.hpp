// ERISC-32: a small 32-bit RISC-style embedded ISA.
//
// APCC compresses real instruction bytes, so it needs an ISA with concrete
// encodings. ERISC-32 is deliberately conventional: fixed 32-bit words,
// sixteen registers, four instruction formats. The opcode/operand field
// layout gives compiled code the skewed bit-distribution that code
// compressors exploit (dense opcode reuse, small immediates, few hot
// registers).
//
// Encoding (bit 31 is the MSB):
//   R-type:  opcode[31:26] rd[25:22] rs1[21:18] rs2[17:14] zero[13:0]
//   I-type:  opcode[31:26] rd[25:22] rs1[21:18] imm[17:0]   (signed)
//   B-type:  opcode[31:26] rs1[25:22] rs2[21:18] off[17:0]  (signed words)
//   J-type:  opcode[31:26] target[25:0]                     (absolute words)
//
// Branch offsets are relative to the *following* instruction:
//   target_word = branch_word_index + 1 + offset.
// Register conventions: r0 reads as zero, writes are discarded; r14 is the
// stack pointer; r15 is the link register (written by jal).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace apcc::isa {

inline constexpr unsigned kNumRegisters = 16;
inline constexpr unsigned kZeroRegister = 0;
inline constexpr unsigned kStackRegister = 14;
inline constexpr unsigned kLinkRegister = 15;
inline constexpr unsigned kInstructionBytes = 4;

/// Signed range of the 18-bit immediate / branch-offset field.
inline constexpr std::int32_t kImmMin = -(1 << 17);
inline constexpr std::int32_t kImmMax = (1 << 17) - 1;
/// Range of the 26-bit absolute jump target (word address).
inline constexpr std::uint32_t kJumpTargetMax = (1u << 26) - 1;

/// Instruction formats, determining operand field layout.
enum class Format : std::uint8_t { kR, kI, kB, kJ, kNone };

/// All ERISC-32 opcodes. The enumerator value is the 6-bit opcode field.
enum class Opcode : std::uint8_t {
  // R-type ALU.
  kAdd = 0,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kMul,
  kDiv,
  kSlt,
  // I-type ALU / memory.
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kLui,
  kLw,
  kSw,
  kLb,
  kSb,
  // B-type conditional branches (compare rs1, rs2).
  kBeq,
  kBne,
  kBlt,
  kBge,
  // J-type jumps (absolute word target).
  kJmp,
  kJal,
  // R-type indirect control (target in rs1).
  kJr,
  kRet,  // alias for jr r15, encoded distinctly for disassembly clarity
  // No-operand.
  kNop,
  kHalt,
  kOpcodeCount  // sentinel, not a real opcode
};

inline constexpr unsigned kNumOpcodes =
    static_cast<unsigned>(Opcode::kOpcodeCount);

/// Static description of an opcode.
struct OpcodeInfo {
  std::string_view mnemonic;
  Format format = Format::kNone;
  bool is_branch = false;     // conditional branch (B-type)
  bool is_jump = false;       // unconditional direct jump (jmp/jal)
  bool is_indirect = false;   // jr/ret
  bool is_call = false;       // jal
  bool is_return = false;     // ret
  bool is_load = false;
  bool is_store = false;
  bool is_halt = false;
};

/// Lookup table entry for `op`. Asserts on the sentinel value.
[[nodiscard]] const OpcodeInfo& opcode_info(Opcode op);

/// Reverse lookup by mnemonic; nullopt if unknown.
[[nodiscard]] std::optional<Opcode> opcode_from_mnemonic(std::string_view m);

/// A decoded instruction. Fields that do not apply to the format are zero.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;  // I-type immediate, B-type offset, or J-type target

  friend bool operator==(const Instruction&, const Instruction&) = default;

  /// True if this instruction ends a basic block.
  [[nodiscard]] bool is_control() const;
  /// True if execution can fall through to the next instruction
  /// (conditional branches can; jumps/returns/halt cannot).
  [[nodiscard]] bool can_fall_through() const;
};

/// Encode to a 32-bit word. Throws CheckError if a field is out of range.
[[nodiscard]] std::uint32_t encode(const Instruction& inst);

/// Decode a 32-bit word. Throws CheckError on an invalid opcode field.
[[nodiscard]] Instruction decode(std::uint32_t word);

}  // namespace apcc::isa
