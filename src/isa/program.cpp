#include "isa/program.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace apcc::isa {

Program::Program(std::vector<std::uint32_t> words,
                 std::vector<FunctionInfo> functions,
                 std::map<std::string, std::uint32_t> labels,
                 std::uint32_t entry_word)
    : words_(std::move(words)),
      functions_(std::move(functions)),
      labels_(std::move(labels)),
      entry_word_(entry_word) {
  APCC_CHECK(entry_word_ < words_.size() || words_.empty(),
             "entry point outside program image");
  for (const auto& f : functions_) {
    APCC_CHECK(f.end_word() <= words_.size(),
               "function extent outside program image: " + f.name);
  }
}

std::uint32_t Program::word(std::uint32_t index) const {
  APCC_CHECK(index < words_.size(), "word index out of range");
  return words_[index];
}

Instruction Program::instruction(std::uint32_t index) const {
  return decode(word(index));
}

const FunctionInfo* Program::function_containing(std::uint32_t word) const {
  for (const auto& f : functions_) {
    if (word >= f.first_word && word < f.end_word()) {
      return &f;
    }
  }
  return nullptr;
}

std::optional<std::uint32_t> Program::label(const std::string& name) const {
  const auto it = labels_.find(name);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Program::label_at(std::uint32_t word) const {
  for (const auto& [name, idx] : labels_) {
    if (idx == word) return name;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> Program::bytes(std::uint32_t first,
                                         std::uint32_t count) const {
  APCC_CHECK(std::uint64_t{first} + count <= words_.size(),
             "byte range outside program image");
  std::vector<std::uint8_t> out;
  out.reserve(std::size_t{count} * kInstructionBytes);
  for (std::uint32_t i = first; i < first + count; ++i) {
    const std::uint32_t w = words_[i];
    out.push_back(static_cast<std::uint8_t>(w & 0xff));
    out.push_back(static_cast<std::uint8_t>((w >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((w >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((w >> 24) & 0xff));
  }
  return out;
}

}  // namespace apcc::isa
