// Two-pass assembler for ERISC-32 assembly text.
//
// Syntax overview (one statement per line, ';' or '#' starts a comment):
//
//   .func NAME          start a new function (implicitly ends the previous)
//   .entry NAME         set the program entry point (default: first func)
//   label:              define a label at the current word
//   add  rd, rs1, rs2   R-type
//   addi rd, rs1, imm   I-type ALU (imm decimal or 0x hex)
//   lui  rd, imm
//   lw   rd, imm(rs1)   loads
//   sw   rs, imm(rs1)   stores (rs is the value source)
//   beq  rs1, rs2, tgt  branches; tgt is a label or numeric word offset
//   jmp  tgt / jal tgt  jumps; tgt is a label or absolute word index
//   jr   rs1 / ret / nop / halt
//
// Registers: r0..r15, plus aliases zero (r0), sp (r14), ra (r15).
// Errors throw CheckError with the offending line number.
#pragma once

#include <string_view>

#include "isa/program.hpp"

namespace apcc::isa {

/// Assemble `source` into a Program. Throws CheckError on syntax errors,
/// unknown mnemonics, undefined labels, or out-of-range operands.
[[nodiscard]] Program assemble(std::string_view source);

}  // namespace apcc::isa
