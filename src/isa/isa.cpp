#include "isa/isa.hpp"

#include "support/assert.hpp"

namespace apcc::isa {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> make_table() {
  std::array<OpcodeInfo, kNumOpcodes> t{};
  auto set = [&t](Opcode op, std::string_view m, Format f) -> OpcodeInfo& {
    auto& e = t[static_cast<std::size_t>(op)];
    e.mnemonic = m;
    e.format = f;
    return e;
  };
  set(Opcode::kAdd, "add", Format::kR);
  set(Opcode::kSub, "sub", Format::kR);
  set(Opcode::kAnd, "and", Format::kR);
  set(Opcode::kOr, "or", Format::kR);
  set(Opcode::kXor, "xor", Format::kR);
  set(Opcode::kSll, "sll", Format::kR);
  set(Opcode::kSrl, "srl", Format::kR);
  set(Opcode::kSra, "sra", Format::kR);
  set(Opcode::kMul, "mul", Format::kR);
  set(Opcode::kDiv, "div", Format::kR);
  set(Opcode::kSlt, "slt", Format::kR);
  set(Opcode::kAddi, "addi", Format::kI);
  set(Opcode::kAndi, "andi", Format::kI);
  set(Opcode::kOri, "ori", Format::kI);
  set(Opcode::kXori, "xori", Format::kI);
  set(Opcode::kSlli, "slli", Format::kI);
  set(Opcode::kSrli, "srli", Format::kI);
  set(Opcode::kLui, "lui", Format::kI);
  set(Opcode::kLw, "lw", Format::kI).is_load = true;
  set(Opcode::kSw, "sw", Format::kI).is_store = true;
  set(Opcode::kLb, "lb", Format::kI).is_load = true;
  set(Opcode::kSb, "sb", Format::kI).is_store = true;
  set(Opcode::kBeq, "beq", Format::kB).is_branch = true;
  set(Opcode::kBne, "bne", Format::kB).is_branch = true;
  set(Opcode::kBlt, "blt", Format::kB).is_branch = true;
  set(Opcode::kBge, "bge", Format::kB).is_branch = true;
  set(Opcode::kJmp, "jmp", Format::kJ).is_jump = true;
  {
    auto& e = set(Opcode::kJal, "jal", Format::kJ);
    e.is_jump = true;
    e.is_call = true;
  }
  set(Opcode::kJr, "jr", Format::kR).is_indirect = true;
  {
    auto& e = set(Opcode::kRet, "ret", Format::kNone);
    e.is_indirect = true;
    e.is_return = true;
  }
  set(Opcode::kNop, "nop", Format::kNone);
  set(Opcode::kHalt, "halt", Format::kNone).is_halt = true;
  return t;
}

constexpr auto kOpcodeTable = make_table();

constexpr std::uint32_t kFieldMask18 = (1u << 18) - 1;
constexpr std::uint32_t kFieldMask26 = (1u << 26) - 1;

std::uint32_t check_reg(std::uint8_t r, const char* which) {
  APCC_CHECK(r < kNumRegisters, std::string("register out of range: ") + which);
  return r;
}

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const auto index = static_cast<std::size_t>(op);
  APCC_ASSERT(index < kNumOpcodes, "invalid opcode enumerator");
  return kOpcodeTable[index];
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view m) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    if (kOpcodeTable[i].mnemonic == m) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

bool Instruction::is_control() const {
  const auto& info = opcode_info(opcode);
  return info.is_branch || info.is_jump || info.is_indirect || info.is_halt;
}

bool Instruction::can_fall_through() const {
  const auto& info = opcode_info(opcode);
  if (info.is_branch) return true;  // not-taken path
  if (info.is_call) return true;    // execution resumes after the call
  return !(info.is_jump || info.is_indirect || info.is_halt);
}

std::uint32_t encode(const Instruction& inst) {
  const auto& info = opcode_info(inst.opcode);
  std::uint32_t word = static_cast<std::uint32_t>(inst.opcode) << 26;
  switch (info.format) {
    case Format::kR:
      word |= check_reg(inst.rd, "rd") << 22;
      word |= check_reg(inst.rs1, "rs1") << 18;
      word |= check_reg(inst.rs2, "rs2") << 14;
      break;
    case Format::kI:
      APCC_CHECK(inst.imm >= kImmMin && inst.imm <= kImmMax,
                 "I-type immediate out of range");
      word |= check_reg(inst.rd, "rd") << 22;
      word |= check_reg(inst.rs1, "rs1") << 18;
      word |= static_cast<std::uint32_t>(inst.imm) & kFieldMask18;
      break;
    case Format::kB:
      APCC_CHECK(inst.imm >= kImmMin && inst.imm <= kImmMax,
                 "branch offset out of range");
      word |= check_reg(inst.rs1, "rs1") << 22;
      word |= check_reg(inst.rs2, "rs2") << 18;
      word |= static_cast<std::uint32_t>(inst.imm) & kFieldMask18;
      break;
    case Format::kJ:
      APCC_CHECK(inst.imm >= 0 &&
                     static_cast<std::uint32_t>(inst.imm) <= kJumpTargetMax,
                 "jump target out of range");
      word |= static_cast<std::uint32_t>(inst.imm) & kFieldMask26;
      break;
    case Format::kNone:
      break;
  }
  return word;
}

Instruction decode(std::uint32_t word) {
  const std::uint32_t op_field = word >> 26;
  APCC_CHECK(op_field < kNumOpcodes, "invalid opcode field in word");
  Instruction inst;
  inst.opcode = static_cast<Opcode>(op_field);
  const auto& info = opcode_info(inst.opcode);
  auto sign_extend18 = [](std::uint32_t v) {
    return (v & (1u << 17)) != 0
               ? static_cast<std::int32_t>(v | ~kFieldMask18)
               : static_cast<std::int32_t>(v);
  };
  switch (info.format) {
    case Format::kR:
      inst.rd = static_cast<std::uint8_t>((word >> 22) & 0xf);
      inst.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xf);
      inst.rs2 = static_cast<std::uint8_t>((word >> 14) & 0xf);
      break;
    case Format::kI:
      inst.rd = static_cast<std::uint8_t>((word >> 22) & 0xf);
      inst.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xf);
      inst.imm = sign_extend18(word & kFieldMask18);
      break;
    case Format::kB:
      inst.rs1 = static_cast<std::uint8_t>((word >> 22) & 0xf);
      inst.rs2 = static_cast<std::uint8_t>((word >> 18) & 0xf);
      inst.imm = sign_extend18(word & kFieldMask18);
      break;
    case Format::kJ:
      inst.imm = static_cast<std::int32_t>(word & kFieldMask26);
      break;
    case Format::kNone:
      break;
  }
  return inst;
}

}  // namespace apcc::isa
