#include "isa/disasm.hpp"

#include <sstream>

namespace apcc::isa {

namespace {
std::string reg(std::uint8_t r) { return "r" + std::to_string(r); }
}  // namespace

std::string disassemble(const Instruction& inst, std::uint32_t word_index) {
  const OpcodeInfo& info = opcode_info(inst.opcode);
  std::ostringstream os;
  os << info.mnemonic;
  switch (info.format) {
    case Format::kR:
      if (info.is_indirect) {
        os << ' ' << reg(inst.rs1);
      } else {
        os << ' ' << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << reg(inst.rs2);
      }
      break;
    case Format::kI:
      if (info.is_load || info.is_store) {
        os << ' ' << reg(inst.rd) << ", " << inst.imm << '(' << reg(inst.rs1)
           << ')';
      } else if (inst.opcode == Opcode::kLui) {
        os << ' ' << reg(inst.rd) << ", " << inst.imm;
      } else {
        os << ' ' << reg(inst.rd) << ", " << reg(inst.rs1) << ", " << inst.imm;
      }
      break;
    case Format::kB: {
      const std::int64_t target =
          static_cast<std::int64_t>(word_index) + 1 + inst.imm;
      os << ' ' << reg(inst.rs1) << ", " << reg(inst.rs2) << ", @" << target;
      break;
    }
    case Format::kJ:
      os << " @" << inst.imm;
      break;
    case Format::kNone:
      break;
  }
  return os.str();
}

std::string disassemble(const Program& program) {
  std::ostringstream os;
  for (std::uint32_t i = 0; i < program.word_count(); ++i) {
    if (auto label = program.label_at(i)) {
      os << *label << ":\n";
    }
    os << "  [" << i << "] " << disassemble(program.instruction(i), i) << '\n';
  }
  return os.str();
}

}  // namespace apcc::isa
