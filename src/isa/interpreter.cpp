#include "isa/interpreter.hpp"

#include <limits>

#include "support/assert.hpp"

namespace apcc::isa {

Interpreter::Interpreter(const Program& program, InterpreterOptions options)
    : program_(program),
      options_(options),
      memory_(options.data_memory_bytes, 0),
      pc_(program.entry_word()) {
  // Conventional initial stack pointer: top of data memory, word-aligned.
  regs_[kStackRegister] =
      static_cast<std::int32_t>(options_.data_memory_bytes & ~3u);
}

std::int32_t Interpreter::reg(unsigned index) const {
  APCC_CHECK(index < kNumRegisters, "register index out of range");
  return index == kZeroRegister ? 0 : regs_[index];
}

void Interpreter::set_reg(unsigned index, std::int32_t value) {
  APCC_CHECK(index < kNumRegisters, "register index out of range");
  if (index != kZeroRegister) {
    regs_[index] = value;
  }
}

std::int32_t Interpreter::load_word(std::uint32_t addr) const {
  APCC_CHECK(std::uint64_t{addr} + 4 <= memory_.size(),
             "data load out of bounds");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | memory_[addr + static_cast<std::uint32_t>(i)];
  }
  return static_cast<std::int32_t>(v);
}

void Interpreter::store_word(std::uint32_t addr, std::int32_t value) {
  APCC_CHECK(std::uint64_t{addr} + 4 <= memory_.size(),
             "data store out of bounds");
  auto v = static_cast<std::uint32_t>(value);
  for (unsigned i = 0; i < 4; ++i) {
    memory_[addr + i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

std::uint8_t Interpreter::load_byte(std::uint32_t addr) const {
  APCC_CHECK(addr < memory_.size(), "data load out of bounds");
  return memory_[addr];
}

void Interpreter::store_byte(std::uint32_t addr, std::uint8_t value) {
  APCC_CHECK(addr < memory_.size(), "data store out of bounds");
  memory_[addr] = value;
}

bool Interpreter::step() {
  if (stopped_) return false;
  if (pc_ >= program_.word_count()) {
    stop_ = StopReason::kBadPc;
    stopped_ = true;
    return false;
  }
  if (trace_hook_) trace_hook_(pc_);
  const Instruction inst = program_.instruction(pc_);
  ++steps_;
  std::uint32_t next_pc = pc_ + 1;

  const std::int32_t a = reg(inst.rs1);
  const std::int32_t b = reg(inst.rs2);
  auto ua = static_cast<std::uint32_t>(a);
  auto ub = static_cast<std::uint32_t>(b);
  // Add/sub/mul wrap modulo 2^32 like the modelled hardware; doing them
  // in unsigned keeps the wrap defined (signed overflow is UB).
  auto wrap = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };

  switch (inst.opcode) {
    case Opcode::kAdd: set_reg(inst.rd, wrap(ua + ub)); break;
    case Opcode::kSub: set_reg(inst.rd, wrap(ua - ub)); break;
    case Opcode::kAnd: set_reg(inst.rd, a & b); break;
    case Opcode::kOr: set_reg(inst.rd, a | b); break;
    case Opcode::kXor: set_reg(inst.rd, a ^ b); break;
    case Opcode::kSll:
      set_reg(inst.rd, static_cast<std::int32_t>(
                           ua << (static_cast<std::uint32_t>(b) & 31u)));
      break;
    case Opcode::kSrl:
      set_reg(inst.rd, static_cast<std::int32_t>(
                           ua >> (static_cast<std::uint32_t>(b) & 31u)));
      break;
    case Opcode::kSra:
      set_reg(inst.rd, a >> (static_cast<std::uint32_t>(b) & 31u));
      break;
    case Opcode::kMul: set_reg(inst.rd, wrap(ua * ub)); break;
    case Opcode::kDiv:
      // Division by zero is defined as zero: embedded targets often trap,
      // but a deterministic value keeps synthetic workloads total.
      // INT_MIN / -1 overflows in hardware too; define it as wrapping.
      if (b == 0) {
        set_reg(inst.rd, 0);
      } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
        set_reg(inst.rd, a);
      } else {
        set_reg(inst.rd, a / b);
      }
      break;
    case Opcode::kSlt: set_reg(inst.rd, a < b ? 1 : 0); break;
    case Opcode::kAddi:
      set_reg(inst.rd, wrap(ua + static_cast<std::uint32_t>(inst.imm)));
      break;
    case Opcode::kAndi: set_reg(inst.rd, a & inst.imm); break;
    case Opcode::kOri: set_reg(inst.rd, a | inst.imm); break;
    case Opcode::kXori: set_reg(inst.rd, a ^ inst.imm); break;
    case Opcode::kSlli:
      set_reg(inst.rd, static_cast<std::int32_t>(
                           ua << (static_cast<std::uint32_t>(inst.imm) & 31u)));
      break;
    case Opcode::kSrli:
      set_reg(inst.rd, static_cast<std::int32_t>(
                           ua >> (static_cast<std::uint32_t>(inst.imm) & 31u)));
      break;
    case Opcode::kLui:
      set_reg(inst.rd, static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(inst.imm) << 14));
      break;
    case Opcode::kLw:
      set_reg(inst.rd, load_word(static_cast<std::uint32_t>(a + inst.imm)));
      break;
    case Opcode::kSw:
      store_word(static_cast<std::uint32_t>(a + inst.imm), reg(inst.rd));
      break;
    case Opcode::kLb:
      set_reg(inst.rd, load_byte(static_cast<std::uint32_t>(a + inst.imm)));
      break;
    case Opcode::kSb:
      store_byte(static_cast<std::uint32_t>(a + inst.imm),
                 static_cast<std::uint8_t>(reg(inst.rd) & 0xff));
      break;
    case Opcode::kBeq:
      if (reg(inst.rs1) == reg(inst.rs2)) {
        next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(pc_) + 1 + inst.imm);
      }
      break;
    case Opcode::kBne:
      if (reg(inst.rs1) != reg(inst.rs2)) {
        next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(pc_) + 1 + inst.imm);
      }
      break;
    case Opcode::kBlt:
      if (reg(inst.rs1) < reg(inst.rs2)) {
        next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(pc_) + 1 + inst.imm);
      }
      break;
    case Opcode::kBge:
      if (reg(inst.rs1) >= reg(inst.rs2)) {
        next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(pc_) + 1 + inst.imm);
      }
      break;
    case Opcode::kJmp:
      next_pc = static_cast<std::uint32_t>(inst.imm);
      break;
    case Opcode::kJal:
      set_reg(kLinkRegister, static_cast<std::int32_t>(pc_ + 1));
      next_pc = static_cast<std::uint32_t>(inst.imm);
      break;
    case Opcode::kJr:
      next_pc = static_cast<std::uint32_t>(reg(inst.rs1));
      break;
    case Opcode::kRet:
      next_pc = static_cast<std::uint32_t>(reg(kLinkRegister));
      break;
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      stop_ = StopReason::kHalted;
      stopped_ = true;
      return false;
    case Opcode::kOpcodeCount:
      APCC_ASSERT(false, "decoded sentinel opcode");
  }
  pc_ = next_pc;
  return true;
}

ExecResult Interpreter::run() {
  while (!stopped_ && steps_ < options_.max_steps) {
    if (!step()) break;
  }
  if (!stopped_ && steps_ >= options_.max_steps) {
    stop_ = StopReason::kStepLimit;
    stopped_ = true;
  }
  return ExecResult{stop_, steps_, pc_};
}

}  // namespace apcc::isa
