#include "isa/assembler.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace apcc::isa {

namespace {

struct PendingInstruction {
  Instruction inst;
  std::string target_label;  // non-empty if imm must be resolved from label
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw CheckError("assembler: line " + std::to_string(line) + ": " + msg);
}

std::uint8_t parse_register(std::string_view tok, int line) {
  const std::string low = to_lower(trim(tok));
  if (low == "zero") return 0;
  if (low == "sp") return kStackRegister;
  if (low == "ra") return kLinkRegister;
  if (low.size() >= 2 && low[0] == 'r') {
    std::int64_t n = -1;
    try {
      n = parse_int(low.substr(1));
    } catch (const CheckError&) {
      fail(line, "bad register '" + std::string(tok) + "'");
    }
    if (n >= 0 && n < kNumRegisters) {
      return static_cast<std::uint8_t>(n);
    }
  }
  fail(line, "bad register '" + std::string(tok) + "'");
}

std::int32_t parse_imm(std::string_view tok, int line) {
  try {
    const std::int64_t v = parse_int(tok);
    APCC_CHECK(v >= INT32_MIN && v <= INT32_MAX, "immediate overflow");
    return static_cast<std::int32_t>(v);
  } catch (const CheckError&) {
    fail(line, "bad immediate '" + std::string(tok) + "'");
  }
}

bool looks_numeric(std::string_view tok) {
  const std::string_view t = trim(tok);
  if (t.empty()) return false;
  const char c = t.front();
  return c == '-' || c == '+' || (c >= '0' && c <= '9');
}

/// Parse "imm(rN)" memory operand syntax.
void parse_mem_operand(std::string_view tok, int line, std::int32_t& imm,
                       std::uint8_t& base) {
  const std::size_t open = tok.find('(');
  const std::size_t close = tok.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    fail(line, "bad memory operand '" + std::string(tok) +
                   "', expected imm(reg)");
  }
  const std::string_view imm_part = trim(tok.substr(0, open));
  imm = imm_part.empty() ? 0 : parse_imm(imm_part, line);
  base = parse_register(tok.substr(open + 1, close - open - 1), line);
}

std::string_view strip_comment(std::string_view line) {
  const std::size_t pos = line.find_first_of(";#");
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

}  // namespace

Program assemble(std::string_view source) {
  std::vector<PendingInstruction> pending;
  std::map<std::string, std::uint32_t> labels;
  std::vector<FunctionInfo> functions;
  std::optional<std::string> entry_label;

  auto close_function = [&](std::uint32_t at_word) {
    if (!functions.empty() && functions.back().word_count == 0) {
      functions.back().word_count = at_word - functions.back().first_word;
    }
  };

  int line_no = 0;
  std::size_t cursor = 0;
  while (cursor <= source.size()) {
    const std::size_t eol = source.find('\n', cursor);
    std::string_view raw =
        source.substr(cursor, (eol == std::string_view::npos)
                                  ? source.size() - cursor
                                  : eol - cursor);
    cursor = (eol == std::string_view::npos) ? source.size() + 1 : eol + 1;
    ++line_no;

    std::string_view text = trim(strip_comment(raw));
    if (text.empty()) continue;

    // Labels (possibly several on one line before an instruction).
    while (true) {
      const std::size_t colon = text.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view head = trim(text.substr(0, colon));
      if (head.empty() || head.find_first_of(" \t") != std::string_view::npos) {
        break;  // ':' belongs to something else, e.g. nothing we support
      }
      const std::string name(head);
      if (labels.contains(name)) {
        fail(line_no, "duplicate label '" + name + "'");
      }
      labels[name] = static_cast<std::uint32_t>(pending.size());
      text = trim(text.substr(colon + 1));
      if (text.empty()) break;
    }
    if (text.empty()) continue;

    // Directives.
    if (text.front() == '.') {
      const auto fields = split_fields(text);
      const std::string dir = to_lower(fields[0]);
      if (dir == ".func") {
        if (fields.size() != 2) fail(line_no, ".func expects a name");
        close_function(static_cast<std::uint32_t>(pending.size()));
        FunctionInfo f;
        f.name = std::string(fields[1]);
        f.first_word = static_cast<std::uint32_t>(pending.size());
        functions.push_back(std::move(f));
        // A function name is implicitly a label too.
        const std::string name(fields[1]);
        if (!labels.contains(name)) {
          labels[name] = static_cast<std::uint32_t>(pending.size());
        }
      } else if (dir == ".entry") {
        if (fields.size() != 2) fail(line_no, ".entry expects a name");
        entry_label = std::string(fields[1]);
      } else {
        fail(line_no, "unknown directive '" + dir + "'");
      }
      continue;
    }

    // Instruction.
    const auto fields = split_fields(text);
    const std::string mnemonic = to_lower(fields[0]);
    const auto op = opcode_from_mnemonic(mnemonic);
    if (!op) fail(line_no, "unknown mnemonic '" + mnemonic + "'");
    const OpcodeInfo& info = opcode_info(*op);

    PendingInstruction pi;
    pi.inst.opcode = *op;
    pi.line = line_no;
    const auto operands =
        std::vector<std::string_view>(fields.begin() + 1, fields.end());
    auto need = [&](std::size_t n) {
      if (operands.size() != n) {
        fail(line_no, mnemonic + " expects " + std::to_string(n) +
                          " operand(s), got " +
                          std::to_string(operands.size()));
      }
    };

    switch (info.format) {
      case Format::kR:
        if (info.is_indirect) {  // jr rs1
          need(1);
          pi.inst.rs1 = parse_register(operands[0], line_no);
        } else {
          need(3);
          pi.inst.rd = parse_register(operands[0], line_no);
          pi.inst.rs1 = parse_register(operands[1], line_no);
          pi.inst.rs2 = parse_register(operands[2], line_no);
        }
        break;
      case Format::kI:
        if (info.is_load || info.is_store) {  // lw rd, imm(rs1)
          need(2);
          pi.inst.rd = parse_register(operands[0], line_no);
          parse_mem_operand(operands[1], line_no, pi.inst.imm, pi.inst.rs1);
        } else if (*op == Opcode::kLui) {  // lui rd, imm
          need(2);
          pi.inst.rd = parse_register(operands[0], line_no);
          pi.inst.imm = parse_imm(operands[1], line_no);
        } else {  // addi rd, rs1, imm
          need(3);
          pi.inst.rd = parse_register(operands[0], line_no);
          pi.inst.rs1 = parse_register(operands[1], line_no);
          pi.inst.imm = parse_imm(operands[2], line_no);
        }
        break;
      case Format::kB:  // beq rs1, rs2, target
        need(3);
        pi.inst.rs1 = parse_register(operands[0], line_no);
        pi.inst.rs2 = parse_register(operands[1], line_no);
        if (looks_numeric(operands[2])) {
          pi.inst.imm = parse_imm(operands[2], line_no);
        } else {
          pi.target_label = std::string(trim(operands[2]));
        }
        break;
      case Format::kJ:  // jmp target
        need(1);
        if (looks_numeric(operands[0])) {
          pi.inst.imm = parse_imm(operands[0], line_no);
        } else {
          pi.target_label = std::string(trim(operands[0]));
        }
        break;
      case Format::kNone:
        need(0);
        break;
    }
    pending.push_back(std::move(pi));
  }

  close_function(static_cast<std::uint32_t>(pending.size()));

  // Second pass: resolve labels and encode.
  std::vector<std::uint32_t> words;
  words.reserve(pending.size());
  for (std::uint32_t index = 0; index < pending.size(); ++index) {
    auto& pi = pending[index];
    if (!pi.target_label.empty()) {
      const auto it = labels.find(pi.target_label);
      if (it == labels.end()) {
        fail(pi.line, "undefined label '" + pi.target_label + "'");
      }
      const OpcodeInfo& info = opcode_info(pi.inst.opcode);
      if (info.format == Format::kB) {
        // Offset is relative to the following instruction.
        pi.inst.imm = static_cast<std::int32_t>(it->second) -
                      static_cast<std::int32_t>(index) - 1;
      } else {
        pi.inst.imm = static_cast<std::int32_t>(it->second);
      }
    }
    try {
      words.push_back(encode(pi.inst));
    } catch (const CheckError& e) {
      fail(pi.line, e.what());
    }
  }

  std::uint32_t entry = 0;
  if (entry_label) {
    const auto it = labels.find(*entry_label);
    APCC_CHECK(it != labels.end(), "undefined .entry label " + *entry_label);
    entry = it->second;
  } else if (!functions.empty()) {
    entry = functions.front().first_word;
  }
  return Program(std::move(words), std::move(functions), std::move(labels),
                 entry);
}

}  // namespace apcc::isa
