// Functional interpreter for ERISC-32 programs.
//
// Runs assembled programs against a flat data memory. Used to validate the
// assembler/encoder round trip, to run the example programs, and -- most
// importantly for APCC -- to produce *real* basic-block access traces that
// drive the compression runtime (the "instruction access pattern" of the
// paper). A per-instruction trace hook reports each executed word index;
// cfg::BlockMap converts that stream into block entries.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "isa/program.hpp"

namespace apcc::isa {

/// Interpreter run limits and memory size.
struct InterpreterOptions {
  std::size_t data_memory_bytes = 1 << 16;  // 64 KiB
  std::uint64_t max_steps = 10'000'000;     // safety stop
};

/// Why the interpreter stopped.
enum class StopReason : std::uint8_t {
  kHalted,        // executed a halt instruction
  kStepLimit,     // hit max_steps
  kBadPc,         // control transfer outside the image
};

/// Outcome of a run.
struct ExecResult {
  StopReason stop = StopReason::kHalted;
  std::uint64_t steps = 0;
  std::uint32_t final_pc = 0;
};

/// A simple in-order interpreter. Not the timing model -- sim::Engine owns
/// timing; this produces architectural behaviour only.
class Interpreter {
 public:
  explicit Interpreter(const Program& program,
                       InterpreterOptions options = {});

  /// Register accessors (r0 always reads zero).
  [[nodiscard]] std::int32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::int32_t value);

  /// Data memory accessors (bounds-checked, little-endian words).
  [[nodiscard]] std::int32_t load_word(std::uint32_t addr) const;
  void store_word(std::uint32_t addr, std::int32_t value);
  [[nodiscard]] std::uint8_t load_byte(std::uint32_t addr) const;
  void store_byte(std::uint32_t addr, std::uint8_t value);

  /// Install a hook invoked with each executed word index, in order.
  void set_trace_hook(std::function<void(std::uint32_t)> hook) {
    trace_hook_ = std::move(hook);
  }

  /// Execute a single instruction at the current pc. Returns false when
  /// the program has stopped (halt / bad pc).
  bool step();

  /// Run until halt, bad pc, or the step limit.
  ExecResult run();

  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint64_t steps_executed() const { return steps_; }

 private:
  const Program& program_;
  InterpreterOptions options_;
  std::array<std::int32_t, kNumRegisters> regs_{};
  std::vector<std::uint8_t> memory_;
  std::uint32_t pc_ = 0;
  std::uint64_t steps_ = 0;
  StopReason stop_ = StopReason::kHalted;
  bool stopped_ = false;
  std::function<void(std::uint32_t)> trace_hook_;
};

}  // namespace apcc::isa
