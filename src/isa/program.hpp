// Program image: the unit the rest of APCC operates on.
//
// A Program is a flat sequence of 32-bit ERISC instruction words plus
// symbol and function metadata produced by the assembler. Word index 0 is
// address 0; byte addresses are word_index * 4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace apcc::isa {

/// Contiguous function extent within the image.
struct FunctionInfo {
  std::string name;
  std::uint32_t first_word = 0;
  std::uint32_t word_count = 0;

  [[nodiscard]] std::uint32_t end_word() const {
    return first_word + word_count;
  }
};

/// An assembled ERISC-32 program image.
class Program {
 public:
  Program() = default;
  Program(std::vector<std::uint32_t> words,
          std::vector<FunctionInfo> functions,
          std::map<std::string, std::uint32_t> labels,
          std::uint32_t entry_word);

  [[nodiscard]] std::span<const std::uint32_t> words() const { return words_; }
  [[nodiscard]] std::uint32_t word(std::uint32_t index) const;
  [[nodiscard]] Instruction instruction(std::uint32_t index) const;

  [[nodiscard]] std::uint32_t word_count() const {
    return static_cast<std::uint32_t>(words_.size());
  }
  [[nodiscard]] std::uint64_t size_bytes() const {
    return std::uint64_t{words_.size()} * kInstructionBytes;
  }

  [[nodiscard]] std::uint32_t entry_word() const { return entry_word_; }

  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return functions_;
  }
  /// Function containing `word`, or nullptr for out-of-function padding.
  [[nodiscard]] const FunctionInfo* function_containing(
      std::uint32_t word) const;

  [[nodiscard]] const std::map<std::string, std::uint32_t>& labels() const {
    return labels_;
  }
  [[nodiscard]] std::optional<std::uint32_t> label(
      const std::string& name) const;
  /// Label at exactly `word`, if any (first alphabetically on ties).
  [[nodiscard]] std::optional<std::string> label_at(std::uint32_t word) const;

  /// Little-endian byte serialisation of a word range; this is what the
  /// codecs compress. `count` words starting at `first`.
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::uint32_t first,
                                                std::uint32_t count) const;
  /// Whole-image bytes.
  [[nodiscard]] std::vector<std::uint8_t> bytes() const {
    return bytes(0, word_count());
  }

 private:
  std::vector<std::uint32_t> words_;
  std::vector<FunctionInfo> functions_;
  std::map<std::string, std::uint32_t> labels_;
  std::uint32_t entry_word_ = 0;
};

}  // namespace apcc::isa
