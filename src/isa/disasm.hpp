// Disassembler for ERISC-32 words and program images.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace apcc::isa {

/// Render one instruction. `word_index` is used to display branch targets
/// as absolute word indices (pass 0 if unknown).
[[nodiscard]] std::string disassemble(const Instruction& inst,
                                      std::uint32_t word_index = 0);

/// Render the whole program, one line per word, with labels interleaved.
[[nodiscard]] std::string disassemble(const Program& program);

}  // namespace apcc::isa
