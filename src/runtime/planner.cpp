#include "runtime/planner.hpp"

#include <algorithm>
#include <climits>

#include "support/assert.hpp"

namespace apcc::runtime {

DecompressionPlanner::DecompressionPlanner(const cfg::Cfg& cfg,
                                           const StateTable& states,
                                           const Policy& policy,
                                           const Predictor* predictor,
                                           bool reference_frontiers,
                                           const FrontierCache* shared_frontiers)
    : cfg_(cfg),
      states_(states),
      policy_(policy),
      predictor_(predictor),
      reference_frontiers_(reference_frontiers) {
  if (policy_.strategy == DecompressionStrategy::kPreSingle) {
    APCC_CHECK(predictor_ != nullptr, "pre-single requires a predictor");
  }
  if (shared_frontiers != nullptr) {
    APCC_CHECK(&shared_frontiers->cfg() == &cfg_,
               "shared FrontierCache built on a different CFG");
    APCC_CHECK(shared_frontiers->k() == policy_.predecompress_k,
               "shared FrontierCache k does not match predecompress_k");
    APCC_CHECK(shared_frontiers->materialized(),
               "shared FrontierCache must be materialized (immutable)");
    frontiers_ = shared_frontiers;
  } else {
    owned_frontiers_.emplace(cfg_, policy_.predecompress_k);
    frontiers_ = &*owned_frontiers_;
  }
}

std::vector<cfg::BlockId> DecompressionPlanner::compressed_frontier(
    cfg::BlockId block) const {
  if (reference_frontiers_) return compressed_frontier_reference(block);
  // The cached candidates are already sorted by (distance, id); keeping
  // only the compressed ones preserves that order.
  std::vector<cfg::BlockId> out;
  for (const cfg::FrontierEntry& c : frontiers_->candidates(block)) {
    if (states_[c.block].form() == BlockForm::kCompressed) {
      out.push_back(c.block);
    }
  }
  return out;
}

std::vector<cfg::BlockId> DecompressionPlanner::compressed_frontier_reference(
    cfg::BlockId block) const {
  const auto frontier =
      cfg::frontier_within(cfg_, block, policy_.predecompress_k);
  struct Candidate {
    cfg::BlockId id;
    unsigned distance;
  };
  std::vector<Candidate> candidates;
  for (const cfg::BlockId b : frontier) {
    if (states_[b].form() != BlockForm::kCompressed) continue;
    const auto dist = cfg::edge_distance(cfg_, block, b);
    candidates.push_back(Candidate{b, dist.value_or(UINT_MAX)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  std::vector<cfg::BlockId> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(c.id);
  return out;
}

std::vector<cfg::BlockId> DecompressionPlanner::plan_on_exit(
    cfg::BlockId block, std::size_t trace_index) const {
  switch (policy_.strategy) {
    case DecompressionStrategy::kOnDemand:
      return {};
    case DecompressionStrategy::kPreAll:
      return compressed_frontier(block);
    case DecompressionStrategy::kPreSingle: {
      const auto candidates = compressed_frontier(block);
      if (candidates.empty()) return {};
      return {predictor_->predict(block, candidates, trace_index)};
    }
  }
  APCC_ASSERT(false, "unknown decompression strategy");
}

}  // namespace apcc::runtime
