// BlockImage: per-basic-block compressed storage.
//
// Built once before execution: every block's bytes are compressed with the
// chosen codec and laid out in the fixed compressed code area (paper §5 --
// "we start with a memory image wherein all basic blocks are stored in
// their compressed form; note that this is the minimum memory required to
// store the application code").
#pragma once

#include <functional>
#include <memory>

#include "cfg/cfg.hpp"
#include "compress/codec.hpp"

namespace apcc::runtime {

/// One block's original and compressed bytes.
struct ImageBlock {
  compress::Bytes original;
  compress::Bytes compressed;
};

/// The compressed program image. Owns the codec (trained codecs embed
/// dictionaries that decompression needs for the lifetime of the run).
class BlockImage {
 public:
  /// Compress `block_bytes[i]` as block i. `block_bytes.size()` must equal
  /// `cfg.block_count()`.
  BlockImage(const cfg::Cfg& cfg, std::vector<compress::Bytes> block_bytes,
             std::unique_ptr<compress::Codec> codec);

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const ImageBlock& block(cfg::BlockId id) const;

  [[nodiscard]] std::uint64_t original_size(cfg::BlockId id) const;
  [[nodiscard]] std::uint64_t compressed_size(cfg::BlockId id) const;

  [[nodiscard]] const compress::Codec& codec() const { return *codec_; }

  /// (compressed, original) size pairs in block order, for layout_slots.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  slot_sizes() const;

  /// Whole-image compression ratio (compressed/original, < 1 is good).
  [[nodiscard]] double ratio() const;

  /// Approximate resident size of this image: every block's original +
  /// compressed bytes plus the per-block bookkeeping. What an artifact
  /// cache should budget against (serving::Service::cache_stats()).
  [[nodiscard]] std::uint64_t approx_bytes() const;

  /// Decompress block `id` and verify it matches the original; throws on
  /// mismatch. Used by tests and the paranoid mode of the engine.
  void verify_block(cfg::BlockId id) const;

 private:
  std::vector<ImageBlock> blocks_;
  std::unique_ptr<compress::Codec> codec_;
};

/// Convenience: build the image for a CFG whose blocks' bytes come from a
/// provider callback (program images, synthetic bytes, ...).
[[nodiscard]] BlockImage make_block_image(
    const cfg::Cfg& cfg,
    const std::function<compress::Bytes(const cfg::BasicBlock&)>& provider,
    compress::CodecKind codec_kind);

}  // namespace apcc::runtime
