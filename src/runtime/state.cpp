#include "runtime/state.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace apcc::runtime {

const char* block_form_name(BlockForm f) {
  switch (f) {
    case BlockForm::kCompressed: return "compressed";
    case BlockForm::kDecompressing: return "decompressing";
    case BlockForm::kDecompressed: return "decompressed";
  }
  return "?";
}

namespace detail {

bool PatchSet::contains(cfg::BlockId pred) const {
  return std::binary_search(sorted.begin(), sorted.end(), pred);
}

void PatchSet::add(cfg::BlockId pred) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), pred);
  if (it != sorted.end() && *it == pred) return;
  sorted.insert(it, pred);
  order.push_back(pred);
}

}  // namespace detail

StateBatch::StateBatch(std::size_t block_count, std::size_t cell_count)
    : blocks_(block_count),
      cell_count_(cell_count),
      form_(block_count * cell_count, BlockForm::kCompressed),
      executing_(block_count * cell_count, 0),
      address_(block_count * cell_count, 0),
      ready_time_(block_count * cell_count, 0),
      last_use_(block_count * cell_count, 0),
      kedge_(block_count * cell_count, 0),
      sizes_(block_count * cell_count, 0),
      patches_(block_count * cell_count),
      views_(cell_count) {
  APCC_CHECK(cell_count > 0, "state batch needs at least one cell");
}

StateBatch::~StateBatch() = default;

StateTable& StateBatch::cell(std::size_t c) {
  APCC_CHECK(c < cell_count_, "cell index out of range");
  if (!views_[c]) views_[c].reset(new StateTable(*this, c));
  return *views_[c];
}

StateTable::StateTable(std::size_t block_count)
    : owned_(std::make_unique<StateBatch>(block_count, 1)),
      batch_(owned_.get()),
      base_(0),
      blocks_(block_count),
      decomp_pos_(block_count, kNotInList) {
  form_counts_[static_cast<std::size_t>(BlockForm::kCompressed)] = block_count;
}

StateTable::StateTable(StateBatch& batch, std::size_t cell)
    : batch_(&batch),
      base_(cell * batch.blocks_),
      blocks_(batch.blocks_),
      decomp_pos_(batch.blocks_, kNotInList) {
  form_counts_[static_cast<std::size_t>(BlockForm::kCompressed)] = blocks_;
}

BlockRef StateTable::operator[](cfg::BlockId id) {
  APCC_CHECK(id < blocks_, "block id out of range");
  const std::size_t i = at(id);
  return BlockRef(batch_->address_[i], batch_->ready_time_[i],
                  batch_->kedge_[i], batch_->form_[i], batch_->last_use_[i],
                  batch_->executing_[i], batch_->patches_[i]);
}

ConstBlockRef StateTable::operator[](cfg::BlockId id) const {
  APCC_CHECK(id < blocks_, "block id out of range");
  const std::size_t i = at(id);
  return ConstBlockRef(batch_->address_[i], batch_->ready_time_[i],
                       batch_->kedge_[i], batch_->form_[i],
                       batch_->last_use_[i], batch_->executing_[i],
                       batch_->patches_[i]);
}

bool StateTable::eligible(cfg::BlockId id, cfg::BlockId protect) const {
  return id != protect && batch_->executing_[at(id)] == 0;
}

void StateTable::index_insert(cfg::BlockId id) {
  decomp_pos_[id] = static_cast<std::uint32_t>(decomp_list_.size());
  decomp_list_.push_back(id);
  lru_index_.emplace(batch_->last_use_[at(id)], id);
  size_index_.emplace(batch_->sizes_[at(id)], id);
}

void StateTable::index_erase(cfg::BlockId id) {
  const std::uint32_t pos = decomp_pos_[id];
  const cfg::BlockId moved = decomp_list_.back();
  decomp_list_[pos] = moved;
  decomp_pos_[moved] = pos;
  decomp_list_.pop_back();
  decomp_pos_[id] = kNotInList;
  lru_index_.erase(Key{batch_->last_use_[at(id)], id});
  size_index_.erase(Key{batch_->sizes_[at(id)], id});
}

void StateTable::set_form(cfg::BlockId id, BlockForm form) {
  APCC_CHECK(id < blocks_, "block id out of range");
  BlockForm& current = batch_->form_[at(id)];
  if (current == form) return;
  if (current == BlockForm::kDecompressed) index_erase(id);
  --form_counts_[static_cast<std::size_t>(current)];
  ++form_counts_[static_cast<std::size_t>(form)];
  current = form;
  if (form == BlockForm::kDecompressed) index_insert(id);
}

void StateTable::touch(cfg::BlockId id, std::uint64_t time) {
  APCC_CHECK(id < blocks_, "block id out of range");
  const std::size_t i = at(id);
  std::uint64_t& last_use = batch_->last_use_[i];
  if (batch_->form_[i] == BlockForm::kDecompressed && last_use != time) {
    lru_index_.erase(Key{last_use, id});
    lru_index_.emplace(time, id);
  }
  last_use = time;
}

void StateTable::set_executing(cfg::BlockId id, bool executing) {
  APCC_CHECK(id < blocks_, "block id out of range");
  batch_->executing_[at(id)] = executing ? 1 : 0;
}

void StateTable::set_block_sizes(std::vector<std::uint64_t> sizes) {
  APCC_CHECK(sizes.size() == blocks_, "size table does not match block count");
  // Re-key the size index for any currently decompressed blocks.
  for (const cfg::BlockId id : decomp_list_) {
    size_index_.erase(Key{batch_->sizes_[at(id)], id});
  }
  std::copy(sizes.begin(), sizes.end(), batch_->sizes_.begin() + base_);
  for (const cfg::BlockId id : decomp_list_) {
    size_index_.emplace(batch_->sizes_[at(id)], id);
  }
}

std::vector<cfg::BlockId> StateTable::decompressed_blocks() const {
  std::vector<cfg::BlockId> out(decomp_list_.begin(), decomp_list_.end());
  std::sort(out.begin(), out.end());
  return out;
}

cfg::BlockId StateTable::lru_victim(cfg::BlockId protect) const {
  for (const auto& [time, id] : lru_index_) {
    if (eligible(id, protect)) return id;
  }
  return cfg::kInvalidBlock;
}

cfg::BlockId StateTable::max_key_victim(const std::set<Key>& index,
                                        cfg::BlockId protect,
                                        bool require_positive_key) const {
  auto group_end = index.end();
  while (group_end != index.begin()) {
    const std::uint64_t key = std::prev(group_end)->first;
    if (require_positive_key && key == 0) break;
    // Entries share keys; the historical scan breaks ties toward the
    // lowest id, so walk the whole max-key group in id order.
    const auto group_begin = index.lower_bound(Key{key, 0});
    for (auto it = group_begin; it != group_end; ++it) {
      if (eligible(it->second, protect)) return it->second;
    }
    group_end = group_begin;
  }
  return cfg::kInvalidBlock;
}

cfg::BlockId StateTable::mru_victim(cfg::BlockId protect) const {
  return max_key_victim(lru_index_, protect, /*require_positive_key=*/false);
}

cfg::BlockId StateTable::largest_victim(cfg::BlockId protect) const {
  return max_key_victim(size_index_, protect, /*require_positive_key=*/true);
}

cfg::BlockId StateTable::lru_victim_reference(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t oldest = UINT64_MAX;
  for (std::size_t i = 0; i < blocks_; ++i) {
    const std::size_t f = base_ + i;
    if (batch_->form_[f] != BlockForm::kDecompressed || batch_->executing_[f]) {
      continue;
    }
    if (static_cast<cfg::BlockId>(i) == protect) continue;
    if (batch_->last_use_[f] < oldest) {
      oldest = batch_->last_use_[f];
      victim = static_cast<cfg::BlockId>(i);
    }
  }
  return victim;
}

cfg::BlockId StateTable::mru_victim_reference(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t newest = 0;
  bool found = false;
  for (std::size_t i = 0; i < blocks_; ++i) {
    const std::size_t f = base_ + i;
    if (batch_->form_[f] != BlockForm::kDecompressed ||
        batch_->executing_[f] || static_cast<cfg::BlockId>(i) == protect) {
      continue;
    }
    if (!found || batch_->last_use_[f] > newest) {
      newest = batch_->last_use_[f];
      victim = static_cast<cfg::BlockId>(i);
      found = true;
    }
  }
  return victim;
}

cfg::BlockId StateTable::largest_victim_reference(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t biggest = 0;
  for (std::size_t i = 0; i < blocks_; ++i) {
    const std::size_t f = base_ + i;
    if (batch_->form_[f] != BlockForm::kDecompressed ||
        batch_->executing_[f] || static_cast<cfg::BlockId>(i) == protect) {
      continue;
    }
    if (batch_->sizes_[f] > biggest) {
      biggest = batch_->sizes_[f];
      victim = static_cast<cfg::BlockId>(i);
    }
  }
  return victim;
}

}  // namespace apcc::runtime
