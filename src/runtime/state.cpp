#include "runtime/state.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace apcc::runtime {

const char* block_form_name(BlockForm f) {
  switch (f) {
    case BlockForm::kCompressed: return "compressed";
    case BlockForm::kDecompressing: return "decompressing";
    case BlockForm::kDecompressed: return "decompressed";
  }
  return "?";
}

bool BlockState::is_patched_for(cfg::BlockId pred) const {
  return std::find(remember_set.begin(), remember_set.end(), pred) !=
         remember_set.end();
}

void BlockState::add_patch(cfg::BlockId pred) {
  if (!is_patched_for(pred)) {
    remember_set.push_back(pred);
  }
}

StateTable::StateTable(std::size_t block_count) : states_(block_count) {}

BlockState& StateTable::operator[](cfg::BlockId id) {
  APCC_CHECK(id < states_.size(), "block id out of range");
  return states_[id];
}

const BlockState& StateTable::operator[](cfg::BlockId id) const {
  APCC_CHECK(id < states_.size(), "block id out of range");
  return states_[id];
}

std::vector<cfg::BlockId> StateTable::decompressed_blocks() const {
  std::vector<cfg::BlockId> out;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].form == BlockForm::kDecompressed) {
      out.push_back(static_cast<cfg::BlockId>(i));
    }
  }
  return out;
}

std::size_t StateTable::count(BlockForm form) const {
  std::size_t n = 0;
  for (const auto& s : states_) {
    if (s.form == form) ++n;
  }
  return n;
}

cfg::BlockId StateTable::lru_victim(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t oldest = UINT64_MAX;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto& s = states_[i];
    if (s.form != BlockForm::kDecompressed || s.executing) continue;
    if (static_cast<cfg::BlockId>(i) == protect) continue;
    if (s.last_use_time < oldest) {
      oldest = s.last_use_time;
      victim = static_cast<cfg::BlockId>(i);
    }
  }
  return victim;
}

}  // namespace apcc::runtime
