#include "runtime/state.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace apcc::runtime {

const char* block_form_name(BlockForm f) {
  switch (f) {
    case BlockForm::kCompressed: return "compressed";
    case BlockForm::kDecompressing: return "decompressing";
    case BlockForm::kDecompressed: return "decompressed";
  }
  return "?";
}

bool BlockState::is_patched_for(cfg::BlockId pred) const {
  return std::binary_search(patched_sorted_.begin(), patched_sorted_.end(),
                            pred);
}

void BlockState::add_patch(cfg::BlockId pred) {
  const auto it =
      std::lower_bound(patched_sorted_.begin(), patched_sorted_.end(), pred);
  if (it != patched_sorted_.end() && *it == pred) return;
  patched_sorted_.insert(it, pred);
  remember_set_.push_back(pred);
}

StateTable::StateTable(std::size_t block_count)
    : states_(block_count),
      sizes_(block_count, 0),
      decomp_pos_(block_count, kNotInList) {
  form_counts_[static_cast<std::size_t>(BlockForm::kCompressed)] = block_count;
}

BlockState& StateTable::operator[](cfg::BlockId id) {
  APCC_CHECK(id < states_.size(), "block id out of range");
  return states_[id];
}

const BlockState& StateTable::operator[](cfg::BlockId id) const {
  APCC_CHECK(id < states_.size(), "block id out of range");
  return states_[id];
}

void StateTable::index_insert(cfg::BlockId id) {
  decomp_pos_[id] = static_cast<std::uint32_t>(decomp_list_.size());
  decomp_list_.push_back(id);
  lru_index_.emplace(states_[id].last_use_time_, id);
  size_index_.emplace(sizes_[id], id);
}

void StateTable::index_erase(cfg::BlockId id) {
  const std::uint32_t pos = decomp_pos_[id];
  const cfg::BlockId moved = decomp_list_.back();
  decomp_list_[pos] = moved;
  decomp_pos_[moved] = pos;
  decomp_list_.pop_back();
  decomp_pos_[id] = kNotInList;
  lru_index_.erase(Key{states_[id].last_use_time_, id});
  size_index_.erase(Key{sizes_[id], id});
}

void StateTable::set_form(cfg::BlockId id, BlockForm form) {
  APCC_CHECK(id < states_.size(), "block id out of range");
  BlockState& s = states_[id];
  if (s.form_ == form) return;
  if (s.form_ == BlockForm::kDecompressed) index_erase(id);
  --form_counts_[static_cast<std::size_t>(s.form_)];
  ++form_counts_[static_cast<std::size_t>(form)];
  s.form_ = form;
  if (form == BlockForm::kDecompressed) index_insert(id);
}

void StateTable::touch(cfg::BlockId id, std::uint64_t time) {
  APCC_CHECK(id < states_.size(), "block id out of range");
  BlockState& s = states_[id];
  if (s.form_ == BlockForm::kDecompressed && s.last_use_time_ != time) {
    lru_index_.erase(Key{s.last_use_time_, id});
    lru_index_.emplace(time, id);
  }
  s.last_use_time_ = time;
}

void StateTable::set_executing(cfg::BlockId id, bool executing) {
  APCC_CHECK(id < states_.size(), "block id out of range");
  states_[id].executing_ = executing;
}

void StateTable::set_block_sizes(std::vector<std::uint64_t> sizes) {
  APCC_CHECK(sizes.size() == states_.size(),
             "size table does not match block count");
  // Re-key the size index for any currently decompressed blocks.
  for (const cfg::BlockId id : decomp_list_) {
    size_index_.erase(Key{sizes_[id], id});
  }
  sizes_ = std::move(sizes);
  for (const cfg::BlockId id : decomp_list_) {
    size_index_.emplace(sizes_[id], id);
  }
}

std::vector<cfg::BlockId> StateTable::decompressed_blocks() const {
  std::vector<cfg::BlockId> out(decomp_list_.begin(), decomp_list_.end());
  std::sort(out.begin(), out.end());
  return out;
}

cfg::BlockId StateTable::lru_victim(cfg::BlockId protect) const {
  for (const auto& [time, id] : lru_index_) {
    if (eligible(id, protect)) return id;
  }
  return cfg::kInvalidBlock;
}

cfg::BlockId StateTable::max_key_victim(const std::set<Key>& index,
                                        cfg::BlockId protect,
                                        bool require_positive_key) const {
  auto group_end = index.end();
  while (group_end != index.begin()) {
    const std::uint64_t key = std::prev(group_end)->first;
    if (require_positive_key && key == 0) break;
    // Entries share keys; the historical scan breaks ties toward the
    // lowest id, so walk the whole max-key group in id order.
    const auto group_begin = index.lower_bound(Key{key, 0});
    for (auto it = group_begin; it != group_end; ++it) {
      if (eligible(it->second, protect)) return it->second;
    }
    group_end = group_begin;
  }
  return cfg::kInvalidBlock;
}

cfg::BlockId StateTable::mru_victim(cfg::BlockId protect) const {
  return max_key_victim(lru_index_, protect, /*require_positive_key=*/false);
}

cfg::BlockId StateTable::largest_victim(cfg::BlockId protect) const {
  return max_key_victim(size_index_, protect, /*require_positive_key=*/true);
}

cfg::BlockId StateTable::lru_victim_reference(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t oldest = UINT64_MAX;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto& s = states_[i];
    if (s.form_ != BlockForm::kDecompressed || s.executing_) continue;
    if (static_cast<cfg::BlockId>(i) == protect) continue;
    if (s.last_use_time_ < oldest) {
      oldest = s.last_use_time_;
      victim = static_cast<cfg::BlockId>(i);
    }
  }
  return victim;
}

cfg::BlockId StateTable::mru_victim_reference(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t newest = 0;
  bool found = false;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto& s = states_[i];
    if (s.form_ != BlockForm::kDecompressed || s.executing_ ||
        static_cast<cfg::BlockId>(i) == protect) {
      continue;
    }
    if (!found || s.last_use_time_ > newest) {
      newest = s.last_use_time_;
      victim = static_cast<cfg::BlockId>(i);
      found = true;
    }
  }
  return victim;
}

cfg::BlockId StateTable::largest_victim_reference(cfg::BlockId protect) const {
  cfg::BlockId victim = cfg::kInvalidBlock;
  std::uint64_t biggest = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto& s = states_[i];
    if (s.form_ != BlockForm::kDecompressed || s.executing_ ||
        static_cast<cfg::BlockId>(i) == protect) {
      continue;
    }
    if (sizes_[i] > biggest) {
      biggest = sizes_[i];
      victim = static_cast<cfg::BlockId>(i);
    }
  }
  return victim;
}

}  // namespace apcc::runtime
