// Policy and cost-model configuration for the APCC runtime.
//
// This is the paper's tunable surface: the compression-side k, the
// decompression strategy (Figure 3's design space), the pre-decompression
// k, the predictor for pre-decompress-single, the §2 memory budget, and
// the thread model -- plus the ablation switches DESIGN.md calls out.
#pragma once

#include <cstdint>

namespace apcc::runtime {

/// Figure 3: the decompression design space.
enum class DecompressionStrategy : std::uint8_t {
  kOnDemand,    // lazy: decompress in the exception handler when reached
  kPreAll,      // k-edge, pre-decompress-all
  kPreSingle,   // k-edge, pre-decompress-single
};

[[nodiscard]] const char* strategy_name(DecompressionStrategy s);

/// Predictor choices for pre-decompress-single (E7 ablation).
enum class PredictorKind : std::uint8_t {
  kProfile,  // argmax expected-visit score under profiled edge probabilities
  kStatic,   // structural heuristic: deepest loop, then nearest, then id
  kOracle,   // peeks at the future trace (upper bound)
};

[[nodiscard]] const char* predictor_name(PredictorKind p);

/// Victim selection for §2 budget mode ("LRU or a similar strategy").
enum class VictimPolicy : std::uint8_t {
  kLru,      // least recently used (the paper's suggestion)
  kMru,      // most recently used (anti-LRU strawman for E9)
  kLargest,  // biggest decompressed copy (frees the most bytes per evict)
};

[[nodiscard]] const char* victim_policy_name(VictimPolicy p);

/// Per-event cycle costs of the runtime mechanism (paper §5). Codec
/// (de)compression cycles come from compress::CodecCosts.
struct CostModel {
  double cycles_per_instruction = 1.0;
  std::uint64_t exception_cycles = 250;       // protection fault + handler
  std::uint64_t patch_branch_cycles = 12;     // retarget one branch site
  std::uint64_t unpatch_branch_cycles = 12;   // restore one branch site
  std::uint64_t delete_block_cycles = 20;     // free a decompressed copy
  std::uint64_t alloc_block_cycles = 24;      // allocator work per placement
  std::uint64_t dispatch_job_cycles = 8;      // enqueue work for a helper
};

/// The complete policy knob set.
struct Policy {
  /// k for the k-edge *compression* algorithm (§3): a decompressed block
  /// is deleted when k edges have been traversed since its last execution.
  std::uint32_t compress_k = 2;

  DecompressionStrategy strategy = DecompressionStrategy::kOnDemand;

  /// k for k-edge *pre-decompression* (§4); unused for on-demand.
  std::uint32_t predecompress_k = 2;

  PredictorKind predictor = PredictorKind::kProfile;

  /// Decompressed-area capacity in bytes (§2 budget mode). kUnbounded
  /// reproduces the paper's default unrestricted configuration.
  static constexpr std::uint64_t kUnbounded = UINT64_MAX;
  std::uint64_t memory_budget = kUnbounded;

  /// Victim selection when the budget forces an eviction (E9).
  VictimPolicy victim_policy = VictimPolicy::kLru;

  /// Parallel decompression helper units (decompression bandwidth). One
  /// unit models a single helper thread / decoder engine; more units
  /// model hardware parallelism. The pre-decompression strategies only
  /// pay off when this bandwidth keeps up with the request rate (E8).
  unsigned decompress_units = 1;

  /// Thread model (§3/§4): true = the compression/decompression threads
  /// run in the background on idle cycles; false = their work lands in
  /// the execution critical path (single-threaded ablation).
  bool background_compression = true;
  bool background_decompression = true;

  /// §5 remember sets: patch branches to decompressed copies so re-entry
  /// skips the exception. Disabled, every entry pays the exception (E6).
  bool use_remember_sets = true;

  /// Ablation: actually re-run the codec when "compressing" a block back,
  /// instead of the paper's delete-the-copy design (E6).
  bool recompress_for_real = false;

  /// Decompress-and-verify every block against the original (debugging).
  bool paranoid_verify = false;
};

}  // namespace apcc::runtime
