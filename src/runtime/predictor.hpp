// Next-block predictors for pre-decompress-single (paper §4).
//
// "We predict the block (among these candidates) that is to be the most
//  likely one to be reached, and decompress only that block."
//
// Three implementations (E7 ablation):
//  * ProfilePredictor  -- argmax expected-visit score under the CFG's
//    (profile-derived) edge probabilities; this is the paper's intent.
//  * StaticPredictor   -- no profile: prefer blocks in deeper loops, then
//    nearer ones, then lower ids. A compile-time-only heuristic.
//  * OraclePredictor   -- consults the actual future trace; gives the
//    upper bound on what any predictor could achieve.
#pragma once

#include <memory>
#include <optional>

#include "cfg/analysis.hpp"
#include "cfg/cfg.hpp"
#include "cfg/trace.hpp"
#include "runtime/frontier_cache.hpp"
#include "runtime/policy.hpp"

namespace apcc::runtime {

/// Chooses which single candidate block to pre-decompress.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Pick one of `candidates` (non-empty, all currently compressed and
  /// within the k-edge frontier of `from`). `trace_index` is the index of
  /// the block being exited in the driving trace (used by the oracle).
  [[nodiscard]] virtual cfg::BlockId predict(
      cfg::BlockId from, const std::vector<cfg::BlockId>& candidates,
      std::size_t trace_index) const = 0;

  [[nodiscard]] virtual PredictorKind kind() const = 0;
};

/// Profile-guided predictor (paper default).
class ProfilePredictor final : public Predictor {
 public:
  ProfilePredictor(const cfg::Cfg& cfg, std::uint32_t k);

  [[nodiscard]] cfg::BlockId predict(
      cfg::BlockId from, const std::vector<cfg::BlockId>& candidates,
      std::size_t trace_index) const override;
  [[nodiscard]] PredictorKind kind() const override {
    return PredictorKind::kProfile;
  }

 private:
  const cfg::Cfg& cfg_;
  std::uint32_t k_;
};

/// Structural heuristic predictor. Candidate distances come from the
/// same memoized FrontierCache the planner uses (one bounded BFS per
/// exit block, ever) instead of one edge_distance BFS per candidate per
/// exit; a candidate outside the k-edge frontier of `from` (out of
/// predict()'s contract) ranks as unreachable.
///
/// Like the planner, the predictor can borrow a shared materialized
/// cache (same (CFG, k) key) instead of owning one -- campaign engines
/// pass the cache they already share with their planner.
class StaticPredictor final : public Predictor {
 public:
  StaticPredictor(const cfg::Cfg& cfg, std::uint32_t k,
                  const FrontierCache* shared_frontiers = nullptr);

  // frontiers_ may point into owned_frontiers_; a copy/move would leave
  // it aimed at the source object's storage.
  StaticPredictor(const StaticPredictor&) = delete;
  StaticPredictor& operator=(const StaticPredictor&) = delete;

  [[nodiscard]] cfg::BlockId predict(
      cfg::BlockId from, const std::vector<cfg::BlockId>& candidates,
      std::size_t trace_index) const override;
  [[nodiscard]] PredictorKind kind() const override {
    return PredictorKind::kStatic;
  }

 private:
  const cfg::Cfg& cfg_;
  std::uint32_t k_;
  std::vector<unsigned> loop_depth_;
  std::optional<FrontierCache> owned_frontiers_;
  const FrontierCache* frontiers_;
};

/// Oracle predictor: picks the candidate that the trace actually reaches
/// first after `trace_index`.
class OraclePredictor final : public Predictor {
 public:
  OraclePredictor(const cfg::Cfg& cfg, const cfg::BlockTrace& trace);

  [[nodiscard]] cfg::BlockId predict(
      cfg::BlockId from, const std::vector<cfg::BlockId>& candidates,
      std::size_t trace_index) const override;
  [[nodiscard]] PredictorKind kind() const override {
    return PredictorKind::kOracle;
  }

 private:
  const cfg::BlockTrace& trace_;
};

/// Factory keyed on PredictorKind. The oracle needs the trace; others
/// ignore it. `shared_frontiers` (optional, used by kStatic only) is a
/// materialized (CFG, k) geometry cache to borrow instead of owning.
[[nodiscard]] std::unique_ptr<Predictor> make_predictor(
    PredictorKind kind, const cfg::Cfg& cfg, std::uint32_t k,
    const cfg::BlockTrace& trace,
    const FrontierCache* shared_frontiers = nullptr);

}  // namespace apcc::runtime
