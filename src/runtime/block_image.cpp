#include "runtime/block_image.hpp"

#include <functional>

#include "support/assert.hpp"

namespace apcc::runtime {

BlockImage::BlockImage(const cfg::Cfg& cfg,
                       std::vector<compress::Bytes> block_bytes,
                       std::unique_ptr<compress::Codec> codec)
    : codec_(std::move(codec)) {
  APCC_CHECK(codec_ != nullptr, "BlockImage requires a codec");
  APCC_CHECK(block_bytes.size() == cfg.block_count(),
             "one byte string per CFG block required");
  blocks_.reserve(block_bytes.size());
  for (auto& bytes : block_bytes) {
    ImageBlock ib;
    ib.compressed = codec_->compress(bytes);
    ib.original = std::move(bytes);
    blocks_.push_back(std::move(ib));
  }
}

const ImageBlock& BlockImage::block(cfg::BlockId id) const {
  APCC_CHECK(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

std::uint64_t BlockImage::original_size(cfg::BlockId id) const {
  return block(id).original.size();
}

std::uint64_t BlockImage::compressed_size(cfg::BlockId id) const {
  return block(id).compressed.size();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> BlockImage::slot_sizes()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes;
  sizes.reserve(blocks_.size());
  for (const auto& b : blocks_) {
    sizes.emplace_back(b.compressed.size(), b.original.size());
  }
  return sizes;
}

double BlockImage::ratio() const {
  std::uint64_t original = 0;
  std::uint64_t compressed = 0;
  for (const auto& b : blocks_) {
    original += b.original.size();
    compressed += b.compressed.size();
  }
  return original == 0 ? 1.0
                       : static_cast<double>(compressed) /
                             static_cast<double>(original);
}

std::uint64_t BlockImage::approx_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& b : blocks_) {
    bytes += b.original.size() + b.compressed.size() + sizeof(ImageBlock);
  }
  return bytes;
}

void BlockImage::verify_block(cfg::BlockId id) const {
  const auto& b = block(id);
  const compress::Bytes roundtrip =
      codec_->decompress(b.compressed, b.original.size());
  APCC_CHECK(roundtrip == b.original,
             "codec round-trip mismatch on block " + std::to_string(id));
}

BlockImage make_block_image(
    const cfg::Cfg& cfg,
    const std::function<compress::Bytes(const cfg::BasicBlock&)>& provider,
    compress::CodecKind codec_kind) {
  std::vector<compress::Bytes> bytes;
  bytes.reserve(cfg.block_count());
  for (const auto& b : cfg.blocks()) {
    bytes.push_back(provider(b));
  }
  auto codec = compress::make_codec(codec_kind, bytes);
  return BlockImage(cfg, std::move(bytes), std::move(codec));
}

}  // namespace apcc::runtime
