// The k-edge compression algorithm (paper §3, implementation per §5).
//
// "For each basic block, we maintain a counter, which is reset to zero
//  when the basic block is executed. At each branch, the counter of each
//  (uncompressed) basic block is increased by 1 and (the decompressed
//  versions of) the basic blocks whose counter reaches k are deleted."
//
// The §5 walkthrough (Figure 5) additionally fixes two details the prose
// leaves implicit, and this implementation follows them exactly:
//  * the block being *entered* by the traversed edge is not incremented
//    (otherwise B0' would be deleted at step (5) of Figure 5 instead of
//    surviving until step (9)), and
//  * a block's counter resets when it begins executing, so revisits
//    restart its k-edge window.
#pragma once

#include "runtime/policy.hpp"
#include "runtime/state.hpp"

namespace apcc::runtime {

/// Stateless-ish manager: owns the counter discipline, not the deletion
/// mechanics (the engine applies the returned deletions with costs).
class KEdgeCompressionManager {
 public:
  /// `reference_scan` selects the pre-index O(B) full-table walk per
  /// edge (debug cross-check path); the default walks only the table's
  /// decompressed-id list, O(D) in the resident-copy count. Returned
  /// deletions are ascending by block id under both paths.
  KEdgeCompressionManager(StateTable& states, std::uint32_t k,
                          bool reference_scan = false);

  /// The execution thread began executing `block`: reset its counter.
  void on_block_executed(cfg::BlockId block);

  /// An edge into `target` was traversed. Increments every decompressed
  /// block's counter except `target`'s; returns the blocks whose counter
  /// reached k, i.e. whose decompressed copies must now be deleted
  /// ("compressed back"). Currently-executing blocks are never returned.
  [[nodiscard]] std::vector<cfg::BlockId> on_edge_traversed(
      cfg::BlockId target);

  [[nodiscard]] std::uint32_t k() const { return k_; }

 private:
  StateTable& states_;
  std::uint32_t k_;
  bool reference_scan_;
};

}  // namespace apcc::runtime
