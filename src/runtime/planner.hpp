// Decompression planning: which blocks to pre-decompress and when.
//
// Implements the decompression side of Figure 3's design space. The
// planner runs at every block exit (the trigger point Figure 2 fixes:
// "when the execution thread exits basic block B1, the decompression
// thread starts decompressing B7") and emits an ordered request list for
// the decompression helper.
//
// The candidate geometry (which blocks are within k edges, and how far)
// is static given the CFG, so it comes from a per-block FrontierCache;
// each exit only filters the cached list by the dynamic BlockForm. The
// seed's per-exit BFS (frontier_within + edge_distance per candidate)
// is kept behind `reference_frontiers` as the debug cross-check path,
// mirroring EngineConfig::reference_scans; both paths produce identical
// request lists and the differential tests pin that.
//
// The geometry is keyed on (CFG, predecompress_k) alone, so a campaign
// that runs many engines over one workload can pass a shared,
// materialized (immutable) FrontierCache; the planner then borrows it
// instead of building its own. Borrowed and owned geometry produce
// bit-identical plans -- the cache holds the same frontier_distances
// lists either way.
#pragma once

#include <optional>

#include "cfg/analysis.hpp"
#include "runtime/frontier_cache.hpp"
#include "runtime/policy.hpp"
#include "runtime/predictor.hpp"
#include "runtime/state.hpp"

namespace apcc::runtime {

class DecompressionPlanner {
 public:
  /// `predictor` may be null unless the strategy is kPreSingle. With
  /// `reference_frontiers` the planner re-runs the bounded BFS on every
  /// exit instead of reading the memoized FrontierCache.
  /// `shared_frontiers`, when non-null, must be a materialized cache
  /// built on `cfg` with k == policy.predecompress_k; the planner
  /// borrows it instead of owning its own geometry.
  DecompressionPlanner(const cfg::Cfg& cfg, const StateTable& states,
                       const Policy& policy, const Predictor* predictor,
                       bool reference_frontiers = false,
                       const FrontierCache* shared_frontiers = nullptr);

  // frontiers_ may point into owned_frontiers_; a copy/move would leave
  // it aimed at the source object's storage.
  DecompressionPlanner(const DecompressionPlanner&) = delete;
  DecompressionPlanner& operator=(const DecompressionPlanner&) = delete;

  /// Called when the execution thread exits `block` (trace position
  /// `trace_index`). Returns the blocks to request, nearest-first, all
  /// currently in compressed form.
  [[nodiscard]] std::vector<cfg::BlockId> plan_on_exit(
      cfg::BlockId block, std::size_t trace_index) const;

 private:
  /// Compressed blocks within the k-edge frontier of `block`, sorted by
  /// (min edge distance, id) so the most imminent request runs first.
  [[nodiscard]] std::vector<cfg::BlockId> compressed_frontier(
      cfg::BlockId block) const;

  /// The pre-cache implementation: one frontier BFS plus one edge-
  /// distance BFS per compressed candidate, every call.
  [[nodiscard]] std::vector<cfg::BlockId> compressed_frontier_reference(
      cfg::BlockId block) const;

  const cfg::Cfg& cfg_;
  const StateTable& states_;
  Policy policy_;
  const Predictor* predictor_;
  bool reference_frontiers_;
  // Geometry: owned unless a shared cache was borrowed at construction.
  std::optional<FrontierCache> owned_frontiers_;
  const FrontierCache* frontiers_;
};

}  // namespace apcc::runtime
