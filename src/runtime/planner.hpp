// Decompression planning: which blocks to pre-decompress and when.
//
// Implements the decompression side of Figure 3's design space. The
// planner runs at every block exit (the trigger point Figure 2 fixes:
// "when the execution thread exits basic block B1, the decompression
// thread starts decompressing B7") and emits an ordered request list for
// the decompression helper.
#pragma once

#include "cfg/analysis.hpp"
#include "runtime/policy.hpp"
#include "runtime/predictor.hpp"
#include "runtime/state.hpp"

namespace apcc::runtime {

class DecompressionPlanner {
 public:
  /// `predictor` may be null unless the strategy is kPreSingle.
  DecompressionPlanner(const cfg::Cfg& cfg, const StateTable& states,
                       const Policy& policy, const Predictor* predictor);

  /// Called when the execution thread exits `block` (trace position
  /// `trace_index`). Returns the blocks to request, nearest-first, all
  /// currently in compressed form.
  [[nodiscard]] std::vector<cfg::BlockId> plan_on_exit(
      cfg::BlockId block, std::size_t trace_index) const;

 private:
  /// Compressed blocks within the k-edge frontier of `block`, sorted by
  /// (min edge distance, id) so the most imminent request runs first.
  [[nodiscard]] std::vector<cfg::BlockId> compressed_frontier(
      cfg::BlockId block) const;

  const cfg::Cfg& cfg_;
  const StateTable& states_;
  Policy policy_;
  const Predictor* predictor_;
};

}  // namespace apcc::runtime
