#include "runtime/frontier_cache.hpp"

#include "support/assert.hpp"

namespace apcc::runtime {

FrontierCache::FrontierCache(const cfg::Cfg& cfg, unsigned k)
    : cfg_(cfg),
      k_(k),
      entries_(cfg.block_count()),
      computed_(cfg.block_count(), false) {}

std::span<const cfg::FrontierEntry> FrontierCache::candidates(
    cfg::BlockId block) const {
  APCC_CHECK(block < computed_.size(), "block id out of range");
  if (!computed_[block]) {
    entries_[block] = cfg::frontier_distances(cfg_, block, k_);
    computed_[block] = true;
  }
  return entries_[block];
}

void FrontierCache::materialize() {
  for (cfg::BlockId b = 0; b < computed_.size(); ++b) {
    (void)candidates(b);
  }
  materialized_ = true;
}

void FrontierCache::reset() {
  // assign (not clear) releases the per-block vectors' heap storage --
  // the point of evicting -- while keeping the per-CFG shape.
  entries_.assign(cfg_.block_count(), {});
  computed_.assign(cfg_.block_count(), false);
  materialized_ = false;
}

std::uint64_t FrontierCache::approx_bytes() const {
  std::uint64_t bytes = 0;
  for (cfg::BlockId b = 0; b < computed_.size(); ++b) {
    if (!computed_[b]) continue;
    bytes += entries_[b].size() * sizeof(cfg::FrontierEntry) +
             sizeof(entries_[b]);
  }
  return bytes;
}

const FrontierCache* SharedFrontier::acquire(bool* built_this_call,
                                             bool pin) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (state_ == State::kReady) {
      if (pin) ++pins_;
      if (built_this_call != nullptr) *built_this_call = false;
      return &cache_;
    }
    if (state_ == State::kIdle) {
      state_ = State::kBuilding;
      builder_ = std::this_thread::get_id();
      lock.unlock();
      // The expensive part (one bounded BFS per block) runs off the
      // lock: only callers wanting *this* key wait, everyone else keeps
      // going. No one reads cache_ until state_ flips to kReady below,
      // and that flip happens-before every waiter's (and later
      // acquirer's) read via the mutex, so the off-lock writes are safe.
      try {
        cache_.materialize();
      } catch (...) {
        // Roll the claim back and wake waiters so they re-claim (and
        // surface the build failure themselves) instead of blocking on
        // a ready flip that will never come.
        lock.lock();
        state_ = State::kIdle;
        ready_cv_.notify_all();
        throw;
      }
      lock.lock();
      state_ = State::kReady;
      // The builder pins itself before anyone can observe the ready
      // flip, so a publish-time eviction pass can never reclaim an
      // artifact out from under the cell that just built it.
      if (pin) ++pins_;
      ready_cv_.notify_all();
      if (built_this_call != nullptr) *built_this_call = true;
      return &cache_;
    }
    ready_cv_.wait(lock, [&] { return state_ != State::kBuilding; });
  }
}

void SharedFrontier::unpin() {
  const std::lock_guard<std::mutex> lock(mutex_);
  APCC_CHECK(pins_ > 0, "SharedFrontier::unpin() without a pin");
  --pins_;
}

std::size_t SharedFrontier::pins() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pins_;
}

bool SharedFrontier::evict() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kReady || pins_ != 0) return false;
  cache_.reset();
  state_ = State::kIdle;
  builder_ = {};
  return true;
}

bool SharedFrontier::ready() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_ == State::kReady;
}

std::thread::id SharedFrontier::builder() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return builder_;
}

}  // namespace apcc::runtime
