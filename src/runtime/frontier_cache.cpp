#include "runtime/frontier_cache.hpp"

#include "support/assert.hpp"

namespace apcc::runtime {

FrontierCache::FrontierCache(const cfg::Cfg& cfg, unsigned k)
    : cfg_(cfg),
      k_(k),
      entries_(cfg.block_count()),
      computed_(cfg.block_count(), false) {}

std::span<const cfg::FrontierEntry> FrontierCache::candidates(
    cfg::BlockId block) const {
  APCC_CHECK(block < computed_.size(), "block id out of range");
  if (!computed_[block]) {
    entries_[block] = cfg::frontier_distances(cfg_, block, k_);
    computed_[block] = true;
  }
  return entries_[block];
}

void FrontierCache::materialize() {
  for (cfg::BlockId b = 0; b < computed_.size(); ++b) {
    (void)candidates(b);
  }
  materialized_ = true;
}

}  // namespace apcc::runtime
