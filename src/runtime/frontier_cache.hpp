// Memoized k-edge frontiers for the decompression planner.
//
// The planner's candidate set at a block exit -- every block within k
// edges of the exit, with its minimum edge distance -- is static given
// (CFG, predecompress_k). The seed re-ran a bounded BFS per frontier
// block per exit; this cache computes each block's candidate list once
// (lazily, on the first exit of that block) and hands out a span the
// planner filters by the *dynamic* part of the query, the current
// BlockForm. Entries are pre-sorted by (distance, id), the planner's
// request order, so the filter preserves ordering for free.
//
// Ownership and thread-safety: a lazily-filled cache is not thread-safe
// and is owned by one DecompressionPlanner / StaticPredictor inside one
// single-threaded Engine. But the geometry is keyed on (CFG, k) alone,
// so campaign runs (sweep::run_campaign) build one cache per
// (workload, k), call materialize() -- which computes every block's list
// eagerly and freezes the cache -- and hand a `const FrontierCache*` to
// every engine sharing that key. A materialized cache is immutable, so
// concurrent candidates() calls are pure reads; the borrowed lists are
// the exact values an owned cache would compute, which keeps borrowed
// and owned runs bit-identical (pinned by tests/sweep and the engine
// equivalence grid).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "cfg/analysis.hpp"

namespace apcc::runtime {

class FrontierCache {
 public:
  FrontierCache(const cfg::Cfg& cfg, unsigned k);

  /// Candidate list for the exit of `block`: every block within k edges,
  /// with its distance, sorted by (distance, id). Computed on first use,
  /// O(1) afterwards. The span stays valid for the cache's lifetime.
  [[nodiscard]] std::span<const cfg::FrontierEntry> candidates(
      cfg::BlockId block) const;

  /// Eagerly compute every block's candidate list. After this the cache
  /// is immutable: candidates() never writes, so the cache may be shared
  /// read-only across threads (the contract EngineConfig::
  /// shared_frontiers relies on).
  void materialize();

  /// Drop every computed candidate list and return to the lazy, empty
  /// state (artifact eviction). A later materialize() recomputes lists
  /// bit-identical to the first build -- the geometry is a pure
  /// function of (CFG, k) -- which is what keeps eviction invisible to
  /// job outcomes. Only SharedFrontier::evict() calls this, and only
  /// while no reader holds a borrow.
  void reset();

  [[nodiscard]] bool materialized() const { return materialized_; }

  [[nodiscard]] unsigned k() const { return k_; }

  /// Approximate resident size of the computed candidate lists. Only a
  /// pure read on a materialized cache (on a lazy one it reflects what
  /// has been computed so far); serving::Service reports it for the
  /// ROADMAP's eviction budgeting.
  [[nodiscard]] std::uint64_t approx_bytes() const;

  /// The CFG this geometry was computed on; borrowers check identity.
  [[nodiscard]] const cfg::Cfg& cfg() const { return cfg_; }

 private:
  const cfg::Cfg& cfg_;
  unsigned k_;
  bool materialized_ = false;
  // Lazily filled; entries_[b] is meaningful only once computed_[b].
  mutable std::vector<std::vector<cfg::FrontierEntry>> entries_;
  mutable std::vector<bool> computed_;
};

/// The geometry cache key: frontier candidate lists depend on the CFG
/// (by identity -- campaign/serving workloads hold their Cfg at a stable
/// address) and predecompress_k, nothing else. This is the key both the
/// campaign runner and serving::Service deduplicate artifacts under.
struct FrontierKey {
  const cfg::Cfg* cfg = nullptr;
  unsigned k = 0;

  [[nodiscard]] bool operator==(const FrontierKey&) const = default;
  /// Ordered so the key works in std::map (deterministic iteration).
  [[nodiscard]] bool operator<(const FrontierKey& other) const {
    return cfg != other.cfg ? cfg < other.cfg : k < other.k;
  }
};

/// Async materialize handshake around one (CFG, k) FrontierCache.
///
/// Pool workers that need a key's geometry race on acquire(): the first
/// caller claims the build and runs materialize() on its own thread
/// (off the handshake lock, so cells over other keys keep simulating);
/// concurrent callers block until the builder flips the slot to ready.
/// Afterwards every acquire() is a lock-free-in-spirit read of an
/// immutable, materialized cache. This is how geometry materialization
/// moves off the submitting thread and overlaps with simulation: the
/// submitter only creates empty slots, the pool builds on demand.
class SharedFrontier {
 public:
  SharedFrontier(const cfg::Cfg& cfg, unsigned k) : cache_(cfg, k) {}

  SharedFrontier(const SharedFrontier&) = delete;
  SharedFrontier& operator=(const SharedFrontier&) = delete;

  /// Claim-build or wait, then return the materialized cache. The mutex
  /// acquire/release pair orders the builder's writes before every
  /// reader's first borrow, so the returned cache is safe for concurrent
  /// candidates() reads. When `built_this_call` is non-null it is set to
  /// whether *this* call ran the build (artifact-cache accounting). If a
  /// build throws, the claim is rolled back and waiters wake to re-claim
  /// -- every caller either returns a ready cache or propagates a build
  /// failure; none deadlocks.
  ///
  /// With `pin` true the borrow refcount is incremented atomically with
  /// the acquire (ready-check and pin under one lock hold, so an
  /// evictor can never slip between them); the caller must balance it
  /// with unpin() when its cell retires. Callers that own the slot for
  /// its whole lifetime (sweep::run_campaign) skip pinning -- they
  /// never evict.
  [[nodiscard]] const FrontierCache* acquire(bool* built_this_call = nullptr,
                                             bool pin = false);

  /// Release one acquire(pin=true) borrow.
  void unpin();

  /// Live borrows (cells holding the cache via acquire(pin=true)).
  [[nodiscard]] std::size_t pins() const;

  /// Evict the materialized geometry: a ready, unpinned slot drops its
  /// candidate lists and returns to idle, so the next acquire()
  /// re-claims and rebuilds bit-identically. Returns false -- and does
  /// nothing -- when the slot is not ready (nothing resident to evict)
  /// or pinned (an in-flight cell still borrows it).
  bool evict();

  /// True once a builder has finished (never blocks).
  [[nodiscard]] bool ready() const;

  /// The thread that ran materialize(); meaningful once ready(). Tests
  /// pin that this is a pool worker, not the submitting thread.
  [[nodiscard]] std::thread::id builder() const;

 private:
  enum class State : std::uint8_t { kIdle, kBuilding, kReady };

  FrontierCache cache_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  State state_ = State::kIdle;
  /// Borrow refcount (guarded by mutex_): cells pin on acquire and
  /// unpin at retirement; evict() refuses while nonzero, which is the
  /// whole pinned-artifacts-survive guarantee.
  std::size_t pins_ = 0;
  std::thread::id builder_{};
};

}  // namespace apcc::runtime
