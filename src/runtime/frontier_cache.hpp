// Memoized k-edge frontiers for the decompression planner.
//
// The planner's candidate set at a block exit -- every block within k
// edges of the exit, with its minimum edge distance -- is static given
// (CFG, predecompress_k). The seed re-ran a bounded BFS per frontier
// block per exit; this cache computes each block's candidate list once
// (lazily, on the first exit of that block) and hands out a span the
// planner filters by the *dynamic* part of the query, the current
// BlockForm. Entries are pre-sorted by (distance, id), the planner's
// request order, so the filter preserves ordering for free.
//
// The cache is not thread-safe: it is owned by one DecompressionPlanner,
// which is owned by one Engine, and engines are single-threaded. Sharded
// sweeps (sweep::run_sweep) give every worker its own Engine and thus
// its own cache.
#pragma once

#include <span>
#include <vector>

#include "cfg/analysis.hpp"

namespace apcc::runtime {

class FrontierCache {
 public:
  FrontierCache(const cfg::Cfg& cfg, unsigned k);

  /// Candidate list for the exit of `block`: every block within k edges,
  /// with its distance, sorted by (distance, id). Computed on first use,
  /// O(1) afterwards. The span stays valid for the cache's lifetime.
  [[nodiscard]] std::span<const cfg::FrontierEntry> candidates(
      cfg::BlockId block) const;

  [[nodiscard]] unsigned k() const { return k_; }

 private:
  const cfg::Cfg& cfg_;
  unsigned k_;
  // Lazily filled; entries_[b] is meaningful only once computed_[b].
  mutable std::vector<std::vector<cfg::FrontierEntry>> entries_;
  mutable std::vector<bool> computed_;
};

}  // namespace apcc::runtime
