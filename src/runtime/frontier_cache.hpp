// Memoized k-edge frontiers for the decompression planner.
//
// The planner's candidate set at a block exit -- every block within k
// edges of the exit, with its minimum edge distance -- is static given
// (CFG, predecompress_k). The seed re-ran a bounded BFS per frontier
// block per exit; this cache computes each block's candidate list once
// (lazily, on the first exit of that block) and hands out a span the
// planner filters by the *dynamic* part of the query, the current
// BlockForm. Entries are pre-sorted by (distance, id), the planner's
// request order, so the filter preserves ordering for free.
//
// Ownership and thread-safety: a lazily-filled cache is not thread-safe
// and is owned by one DecompressionPlanner / StaticPredictor inside one
// single-threaded Engine. But the geometry is keyed on (CFG, k) alone,
// so campaign runs (sweep::run_campaign) build one cache per
// (workload, k), call materialize() -- which computes every block's list
// eagerly and freezes the cache -- and hand a `const FrontierCache*` to
// every engine sharing that key. A materialized cache is immutable, so
// concurrent candidates() calls are pure reads; the borrowed lists are
// the exact values an owned cache would compute, which keeps borrowed
// and owned runs bit-identical (pinned by tests/sweep and the engine
// equivalence grid).
#pragma once

#include <span>
#include <vector>

#include "cfg/analysis.hpp"

namespace apcc::runtime {

class FrontierCache {
 public:
  FrontierCache(const cfg::Cfg& cfg, unsigned k);

  /// Candidate list for the exit of `block`: every block within k edges,
  /// with its distance, sorted by (distance, id). Computed on first use,
  /// O(1) afterwards. The span stays valid for the cache's lifetime.
  [[nodiscard]] std::span<const cfg::FrontierEntry> candidates(
      cfg::BlockId block) const;

  /// Eagerly compute every block's candidate list. After this the cache
  /// is immutable: candidates() never writes, so the cache may be shared
  /// read-only across threads (the contract EngineConfig::
  /// shared_frontiers relies on).
  void materialize();

  [[nodiscard]] bool materialized() const { return materialized_; }

  [[nodiscard]] unsigned k() const { return k_; }

  /// The CFG this geometry was computed on; borrowers check identity.
  [[nodiscard]] const cfg::Cfg& cfg() const { return cfg_; }

 private:
  const cfg::Cfg& cfg_;
  unsigned k_;
  bool materialized_ = false;
  // Lazily filled; entries_[b] is meaningful only once computed_[b].
  mutable std::vector<std::vector<cfg::FrontierEntry>> entries_;
  mutable std::vector<bool> computed_;
};

}  // namespace apcc::runtime
