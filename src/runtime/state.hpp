// Dynamic per-block runtime state (paper §5 bookkeeping).
//
// For every basic block the runtime tracks: which form it is in (the
// "compressed bit" of §4 plus an in-flight state for background
// decompression), the k-edge counter, the decompressed copy's address,
// the LRU timestamp for budget mode, and the remember set of patched
// branch sites.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.hpp"

namespace apcc::runtime {

/// Where a block currently lives.
enum class BlockForm : std::uint8_t {
  kCompressed,     // only the fixed compressed copy exists
  kDecompressing,  // a helper is producing the decompressed copy
  kDecompressed,   // decompressed copy resident and executable
};

[[nodiscard]] const char* block_form_name(BlockForm f);

/// Per-block dynamic state.
struct BlockState {
  BlockForm form = BlockForm::kCompressed;
  std::uint64_t address = 0;      // decompressed-area offset when resident
  std::uint64_t ready_time = 0;   // completion time while kDecompressing
  std::uint32_t kedge_counter = 0;
  std::uint64_t last_use_time = 0;
  bool executing = false;         // pinned: never delete mid-execution

  /// Remember set: predecessor blocks whose branch to this block has been
  /// patched to target the decompressed copy directly (paper §5). Stored
  /// as block ids; the branch-site *count* drives patch/unpatch costs.
  std::vector<cfg::BlockId> remember_set;

  [[nodiscard]] bool is_patched_for(cfg::BlockId pred) const;
  void add_patch(cfg::BlockId pred);
  void clear_patches() { remember_set.clear(); }
};

/// The state table: one BlockState per CFG block plus aggregate queries.
class StateTable {
 public:
  explicit StateTable(std::size_t block_count);

  [[nodiscard]] BlockState& operator[](cfg::BlockId id);
  [[nodiscard]] const BlockState& operator[](cfg::BlockId id) const;

  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Ids of blocks currently in decompressed form.
  [[nodiscard]] std::vector<cfg::BlockId> decompressed_blocks() const;

  /// Count of blocks in a given form.
  [[nodiscard]] std::size_t count(BlockForm form) const;

  /// LRU victim among decompressed, non-executing blocks, excluding
  /// `protect`; kInvalidBlock if none exists.
  [[nodiscard]] cfg::BlockId lru_victim(cfg::BlockId protect) const;

 private:
  std::vector<BlockState> states_;
};

}  // namespace apcc::runtime
