// Dynamic per-block runtime state (paper §5 bookkeeping).
//
// For every basic block the runtime tracks: which form it is in (the
// "compressed bit" of §4 plus an in-flight state for background
// decompression), the k-edge counter, the decompressed copy's address,
// the LRU timestamp for budget mode, and the remember set of patched
// branch sites.
//
// Storage is a structure-of-arrays plane, StateBatch: one parallel
// array per field, cell-major, so N grid cells stepping over the same
// trace share one allocation and keep each field's lane contiguous.
// StateTable is the *cell view* over one lane of that plane -- the
// interface every policy-side consumer (engine step logic, k-edge
// manager, planner, predictors) programs against. A standalone
// `StateTable(block_count)` owns a private single-cell batch, so the
// per-engine path is the same code as the batched path with N == 1.
//
// The view is indexed: it maintains the set of decompressed blocks as a
// dense id list (O(D) iteration instead of O(B) full scans) plus two
// ordered victim indexes -- (last_use_time, id) and (copy size, id) --
// so LRU / MRU / largest-victim selection is O(log B) instead of a scan.
// To keep the indexes consistent by construction, the indexed fields
// (form, last_use_time, executing) are read-only on the block proxies
// and can only be mutated through StateTable::set_form / touch /
// set_executing.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "cfg/cfg.hpp"

namespace apcc::runtime {

/// Where a block currently lives.
enum class BlockForm : std::uint8_t {
  kCompressed,     // only the fixed compressed copy exists
  kDecompressing,  // a helper is producing the decompressed copy
  kDecompressed,   // decompressed copy resident and executable
};

[[nodiscard]] const char* block_form_name(BlockForm f);

class StateTable;
class StateBatch;

namespace detail {

/// Remember set of one (cell, block): predecessor blocks whose branch to
/// this block has been patched to target the decompressed copy directly
/// (paper §5), in patch order (unpatch events replay it in that order).
/// A sorted mirror backs contains(), so membership tests are O(log n)
/// instead of a linear scan.
struct PatchSet {
  std::vector<cfg::BlockId> order;   // insertion (patch) order
  std::vector<cfg::BlockId> sorted;  // sorted mirror for lookup

  [[nodiscard]] bool contains(cfg::BlockId pred) const;
  void add(cfg::BlockId pred);
  void clear() {
    order.clear();
    sorted.clear();
  }
};

}  // namespace detail

/// Mutable proxy for one block of one cell. Value type over references
/// into the backing StateBatch lanes -- copy it freely (`auto s = t[b]`),
/// the copies alias the same block. The directly assignable members are
/// exactly the fields no victim/decompressed index depends on.
class BlockRef {
 public:
  std::uint64_t& address;      // decompressed-area offset when resident
  std::uint64_t& ready_time;   // completion time while kDecompressing
  std::uint32_t& kedge_counter;

  [[nodiscard]] BlockForm form() const { return form_; }
  [[nodiscard]] std::uint64_t last_use_time() const { return last_use_time_; }
  [[nodiscard]] bool executing() const { return executing_ != 0; }

  /// Remember set in patch order; see detail::PatchSet.
  [[nodiscard]] const std::vector<cfg::BlockId>& remember_set() const {
    return patches_.order;
  }
  [[nodiscard]] bool is_patched_for(cfg::BlockId pred) const {
    return patches_.contains(pred);
  }
  void add_patch(cfg::BlockId pred) { patches_.add(pred); }
  void clear_patches() { patches_.clear(); }

 private:
  friend class StateTable;
  BlockRef(std::uint64_t& address_in, std::uint64_t& ready_time_in,
           std::uint32_t& kedge_in, const BlockForm& form_in,
           const std::uint64_t& last_use_in, const std::uint8_t& executing_in,
           detail::PatchSet& patches_in)
      : address(address_in),
        ready_time(ready_time_in),
        kedge_counter(kedge_in),
        form_(form_in),
        last_use_time_(last_use_in),
        executing_(executing_in),
        patches_(patches_in) {}

  const BlockForm& form_;
  const std::uint64_t& last_use_time_;
  const std::uint8_t& executing_;  // pinned: never delete mid-execution
  detail::PatchSet& patches_;
};

/// Read-only counterpart of BlockRef.
class ConstBlockRef {
 public:
  const std::uint64_t& address;
  const std::uint64_t& ready_time;
  const std::uint32_t& kedge_counter;

  [[nodiscard]] BlockForm form() const { return form_; }
  [[nodiscard]] std::uint64_t last_use_time() const { return last_use_time_; }
  [[nodiscard]] bool executing() const { return executing_ != 0; }
  [[nodiscard]] const std::vector<cfg::BlockId>& remember_set() const {
    return patches_.order;
  }
  [[nodiscard]] bool is_patched_for(cfg::BlockId pred) const {
    return patches_.contains(pred);
  }

 private:
  friend class StateTable;
  ConstBlockRef(const std::uint64_t& address_in,
                const std::uint64_t& ready_time_in,
                const std::uint32_t& kedge_in, const BlockForm& form_in,
                const std::uint64_t& last_use_in,
                const std::uint8_t& executing_in,
                const detail::PatchSet& patches_in)
      : address(address_in),
        ready_time(ready_time_in),
        kedge_counter(kedge_in),
        form_(form_in),
        last_use_time_(last_use_in),
        executing_(executing_in),
        patches_(patches_in) {}

  const BlockForm& form_;
  const std::uint64_t& last_use_time_;
  const std::uint8_t& executing_;
  const detail::PatchSet& patches_;
};

/// The cell view: per-block dynamic state of one cell plus aggregate
/// queries over the maintained indexes. Every view -- standalone or a
/// lane of a multi-cell StateBatch -- exposes the identical interface,
/// so policy code never knows whether it is batched.
class StateTable {
 public:
  /// Standalone table: owns a private single-cell StateBatch.
  explicit StateTable(std::size_t block_count);

  StateTable(const StateTable&) = delete;
  StateTable& operator=(const StateTable&) = delete;
  StateTable(StateTable&&) = default;
  StateTable& operator=(StateTable&&) = default;

  [[nodiscard]] BlockRef operator[](cfg::BlockId id);
  [[nodiscard]] ConstBlockRef operator[](cfg::BlockId id) const;

  [[nodiscard]] std::size_t size() const { return blocks_; }

  /// Move `id` to `form`, keeping the decompressed-set indexes in sync.
  void set_form(cfg::BlockId id, BlockForm form);

  /// Record a use of `id` at `time` (the budget-mode LRU timestamp).
  void touch(cfg::BlockId id, std::uint64_t time);

  /// Pin / unpin `id` as currently executing.
  void set_executing(cfg::BlockId id, bool executing);

  /// Provide per-block decompressed-copy sizes for the largest-victim
  /// index. All sizes are zero (no largest victim) until this is called.
  void set_block_sizes(std::vector<std::uint64_t> sizes);

  /// Ids of blocks currently in decompressed form, ascending.
  [[nodiscard]] std::vector<cfg::BlockId> decompressed_blocks() const;

  /// Same set in index order (unspecified); O(1), no allocation.
  [[nodiscard]] std::span<const cfg::BlockId> decompressed_unordered() const {
    return decomp_list_;
  }

  /// Count of blocks in a given form.
  [[nodiscard]] std::size_t count(BlockForm form) const {
    return form_counts_[static_cast<std::size_t>(form)];
  }

  /// Victim queries among decompressed, non-executing blocks, excluding
  /// `protect`; kInvalidBlock if none exists. Ties on the key resolve to
  /// the lowest block id, matching the historical full-scan order.
  [[nodiscard]] cfg::BlockId lru_victim(cfg::BlockId protect) const;
  [[nodiscard]] cfg::BlockId mru_victim(cfg::BlockId protect) const;
  /// Blocks with size 0 are never largest-victims (matches the scan's
  /// strict `size > 0` comparison).
  [[nodiscard]] cfg::BlockId largest_victim(cfg::BlockId protect) const;

  /// O(B) full-scan counterparts of the victim queries: the pre-index
  /// reference implementations, kept as the debug cross-check path for
  /// the differential engine tests.
  [[nodiscard]] cfg::BlockId lru_victim_reference(cfg::BlockId protect) const;
  [[nodiscard]] cfg::BlockId mru_victim_reference(cfg::BlockId protect) const;
  [[nodiscard]] cfg::BlockId largest_victim_reference(
      cfg::BlockId protect) const;

 private:
  friend class StateBatch;
  using Key = std::pair<std::uint64_t, cfg::BlockId>;  // (key, id)

  /// Lane view over cell `cell` of `batch`.
  StateTable(StateBatch& batch, std::size_t cell);

  /// Flat index of block `id` in the batch's cell-major lanes.
  [[nodiscard]] std::size_t at(cfg::BlockId id) const { return base_ + id; }

  void index_insert(cfg::BlockId id);
  void index_erase(cfg::BlockId id);
  [[nodiscard]] bool eligible(cfg::BlockId id, cfg::BlockId protect) const;
  /// Smallest id within the highest key group with an eligible entry.
  [[nodiscard]] cfg::BlockId max_key_victim(const std::set<Key>& index,
                                            cfg::BlockId protect,
                                            bool require_positive_key) const;

  static constexpr std::uint32_t kNotInList = UINT32_MAX;

  std::unique_ptr<StateBatch> owned_;  // standalone tables only
  StateBatch* batch_;                  // backing plane (owned_ or external)
  std::size_t base_;                   // cell * block_count lane offset
  std::size_t blocks_;
  std::vector<std::uint32_t> decomp_pos_;   // position in decomp_list_
  std::vector<cfg::BlockId> decomp_list_;   // dense decompressed-id list
  std::set<Key> lru_index_;                 // (last_use_time, id)
  std::set<Key> size_index_;                // (size, id)
  std::size_t form_counts_[3] = {0, 0, 0};
};

/// Structure-of-arrays state plane for `cell_count` cells over the same
/// CFG. Each dynamic field is one flat cell-major array (flat index
/// `cell * block_count + block`), so a batch of engines advancing in
/// lockstep touches contiguous storage instead of N pointer-chased
/// tables. Cells are exposed as StateTable views (see above); the views
/// are created lazily and remain stable for the batch's lifetime.
class StateBatch {
 public:
  StateBatch(std::size_t block_count, std::size_t cell_count);
  ~StateBatch();

  StateBatch(const StateBatch&) = delete;
  StateBatch& operator=(const StateBatch&) = delete;

  [[nodiscard]] std::size_t block_count() const { return blocks_; }
  [[nodiscard]] std::size_t cell_count() const { return cell_count_; }

  /// The StateTable view of cell `c`; stable across calls.
  [[nodiscard]] StateTable& cell(std::size_t c);

 private:
  friend class StateTable;
  friend class BlockRef;
  friend class ConstBlockRef;

  std::size_t blocks_;
  std::size_t cell_count_;
  // Cell-major parallel lanes, each of size blocks_ * cell_count_.
  std::vector<BlockForm> form_;
  std::vector<std::uint8_t> executing_;
  std::vector<std::uint64_t> address_;
  std::vector<std::uint64_t> ready_time_;
  std::vector<std::uint64_t> last_use_;
  std::vector<std::uint32_t> kedge_;
  std::vector<std::uint64_t> sizes_;  // largest-victim key per (cell, block)
  std::vector<detail::PatchSet> patches_;
  std::vector<std::unique_ptr<StateTable>> views_;  // lazy, stable
};

}  // namespace apcc::runtime
