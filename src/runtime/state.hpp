// Dynamic per-block runtime state (paper §5 bookkeeping).
//
// For every basic block the runtime tracks: which form it is in (the
// "compressed bit" of §4 plus an in-flight state for background
// decompression), the k-edge counter, the decompressed copy's address,
// the LRU timestamp for budget mode, and the remember set of patched
// branch sites.
//
// The table is indexed: it maintains the set of decompressed blocks as a
// dense id list (O(D) iteration instead of O(B) full scans) plus two
// ordered victim indexes -- (last_use_time, id) and (copy size, id) --
// so LRU / MRU / largest-victim selection is O(log B) instead of a scan.
// To keep the indexes consistent by construction, the indexed fields
// (form, last_use_time, executing) are read-only on BlockState and can
// only be mutated through StateTable::set_form / touch / set_executing.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "cfg/cfg.hpp"

namespace apcc::runtime {

/// Where a block currently lives.
enum class BlockForm : std::uint8_t {
  kCompressed,     // only the fixed compressed copy exists
  kDecompressing,  // a helper is producing the decompressed copy
  kDecompressed,   // decompressed copy resident and executable
};

[[nodiscard]] const char* block_form_name(BlockForm f);

class StateTable;

/// Per-block dynamic state.
struct BlockState {
 public:
  std::uint64_t address = 0;      // decompressed-area offset when resident
  std::uint64_t ready_time = 0;   // completion time while kDecompressing
  std::uint32_t kedge_counter = 0;

  [[nodiscard]] BlockForm form() const { return form_; }
  [[nodiscard]] std::uint64_t last_use_time() const { return last_use_time_; }
  [[nodiscard]] bool executing() const { return executing_; }

  /// Remember set: predecessor blocks whose branch to this block has been
  /// patched to target the decompressed copy directly (paper §5), in
  /// patch order (unpatch events replay it in that order). A sorted
  /// mirror backs is_patched_for, so membership tests are O(log n)
  /// instead of a linear scan.
  [[nodiscard]] const std::vector<cfg::BlockId>& remember_set() const {
    return remember_set_;
  }
  [[nodiscard]] bool is_patched_for(cfg::BlockId pred) const;
  void add_patch(cfg::BlockId pred);
  void clear_patches() {
    remember_set_.clear();
    patched_sorted_.clear();
  }

 private:
  friend class StateTable;

  BlockForm form_ = BlockForm::kCompressed;
  std::uint64_t last_use_time_ = 0;
  bool executing_ = false;        // pinned: never delete mid-execution
  std::vector<cfg::BlockId> remember_set_;    // insertion (patch) order
  std::vector<cfg::BlockId> patched_sorted_;  // sorted mirror for lookup
};

/// The state table: one BlockState per CFG block plus aggregate queries
/// over the maintained indexes.
class StateTable {
 public:
  explicit StateTable(std::size_t block_count);

  [[nodiscard]] BlockState& operator[](cfg::BlockId id);
  [[nodiscard]] const BlockState& operator[](cfg::BlockId id) const;

  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Move `id` to `form`, keeping the decompressed-set indexes in sync.
  void set_form(cfg::BlockId id, BlockForm form);

  /// Record a use of `id` at `time` (the budget-mode LRU timestamp).
  void touch(cfg::BlockId id, std::uint64_t time);

  /// Pin / unpin `id` as currently executing.
  void set_executing(cfg::BlockId id, bool executing);

  /// Provide per-block decompressed-copy sizes for the largest-victim
  /// index. All sizes are zero (no largest victim) until this is called.
  void set_block_sizes(std::vector<std::uint64_t> sizes);

  /// Ids of blocks currently in decompressed form, ascending.
  [[nodiscard]] std::vector<cfg::BlockId> decompressed_blocks() const;

  /// Same set in index order (unspecified); O(1), no allocation.
  [[nodiscard]] std::span<const cfg::BlockId> decompressed_unordered() const {
    return decomp_list_;
  }

  /// Count of blocks in a given form.
  [[nodiscard]] std::size_t count(BlockForm form) const {
    return form_counts_[static_cast<std::size_t>(form)];
  }

  /// Victim queries among decompressed, non-executing blocks, excluding
  /// `protect`; kInvalidBlock if none exists. Ties on the key resolve to
  /// the lowest block id, matching the historical full-scan order.
  [[nodiscard]] cfg::BlockId lru_victim(cfg::BlockId protect) const;
  [[nodiscard]] cfg::BlockId mru_victim(cfg::BlockId protect) const;
  /// Blocks with size 0 are never largest-victims (matches the scan's
  /// strict `size > 0` comparison).
  [[nodiscard]] cfg::BlockId largest_victim(cfg::BlockId protect) const;

  /// O(B) full-scan counterparts of the victim queries: the pre-index
  /// reference implementations, kept as the debug cross-check path for
  /// the differential engine tests.
  [[nodiscard]] cfg::BlockId lru_victim_reference(cfg::BlockId protect) const;
  [[nodiscard]] cfg::BlockId mru_victim_reference(cfg::BlockId protect) const;
  [[nodiscard]] cfg::BlockId largest_victim_reference(
      cfg::BlockId protect) const;

 private:
  using Key = std::pair<std::uint64_t, cfg::BlockId>;  // (key, id)

  void index_insert(cfg::BlockId id);
  void index_erase(cfg::BlockId id);
  [[nodiscard]] bool eligible(cfg::BlockId id, cfg::BlockId protect) const {
    return id != protect && !states_[id].executing_;
  }
  /// Smallest id within the highest key group with an eligible entry.
  [[nodiscard]] cfg::BlockId max_key_victim(const std::set<Key>& index,
                                            cfg::BlockId protect,
                                            bool require_positive_key) const;

  static constexpr std::uint32_t kNotInList = UINT32_MAX;

  std::vector<BlockState> states_;
  std::vector<std::uint64_t> sizes_;        // largest-victim key per block
  std::vector<std::uint32_t> decomp_pos_;   // position in decomp_list_
  std::vector<cfg::BlockId> decomp_list_;   // dense decompressed-id list
  std::set<Key> lru_index_;                 // (last_use_time, id)
  std::set<Key> size_index_;                // (size, id)
  std::size_t form_counts_[3] = {0, 0, 0};
};

}  // namespace apcc::runtime
