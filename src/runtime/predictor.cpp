#include "runtime/predictor.hpp"

#include <algorithm>
#include <climits>

#include "support/assert.hpp"

namespace apcc::runtime {

const char* strategy_name(DecompressionStrategy s) {
  switch (s) {
    case DecompressionStrategy::kOnDemand: return "on-demand";
    case DecompressionStrategy::kPreAll: return "pre-all";
    case DecompressionStrategy::kPreSingle: return "pre-single";
  }
  return "?";
}

const char* predictor_name(PredictorKind p) {
  switch (p) {
    case PredictorKind::kProfile: return "profile";
    case PredictorKind::kStatic: return "static";
    case PredictorKind::kOracle: return "oracle";
  }
  return "?";
}

const char* victim_policy_name(VictimPolicy p) {
  switch (p) {
    case VictimPolicy::kLru: return "lru";
    case VictimPolicy::kMru: return "mru";
    case VictimPolicy::kLargest: return "largest";
  }
  return "?";
}

ProfilePredictor::ProfilePredictor(const cfg::Cfg& cfg, std::uint32_t k)
    : cfg_(cfg), k_(k) {}

cfg::BlockId ProfilePredictor::predict(
    cfg::BlockId from, const std::vector<cfg::BlockId>& candidates,
    std::size_t /*trace_index*/) const {
  APCC_CHECK(!candidates.empty(), "predict() needs candidates");
  const auto scores = cfg::reach_scores(cfg_, from, k_);
  // reach_scores is sorted by descending score; take the best candidate.
  for (const auto& rs : scores) {
    if (std::find(candidates.begin(), candidates.end(), rs.block) !=
        candidates.end()) {
      return rs.block;
    }
  }
  return candidates.front();  // unreachable under probabilities: first wins
}

StaticPredictor::StaticPredictor(const cfg::Cfg& cfg, std::uint32_t k,
                                 const FrontierCache* shared_frontiers)
    : cfg_(cfg), k_(k), loop_depth_(cfg::loop_depths(cfg)) {
  if (shared_frontiers != nullptr) {
    APCC_CHECK(&shared_frontiers->cfg() == &cfg_,
               "shared FrontierCache built on a different CFG");
    APCC_CHECK(shared_frontiers->k() == k_,
               "shared FrontierCache k does not match predictor k");
    APCC_CHECK(shared_frontiers->materialized(),
               "shared FrontierCache must be materialized (immutable)");
    frontiers_ = shared_frontiers;
  } else {
    owned_frontiers_.emplace(cfg_, k_);
    frontiers_ = &*owned_frontiers_;
  }
}

cfg::BlockId StaticPredictor::predict(
    cfg::BlockId from, const std::vector<cfg::BlockId>& candidates,
    std::size_t /*trace_index*/) const {
  APCC_CHECK(!candidates.empty(), "predict() needs candidates");
  const auto frontier = frontiers_->candidates(from);
  const auto distance_of = [&frontier](cfg::BlockId c) {
    for (const cfg::FrontierEntry& e : frontier) {
      if (e.block == c) return e.distance;
    }
    return UINT_MAX;  // outside the frontier: rank as unreachable
  };
  cfg::BlockId best = candidates.front();
  unsigned best_depth = 0;
  unsigned best_dist = UINT_MAX;
  bool first = true;
  for (const cfg::BlockId c : candidates) {
    const unsigned depth = loop_depth_[c];
    const unsigned d = distance_of(c);
    const bool better = first || depth > best_depth ||
                        (depth == best_depth && d < best_dist) ||
                        (depth == best_depth && d == best_dist && c < best);
    if (better) {
      best = c;
      best_depth = depth;
      best_dist = d;
      first = false;
    }
  }
  return best;
}

OraclePredictor::OraclePredictor(const cfg::Cfg& /*cfg*/,
                                 const cfg::BlockTrace& trace)
    : trace_(trace) {}

cfg::BlockId OraclePredictor::predict(
    cfg::BlockId /*from*/, const std::vector<cfg::BlockId>& candidates,
    std::size_t trace_index) const {
  APCC_CHECK(!candidates.empty(), "predict() needs candidates");
  // Start two entries ahead: the immediately-next block cannot profit
  // from pre-decompression (there is no lead time to hide any latency),
  // so predicting it would waste the single request pre-single gets.
  for (std::size_t i = trace_index + 2; i < trace_.size(); ++i) {
    if (std::find(candidates.begin(), candidates.end(), trace_[i]) !=
        candidates.end()) {
      return trace_[i];
    }
  }
  return candidates.front();  // never reached again: arbitrary
}

std::unique_ptr<Predictor> make_predictor(PredictorKind kind,
                                          const cfg::Cfg& cfg,
                                          std::uint32_t k,
                                          const cfg::BlockTrace& trace,
                                          const FrontierCache* shared_frontiers) {
  switch (kind) {
    case PredictorKind::kProfile:
      return std::make_unique<ProfilePredictor>(cfg, k);
    case PredictorKind::kStatic:
      return std::make_unique<StaticPredictor>(cfg, k, shared_frontiers);
    case PredictorKind::kOracle:
      return std::make_unique<OraclePredictor>(cfg, trace);
  }
  APCC_ASSERT(false, "unknown predictor kind");
}

}  // namespace apcc::runtime
