#include "runtime/kedge.hpp"

#include "support/assert.hpp"

namespace apcc::runtime {

KEdgeCompressionManager::KEdgeCompressionManager(StateTable& states,
                                                 std::uint32_t k)
    : states_(states), k_(k) {
  APCC_CHECK(k >= 1, "k-edge requires k >= 1");
}

void KEdgeCompressionManager::on_block_executed(cfg::BlockId block) {
  states_[block].kedge_counter = 0;
}

std::vector<cfg::BlockId> KEdgeCompressionManager::on_edge_traversed(
    cfg::BlockId target) {
  std::vector<cfg::BlockId> to_delete;
  for (cfg::BlockId b = 0; b < states_.size(); ++b) {
    if (b == target) continue;
    BlockState& s = states_[b];
    if (s.form != BlockForm::kDecompressed) continue;
    ++s.kedge_counter;
    if (s.kedge_counter >= k_ && !s.executing) {
      to_delete.push_back(b);
    }
  }
  return to_delete;
}

}  // namespace apcc::runtime
