#include "runtime/kedge.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace apcc::runtime {

KEdgeCompressionManager::KEdgeCompressionManager(StateTable& states,
                                                 std::uint32_t k,
                                                 bool reference_scan)
    : states_(states), k_(k), reference_scan_(reference_scan) {
  APCC_CHECK(k >= 1, "k-edge requires k >= 1");
}

void KEdgeCompressionManager::on_block_executed(cfg::BlockId block) {
  states_[block].kedge_counter = 0;
}

std::vector<cfg::BlockId> KEdgeCompressionManager::on_edge_traversed(
    cfg::BlockId target) {
  std::vector<cfg::BlockId> to_delete;
  if (reference_scan_) {
    for (cfg::BlockId b = 0; b < states_.size(); ++b) {
      if (b == target) continue;
      const BlockRef s = states_[b];
      if (s.form() != BlockForm::kDecompressed) continue;
      ++s.kedge_counter;
      if (s.kedge_counter >= k_ && !s.executing()) {
        to_delete.push_back(b);
      }
    }
    return to_delete;
  }
  for (const cfg::BlockId b : states_.decompressed_unordered()) {
    if (b == target) continue;
    const BlockRef s = states_[b];
    ++s.kedge_counter;
    if (s.kedge_counter >= k_ && !s.executing()) {
      to_delete.push_back(b);
    }
  }
  // The id list is maintained in arbitrary order; deletions are applied
  // (and their events emitted) in the reference scan's ascending order.
  std::sort(to_delete.begin(), to_delete.end());
  return to_delete;
}

}  // namespace apcc::runtime
