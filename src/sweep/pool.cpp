#include "sweep/pool.hpp"

#include <algorithm>

namespace apcc::sweep {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

Pool::Pool(unsigned workers) : Pool(PoolOptions{workers, true}) {}

Pool::Pool(PoolOptions options) : fair_share_(options.fair_share) {
  const unsigned count = std::max(1u, options.workers);
  threads_.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() { stop(StopMode::kDrain); }

std::shared_ptr<Pool::Job> Pool::claimable_locked() {
  // queue_ is in submission (= ascending id) order, so within an equal
  // (class, account vtime, tag) the first hit is the lowest id -- the
  // deterministic final tie-break. A cancelled job's remaining items
  // are skipped without running, so the worker budget does not apply
  // to them (holding them back would only delay the finalize).
  std::shared_ptr<Job> best;
  std::uint64_t best_vtime = 0;
  for (const auto& job : queue_) {
    if (job->next >= job->total) continue;
    if (!job->cancelled && job->max_workers != 0 &&
        job->running >= job->max_workers) {
      continue;
    }
    if (!best || job->priority < best->priority) {
      best = job;
      if (fair_share_) best_vtime = share_locked(job->client).vtime;
      continue;
    }
    if (!fair_share_ || job->priority != best->priority) continue;
    // Same class: the least-served account goes first, so a heavy
    // tenant's backlog cannot starve a light one queued behind it.
    const std::uint64_t vtime = share_locked(job->client).vtime;
    if (vtime < best_vtime ||
        (vtime == best_vtime && job->client < best->client)) {
      best = job;
      best_vtime = vtime;
    }
  }
  return best;
}

Pool::ClientShare& Pool::share_locked(const std::string& tag) {
  const auto it = shares_.find(tag);
  if (it != shares_.end()) return it->second;
  // Aging: a new (or returning) tag enters at the minimum vtime among
  // live accounts, so it shares from now on instead of replaying the
  // credit it banked while absent and monopolizing the pool.
  std::uint64_t baseline = 0;
  bool any = false;
  for (const auto& entry : shares_) {
    if (!any || entry.second.vtime < baseline) baseline = entry.second.vtime;
    any = true;
  }
  ClientShare share;
  share.vtime = baseline;
  return shares_.emplace(tag, share).first->second;
}

void Pool::charge_locked(const Job& job) {
  if (!fair_share_) return;
  share_locked(job.client).vtime += kVtimeUnit / std::max(1u, job.weight);
}

void Pool::release_locked(const Job& job) {
  if (!fair_share_) return;
  const auto it = shares_.find(job.client);
  if (it == shares_.end()) return;
  if (it->second.live > 0) --it->second.live;
  if (it->second.live == 0) shares_.erase(it);
}

void Pool::cancel_locked(Job& job, CancelCause cause) {
  if (job.cancelled) return;
  job.cancelled = true;
  job.cause = cause;
  // Running items observe the request at their next task boundary;
  // items that never poll simply finish.
  if (job.token) job.token->request();
  // Skipping bypasses the worker budget, so budget-gated idle workers
  // can help drain the cancelled tail.
  work_cv_.notify_all();
}

std::shared_ptr<Pool::Job> Pool::find_locked(JobId id) {
  for (const auto& job : queue_) {
    if (job->id == id) return job;
  }
  return nullptr;
}

FinalizeInfo Pool::finalize_info(const Job& job) {
  // Failure wins: the first thrown exception is the job's outcome even
  // when a cancel or deadline raced it -- callers must not lose the
  // error. Otherwise the first-observed cancel cause is reported.
  if (job.failure) return {JobOutcome::kFailed, job.failure};
  switch (job.cause) {
    case CancelCause::kCancel: return {JobOutcome::kCancelled, nullptr};
    case CancelCause::kDeadline:
      return {JobOutcome::kDeadlineExceeded, nullptr};
    case CancelCause::kNone:
    case CancelCause::kFailure: break;
  }
  return {JobOutcome::kCompleted, nullptr};
}

void Pool::retire_locked(JobId id) {
  retired_.push_back(id);
  std::sort(retired_.begin(), retired_.end());
  while (!retired_.empty() && retired_.front() == retired_below_) {
    retired_.erase(retired_.begin());
    ++retired_below_;
  }
  finished_cv_.notify_all();
}

Pool::JobId Pool::submit(std::size_t total, ItemFn item, FinalizeFn finalize,
                         SubmitOptions options) {
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->total = total;
  job->item = std::move(item);
  job->finalize = std::move(finalize);
  job->priority = options.priority;
  job->max_workers = options.max_workers;
  job->client = std::move(options.client);
  job->weight = options.weight;
  job->token = std::move(options.cancel);
  job->deadline = options.deadline;
  bool dead = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->id = next_id_++;
    dead = stopping_;
    if (!dead && total > 0) {
      queue_.push_back(job);
      if (fair_share_) ++share_locked(job->client).live;
    }
  }
  if (dead) {
    // The pool is stopping or stopped: never enqueue, but never stall
    // or drop the finalize either -- the job resolves as cancelled on
    // the calling thread, exactly once.
    if (job->token) job->token->request();
    if (job->finalize) job->finalize({JobOutcome::kCancelled, nullptr});
    const std::lock_guard<std::mutex> lock(mutex_);
    retire_locked(job->id);
    return job->id;
  }
  if (total == 0) {
    // Nothing to schedule: finalize synchronously (callers get a handle
    // that is already ready) and retire the id.
    if (job->finalize) job->finalize({JobOutcome::kCompleted, nullptr});
    const std::lock_guard<std::mutex> lock(mutex_);
    retire_locked(job->id);
    return job->id;
  }
  work_cv_.notify_all();
  return job->id;
}

void Pool::finalize_unstarted_locked(std::unique_lock<std::mutex>& lock,
                                     const std::shared_ptr<Job>& job) {
  if (job->next != 0 || job->running != 0 || job->done != 0) return;
  // No item was ever claimed: resolve the job right here on the
  // cancelling thread instead of waking a worker to skip through its
  // items -- cancelling *queued* work is immediate even when every
  // worker is busy (the property shutdown's still-queued policy needs).
  job->next = job->total;
  job->done = job->total;
  queue_.erase(std::find(queue_.begin(), queue_.end(), job));
  release_locked(*job);
  const FinalizeFn finalize = std::move(job->finalize);
  const FinalizeInfo info = finalize_info(*job);
  lock.unlock();
  if (finalize) finalize(info);
  lock.lock();
  retire_locked(job->id);
  work_cv_.notify_all();
}

bool Pool::cancel(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::shared_ptr<Job> job = find_locked(id);
  if (!job) return false;  // already finalized (or never issued)
  cancel_locked(*job, CancelCause::kCancel);
  finalize_unstarted_locked(lock, job);
  return true;
}

bool Pool::cancel_if_unstarted(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::shared_ptr<Job> job = find_locked(id);
  if (!job || job->next > 0) return false;
  cancel_locked(*job, CancelCause::kCancel);
  finalize_unstarted_locked(lock, job);
  return true;
}

void Pool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::shared_ptr<Job> job = claimable_locked();
    if (!job) {
      if (stopping_ && queue_.empty()) return;
      work_cv_.wait(lock);
      continue;
    }

    // Dispatch-time lifecycle checks, cheapest first. A job with no
    // deadline never reads the clock; a job with no token never loads
    // the atomic.
    if (!job->cancelled) {
      if (job->token && job->token->cancelled()) {
        // An item (or the submitter) requested the token directly --
        // honour it as an explicit cancel.
        cancel_locked(*job, CancelCause::kCancel);
      } else if (job->deadline &&
                 std::chrono::steady_clock::now() >= *job->deadline) {
        cancel_locked(*job, CancelCause::kDeadline);
      }
    }

    const std::size_t index = job->next++;
    const bool skip = job->cancelled;
    if (!skip) {
      ++job->running;
      // Skipped items cost nothing: a cancelled backlog should not
      // penalize its tenant's future share.
      charge_locked(*job);
    }
    lock.unlock();

    std::exception_ptr error;
    if (!skip) {
      try {
        job->item(index);
      } catch (...) {
        error = std::current_exception();
      }
    }

    lock.lock();
    if (!skip) {
      --job->running;
      // An item may have requested the token itself (self-cancel);
      // observe it here too, or a request made by the job's *last*
      // item would never be seen by a claim.
      if (!job->cancelled && job->token && job->token->cancelled()) {
        cancel_locked(*job, CancelCause::kCancel);
      }
      // Freeing a budget slot can make this job claimable again for a
      // worker that went idle on the budget gate.
      if (job->max_workers != 0 && job->next < job->total) {
        work_cv_.notify_all();
      }
    }
    if (error) {
      if (!job->failure) job->failure = error;
      // Remaining unclaimed (not yet started) items of *this* job are
      // skipped -- whichever priority class queued behind them; their
      // results would be discarded anyway. Other jobs are unaffected.
      cancel_locked(*job, CancelCause::kFailure);
    }
    ++job->done;
    if (job->done == job->total) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job));
      release_locked(*job);
      const FinalizeFn finalize = std::move(job->finalize);
      const FinalizeInfo info = finalize_info(*job);
      lock.unlock();
      if (finalize) finalize(info);
      lock.lock();
      retire_locked(job->id);
      // A retiring job can be what a stopping pool's idle workers were
      // waiting on.
      work_cv_.notify_all();
    }
  }
}

void Pool::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_cv_.wait(lock, [&] {
    if (id >= next_id_) return true;  // never issued
    if (id < retired_below_) return true;
    return std::find(retired_.begin(), retired_.end(), id) != retired_.end();
  });
}

void Pool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_cv_.wait(lock, [&] { return retired_below_ == next_id_; });
}

bool Pool::drain_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return finished_cv_.wait_for(lock, timeout,
                               [&] { return retired_below_ == next_id_; });
}

void Pool::stop(StopMode mode) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    if (mode == StopMode::kAbort) {
      // Queued jobs are cancelled wholesale; whatever items are already
      // on a worker finish (cooperatively early if they poll their
      // token), then each job finalizes as cancelled. kDrain leaves the
      // queue alone -- workers exit once it empties naturally.
      for (const auto& job : queue_) {
        cancel_locked(*job, CancelCause::kCancel);
      }
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

namespace detail {

void parallel_for_index(std::size_t total, unsigned workers,
                        const std::function<void(std::size_t)>& fn) {
  if (total == 0) return;

  if (workers <= 1) {
    // Inline: no pool, no locks -- this is also the sequential
    // reference the differential tests compare the sharded paths
    // against.
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }

  Pool pool(static_cast<unsigned>(
      std::min<std::size_t>(workers, total)));
  std::exception_ptr failure;
  pool.submit(total, fn, [&failure](const FinalizeInfo& info) {
    failure = info.failure;
  });
  pool.drain();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace detail

}  // namespace apcc::sweep
