#include "sweep/pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace apcc::sweep::detail {

void parallel_for_index(std::size_t total, unsigned workers,
                        const std::function<void(std::size_t)>& fn) {
  if (total == 0) return;

  if (workers <= 1) {
    // Inline: no pool, no atomics -- this is also the sequential
    // reference the differential tests compare the sharded paths
    // against.
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
        // The results are discarded on failure anyway; stop handing out
        // work so the pool drains quickly.
        next.store(total, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (failure) std::rethrow_exception(failure);
}

}  // namespace apcc::sweep::detail
