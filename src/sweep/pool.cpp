#include "sweep/pool.hpp"

#include <algorithm>

namespace apcc::sweep {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

Pool::Pool(unsigned workers) {
  const unsigned count = std::max(1u, workers);
  threads_.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::shared_ptr<Pool::Job> Pool::claimable_locked() {
  // queue_ is in submission (= ascending id) order, so the first hit
  // within a priority class is the lowest id -- the deterministic
  // tie-break. A cancelled job's remaining items are skipped without
  // running, so the worker budget does not apply to them (holding them
  // back would only delay the finalize).
  std::shared_ptr<Job> best;
  for (const auto& job : queue_) {
    if (job->next >= job->total) continue;
    if (!job->cancelled && job->max_workers != 0 &&
        job->running >= job->max_workers) {
      continue;
    }
    if (!best || job->priority < best->priority) best = job;
  }
  return best;
}

void Pool::retire_locked(JobId id) {
  retired_.push_back(id);
  std::sort(retired_.begin(), retired_.end());
  while (!retired_.empty() && retired_.front() == retired_below_) {
    retired_.erase(retired_.begin());
    ++retired_below_;
  }
  finished_cv_.notify_all();
}

Pool::JobId Pool::submit(std::size_t total, ItemFn item, FinalizeFn finalize,
                         SubmitOptions options) {
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->total = total;
  job->item = std::move(item);
  job->finalize = std::move(finalize);
  job->priority = options.priority;
  job->max_workers = options.max_workers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->id = next_id_++;
    if (total > 0) queue_.push_back(job);
  }
  if (total == 0) {
    // Nothing to schedule: finalize synchronously (callers get a handle
    // that is already ready) and retire the id.
    if (job->finalize) job->finalize(nullptr);
    const std::lock_guard<std::mutex> lock(mutex_);
    retire_locked(job->id);
    return job->id;
  }
  work_cv_.notify_all();
  return job->id;
}

void Pool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::shared_ptr<Job> job = claimable_locked();
    if (!job) {
      if (stopping_ && queue_.empty()) return;
      work_cv_.wait(lock);
      continue;
    }

    const std::size_t index = job->next++;
    const bool skip = job->cancelled;
    if (!skip) ++job->running;
    lock.unlock();

    std::exception_ptr error;
    if (!skip) {
      try {
        job->item(index);
      } catch (...) {
        error = std::current_exception();
      }
    }

    lock.lock();
    if (!skip) {
      --job->running;
      // Freeing a budget slot can make this job claimable again for a
      // worker that went idle on the budget gate.
      if (job->max_workers != 0 && job->next < job->total) {
        work_cv_.notify_all();
      }
    }
    if (error) {
      if (!job->failure) job->failure = error;
      // Remaining unclaimed (not yet started) items of *this* job are
      // skipped -- whichever priority class queued behind them; their
      // results would be discarded anyway. Other jobs are unaffected.
      job->cancelled = true;
      // Skipping bypasses the worker budget, so budget-gated idle
      // workers can help drain the cancelled tail.
      work_cv_.notify_all();
    }
    ++job->done;
    if (job->done == job->total) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job));
      const FinalizeFn finalize = std::move(job->finalize);
      const std::exception_ptr failure = job->failure;
      lock.unlock();
      if (finalize) finalize(failure);
      lock.lock();
      retire_locked(job->id);
      // A retiring job can be what a stopping pool's idle workers were
      // waiting on.
      work_cv_.notify_all();
    }
  }
}

void Pool::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_cv_.wait(lock, [&] {
    if (id >= next_id_) return true;  // never issued
    if (id < retired_below_) return true;
    return std::find(retired_.begin(), retired_.end(), id) != retired_.end();
  });
}

void Pool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_cv_.wait(lock, [&] { return retired_below_ == next_id_; });
}

namespace detail {

void parallel_for_index(std::size_t total, unsigned workers,
                        const std::function<void(std::size_t)>& fn) {
  if (total == 0) return;

  if (workers <= 1) {
    // Inline: no pool, no locks -- this is also the sequential
    // reference the differential tests compare the sharded paths
    // against.
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }

  Pool pool(static_cast<unsigned>(
      std::min<std::size_t>(workers, total)));
  std::exception_ptr failure;
  pool.submit(
      total, fn, [&failure](std::exception_ptr error) { failure = error; });
  pool.drain();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace detail

}  // namespace apcc::sweep
