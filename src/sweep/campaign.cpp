#include "sweep/campaign.hpp"

#include <map>

#include "sim/engine.hpp"
#include "support/assert.hpp"
#include "sweep/pool.hpp"

namespace apcc::sweep {

namespace {

/// One SharedFrontier handshake slot per runtime::FrontierKey -- (CFG
/// identity, predecompress_k) -- the grid needs. The submitting thread
/// only creates the (cheap, empty) slots; the first pool worker whose
/// cell needs a key claims its build and materializes on the worker, so
/// geometry construction overlaps with simulation of cells over other
/// keys instead of serializing on the caller before the pool starts.
using GeometryMap =
    std::map<runtime::FrontierKey, std::unique_ptr<runtime::SharedFrontier>>;

GeometryMap make_geometry_slots(const std::vector<CampaignWorkload>& workloads,
                                const std::vector<SweepTask>& grid) {
  GeometryMap geometry;
  for (const CampaignWorkload& workload : workloads) {
    for (const SweepTask& task : grid) {
      const unsigned k = task.config.policy.predecompress_k;
      auto& slot = geometry[runtime::FrontierKey{workload.cfg, k}];
      if (!slot) {
        slot = std::make_unique<runtime::SharedFrontier>(*workload.cfg, k);
      }
    }
  }
  return geometry;
}

}  // namespace

std::vector<CampaignResult> run_campaign(
    const std::vector<CampaignWorkload>& workloads,
    const std::vector<SweepTask>& grid, const CampaignOptions& options) {
  std::vector<CampaignResult> results(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const CampaignWorkload& workload = workloads[w];
    APCC_CHECK(workload.cfg != nullptr && workload.image != nullptr &&
                   workload.trace != nullptr,
               "campaign workload '" + workload.name +
                   "' has a null cfg/image/trace");
    results[w].workload = workload.name;
  }
  if (workloads.empty() || grid.empty()) return results;

  GeometryMap geometry;
  if (options.share_frontiers) geometry = make_geometry_slots(workloads, grid);

  // Flatten the (workload x task) matrix workload-major: cell i is
  // workload i / |grid|, task i % |grid| -- so the one-worker inline
  // order is exactly "each workload's grid sequentially".
  const std::size_t total = workloads.size() * grid.size();
  SweepOptions pool_options;
  pool_options.workers = options.workers;
  const unsigned workers = resolve_workers(pool_options, total);

  std::vector<ResultSink> sinks(workloads.size());
  detail::parallel_for_index(total, workers, [&](std::size_t i) {
    const std::size_t w = i / grid.size();
    const std::size_t t = i % grid.size();
    const CampaignWorkload& workload = workloads[w];
    sim::EngineConfig config = grid[t].config;
    if (options.share_frontiers) {
      // Claim-build or wait: first cell over this (workload, k) key
      // materializes the cache on its worker, everyone later borrows.
      config.shared_frontiers =
          geometry
              .at(runtime::FrontierKey{workload.cfg,
                                       config.policy.predecompress_k})
              ->acquire();
    }
    sim::Engine engine(*workload.cfg, *workload.image, config);
    sinks[w].push(SweepOutcome{t, grid[t].label, engine.run(*workload.trace)});
  });

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    results[w].outcomes = sinks[w].take_sorted();
  }
  return results;
}

}  // namespace apcc::sweep
