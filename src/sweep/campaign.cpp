#include "sweep/campaign.hpp"

#include <algorithm>
#include <map>

#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "support/assert.hpp"
#include "sweep/pool.hpp"

namespace apcc::sweep {

namespace {

/// One SharedFrontier handshake slot per runtime::FrontierKey -- (CFG
/// identity, predecompress_k) -- the grid needs. The submitting thread
/// only creates the (cheap, empty) slots; the first pool worker whose
/// cell needs a key claims its build and materializes on the worker, so
/// geometry construction overlaps with simulation of cells over other
/// keys instead of serializing on the caller before the pool starts.
using GeometryMap =
    std::map<runtime::FrontierKey, std::unique_ptr<runtime::SharedFrontier>>;

GeometryMap make_geometry_slots(const std::vector<CampaignWorkload>& workloads,
                                const std::vector<SweepTask>& grid) {
  GeometryMap geometry;
  for (const CampaignWorkload& workload : workloads) {
    for (const SweepTask& task : grid) {
      const unsigned k = task.config.policy.predecompress_k;
      auto& slot = geometry[runtime::FrontierKey{workload.cfg, k}];
      if (!slot) {
        slot = std::make_unique<runtime::SharedFrontier>(*workload.cfg, k);
      }
    }
  }
  return geometry;
}

}  // namespace

std::vector<CampaignResult> run_campaign(
    const std::vector<CampaignWorkload>& workloads,
    const std::vector<SweepTask>& grid, const CampaignOptions& options) {
  std::vector<CampaignResult> results(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const CampaignWorkload& workload = workloads[w];
    APCC_CHECK(workload.cfg != nullptr && workload.image != nullptr &&
                   workload.trace != nullptr,
               "campaign workload '" + workload.name +
                   "' has a null cfg/image/trace");
    results[w].workload = workload.name;
  }
  if (workloads.empty() || grid.empty()) return results;

  GeometryMap geometry;
  if (options.share_frontiers) geometry = make_geometry_slots(workloads, grid);

  // Per-cell config resolution, shared by both paths below.
  const auto cell_config = [&](const CampaignWorkload& workload,
                               std::size_t t) {
    sim::EngineConfig config = grid[t].config;
    if (options.share_frontiers) {
      // Claim-build or wait: first cell over this (workload, k) key
      // materializes the cache on its worker, everyone later borrows.
      config.shared_frontiers =
          geometry
              .at(runtime::FrontierKey{workload.cfg,
                                       config.policy.predecompress_k})
              ->acquire();
    }
    return config;
  };

  std::vector<ResultSink> sinks(workloads.size());
  if (options.batch_cells > 1) {
    // Chunk each workload's grid independently (a batch shares one
    // (cfg, image, trace) triple), workload-major like the flat path so
    // the one-worker inline order stays the sequential reference order.
    struct Chunk {
      std::size_t workload;
      std::size_t begin;  // task range [begin, end) within the grid
      std::size_t end;
    };
    std::vector<Chunk> chunks;
    const std::size_t batch = options.batch_cells;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      for (std::size_t begin = 0; begin < grid.size(); begin += batch) {
        chunks.push_back(
            Chunk{w, begin, std::min(begin + batch, grid.size())});
      }
    }
    SweepOptions pool_options;
    pool_options.workers = options.workers;
    const unsigned workers = resolve_workers(pool_options, chunks.size());
    detail::parallel_for_index(chunks.size(), workers, [&](std::size_t ci) {
      const Chunk& chunk = chunks[ci];
      const CampaignWorkload& workload = workloads[chunk.workload];
      std::vector<sim::EngineConfig> configs;
      configs.reserve(chunk.end - chunk.begin);
      for (std::size_t t = chunk.begin; t < chunk.end; ++t) {
        configs.push_back(cell_config(workload, t));
      }
      sim::BatchEngine engine(*workload.cfg, *workload.image,
                              std::move(configs));
      auto outcomes = engine.run(*workload.trace);
      std::exception_ptr first_error;
      for (std::size_t t = chunk.begin; t < chunk.end; ++t) {
        sim::CellOutcome& cell = outcomes[t - chunk.begin];
        if (!cell.ok()) {
          if (!first_error) first_error = cell.error;
          continue;
        }
        sinks[chunk.workload].push(
            SweepOutcome{t, grid[t].label, cell.result});
      }
      if (first_error) std::rethrow_exception(first_error);
    });
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      results[w].outcomes = sinks[w].take_sorted();
    }
    return results;
  }

  // Flatten the (workload x task) matrix workload-major: cell i is
  // workload i / |grid|, task i % |grid| -- so the one-worker inline
  // order is exactly "each workload's grid sequentially".
  const std::size_t total = workloads.size() * grid.size();
  SweepOptions pool_options;
  pool_options.workers = options.workers;
  const unsigned workers = resolve_workers(pool_options, total);

  detail::parallel_for_index(total, workers, [&](std::size_t i) {
    const std::size_t w = i / grid.size();
    const std::size_t t = i % grid.size();
    const CampaignWorkload& workload = workloads[w];
    const sim::EngineConfig config = cell_config(workload, t);
    sim::Engine engine(*workload.cfg, *workload.image, config);
    sinks[w].push(SweepOutcome{t, grid[t].label, engine.run(*workload.trace)});
  });

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    results[w].outcomes = sinks[w].take_sorted();
  }
  return results;
}

}  // namespace apcc::sweep
