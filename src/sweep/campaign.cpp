#include "sweep/campaign.hpp"

#include <map>

#include "sim/engine.hpp"
#include "support/assert.hpp"
#include "sweep/pool.hpp"

namespace apcc::sweep {

namespace {

/// Materialized (workload, predecompress_k) geometry, built once before
/// the pool starts so workers only ever read it.
using GeometryMap =
    std::vector<std::map<unsigned, std::unique_ptr<runtime::FrontierCache>>>;

GeometryMap build_geometry(const std::vector<CampaignWorkload>& workloads,
                           const std::vector<SweepTask>& grid) {
  GeometryMap geometry(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const SweepTask& task : grid) {
      const unsigned k = task.config.policy.predecompress_k;
      auto& slot = geometry[w][k];
      if (!slot) {
        slot = std::make_unique<runtime::FrontierCache>(*workloads[w].cfg, k);
        slot->materialize();
      }
    }
  }
  return geometry;
}

}  // namespace

std::vector<CampaignResult> run_campaign(
    const std::vector<CampaignWorkload>& workloads,
    const std::vector<SweepTask>& grid, const CampaignOptions& options) {
  std::vector<CampaignResult> results(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const CampaignWorkload& workload = workloads[w];
    APCC_CHECK(workload.cfg != nullptr && workload.image != nullptr &&
                   workload.trace != nullptr,
               "campaign workload '" + workload.name +
                   "' has a null cfg/image/trace");
    results[w].workload = workload.name;
  }
  if (workloads.empty() || grid.empty()) return results;

  GeometryMap geometry;
  if (options.share_frontiers) geometry = build_geometry(workloads, grid);

  // Flatten the (workload x task) matrix workload-major: cell i is
  // workload i / |grid|, task i % |grid| -- so the one-worker inline
  // order is exactly "each workload's grid sequentially".
  const std::size_t total = workloads.size() * grid.size();
  SweepOptions pool_options;
  pool_options.workers = options.workers;
  const unsigned workers = resolve_workers(pool_options, total);

  std::vector<ResultSink> sinks(workloads.size());
  detail::parallel_for_index(total, workers, [&](std::size_t i) {
    const std::size_t w = i / grid.size();
    const std::size_t t = i % grid.size();
    const CampaignWorkload& workload = workloads[w];
    sim::EngineConfig config = grid[t].config;
    if (options.share_frontiers) {
      config.shared_frontiers =
          geometry[w].at(config.policy.predecompress_k).get();
    }
    sim::Engine engine(*workload.cfg, *workload.image, config);
    sinks[w].push(SweepOutcome{t, grid[t].label, engine.run(*workload.trace)});
  });

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    results[w].outcomes = sinks[w].take_sorted();
  }
  return results;
}

}  // namespace apcc::sweep
