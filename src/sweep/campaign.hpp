// Suite-wide sweep campaigns: one policy grid x many workloads, one pool.
//
// The paper's evaluation (fig3 / E10-style design-space exploration) is
// inherently a *suite x grid* matrix: the same policy grid run over every
// benchmark workload. run_sweep shards one workload's grid; run_campaign
// flattens the whole (workload x task) matrix into a single
// work-stealing queue over one shared thread pool, so a long workload's
// tail tasks and a short workload's grid interleave instead of the pool
// draining and refilling per workload. Outcomes come back grouped per
// workload, in task order, byte-identical to running each workload's
// grid sequentially (tests/sweep/campaign_test.cpp pins that).
//
// Shared geometry: the planner/predictor FrontierCache is keyed on
// (CFG, predecompress_k) -- per workload-and-k, not per task -- yet
// every engine used to rebuild it. A campaign creates one SharedFrontier
// handshake slot per distinct (workload, k) key; the first pool worker
// whose cell needs a key claims its build and materializes the cache on
// that worker (overlapping with other cells' simulation -- the calling
// thread never builds geometry when workers > 1), after which the cache
// is immutable and every later engine over that key borrows it via
// EngineConfig::shared_frontiers.
// Borrowed geometry holds exactly the lists an owned cache would
// compute, so it cannot change any outcome; the differential tests pin
// borrowed == owned bit-identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/frontier_cache.hpp"
#include "sweep/sweep.hpp"

namespace apcc::sweep {

/// One workload in a campaign: a display name plus borrowed, immutable
/// simulation inputs. The pointed-to objects must outlive the call and
/// must not be mutated while the campaign runs.
struct CampaignWorkload {
  std::string name;
  const cfg::Cfg* cfg = nullptr;
  const runtime::BlockImage* image = nullptr;
  const cfg::BlockTrace* trace = nullptr;
};

/// One workload's slice of the campaign: the grid's outcomes in task
/// order, exactly what run_sweep over that workload alone would return.
struct CampaignResult {
  std::string workload;
  std::vector<SweepOutcome> outcomes;
};

struct CampaignOptions {
  /// Worker threads for the shared pool; 0 means hardware concurrency
  /// (clamped to at least 1), and the pool never exceeds the number of
  /// matrix cells. 1 runs the whole matrix inline, workload-major -- the
  /// sequential reference order.
  unsigned workers = 0;
  /// Build one materialized FrontierCache per (workload, predecompress_k)
  /// and have every engine borrow it, instead of each engine's
  /// planner/predictor rebuilding identical geometry. Off means every
  /// engine owns its own cache (the run_sweep behaviour); outcomes are
  /// bit-identical either way.
  bool share_frontiers = true;
  /// Matrix cells stepped per pool work item (see
  /// SweepOptions::batch_cells). Batches never span workloads: each
  /// workload's grid is chunked independently, so a batch shares one
  /// (CFG, image, trace) triple. 0 and 1 keep the one-Engine-per-cell
  /// path; results are byte-identical at any value.
  std::uint32_t batch_cells = 0;
};

/// Run `grid` over every workload, sharded across one shared pool, and
/// return per-workload task-ordered outcomes. A CheckError thrown by any
/// engine run is rethrown on the calling thread after the pool drains.
[[nodiscard]] std::vector<CampaignResult> run_campaign(
    const std::vector<CampaignWorkload>& workloads,
    const std::vector<SweepTask>& grid, const CampaignOptions& options = {});

}  // namespace apcc::sweep
