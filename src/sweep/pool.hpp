// Shared worker pool for the sweep, campaign, and serving layers.
//
// Every parallel runner in this codebase reduces to the same shape: a
// job of N independent work items identified by a flat index, claimed
// off a shared counter by a fixed set of worker threads. PR 2/3 ran
// that loop per call (parallel_for_index); the serving layer needs it
// *resident* -- one pool owned by a long-lived Service, with several
// jobs (grids, campaigns) in flight at once. Pool is that resident
// generalization:
//
//  * submit() enqueues a job (total item count + per-item callback +
//    finalize callback, plus optional QoS: a priority class and a
//    per-job worker budget) and returns a JobId immediately; work items
//    carry (job, index) so the scheduler can interleave jobs.
//  * Scheduling is by strict priority class (high > normal > batch)
//    with cross-job overflow: workers claim items from the
//    highest-class job that still has unclaimed items, so job A's long
//    tail overlaps job B's head instead of the pool draining and
//    refilling per job. Priorities are strict -- a ready high-class
//    item always beats a batch item. Because every result is keyed by
//    its item index and collected order-independently, scheduling
//    affects only *when* an item runs, never what any job returns.
//  * **Within** a class the pick is weighted fair share keyed by the
//    job's client tag (PR 9): every tag carries a virtual-time account,
//    each dispatched item charges its account kVtimeUnit/weight, and
//    the claimable tag with the smallest vtime goes first (ties break
//    on the lexicographically smaller tag, then the lowest job id, so
//    the claim order stays deterministic). A tag that goes idle and
//    returns is aged forward to the busiest-minus-nothing baseline --
//    max(own vtime, min active vtime) -- so it resumes sharing instead
//    of monopolizing the pool to repay its idle time. Jobs that carry
//    no tag all share the "" account, which degenerates to exactly the
//    historical lowest-id-first order; PoolOptions::fair_share = false
//    keeps that strict-FIFO pick as the live reference the
//    differential tests compare against (scheduling may change when an
//    item runs -- never any result).
//  * A job's max_workers budget caps how many pool threads run its
//    items concurrently (0 = no cap). A budget-capped job yields its
//    surplus workers to lower-priority jobs instead of idling them.
//  * The first exception a job's item throws cancels that job's
//    remaining unclaimed (not-yet-started) items -- whatever priority
//    class they were queued under; other jobs are unaffected -- and is
//    handed to the job's finalize callback, which runs exactly once, on
//    a pool thread, after the job's last item retires.
//
// Robustness (PR 6) extends the same claim loop with three controls,
// all of which change only *whether* an item runs, never what a run
// item computes:
//
//  * **Cancellation** is cooperative and two-speed. cancel(id) marks
//    the job so every still-unclaimed item is skipped at claim time
//    (immediate), and requests the job's CancelToken so items already
//    on a worker can bail at their next task boundary (the token is
//    shared with the submitter via SubmitOptions::cancel; items that
//    ignore it simply run to completion). A job may also be cancelled
//    from inside one of its own items by requesting the token -- the
//    claim loop observes the token before dispatching each item.
//  * **Deadlines** are enforced at dispatch: the first claim attempted
//    at or after SubmitOptions::deadline cancels the job with outcome
//    kDeadlineExceeded. Items already running are not interrupted
//    (their token is requested, so boundary-checking items stop
//    early). A job with no deadline never reads the clock.
//  * **stop(StopMode)** is the explicit teardown path, distinct from
//    the destructor only in being callable early and in kAbort:
//    kDrain finishes every queued job first (what the destructor
//    does), kAbort cancels all queued jobs (running items still finish
//    their current item) and finalizes them as cancelled. After stop()
//    returns the workers are joined; submit() still hands out ids but
//    finalizes the job immediately as cancelled -- callers get a
//    resolved handle, never a stall.
//
// parallel_for_index is kept as the synchronous veneer the one-shot
// runners (run_sweep / run_campaign) use: inline at workers <= 1 (the
// sequential reference order the differential tests compare against),
// a temporary Pool otherwise.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace apcc::sweep {

/// Strict scheduling classes for pool jobs. Lower value = more urgent;
/// a claimable item of a higher class always runs before a lower one
/// (no aging), ties broken by lowest job id.
enum class Priority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kBatch = 2,
};

[[nodiscard]] const char* priority_name(Priority p);

/// How stop() treats work that is still queued.
enum class StopMode : std::uint8_t {
  kDrain,  // finish every queued job, then join (destructor behaviour)
  kAbort,  // cancel every queued job (running items finish their
           // current item), finalize them as cancelled, then join
};

/// Why a job finalized. Failure wins over cancellation (the first
/// thrown exception is the job's outcome even if a cancel raced it);
/// deadline and explicit cancel report whichever was observed first.
enum class JobOutcome : std::uint8_t {
  kCompleted,
  kFailed,
  kCancelled,
  kDeadlineExceeded,
};

/// What a finalize callback learns about its job.
struct FinalizeInfo {
  JobOutcome outcome = JobOutcome::kCompleted;
  /// The first exception any item threw; set iff outcome == kFailed.
  std::exception_ptr failure;
};

/// Cooperative cancellation flag shared between a job's submitter, the
/// pool's claim loop, and the job's running items. request() is
/// idempotent and thread-safe; items poll cancelled() at their task
/// boundaries and return early once it flips.
class CancelToken {
 public:
  [[nodiscard]] bool cancelled() const {
    return flag_.load(std::memory_order_relaxed);
  }
  void request() { flag_.store(true, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Per-job QoS and lifecycle knobs for Pool::submit().
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Max pool threads running this job's items concurrently; 0 = no
  /// cap. Affects scheduling only, never outcomes.
  unsigned max_workers = 0;
  /// Fair-share account this job's items are charged to (the empty tag
  /// is a real account -- the one untagged jobs share). Affects only
  /// the within-class claim order, never outcomes.
  std::string client;
  /// Fair-share weight of this job's items: an item costs
  /// kVtimeUnit/weight virtual time, so a weight-2 client sustains
  /// twice the items of a weight-1 client under contention. 0 is
  /// treated as 1.
  unsigned weight = 1;
  /// Cooperative cancellation token. Optional: when null the job can
  /// still be cancelled via Pool::cancel(), but running items have no
  /// flag to poll. The pool also *reads* the token at every claim, so
  /// an item can cancel its own job by requesting it.
  std::shared_ptr<CancelToken> cancel;
  /// Enforced at dispatch: the first item claim at or after this
  /// instant cancels the job with outcome kDeadlineExceeded. nullopt =
  /// no deadline (the claim loop never reads the clock).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Pool-wide construction knobs.
struct PoolOptions {
  /// Resident worker threads (clamped to at least 1).
  unsigned workers = 1;
  /// Within-class scheduling: true (the default) picks by weighted
  /// fair share over client tags; false keeps the strict
  /// lowest-id-first order -- the PR 5 reference the fairness
  /// differentials compare against. With no distinct tags the two are
  /// identical, so existing tag-less callers see no change either way.
  bool fair_share = true;
};

class Pool {
 public:
  using JobId = std::uint64_t;

  /// One dispatched item's virtual-time cost at weight 1 (divided by
  /// the job's weight when charged). Large enough that integer
  /// division keeps weights 1..kVtimeUnit distinguishable.
  static constexpr std::uint64_t kVtimeUnit = 1u << 20;

  /// Item callback: called once per index in [0, total), possibly
  /// concurrently from several pool threads.
  using ItemFn = std::function<void(std::size_t)>;
  /// Finalize callback: called exactly once per job, from a pool
  /// thread, after every item has retired (run or skipped). The info
  /// says how the job ended and carries the first item failure.
  using FinalizeFn = std::function<void(const FinalizeInfo&)>;

  /// Spin up `workers` resident threads (clamped to at least 1),
  /// fair-share scheduling on (see PoolOptions).
  explicit Pool(unsigned workers);

  explicit Pool(PoolOptions options);

  /// Equivalent to stop(StopMode::kDrain): drains every submitted job
  /// (finalizers included), then joins.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue a job and return its id without running anything on the
  /// calling thread. A job with total == 0 is finalized immediately
  /// (synchronously, with outcome kCompleted). After stop() the job is
  /// instead finalized immediately as kCancelled -- submit() never
  /// blocks and never loses a finalize.
  JobId submit(std::size_t total, ItemFn item, FinalizeFn finalize,
               SubmitOptions options = {});

  /// Cancel a job: every still-unclaimed item is skipped, the job's
  /// token (if any) is requested so running items can stop at their
  /// next boundary, and the job finalizes with outcome kCancelled once
  /// in-flight items retire. Returns false when the job has already
  /// finalized (or was never issued) -- cancelling twice is a no-op.
  bool cancel(JobId id);

  /// cancel(id), but only if no item of the job has been claimed yet
  /// -- the "still queued" half of a graceful shutdown. Returns true
  /// iff the job was live and unstarted (and is now cancelled).
  bool cancel_if_unstarted(JobId id);

  /// Block until job `id` has finalized (returns immediately for ids
  /// already retired or never issued).
  void wait(JobId id);

  /// Block until every job submitted so far has finalized.
  void drain();

  /// drain() with a timeout; true when everything finalized in time.
  bool drain_for(std::chrono::milliseconds timeout);

  /// Explicit teardown: refuse-and-finalize future submits, handle
  /// queued work per `mode`, run every finalizer, join the workers.
  /// Idempotent; the second call (and the destructor afterwards) is a
  /// cheap no-op. kAbort after kDrain cannot un-drain.
  void stop(StopMode mode);

 private:
  /// Why a job stopped claiming items; kFailure wins for the outcome.
  enum class CancelCause : std::uint8_t { kNone, kFailure, kCancel,
                                          kDeadline };

  struct Job {
    JobId id = 0;
    std::size_t total = 0;
    ItemFn item;
    FinalizeFn finalize;
    Priority priority = Priority::kNormal;
    unsigned max_workers = 0;  // 0 = unbudgeted
    std::string client;        // fair-share account (the empty tag is one)
    unsigned weight = 1;       // item cost = kVtimeUnit / weight
    std::shared_ptr<CancelToken> token;  // may be null
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::size_t next = 0;     // next unclaimed index (guarded by mutex_)
    std::size_t done = 0;     // retired items (guarded by mutex_)
    unsigned running = 0;     // items currently on a worker (mutex_)
    bool cancelled = false;   // skip remaining unclaimed items
    CancelCause cause = CancelCause::kNone;
    std::exception_ptr failure;
  };

  void worker_loop();

  /// The best claimable job among queued jobs with an unclaimed item
  /// whose worker budget has a free slot (cancelled jobs bypass the
  /// budget -- their items are skipped, not run): highest priority
  /// class first; within the class, the minimum-vtime client tag (ties
  /// to the lexicographically smaller tag), then the lowest job id --
  /// or plain lowest id when fair_share is off. nullptr when nothing
  /// is claimable.
  [[nodiscard]] std::shared_ptr<Job> claimable_locked();

  /// Per-tag fair-share account. `live` counts queued (not yet
  /// retired) jobs under the tag; the account is erased when it drops
  /// to zero, so a returning tag re-enters at the active baseline (the
  /// aging rule) instead of replaying banked idle time.
  struct ClientShare {
    std::uint64_t vtime = 0;
    std::size_t live = 0;
  };

  /// The account for `tag`, created at the aging baseline
  /// (max of 0 and the minimum vtime among live accounts) if absent.
  /// Caller holds mutex_.
  ClientShare& share_locked(const std::string& tag);

  /// Charge one dispatched item of `job` to its account. Caller holds
  /// mutex_.
  void charge_locked(const Job& job);

  /// Drop one live job from its account when it leaves queue_, erasing
  /// the account at zero so a returning tag re-enters at the aging
  /// baseline. Caller holds mutex_.
  void release_locked(const Job& job);

  /// Mark a job cancelled (first cause wins), request its token, and
  /// wake budget-gated workers to drain the skipped tail. Caller holds
  /// mutex_. No-op on an already-cancelled job.
  void cancel_locked(Job& job, CancelCause cause);

  /// The live job with this id, or nullptr. Caller holds mutex_.
  [[nodiscard]] std::shared_ptr<Job> find_locked(JobId id);

  /// If no item of `job` was ever claimed, finalize and retire it on
  /// the calling thread (briefly dropping `lock` for the finalizer) --
  /// cancelling queued work resolves immediately, without a worker.
  void finalize_unstarted_locked(std::unique_lock<std::mutex>& lock,
                                 const std::shared_ptr<Job>& job);

  /// What finalize should report for a retiring job. Caller holds
  /// mutex_ (reads cause/failure).
  [[nodiscard]] static FinalizeInfo finalize_info(const Job& job);

  /// Record a finalized id (compacting into retired_below_) and wake
  /// waiters. Caller holds mutex_.
  void retire_locked(JobId id);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      // workers: new work or shutdown
  std::condition_variable finished_cv_;  // waiters: some job finalized
  std::deque<std::shared_ptr<Job>> queue_;  // submitted, not yet retired
  const bool fair_share_;
  /// Fair-share accounts of tags with live jobs (guarded by mutex_).
  std::map<std::string, ClientShare> shares_;
  JobId next_id_ = 1;
  JobId retired_below_ = 1;  // every id < this has finalized
  std::vector<JobId> retired_;  // finalized ids >= retired_below_
  bool stopping_ = false;
  bool stopped_ = false;  // workers joined; submit() cancels instantly
  std::vector<std::thread> threads_;
};

namespace detail {

/// Run `fn(i)` for every i in [0, total), sharded across `workers`
/// threads. `workers` must be >= 1; 1 runs every index inline on the
/// calling thread with no pool at all. The first exception thrown by
/// any `fn(i)` is rethrown on the calling thread after the pool drains
/// (remaining indexes are abandoned so the drain is quick). `fn` must
/// be safe to call concurrently from `workers` threads for distinct
/// indexes.
void parallel_for_index(std::size_t total, unsigned workers,
                        const std::function<void(std::size_t)>& fn);

}  // namespace detail

}  // namespace apcc::sweep
