// Shared worker pool for the sweep, campaign, and serving layers.
//
// Every parallel runner in this codebase reduces to the same shape: a
// job of N independent work items identified by a flat index, claimed
// off a shared counter by a fixed set of worker threads. PR 2/3 ran
// that loop per call (parallel_for_index); the serving layer needs it
// *resident* -- one pool owned by a long-lived Service, with several
// jobs (grids, campaigns) in flight at once. Pool is that resident
// generalization:
//
//  * submit() enqueues a job (total item count + per-item callback +
//    finalize callback, plus optional QoS: a priority class and a
//    per-job worker budget) and returns a JobId immediately; work items
//    carry (job, index) so the scheduler can interleave jobs.
//  * Scheduling is by strict priority class (high > normal > batch)
//    with cross-job overflow: workers claim items from the
//    highest-class job that still has unclaimed items, oldest job id
//    first within a class, so job A's long tail overlaps job B's head
//    instead of the pool draining and refilling per job. Priorities are
//    strict -- a ready high-class item always beats a batch item -- and
//    the lowest-id tie-break makes the claim order deterministic.
//    Because every result is keyed by its item index and collected
//    order-independently, scheduling affects only *when* an item runs,
//    never what any job returns.
//  * A job's max_workers budget caps how many pool threads run its
//    items concurrently (0 = no cap). A budget-capped job yields its
//    surplus workers to lower-priority jobs instead of idling them.
//  * The first exception a job's item throws cancels that job's
//    remaining unclaimed (not-yet-started) items -- whatever priority
//    class they were queued under; other jobs are unaffected -- and is
//    handed to the job's finalize callback, which runs exactly once, on
//    a pool thread, after the job's last item retires.
//
// parallel_for_index is kept as the synchronous veneer the one-shot
// runners (run_sweep / run_campaign) use: inline at workers <= 1 (the
// sequential reference order the differential tests compare against),
// a temporary Pool otherwise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace apcc::sweep {

/// Strict scheduling classes for pool jobs. Lower value = more urgent;
/// a claimable item of a higher class always runs before a lower one
/// (no aging), ties broken by lowest job id.
enum class Priority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kBatch = 2,
};

[[nodiscard]] const char* priority_name(Priority p);

/// Per-job QoS knobs for Pool::submit().
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Max pool threads running this job's items concurrently; 0 = no
  /// cap. Affects scheduling only, never outcomes.
  unsigned max_workers = 0;
};

class Pool {
 public:
  using JobId = std::uint64_t;

  /// Item callback: called once per index in [0, total), possibly
  /// concurrently from several pool threads.
  using ItemFn = std::function<void(std::size_t)>;
  /// Finalize callback: called exactly once per job, from a pool
  /// thread, after every item has retired. The argument is the first
  /// exception any item threw, or nullptr on clean completion.
  using FinalizeFn = std::function<void(std::exception_ptr)>;

  /// Spin up `workers` resident threads (clamped to at least 1).
  explicit Pool(unsigned workers);

  /// Drains every submitted job (finalizers included), then joins.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue a job and return its id without running anything on the
  /// calling thread. A job with total == 0 is finalized immediately
  /// (synchronously, with a null failure).
  JobId submit(std::size_t total, ItemFn item, FinalizeFn finalize,
               SubmitOptions options = {});

  /// Block until job `id` has finalized (returns immediately for ids
  /// already retired or never issued).
  void wait(JobId id);

  /// Block until every job submitted so far has finalized.
  void drain();

 private:
  struct Job {
    JobId id = 0;
    std::size_t total = 0;
    ItemFn item;
    FinalizeFn finalize;
    Priority priority = Priority::kNormal;
    unsigned max_workers = 0;  // 0 = unbudgeted
    std::size_t next = 0;     // next unclaimed index (guarded by mutex_)
    std::size_t done = 0;     // retired items (guarded by mutex_)
    unsigned running = 0;     // items currently on a worker (mutex_)
    bool cancelled = false;
    std::exception_ptr failure;
  };

  void worker_loop();

  /// The best claimable job: highest priority class, then lowest id,
  /// among queued jobs with an unclaimed item whose worker budget has a
  /// free slot (cancelled jobs bypass the budget -- their items are
  /// skipped, not run). nullptr when nothing is claimable.
  [[nodiscard]] std::shared_ptr<Job> claimable_locked();

  /// Record a finalized id (compacting into retired_below_) and wake
  /// waiters. Caller holds mutex_.
  void retire_locked(JobId id);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      // workers: new work or shutdown
  std::condition_variable finished_cv_;  // waiters: some job finalized
  std::deque<std::shared_ptr<Job>> queue_;  // submitted, not yet retired
  JobId next_id_ = 1;
  JobId retired_below_ = 1;  // every id < this has finalized
  std::vector<JobId> retired_;  // finalized ids >= retired_below_
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

namespace detail {

/// Run `fn(i)` for every i in [0, total), sharded across `workers`
/// threads. `workers` must be >= 1; 1 runs every index inline on the
/// calling thread with no pool at all. The first exception thrown by
/// any `fn(i)` is rethrown on the calling thread after the pool drains
/// (remaining indexes are abandoned so the drain is quick). `fn` must
/// be safe to call concurrently from `workers` threads for distinct
/// indexes.
void parallel_for_index(std::size_t total, unsigned workers,
                        const std::function<void(std::size_t)>& fn);

}  // namespace detail

}  // namespace apcc::sweep
