// Shared work-stealing index pool for the sweep and campaign runners.
//
// Both run_sweep (one workload x policy grid) and run_campaign
// (workload suite x policy grid) reduce to the same shape: N independent
// tasks identified by a flat index, claimed off an atomic counter by a
// fixed set of worker threads. This header is the one implementation of
// that loop, so the two runners cannot drift in their pool semantics
// (inline execution at one worker, first-failure capture, fast drain on
// error).
#pragma once

#include <cstddef>
#include <functional>

namespace apcc::sweep::detail {

/// Run `fn(i)` for every i in [0, total), sharded across `workers`
/// threads via an atomic work-stealing counter. `workers` must be >= 1;
/// 1 runs every index inline on the calling thread with no pool at all.
/// The first exception thrown by any `fn(i)` is rethrown on the calling
/// thread after the pool drains (remaining indexes are abandoned so the
/// drain is quick). `fn` must be safe to call concurrently from
/// `workers` threads for distinct indexes.
void parallel_for_index(std::size_t total, unsigned workers,
                        const std::function<void(std::size_t)>& fn);

}  // namespace apcc::sweep::detail
