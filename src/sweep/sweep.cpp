#include "sweep/sweep.hpp"

#include <algorithm>
#include <thread>

#include "sim/batch_engine.hpp"
#include "sweep/pool.hpp"

namespace apcc::sweep {

void ResultSink::push(SweepOutcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.push_back(std::move(outcome));
}

std::size_t ResultSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return outcomes_.size();
}

std::vector<SweepOutcome> ResultSink::take_sorted() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SweepOutcome> out = std::move(outcomes_);
  outcomes_.clear();
  std::sort(out.begin(), out.end(),
            [](const SweepOutcome& a, const SweepOutcome& b) {
              return a.index < b.index;
            });
  return out;
}

unsigned resolve_workers(const SweepOptions& options,
                         std::size_t task_count) {
  // hardware_concurrency() is allowed to return 0 ("not computable"), so
  // the 0-means-auto default clamps to at least one worker.
  unsigned workers = options.workers != 0
                         ? options.workers
                         : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (task_count < workers) workers = static_cast<unsigned>(task_count);
  return std::max(1u, workers);
}

std::vector<SweepOutcome> run_sweep(const cfg::Cfg& cfg,
                                    const runtime::BlockImage& image,
                                    const cfg::BlockTrace& trace,
                                    const std::vector<SweepTask>& tasks,
                                    const SweepOptions& options) {
  if (tasks.empty()) return {};
  if (options.batch_cells > 1) {
    const std::size_t batch = options.batch_cells;
    const std::size_t chunks = (tasks.size() + batch - 1) / batch;
    const unsigned workers = resolve_workers(options, chunks);
    ResultSink sink;
    detail::parallel_for_index(chunks, workers, [&](std::size_t chunk) {
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, tasks.size());
      std::vector<sim::EngineConfig> configs;
      configs.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        configs.push_back(tasks[i].config);
      }
      sim::BatchEngine engine(cfg, image, std::move(configs));
      auto outcomes = engine.run(trace);
      // Surviving siblings land in the sink even when a cell threw; the
      // first failure (lowest task index, matching the sequential path's
      // rethrow order at workers == 1) propagates after that.
      std::exception_ptr first_error;
      for (std::size_t i = begin; i < end; ++i) {
        sim::CellOutcome& cell = outcomes[i - begin];
        if (!cell.ok()) {
          if (!first_error) first_error = cell.error;
          continue;
        }
        sink.push(SweepOutcome{i, tasks[i].label, cell.result});
      }
      if (first_error) std::rethrow_exception(first_error);
    });
    return sink.take_sorted();
  }
  const unsigned workers = resolve_workers(options, tasks.size());

  ResultSink sink;
  detail::parallel_for_index(tasks.size(), workers, [&](std::size_t i) {
    sim::Engine engine(cfg, image, tasks[i].config);
    sink.push(SweepOutcome{i, tasks[i].label, engine.run(trace)});
  });
  return sink.take_sorted();
}

}  // namespace apcc::sweep
