#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace apcc::sweep {

void ResultSink::push(SweepOutcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.push_back(std::move(outcome));
}

std::size_t ResultSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return outcomes_.size();
}

std::vector<SweepOutcome> ResultSink::take_sorted() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SweepOutcome> out = std::move(outcomes_);
  outcomes_.clear();
  std::sort(out.begin(), out.end(),
            [](const SweepOutcome& a, const SweepOutcome& b) {
              return a.index < b.index;
            });
  return out;
}

unsigned resolve_workers(const SweepOptions& options,
                         std::size_t task_count) {
  unsigned workers =
      options.workers != 0 ? options.workers
                           : std::max(1u, std::thread::hardware_concurrency());
  if (task_count < workers) workers = static_cast<unsigned>(task_count);
  return std::max(1u, workers);
}

namespace {

SweepOutcome run_one(const cfg::Cfg& cfg, const runtime::BlockImage& image,
                     const cfg::BlockTrace& trace,
                     const std::vector<SweepTask>& tasks, std::size_t i) {
  sim::Engine engine(cfg, image, tasks[i].config);
  return SweepOutcome{i, tasks[i].label, engine.run(trace)};
}

}  // namespace

std::vector<SweepOutcome> run_sweep(const cfg::Cfg& cfg,
                                    const runtime::BlockImage& image,
                                    const cfg::BlockTrace& trace,
                                    const std::vector<SweepTask>& tasks,
                                    const SweepOptions& options) {
  if (tasks.empty()) return {};
  const unsigned workers = resolve_workers(options, tasks.size());

  if (workers == 1) {
    // Inline: no pool, no sink overhead -- this is also the sequential
    // reference the differential test compares the sharded path against.
    std::vector<SweepOutcome> out;
    out.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      out.push_back(run_one(cfg, image, trace, tasks, i));
    }
    return out;
  }

  ResultSink sink;
  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        sink.push(run_one(cfg, image, trace, tasks, i));
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
        // The results are discarded on failure anyway; stop handing out
        // work so the pool drains quickly.
        next.store(tasks.size(), std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (failure) std::rethrow_exception(failure);
  return sink.take_sorted();
}

}  // namespace apcc::sweep
