// Sharded policy-grid sweeps.
//
// The paper's evaluation (and the fig3 / E10 benches) is a grid of
// policy configurations run over the same workload. Each grid point is
// an independent single-shot Engine run, and everything an Engine reads
// -- the Cfg, the BlockImage, the trace -- is immutable after
// construction, so the grid shards across a thread pool with one Engine
// per in-flight task and zero shared mutable state. Results funnel into
// a thread-safe ResultSink and come back in task order, so the parallel
// sweep is byte-identical to running the grid sequentially (the
// differential test in tests/sweep pins that).
//
// The pool loop itself lives in sweep/pool.hpp and is shared with the
// suite-wide campaign runner (sweep/campaign.hpp), which runs one grid
// over many workloads through the same machinery.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "cfg/trace.hpp"
#include "runtime/block_image.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"

namespace apcc::sweep {

/// One grid point: a label for reports plus the full engine knob set.
struct SweepTask {
  std::string label;
  sim::EngineConfig config{};
};

/// One grid point's outcome. `index` is the task's position in the
/// submitted list, so ordered collection is deterministic regardless of
/// which worker ran it.
struct SweepOutcome {
  std::size_t index = 0;
  std::string label;
  sim::RunResult result{};
};

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (and
  /// never more than there are tasks). 1 runs inline on the caller's
  /// thread with no pool at all.
  unsigned workers = 0;
  /// Grid cells stepped per pool work item. 0 and 1 keep the historical
  /// one-Engine-per-task path; N > 1 chunks the task list into
  /// consecutive runs of N cells, each advanced in lockstep by one
  /// sim::BatchEngine (amortized trace decode, block metadata, and
  /// frontier geometry). Batched and per-engine sweeps are byte-identical
  /// (tests/sweep pins it); the knob trades scheduling granularity for
  /// per-cell setup cost.
  std::uint32_t batch_cells = 0;
};

/// Thread-safe collection point for sweep outcomes.
class ResultSink {
 public:
  void push(SweepOutcome outcome);

  [[nodiscard]] std::size_t size() const;

  /// Drain the sink, returning the outcomes sorted by task index.
  [[nodiscard]] std::vector<SweepOutcome> take_sorted();

 private:
  mutable std::mutex mutex_;
  std::vector<SweepOutcome> outcomes_;
};

/// Number of workers a sweep of `task_count` tasks would actually use
/// under `options` (benches report it next to their scaling numbers).
[[nodiscard]] unsigned resolve_workers(const SweepOptions& options,
                                       std::size_t task_count);

/// Run every task against (cfg, image, trace), sharded across a thread
/// pool, and return the outcomes in task order. The image and cfg are
/// shared read-only across workers; each task gets a fresh Engine. A
/// CheckError thrown by any run is rethrown on the calling thread after
/// the pool drains.
[[nodiscard]] std::vector<SweepOutcome> run_sweep(
    const cfg::Cfg& cfg, const runtime::BlockImage& image,
    const cfg::BlockTrace& trace, const std::vector<SweepTask>& tasks,
    const SweepOptions& options = {});

}  // namespace apcc::sweep
