// Figure 5 reproduction: the nine-step memory-image walkthrough.
//
// Replays the access pattern B0, B1, B0, B1, B3 with k = 2 on the exact
// Figure 5 CFG and prints the event sequence annotated with the paper's
// step numbers, plus the decompressed-copy population after each step
// (matching the figure's memory-image snapshots).
#include "bench/bench_common.hpp"
#include "cfg/paper_graphs.hpp"
#include "support/table.hpp"
#include "workloads/synth_bytes.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("Figure 5",
                      "memory image evolution for the access pattern\n"
                      "B0, B1, B0, B1, B3 with the 2-edge algorithm");

  cfg::Cfg graph = cfg::figure5_cfg();
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kOnDemand;
  config.policy.compress_k = 2;
  const auto system = core::CodeCompressionSystem::from_cfg(
      std::move(graph),
      [](const cfg::BasicBlock& b) {
        return workloads::synthesize_block_bytes(b);
      },
      config);

  std::vector<bool> resident(4, false);
  auto population = [&] {
    std::string s;
    for (std::size_t b = 0; b < resident.size(); ++b) {
      if (resident[b]) s += "B" + std::to_string(b) + "' ";
    }
    return s.empty() ? std::string("-") : s;
  };

  TextTable table;
  table.row()
      .cell("t")
      .cell("event")
      .cell("decompressed copies")
      .cell("paper step");
  const auto result = system.run_with_events(
      cfg::figure5_trace(), [&](const sim::Event& e) {
        std::string step;
        switch (e.kind) {
          case sim::EventKind::kException:
            step = e.block == 0 ? "(1)/(5)" : e.block == 1 ? "(3)" : "(8)";
            break;
          case sim::EventKind::kDemandDecompress:
            resident[e.block] = true;
            step = e.block == 0 ? "(2)" : e.block == 1 ? "(4)" : "(9)";
            break;
          case sim::EventKind::kPatch:
            step = e.block == 1 && e.aux == 0   ? "(4)"
                   : e.block == 0 && e.aux == 1 ? "(6)"
                                                : "(9)";
            break;
          case sim::EventKind::kDelete:
            resident[e.block] = false;
            step = "(9)";
            break;
          case sim::EventKind::kBlockEnter:
            step = "";
            break;
          default:
            break;
        }
        table.row()
            .cell(e.time)
            .cell(std::string(sim::event_kind_name(e.kind)) + " B" +
                  std::to_string(e.block))
            .cell(population())
            .cell(step);
      });
  std::cout << table.render() << '\n';
  std::cout << "final: exceptions=" << result.exceptions
            << " (paper: steps 1, 3, 5, 8), decompressions="
            << result.demand_decompressions
            << " (B0, B1, B3), deletions=" << result.deletions
            << " (B0' at step 9), step 7 exception-free: "
            << (result.exceptions == 4 ? "yes" : "NO") << "\n\n";
}

void bm_figure5_run(benchmark::State& state) {
  cfg::Cfg graph = cfg::figure5_cfg();
  core::SystemConfig config;
  config.policy.compress_k = 2;
  const auto system = core::CodeCompressionSystem::from_cfg(
      std::move(graph),
      [](const cfg::BasicBlock& b) {
        return workloads::synthesize_block_bytes(b);
      },
      config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run(cfg::figure5_trace()));
  }
}
BENCHMARK(bm_figure5_run);

}  // namespace

APCC_BENCH_MAIN(print_tables)
