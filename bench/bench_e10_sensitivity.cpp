// E10 (extension): cost-model sensitivity.
//
// Absolute slowdowns in every experiment scale with two platform
// parameters the paper never fixes: the memory-protection exception cost
// and the decoder speed. This bench sweeps both so readers can map the
// reproduction's numbers onto their own platform (e.g. a bare-metal MMU
// fault handler at ~50 cycles vs a full OS path at ~1000).
#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E10 (extension)",
                      "sensitivity of slowdown to exception cost and\n"
                      "decoder speed (gsm-like, on-demand, k_c = 16)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);

  TextTable table;
  table.row()
      .cell("codec")
      .cell("exception=50")
      .cell("exception=250")
      .cell("exception=1000")
      .cell("exceptions/1k entries");
  for (const auto codec :
       {compress::CodecKind::kSharedHuffman, compress::CodecKind::kLzss,
        compress::CodecKind::kCodePack, compress::CodecKind::kFpc,
        compress::CodecKind::kBdi, compress::CodecKind::kAdaptive}) {
    auto& row = table.row().cell(compress::codec_kind_name(codec));
    sim::RunResult last;
    for (const std::uint64_t fault_cost : {50u, 250u, 1000u}) {
      core::SystemConfig config;
      config.codec = codec;
      config.policy.compress_k = 16;
      config.costs.exception_cycles = fault_cost;
      last = bench::run_config(workload, config);
      row.cell(last.slowdown(), 3);
    }
    row.cell(1000.0 * static_cast<double>(last.exceptions) /
                 static_cast<double>(last.block_entries),
             1);
  }
  std::cout << table.render() << '\n';

  std::cout << "CPI sensitivity (codepack, exception=250):\n";
  TextTable cpi_table;
  cpi_table.row().cell("cycles/instr").cell("slowdown").cell("note");
  for (const double cpi : {1.0, 2.0, 4.0}) {
    core::SystemConfig config;
    config.codec = compress::CodecKind::kCodePack;
    config.policy.compress_k = 16;
    config.costs.cycles_per_instruction = cpi;
    const auto r = bench::run_config(workload, config);
    cpi_table.row()
        .cell(cpi, 1)
        .cell(r.slowdown(), 3)
        .cell(cpi > 1.0 ? "slower core hides overheads" : "");
  }
  std::cout << cpi_table.render() << '\n';
  std::cout << "Shape check: relative overhead shrinks as the fault cost\n"
               "drops or the core slows -- the paper's viability window.\n\n";
}

void bm_sensitivity(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);
  core::SystemConfig config;
  config.policy.compress_k = 16;
  config.costs.exception_cycles =
      static_cast<std::uint64_t>(state.range(0));
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_sensitivity)->Arg(50)->Arg(1000);

}  // namespace

APCC_BENCH_MAIN(print_tables)
