// E4: codec comparison on real instruction bytes.
//
// The paper is codec-agnostic; this experiment grounds the choice: for
// each codec, the whole-suite compression ratio, the modelled per-byte
// decompression cost, and -- via google-benchmark -- the *actual* host
// throughput of compress/decompress on basic-block-sized inputs.
#include <string>

#include "bench/bench_common.hpp"
#include "compress/adaptive.hpp"
#include "compress/huffman.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

const std::vector<compress::Bytes>& all_suite_blocks() {
  static const std::vector<compress::Bytes> blocks = [] {
    std::vector<compress::Bytes> out;
    for (const auto kind : workloads::all_workload_kinds()) {
      const auto& w = bench::cached_workload(kind);
      out.insert(out.end(), w.block_bytes.begin(), w.block_bytes.end());
    }
    return out;
  }();
  return blocks;
}

constexpr compress::CodecKind kAllCodecs[] = {
    compress::CodecKind::kNull,         compress::CodecKind::kMtfRle,
    compress::CodecKind::kHuffman,      compress::CodecKind::kSharedHuffman,
    compress::CodecKind::kLzss,         compress::CodecKind::kCodePack,
    compress::CodecKind::kFieldSplit,   compress::CodecKind::kFpc,
    compress::CodecKind::kBdi,          compress::CodecKind::kAdaptive};

void print_tables() {
  bench::print_header("E4",
                      "codec comparison over all suite basic blocks\n"
                      "(ratio = compressed/original; cost model feeds the\n"
                      "simulator; end-to-end column = gsm-like avg saving)");
  const auto& blocks = all_suite_blocks();
  TextTable table;
  table.row()
      .cell("codec")
      .cell("ratio")
      .cell("decomp cyc/B")
      .cell("comp cyc/B")
      .cell("gsm avg-saving")
      .cell("gsm slowdown");
  std::string usage;
  for (const auto kind : kAllCodecs) {
    const auto codec = compress::make_codec(kind, blocks);
    const double ratio = compress::compression_ratio(*codec, blocks);
    usage += compress::usage_summary(*codec);

    core::SystemConfig config;
    config.codec = kind;
    config.policy.compress_k = 2;
    const auto result = bench::run_config(
        bench::cached_workload(workloads::WorkloadKind::kGsmLike), config);

    table.row()
        .cell(codec->name().data())
        .cell(ratio, 3)
        .cell(codec->costs().decompress_cycles_per_byte, 1)
        .cell(codec->costs().compress_cycles_per_byte, 1)
        .cell(percent(result.avg_saving()))
        .cell(result.slowdown(), 3);
  }
  std::cout << table.render() << '\n';
  if (!usage.empty()) std::cout << usage << '\n';
  std::cout << "Shape checks: per-stream huffman loses to the shared model\n"
               "on basic blocks (header cost); the pattern codecs (fpc, bdi)\n"
               "decode cheapest; adaptive matches the best per-block ratio\n"
               "for one header byte; better ratio -> more memory saving at\n"
               "similar k.\n\n";
}

void bm_compress(benchmark::State& state) {
  const auto kind = static_cast<compress::CodecKind>(state.range(0));
  const auto& blocks = all_suite_blocks();
  const auto codec = compress::make_codec(kind, blocks);
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto& block = blocks[i++ % blocks.size()];
    benchmark::DoNotOptimize(codec->compress(block));
    bytes += block.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(codec->name().data());
}

void bm_decompress(benchmark::State& state) {
  const auto kind = static_cast<compress::CodecKind>(state.range(0));
  const auto& blocks = all_suite_blocks();
  const auto codec = compress::make_codec(kind, blocks);
  std::vector<compress::Bytes> compressed;
  compressed.reserve(blocks.size());
  for (const auto& b : blocks) compressed.push_back(codec->compress(b));
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const std::size_t j = i++ % blocks.size();
    benchmark::DoNotOptimize(
        codec->decompress(compressed[j], blocks[j].size()));
    bytes += blocks[j].size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(codec->name().data());
}

BENCHMARK(bm_compress)->DenseRange(0, 9);
BENCHMARK(bm_decompress)->DenseRange(0, 9);

// Adaptive selection over the whole suite: one iteration = one
// best-of pass across every block. The per-candidate win counts land
// in the JSON as sel_<codec> counters (run_benches.sh asserts they
// are present and that every block was claimed by some candidate).
void bm_adaptive_selection(benchmark::State& state) {
  const auto& blocks = all_suite_blocks();
  const compress::AdaptiveCodec codec(blocks);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& block : blocks) {
      benchmark::DoNotOptimize(codec.compress(block));
      bytes += block.size();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  const auto stats = codec.selection_stats();
  std::uint64_t wins = 0;
  for (const auto& s : stats) {
    std::string name = "sel_";
    name += compress::codec_kind_name(s.kind);
    for (auto& ch : name) {
      if (ch == '-') ch = '_';
    }
    state.counters[name] = benchmark::Counter(
        static_cast<double>(s.wins), benchmark::Counter::kAvgIterations);
    wins += s.wins;
  }
  state.counters["sel_total"] = benchmark::Counter(
      static_cast<double>(wins), benchmark::Counter::kAvgIterations);
}
BENCHMARK(bm_adaptive_selection);

// Decoder-level A/B on identical bitstreams: the two-level lookup table
// against the bit-at-a-time first-code/offset reference decoder. This
// isolates the symbol-decode loop from header parsing and allocation.
void bm_huffman_decode(benchmark::State& state) {
  const bool use_table = state.range(0) != 0;
  const auto& blocks = all_suite_blocks();
  const compress::SharedHuffmanCodec codec(blocks);
  std::vector<compress::Bytes> compressed;
  compressed.reserve(blocks.size());
  for (const auto& b : blocks) compressed.push_back(codec.compress(b));
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  compress::Bytes out;
  for (auto _ : state) {
    const std::size_t j = i++ % blocks.size();
    out.clear();
    apcc::BitReader reader(compressed[j]);
    for (std::size_t n = 0; n < blocks[j].size(); ++n) {
      out.push_back(use_table ? codec.code().decode(reader)
                              : codec.code().decode_reference(reader));
    }
    benchmark::DoNotOptimize(out.data());
    bytes += blocks[j].size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(use_table ? "table" : "reference");
}
BENCHMARK(bm_huffman_decode)->Arg(0)->Arg(1);

// Encoder-level A/B on identical inputs: batched (code,len)-pair
// concatenation through the 64-bit accumulator (encode_all, what
// compress() ships) against the per-symbol write_bits reference. Both
// emit bit-identical streams (tests/compress/huffman_test.cpp pins
// that); this isolates the symbol-encode loop from training and
// allocation, the compress cost a warm Service artifact cache pays
// exactly once per (workload, codec).
void bm_huffman_encode(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto& blocks = all_suite_blocks();
  const compress::SharedHuffmanCodec codec(blocks);
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto& block = blocks[i++ % blocks.size()];
    apcc::BitWriter writer;
    if (batched) {
      codec.code().encode_all(writer, block);
    } else {
      for (const std::uint8_t b : block) codec.code().encode(writer, b);
    }
    benchmark::DoNotOptimize(writer.take());
    bytes += block.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(batched ? "batched" : "per-symbol");
}
BENCHMARK(bm_huffman_encode)->Arg(0)->Arg(1);

}  // namespace

APCC_BENCH_MAIN(print_tables)
