// E3: the main results table -- every workload x every scheme.
//
// Rows: the two whole-image baselines, the two function-granularity
// baselines from the paper's related work (Debray-Evans cold code,
// Kirovski procedure cache), and APCC under its three decompression
// strategies. This is the table a DATE'05 evaluation section would
// print; the shapes to check are listed below it.
#include "bench/bench_common.hpp"
#include "baselines/baselines.hpp"
#include "baselines/function_compression.hpp"

namespace {

using namespace apcc;

void print_workload_table(const workloads::Workload& workload) {
  std::cout << "--- " << workload.name << " ("
            << human_bytes(workload.image_bytes()) << ", "
            << workload.trace.size() << " entries) ---\n";
  std::vector<core::ReportRow> rows;

  rows.push_back({"no-compression",
                  baselines::run_no_compression(workload.cfg, workload.trace,
                                                runtime::CostModel{})});
  {
    core::SystemConfig config;
    const auto system =
        core::CodeCompressionSystem::from_workload(workload, config);
    rows.push_back({"load-time-decomp",
                    baselines::run_load_time_decompression(
                        workload.cfg, system.image(), workload.trace,
                        runtime::CostModel{})});
  }
  {
    baselines::FunctionCompressionConfig config;
    config.mode = baselines::FunctionCompressionConfig::Mode::kColdOnly;
    rows.push_back({"cold-functions (DE)",
                    baselines::run_function_compression(workload, config)});
  }
  {
    baselines::FunctionCompressionConfig config;
    config.mode =
        baselines::FunctionCompressionConfig::Mode::kProcedureCache;
    config.cache_bytes = 8 * 1024;
    rows.push_back({"proc-cache (K)",
                    baselines::run_function_compression(workload, config)});
  }
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    core::SystemConfig config;
    // CodePack-style hardware-assisted decoding: the configuration the
    // pre-decompression thread model presumes. k_c must cover the hot
    // loops' circumference or every iteration re-decompresses its body;
    // E1/E2 sweep k itself.
    config.codec = compress::CodecKind::kCodePack;
    config.policy.strategy = strategy;
    config.policy.compress_k = 16;
    config.policy.predecompress_k = 4;
    rows.push_back({std::string("apcc/") + runtime::strategy_name(strategy),
                    bench::run_config(workload, config)});
  }
  std::cout << core::render_comparison(rows) << '\n';
}

void print_tables() {
  bench::print_header("E3",
                      "per-benchmark comparison: baselines vs APCC\n"
                      "(k_c = 16, k_d = 4, codepack codec)");
  for (const auto kind : workloads::all_workload_kinds()) {
    print_workload_table(bench::cached_workload(kind));
  }
  std::cout
      << "Shape checks:\n"
         "  * apcc peak/avg memory < no-compression and < load-time\n"
         "    (those two hold the full uncompressed image);\n"
         "  * where cold code concentrates inside hot functions (adpcm,\n"
         "    mpeg2, g721), apcc's avg memory beats the cold-functions\n"
         "    baseline -- the paper's granularity argument (S6); where\n"
         "    whole cold *functions* dominate (gsm, jpeg), both schemes\n"
         "    compress the same bytes and land close;\n"
         "  * apcc pre-all/pre-single cycles < apcc on-demand cycles:\n"
         "    the decompression thread hides latency (paper S4).\n\n";
}

void bm_full_table_row(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kPegwitLike);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_full_table_row);

}  // namespace

APCC_BENCH_MAIN(print_tables)
