// Shared plumbing for the APCC benchmark binaries.
//
// Every binary reproduces one paper artifact (figure or implied
// experiment): it prints the regenerated table/series to stdout, then
// runs its google-benchmark timing registrations. Tables use the same
// renderer as the library reports so EXPERIMENTS.md can quote them
// verbatim.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <string>

#include "core/report.hpp"
#include "core/system.hpp"
#include "support/strings.hpp"
#include "workloads/suite.hpp"

namespace apcc::bench {

/// CI smoke mode: when APCC_BENCH_QUICK is set (tools/run_benches.sh
/// --quick), benches shrink their scales -- fewer workloads, smaller
/// grids -- so the per-PR artifact job finishes in seconds. The JSON
/// series keep the same benchmark names; only ranges/table sizes shrink.
inline bool quick_mode() {
  const char* env = std::getenv("APCC_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Build-once cache of the six suite workloads (interpreter runs are the
/// expensive part; the benches reuse them across tables and timings).
/// Mutex-guarded: sweep benches call this from pool workers, and an
/// unguarded std::map insert is a data race. Map nodes are stable, so a
/// returned reference stays valid while other threads insert.
inline const workloads::Workload& cached_workload(workloads::WorkloadKind kind) {
  static auto* mutex = new std::mutex();
  static auto* cache = new std::map<workloads::WorkloadKind,
                                    workloads::Workload>();
  const std::lock_guard<std::mutex> lock(*mutex);
  auto it = cache->find(kind);
  if (it == cache->end()) {
    it = cache->emplace(kind, workloads::make_workload(kind)).first;
  }
  return it->second;
}

/// Run one policy configuration on a workload.
inline sim::RunResult run_config(const workloads::Workload& workload,
                                 const core::SystemConfig& config) {
  return core::CodeCompressionSystem::from_workload(workload, config).run();
}

/// Banner separating the reproduced artifact from benchmark timing noise.
inline void print_header(const std::string& artifact,
                         const std::string& what) {
  std::cout << "==================================================\n"
            << "APCC reproduction -- " << artifact << '\n'
            << what << '\n'
            << "==================================================\n\n";
}

/// Standard main body: print tables, then run timings.
#define APCC_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                            \
    print_tables_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                      \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {\
      return 1;                                                \
    }                                                          \
    ::benchmark::RunSpecifiedBenchmarks();                     \
    return 0;                                                  \
  }

}  // namespace apcc::bench
