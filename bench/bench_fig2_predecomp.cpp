// Figure 2 reproduction: k-edge pre-decompression trigger points.
//
// Paper: "Assuming k=3, basic block B7 is decompressed at the end of
// basic block B1 ... from the end of B1 to the beginning of B7, there
// are at most 3 edges that need to be traversed."  And the §4 example:
// with k=2 and B4/B5/B8/B9 compressed, pre-decompress-all fetches exactly
// those four at the exit of B0, while pre-decompress-single picks one.
#include "bench/bench_common.hpp"
#include "cfg/analysis.hpp"
#include "cfg/paper_graphs.hpp"
#include "runtime/planner.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_trigger_table() {
  const cfg::Cfg graph = cfg::figure2_cfg();
  std::cout << "Pre-decompression of B7: earliest block exit that triggers "
               "it, by k\n";
  TextTable table;
  table.row().cell("k").cell("trigger block").cell("comment");
  // Walk the paper's illustrative path backwards from B7.
  const cfg::BlockTrace path = {0, 1, 3, 6, 7};
  for (const unsigned k : {1u, 2u, 3u, 4u}) {
    std::string trigger = "-";
    for (const auto from : path) {
      if (from == 7) break;
      const auto frontier = cfg::frontier_within(graph, from, k);
      if (std::binary_search(frontier.begin(), frontier.end(),
                             cfg::BlockId{7})) {
        trigger = graph.block(from).note;
        break;
      }
    }
    table.row()
        .cell(std::uint64_t{k})
        .cell(trigger)
        .cell(k == 3 ? "<- paper: end of B1" : "");
  }
  std::cout << table.render() << '\n';
}

void print_strategy_example() {
  const cfg::Cfg graph = cfg::figure2_cfg();
  runtime::StateTable states(graph.block_count());
  for (const cfg::BlockId b : {0u, 1u, 2u, 3u, 6u, 7u}) {
    states.set_form(b, runtime::BlockForm::kDecompressed);
  }
  std::cout << "S4 example: B4,B5,B8,B9 compressed; execution leaves B0; "
               "k=2\n";
  TextTable table;
  table.row().cell("strategy").cell("requests");
  {
    runtime::Policy policy;
    policy.strategy = runtime::DecompressionStrategy::kPreAll;
    policy.predecompress_k = 2;
    const runtime::DecompressionPlanner planner(graph, states, policy,
                                                nullptr);
    std::string requests;
    for (const auto b : planner.plan_on_exit(0, 0)) {
      requests += graph.block(b).note + " ";
    }
    table.row().cell("pre-decompress-all").cell(requests);
  }
  {
    runtime::Policy policy;
    policy.strategy = runtime::DecompressionStrategy::kPreSingle;
    policy.predecompress_k = 2;
    const runtime::ProfilePredictor predictor(graph, 2);
    const runtime::DecompressionPlanner planner(graph, states, policy,
                                                &predictor);
    std::string requests;
    for (const auto b : planner.plan_on_exit(0, 0)) {
      requests += graph.block(b).note + " ";
    }
    table.row().cell("pre-decompress-single").cell(requests);
  }
  std::cout << table.render() << '\n';
}

void print_tables() {
  bench::print_header("Figure 2 / S4 examples",
                      "k-edge pre-decompression trigger points and the\n"
                      "pre-all vs pre-single request sets");
  print_trigger_table();
  print_strategy_example();
}

void bm_frontier_within(benchmark::State& state) {
  const cfg::Cfg graph = cfg::figure2_cfg();
  const auto k = static_cast<unsigned>(state.range(0));
  cfg::BlockId from = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::frontier_within(graph, from, k));
    from = (from + 1) % graph.block_count();
  }
}
BENCHMARK(bm_frontier_within)->Arg(2)->Arg(3)->Arg(5);

void bm_reach_scores(benchmark::State& state) {
  const cfg::Cfg graph = cfg::figure2_cfg();
  const auto k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::reach_scores(graph, 0, k));
  }
}
BENCHMARK(bm_reach_scores)->Arg(2)->Arg(4);

}  // namespace

APCC_BENCH_MAIN(print_tables)
