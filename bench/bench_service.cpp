// Service throughput: cold vs warm artifact cache on the persistent
// job-submission API.
//
// The PR 0-3 entry points rebuild the compressed BlockImage (codec
// training + per-block compression) and frontier geometry on every
// call. serving::Service builds them once per (workload, codec) /
// (workload, k) key on its pool and serves every later job from the
// cache, so the steady-state cost of a submit is just the engine run.
// This bench measures exactly that delta: the direct one-shot path,
// a cold Service submit (first touch, artifacts built), and a warm
// Service submit (every artifact borrowed) -- the google-benchmark
// registrations emit the stable series for BENCH_service.json.
//
// Caveat (docs/PERFORMANCE.md): 1-vCPU CI box -- the pool cannot show
// parallel speedup; the cold/warm delta (cached codec training +
// compression + geometry) is visible even single-threaded, and the
// differential tests pin warm == cold == direct byte-identically.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "serving/service.hpp"
#include "serving/wire.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

constexpr auto kKind = workloads::WorkloadKind::kGsmLike;

/// ServiceOptions pinned to one resident worker (this box's vCPU).
serving::ServiceOptions one_worker() {
  serving::ServiceOptions options;
  options.workers = 1;
  return options;
}

/// FNV digest over the counters every mode must agree on.
std::uint64_t result_checksum(const sim::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(r.total_cycles);
  mix(r.exceptions);
  mix(r.predecompressions);
  mix(r.evictions);
  mix(r.peak_occupancy_bytes);
  return h;
}

void print_tables() {
  bench::print_header(
      "Service submit latency",
      "persistent Service vs one-shot CodeCompressionSystem;\n"
      "cold submit builds artifacts, warm submit borrows them");
  const auto& workload = bench::cached_workload(kKind);
  const int reps = bench::quick_mode() ? 5 : 20;

  TextTable table;
  table.row()
      .cell("mode")
      .cell("requests")
      .cell("total ms")
      .cell("ms/request")
      .cell("checksum");
  auto add_row = [&](const char* mode, int requests, double ms,
                     std::uint64_t checksum) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(checksum));
    table.row()
        .cell(mode)
        .cell(std::uint64_t{static_cast<std::uint64_t>(requests)})
        .cell(ms, 2)
        .cell(ms / requests, 3)
        .cell(digest);
  };

  {
    // The PR 0-3 shape: every request rebuilds image + geometry.
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t checksum = 0;
    for (int i = 0; i < reps; ++i) {
      const auto system =
          core::CodeCompressionSystem::from_workload(workload, {});
      checksum = result_checksum(system.run());
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    add_row("direct one-shot", reps, elapsed.count(), checksum);
  }
  {
    // Cold: a fresh Service per request -- registration plus the first
    // submit, which builds image and geometry on the pool.
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t checksum = 0;
    for (int i = 0; i < reps; ++i) {
      serving::Service service(one_worker());
      const auto id = service.register_workload(workload);
      checksum = result_checksum(
          service.submit(serving::RunJob{id}).wait());
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    add_row("service cold", reps, elapsed.count(), checksum);
  }
  {
    // Warm: one persistent Service, every request borrows the cache.
    serving::Service service(one_worker());
    const auto id = service.register_workload(workload);
    (void)service.submit(serving::RunJob{id}).wait();  // prime
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t checksum = 0;
    for (int i = 0; i < reps; ++i) {
      checksum = result_checksum(
          service.submit(serving::RunJob{id}).wait());
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    add_row("service warm", reps, elapsed.count(), checksum);
    const auto stats = service.cache_stats();
    std::cout << table.render() << '\n';
    std::cout << serving::format_cache_stats(stats)
              << "(resident entries x bytes is the working set the\n"
                 "cache-budget eviction policy acts on -- see\n"
                 "bm_service_thrash for throughput under budget pressure)\n"
              << "Shape check: one checksum everywhere (cached artifacts\n"
                 "change nothing), and the warm cache serves every repeat\n"
                 "request from 1 image + 1 frontier build. On this box the\n"
                 "per-request wall numbers are scheduling-noise-grade (a\n"
                 "submit pays two context switches on one vCPU); the\n"
                 "steady-state bm_service_* series below is the signal.\n\n";
  }
}

void bm_direct_run(benchmark::State& state) {
  const auto& workload = bench::cached_workload(kKind);
  for (auto _ : state) {
    const auto system =
        core::CodeCompressionSystem::from_workload(workload, {});
    benchmark::DoNotOptimize(system.run());
  }
  state.SetLabel("one-shot from_workload + run");
}
BENCHMARK(bm_direct_run)->Unit(benchmark::kMillisecond);

void bm_service_cold_run(benchmark::State& state) {
  const auto& workload = bench::cached_workload(kKind);
  for (auto _ : state) {
    serving::Service service(one_worker());
    const auto id = service.register_workload(workload);
    benchmark::DoNotOptimize(service.submit(serving::RunJob{id}).wait());
  }
  state.SetLabel("fresh Service per submit");
}
BENCHMARK(bm_service_cold_run)->Unit(benchmark::kMillisecond);

void bm_service_warm_run(benchmark::State& state) {
  const auto& workload = bench::cached_workload(kKind);
  serving::Service service(one_worker());
  const auto id = service.register_workload(workload);
  (void)service.submit(serving::RunJob{id}).wait();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit(serving::RunJob{id}).wait());
  }
  state.SetLabel("persistent Service, cached artifacts");
}
BENCHMARK(bm_service_warm_run)->Unit(benchmark::kMillisecond);

/// The 6-task strategy x k{1,4} grid the warm-path benches submit: two
/// frontier keys per job, so the resident working set is 1 image + 2
/// geometries.
std::vector<sweep::SweepTask> six_task_grid() {
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 4u}) {
      sweep::SweepTask task;
      task.label = std::to_string(k);
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

void bm_service_warm_sweep(benchmark::State& state) {
  // A 6-task grid per submit: the per-job scheduling + sink overhead on
  // top of the cached-artifact engine runs.
  const auto& workload = bench::cached_workload(kKind);
  serving::Service service(one_worker());
  const auto id = service.register_workload(workload);
  std::vector<sweep::SweepTask> tasks = six_task_grid();
  // range(0) is the lockstep batch width (0 = historical per-engine
  // scheduling), so BENCH_service.json records which batch mode each
  // series ran under -- the label spells it out for consumers.
  serving::SweepJob job{id, {}, tasks, true,
                        static_cast<std::uint32_t>(state.range(0))};
  (void)service.submit(job).wait();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    cells += service.submit(job).wait().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetLabel(std::string("6-task grid, cached artifacts, ") +
                 (state.range(0) == 0
                      ? "per-engine"
                      : "batch-" + std::to_string(state.range(0))));
}
BENCHMARK(bm_service_warm_sweep)
    ->Arg(0)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

/// The unbounded resident footprint (images + geometry) after one warm
/// 6-task grid job -- the 100% mark the thrash series scales against.
/// Computed once; google-benchmark re-enters each bench body many
/// times.
std::uint64_t warm_working_set_bytes() {
  static const std::uint64_t bytes = [] {
    serving::Service service(one_worker());
    const auto id =
        service.register_workload(bench::cached_workload(kKind));
    (void)service.submit(serving::SweepJob{id, {}, six_task_grid()}).wait();
    const auto stats = service.cache_stats();
    return stats.images.bytes + stats.frontiers.bytes;
  }();
  return bytes;
}

void bm_service_thrash(benchmark::State& state) {
  // Warm-sweep throughput under cache-budget pressure: the same 6-task
  // grid, with the artifact cache capped at range(0) percent of the
  // unbounded working set (0 = unbounded baseline). Outcomes are
  // byte-identical at any budget (tests/serving/eviction_test.cpp pins
  // it); what a tight budget costs is rebuild work, and this series
  // prices it. The eviction counters land in BENCH_service.json so CI
  // can assert the budget machinery actually ran.
  const auto& workload = bench::cached_workload(kKind);
  const std::int64_t pct = state.range(0);
  serving::ServiceOptions options = one_worker();
  options.cache_budget.total_bytes =
      pct == 0 ? 0 : warm_working_set_bytes() * static_cast<std::uint64_t>(pct) / 100;
  serving::Service service(options);
  const auto id = service.register_workload(workload);
  serving::SweepJob job{id, {}, six_task_grid()};
  (void)service.submit(job).wait();  // prime
  std::uint64_t cells = 0;
  for (auto _ : state) {
    cells += service.submit(job).wait().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  const auto stats = service.cache_stats();
  state.counters["evictions"] = static_cast<double>(
      stats.images.evictions + stats.frontiers.evictions);
  state.counters["evicted_bytes"] = static_cast<double>(
      stats.images.evicted_bytes + stats.frontiers.evicted_bytes);
  state.SetLabel(pct == 0
                     ? "6-task grid, unbounded cache (baseline)"
                     : "6-task grid, budget " + std::to_string(pct) +
                           "% of warm working set");
}
BENCHMARK(bm_service_thrash)
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void bm_wire_roundtrip_sweep_result(benchmark::State& state) {
  // The serve front door's steady-state codec cost: one 12-outcome
  // sweep result record through serialize -> parse -> serialize.
  const auto& workload = bench::cached_workload(kKind);
  serving::Service service(one_worker());
  const auto id = service.register_workload(workload);
  serving::JobSpec spec;
  spec.kind = serving::JobKind::kSweep;
  spec.workloads = {"@" + std::to_string(id)};
  spec.tasks = serving::strategy_k_grid(core::engine_config({}));
  serving::wire::ResultRecord record;
  record.job = 1;
  record.client = "bench";
  record.result = service.submit(std::move(spec)).wait();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = serving::wire::serialize_result(record);
    const auto reparsed = serving::wire::parse_result(text);
    benchmark::DoNotOptimize(serving::wire::serialize_result(reparsed));
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel("12-outcome sweep result record");
}
BENCHMARK(bm_wire_roundtrip_sweep_result)->Unit(benchmark::kMicrosecond);

}  // namespace

APCC_BENCH_MAIN(print_tables)
