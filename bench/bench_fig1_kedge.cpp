// Figure 1 reproduction: the 2-edge algorithm on the paper's example CFG.
//
// Paper caption: "Assuming that the execution takes the left branch
// following B0, the 2-edge algorithm starts compressing B1 just before
// the execution enters basic block B4."
//
// The table prints, for each traversed edge, the k-edge counters and the
// deletions triggered -- the compress-B1-before-B4 event must appear on
// the edge into B4. A k sweep shows how the trigger point moves.
#include "bench/bench_common.hpp"
#include "cfg/paper_graphs.hpp"
#include "runtime/kedge.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void trace_kedge(std::uint32_t k) {
  const cfg::Cfg graph = cfg::figure1_cfg();
  runtime::StateTable states(graph.block_count());
  // B1 was visited and is resident in decompressed form.
  states.set_form(1, runtime::BlockForm::kDecompressed);
  runtime::KEdgeCompressionManager kedge(states, k);
  kedge.on_block_executed(1);

  TextTable table;
  table.row().cell("event").cell("B1 counter").cell("deleted");
  const struct {
    const char* name;
    cfg::BlockId target;
  } edges[] = {{"edge a: B1 -> B3", 3}, {"edge b: B3 -> B4", 4},
               {"B4 -> B3 (loop)", 3}};
  for (const auto& step : edges) {
    const auto deleted = kedge.on_edge_traversed(step.target);
    std::string deleted_str = "-";
    for (const auto b : deleted) {
      deleted_str = "B" + std::to_string(b) + " (compress!)";
    }
    table.row()
        .cell(step.name)
        .cell(std::uint64_t{states[1].kedge_counter})
        .cell(deleted_str);
    if (!deleted.empty()) break;  // copy gone; counters stop mattering
  }
  std::cout << "k = " << k << ":\n" << table.render() << '\n';
}

void print_tables() {
  bench::print_header(
      "Figure 1",
      "2-edge compression triggers for B1 on the example CFG\n"
      "(expected: with k=2, B1 is compressed just before entering B4)");
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    trace_kedge(k);
  }
}

void bm_kedge_edge_traversal(benchmark::State& state) {
  const cfg::Cfg graph = cfg::figure1_cfg();
  runtime::StateTable states(graph.block_count());
  for (cfg::BlockId b = 0; b < graph.block_count(); ++b) {
    states.set_form(b, runtime::BlockForm::kDecompressed);
  }
  runtime::KEdgeCompressionManager kedge(
      states, static_cast<std::uint32_t>(state.range(0)));
  cfg::BlockId target = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kedge.on_edge_traversed(target));
    target = (target + 1) % graph.block_count();
    kedge.on_block_executed(target);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_kedge_edge_traversal)->Arg(2)->Arg(8);

}  // namespace

APCC_BENCH_MAIN(print_tables)
