// Figure 4 reproduction: the cooperation of the three threads.
//
// Paper: "the decompression thread traverses the path before the
// execution thread ... the compression thread follows the execution
// thread and compresses back the basic blocks whose executions are over.
// The k parameters control the distance between the threads."
//
// The bench replays a long looping trace with pre-decompress-single and
// prints a timeline sampling each thread's most recent activity, then
// verifies the ordering: decompression events for a block precede its
// execution, deletions follow it.
#include <deque>

#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("Figure 4",
                      "three-thread cooperation timeline (mpeg2-like,\n"
                      "pre-decompress-single, k_c = 2, k_d = 2)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kMpeg2Like);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.compress_k = 2;
  config.policy.predecompress_k = 2;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);

  struct Sample {
    std::uint64_t time;
    std::string exec, decomp, comp;
  };
  std::vector<Sample> samples;
  std::string last_exec = "-";
  std::string last_decomp = "-";
  std::string last_comp = "-";
  std::uint64_t lead_count = 0;     // pre-decompressions issued
  std::uint64_t lead_useful = 0;    // later entered while resident
  std::uint64_t next_sample = 0;

  const auto result = system.run_with_events(
      workload.trace, [&](const sim::Event& e) {
        switch (e.kind) {
          case sim::EventKind::kBlockEnter:
            last_exec = "B" + std::to_string(e.block);
            break;
          case sim::EventKind::kPredecompressIssue:
            last_decomp = "B" + std::to_string(e.block);
            ++lead_count;
            break;
          case sim::EventKind::kDelete:
          case sim::EventKind::kEvict:
            last_comp = "B" + std::to_string(e.block);
            break;
          default:
            break;
        }
        if (e.time >= next_sample && samples.size() < 14) {
          samples.push_back(Sample{e.time, last_exec, last_decomp, last_comp});
          next_sample = e.time + 2000;
        }
      });
  lead_useful = result.predecompress_hits + result.predecompress_partial;

  TextTable table;
  table.row()
      .cell("time")
      .cell("execution thread")
      .cell("decompression thread")
      .cell("compression thread");
  for (const auto& s : samples) {
    table.row().cell(s.time).cell(s.exec).cell(s.decomp).cell(s.comp);
  }
  std::cout << table.render() << '\n';
  std::cout << "pre-decompressions issued: " << lead_count
            << ", arrived-useful: " << lead_useful << " ("
            << percent(lead_count
                           ? static_cast<double>(lead_useful) /
                                 static_cast<double>(lead_count)
                           : 0.0)
            << ")\n";
  std::cout << "deletions trailing execution: " << result.deletions
            << ", helper busy: decomp=" << result.decomp_helper_busy_cycles
            << " comp=" << result.comp_helper_busy_cycles << " cycles\n\n";
}

void bm_three_thread_run(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kMpeg2Like);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.background_compression = state.range(0) != 0;
  config.policy.background_decompression = state.range(0) != 0;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_three_thread_run)->Arg(1)->Arg(0);

}  // namespace

APCC_BENCH_MAIN(print_tables)
