// Sweep scaling: sharded policy-grid throughput across worker counts.
//
// The fig3 / E10 grids are embarrassingly parallel -- every grid point
// is an independent Engine run over the same immutable BlockImage -- and
// sweep::run_sweep shards them across a thread pool. This bench builds a
// fig3-style grid (strategy x k x budget x fit, 72 points) on the
// gsm-like workload and reports wall clock and speedup per worker count;
// the google-benchmark registrations below emit the stable series for
// BENCH_sweep.json. Parallel outcomes are byte-identical to the
// sequential grid (tests/sweep/sweep_test.cpp pins that); the table's
// checksum column makes a divergence visible here too.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "runtime/block_image.hpp"
#include "sim/trace_gen.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace apcc;

const core::CodeCompressionSystem& sweep_system() {
  static const auto* system = new core::CodeCompressionSystem(
      core::CodeCompressionSystem::from_workload(
          bench::cached_workload(workloads::WorkloadKind::kGsmLike)));
  return *system;
}

/// The fig3-style grid: every decompression strategy x a k sweep x
/// {unbounded, tight} budget x {first, best} fit.
std::vector<sweep::SweepTask> make_grid() {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);
  std::uint64_t largest = 0;
  for (const auto b : workload.trace) {
    largest = std::max(largest, workload.cfg.block(b).size_bytes());
  }
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      for (const bool tight_budget : {false, true}) {
        for (const auto fit :
             {memory::FitPolicy::kFirstFit, memory::FitPolicy::kBestFit}) {
          sweep::SweepTask task;
          task.config = sweep_system().engine_config();
          task.config.policy.strategy = strategy;
          task.config.policy.compress_k = k;
          task.config.policy.predecompress_k = k;
          task.config.fit = fit;
          if (tight_budget) {
            task.config.policy.memory_budget = largest * 3 + 32;
          }
          task.label = std::string(runtime::strategy_name(strategy)) +
                       "/k=" + std::to_string(k) +
                       (tight_budget ? "/tight" : "/unbounded") +
                       (fit == memory::FitPolicy::kBestFit ? "/best-fit"
                                                           : "/first-fit");
          tasks.push_back(std::move(task));
        }
      }
    }
  }
  return tasks;
}

/// Order-sensitive digest of the grid outcomes: any divergence between
/// worker counts (ordering, dropped task, differing counters) changes it.
std::uint64_t grid_checksum(const std::vector<sweep::SweepOutcome>& outcomes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& o : outcomes) {
    mix(o.index);
    mix(o.result.total_cycles);
    mix(o.result.exceptions);
    mix(o.result.predecompressions);
    mix(o.result.evictions);
    mix(o.result.peak_occupancy_bytes);
  }
  return h;
}

void print_tables() {
  bench::print_header(
      "Sweep scaling",
      "sharded policy-grid sweep (fig3-style grid, gsm-like workload)\n"
      "wall clock and speedup vs a 1-worker sequential grid");
  const auto tasks = make_grid();
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << " (speedup saturates there; on one vCPU the pool can only\n"
               "add scheduling overhead, so expect ~1.0 or slightly below)\n\n";

  TextTable table;
  table.row()
      .cell("workers")
      .cell("tasks")
      .cell("wall ms")
      .cell("speedup")
      .cell("checksum");
  double sequential_ms = 0.0;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    sweep::SweepOptions options;
    options.workers = workers;
    const auto start = std::chrono::steady_clock::now();
    const auto outcomes = sweep_system().run_sweep(tasks, options);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    if (workers == 1) sequential_ms = elapsed.count();
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(grid_checksum(outcomes)));
    table.row()
        .cell(std::uint64_t{workers})
        .cell(std::uint64_t{outcomes.size()})
        .cell(elapsed.count(), 1)
        .cell(sequential_ms > 0 ? sequential_ms / elapsed.count() : 1.0, 2)
        .cell(checksum);
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: identical checksums across worker counts\n"
               "(deterministic sharding), speedup approaching the worker\n"
               "count until the grid runs out of tasks per worker.\n\n";

  // Lockstep batching at one worker. On this grid the traces are long
  // relative to the CFG, so the amortized setup is small and the
  // column is expected to be ~flat; the regime where batching wins
  // outright is the wide-CFG/short-trace series below
  // (bm_sweep_batch_widecfg). Checksums must match the batch=1 row --
  // batching is a scheduling knob, never a results knob.
  TextTable batched;
  batched.row()
      .cell("batch")
      .cell("cells")
      .cell("wall ms")
      .cell("cells/s")
      .cell("vs batch=1")
      .cell("checksum");
  double unbatched_ms = 0.0;
  for (const std::uint32_t batch : {1u, 2u, 4u, 8u, 16u}) {
    sweep::SweepOptions options;
    options.workers = 1;
    options.batch_cells = batch;
    const auto start = std::chrono::steady_clock::now();
    const auto outcomes = sweep_system().run_sweep(tasks, options);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    if (batch == 1) unbatched_ms = elapsed.count();
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(grid_checksum(outcomes)));
    batched.row()
        .cell(std::uint64_t{batch})
        .cell(std::uint64_t{outcomes.size()})
        .cell(elapsed.count(), 1)
        .cell(elapsed.count() > 0
                  ? static_cast<double>(outcomes.size()) * 1000.0 /
                        elapsed.count()
                  : 0.0,
              1)
        .cell(unbatched_ms > 0 ? unbatched_ms / elapsed.count() : 1.0, 2)
        .cell(checksum);
  }
  std::cout << batched.render() << '\n';
  std::cout << "Shape check: identical checksums down the column (the\n"
               "determinism claim); wall clock ~flat here -- long traces\n"
               "dwarf the amortized setup. bm_sweep_batch_widecfg is the\n"
               "series where the batch width pays for itself.\n\n";
}

void bm_sweep_grid(benchmark::State& state) {
  const auto tasks = make_grid();
  sweep::SweepOptions options;
  options.workers = static_cast<unsigned>(state.range(0));
  std::uint64_t grid_points = 0;
  for (auto _ : state) {
    const auto outcomes = sweep_system().run_sweep(tasks, options);
    benchmark::DoNotOptimize(outcomes.data());
    grid_points += outcomes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(grid_points));
  state.SetLabel(std::to_string(options.workers) + "-worker");
}
BENCHMARK(bm_sweep_grid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The batching trend for BENCH_sweep.json: grid cells stepped per
/// second at one worker as the lockstep batch width grows.
/// items_per_second IS cells-stepped/sec, so real hardware can read the
/// series past the 1-vCPU container this repo's CI runs on.
void bm_sweep_batch(benchmark::State& state) {
  const auto tasks = make_grid();
  sweep::SweepOptions options;
  options.workers = 1;
  options.batch_cells = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t cells_stepped = 0;
  for (auto _ : state) {
    const auto outcomes = sweep_system().run_sweep(tasks, options);
    benchmark::DoNotOptimize(outcomes.data());
    cells_stepped += outcomes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells_stepped));
  state.SetLabel("batch-" + std::to_string(options.batch_cells));
}
BENCHMARK(bm_sweep_batch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Wide-CFG / short-trace workload: the regime where batching's shared
/// setup dominates. Per cell the per-engine path pays O(B + T) setup --
/// trace validation, slot layout, size + execution-cost tables, a
/// profile-predictor trace pass, and for planning strategies one
/// bounded frontier BFS per exited block -- before an O(T) run; with B
/// large and T short that setup is the bulk of the cell, and a batch
/// pays it once instead of once per cell. The suite workloads above are
/// the opposite regime (tiny B, long T), which is why their batching
/// delta sits in the noise.
struct WideCfgWorkload {
  cfg::Cfg graph;
  std::unique_ptr<runtime::BlockImage> image;
  cfg::BlockTrace trace;
};

const WideCfgWorkload& wide_cfg_workload() {
  static auto* cached = []() {
    auto* w = new WideCfgWorkload();
    const std::size_t blocks = bench::quick_mode() ? 256 : 2048;
    for (std::size_t b = 0; b < blocks; ++b) {
      w->graph.add_block(static_cast<std::uint32_t>(b * 8),
                         4 + static_cast<std::uint32_t>(b % 13));
    }
    for (std::size_t b = 0; b < blocks; ++b) {
      const auto from = static_cast<cfg::BlockId>(b);
      const auto next = static_cast<cfg::BlockId>((b + 1) % blocks);
      const auto far = static_cast<cfg::BlockId>((b * 7919 + 13) % blocks);
      w->graph.add_edge(from, next, cfg::EdgeKind::kFallThrough, 0.9);
      if (far != next && far != from) {
        w->graph.add_edge(from, far, cfg::EdgeKind::kJump, 0.1);
      }
    }
    w->graph.set_entry(0);
    w->graph.normalize_probabilities();
    w->image = std::make_unique<runtime::BlockImage>(
        runtime::make_block_image(
            w->graph,
            [](const cfg::BasicBlock& b) {
              return compress::Bytes(b.size_bytes(), 0x90);
            },
            compress::CodecKind::kNull));
    sim::TraceGenOptions options;
    options.seed = 20260808;
    options.max_blocks = blocks * 2;  // short: ~2 visits per block
    w->trace = sim::generate_trace(w->graph, options);
    return w;
  }();
  return *cached;
}

/// A 16-cell planning-heavy grid over the wide CFG (the on-demand rows
/// are excluded on purpose: they skip the geometry setup whose
/// amortization this series measures).
std::vector<sweep::SweepTask> wide_cfg_grid() {
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {2u, 4u, 6u, 8u}) {
      for (const auto fit :
           {memory::FitPolicy::kFirstFit, memory::FitPolicy::kBestFit}) {
        sweep::SweepTask task;
        task.config.policy.strategy = strategy;
        task.config.policy.compress_k = k;
        task.config.policy.predecompress_k = k;
        task.config.fit = fit;
        task.label = std::string(runtime::strategy_name(strategy)) +
                     "/k=" + std::to_string(k) +
                     (fit == memory::FitPolicy::kBestFit ? "/best-fit"
                                                         : "/first-fit");
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

void bm_sweep_batch_widecfg(benchmark::State& state) {
  const auto& w = wide_cfg_workload();
  const auto tasks = wide_cfg_grid();
  sweep::SweepOptions options;
  options.workers = 1;
  options.batch_cells = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t cells_stepped = 0;
  for (auto _ : state) {
    const auto outcomes =
        sweep::run_sweep(w.graph, *w.image, w.trace, tasks, options);
    benchmark::DoNotOptimize(outcomes.data());
    cells_stepped += outcomes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells_stepped));
  state.SetLabel("wide-cfg batch-" + std::to_string(options.batch_cells));
}
BENCHMARK(bm_sweep_batch_widecfg)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

APCC_BENCH_MAIN(print_tables)
