// Sweep scaling: sharded policy-grid throughput across worker counts.
//
// The fig3 / E10 grids are embarrassingly parallel -- every grid point
// is an independent Engine run over the same immutable BlockImage -- and
// sweep::run_sweep shards them across a thread pool. This bench builds a
// fig3-style grid (strategy x k x budget x fit, 72 points) on the
// gsm-like workload and reports wall clock and speedup per worker count;
// the google-benchmark registrations below emit the stable series for
// BENCH_sweep.json. Parallel outcomes are byte-identical to the
// sequential grid (tests/sweep/sweep_test.cpp pins that); the table's
// checksum column makes a divergence visible here too.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace apcc;

const core::CodeCompressionSystem& sweep_system() {
  static const auto* system = new core::CodeCompressionSystem(
      core::CodeCompressionSystem::from_workload(
          bench::cached_workload(workloads::WorkloadKind::kGsmLike)));
  return *system;
}

/// The fig3-style grid: every decompression strategy x a k sweep x
/// {unbounded, tight} budget x {first, best} fit.
std::vector<sweep::SweepTask> make_grid() {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);
  std::uint64_t largest = 0;
  for (const auto b : workload.trace) {
    largest = std::max(largest, workload.cfg.block(b).size_bytes());
  }
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      for (const bool tight_budget : {false, true}) {
        for (const auto fit :
             {memory::FitPolicy::kFirstFit, memory::FitPolicy::kBestFit}) {
          sweep::SweepTask task;
          task.config = sweep_system().engine_config();
          task.config.policy.strategy = strategy;
          task.config.policy.compress_k = k;
          task.config.policy.predecompress_k = k;
          task.config.fit = fit;
          if (tight_budget) {
            task.config.policy.memory_budget = largest * 3 + 32;
          }
          task.label = std::string(runtime::strategy_name(strategy)) +
                       "/k=" + std::to_string(k) +
                       (tight_budget ? "/tight" : "/unbounded") +
                       (fit == memory::FitPolicy::kBestFit ? "/best-fit"
                                                           : "/first-fit");
          tasks.push_back(std::move(task));
        }
      }
    }
  }
  return tasks;
}

/// Order-sensitive digest of the grid outcomes: any divergence between
/// worker counts (ordering, dropped task, differing counters) changes it.
std::uint64_t grid_checksum(const std::vector<sweep::SweepOutcome>& outcomes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& o : outcomes) {
    mix(o.index);
    mix(o.result.total_cycles);
    mix(o.result.exceptions);
    mix(o.result.predecompressions);
    mix(o.result.evictions);
    mix(o.result.peak_occupancy_bytes);
  }
  return h;
}

void print_tables() {
  bench::print_header(
      "Sweep scaling",
      "sharded policy-grid sweep (fig3-style grid, gsm-like workload)\n"
      "wall clock and speedup vs a 1-worker sequential grid");
  const auto tasks = make_grid();
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << " (speedup saturates there; on one vCPU the pool can only\n"
               "add scheduling overhead, so expect ~1.0 or slightly below)\n\n";

  TextTable table;
  table.row()
      .cell("workers")
      .cell("tasks")
      .cell("wall ms")
      .cell("speedup")
      .cell("checksum");
  double sequential_ms = 0.0;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    sweep::SweepOptions options;
    options.workers = workers;
    const auto start = std::chrono::steady_clock::now();
    const auto outcomes = sweep_system().run_sweep(tasks, options);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    if (workers == 1) sequential_ms = elapsed.count();
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(grid_checksum(outcomes)));
    table.row()
        .cell(std::uint64_t{workers})
        .cell(std::uint64_t{outcomes.size()})
        .cell(elapsed.count(), 1)
        .cell(sequential_ms > 0 ? sequential_ms / elapsed.count() : 1.0, 2)
        .cell(checksum);
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: identical checksums across worker counts\n"
               "(deterministic sharding), speedup approaching the worker\n"
               "count until the grid runs out of tasks per worker.\n\n";
}

void bm_sweep_grid(benchmark::State& state) {
  const auto tasks = make_grid();
  sweep::SweepOptions options;
  options.workers = static_cast<unsigned>(state.range(0));
  std::uint64_t grid_points = 0;
  for (auto _ : state) {
    const auto outcomes = sweep_system().run_sweep(tasks, options);
    benchmark::DoNotOptimize(outcomes.data());
    grid_points += outcomes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(grid_points));
  state.SetLabel(std::to_string(options.workers) + "-worker");
}
BENCHMARK(bm_sweep_grid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

APCC_BENCH_MAIN(print_tables)
