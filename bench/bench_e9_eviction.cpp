// E9 (extension): victim-selection policies for the §2 budget mode.
//
// The paper suggests "LRU or a similar strategy"; this experiment fills
// in the comparison: LRU vs MRU (strawman) vs largest-first (fewest
// evictions per freed byte), under a tight budget.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E9 (extension)",
                      "budget-mode victim policies (jpeg-like, pre-single,\n"
                      "k_c = 8, budget = 50% of the unbounded working set)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kJpegLike);

  core::SystemConfig base;
  base.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  base.policy.compress_k = 8;
  const auto unbounded = bench::run_config(workload, base);
  const std::uint64_t ws =
      unbounded.peak_occupancy_bytes - unbounded.compressed_area_bytes;
  std::uint64_t largest_executed = 0;
  for (const auto b : workload.trace) {
    largest_executed =
        std::max(largest_executed, workload.cfg.block(b).size_bytes());
  }
  const std::uint64_t budget = std::max(ws / 2, largest_executed + 8);
  std::cout << "unbounded working set " << human_bytes(ws) << ", budget "
            << human_bytes(budget) << "\n\n";

  TextTable table;
  table.row()
      .cell("victim policy")
      .cell("cycles")
      .cell("slowdown")
      .cell("evictions")
      .cell("re-decompressions")
      .cell("peak-mem");
  for (const auto policy :
       {runtime::VictimPolicy::kLru, runtime::VictimPolicy::kMru,
        runtime::VictimPolicy::kLargest}) {
    core::SystemConfig config = base;
    config.policy.memory_budget = budget;
    config.policy.victim_policy = policy;
    const auto r = bench::run_config(workload, config);
    table.row()
        .cell(runtime::victim_policy_name(policy))
        .cell(r.total_cycles)
        .cell(r.slowdown(), 3)
        .cell(r.evictions)
        .cell(r.demand_decompressions + r.predecompressions)
        .cell(human_bytes(r.peak_occupancy_bytes));
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: LRU beats MRU on loop-structured code (the\n"
               "classic result); largest-first needs the fewest evictions\n"
               "but sacrifices big hot blocks.\n\n";
}

void bm_victim_policy(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kJpegLike);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.compress_k = 8;
  config.policy.victim_policy =
      static_cast<runtime::VictimPolicy>(state.range(0));
  const auto unbounded = bench::run_config(workload, config);
  std::uint64_t largest_executed = 0;
  for (const auto b : workload.trace) {
    largest_executed =
        std::max(largest_executed, workload.cfg.block(b).size_bytes());
  }
  config.policy.memory_budget = std::max(
      (unbounded.peak_occupancy_bytes - unbounded.compressed_area_bytes) / 2,
      largest_executed + 8);
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_victim_policy)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

APCC_BENCH_MAIN(print_tables)
