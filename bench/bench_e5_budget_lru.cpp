// E5: the §2 memory-budget mode with LRU victim selection.
//
// Paper: "check before each basic block decompression whether this
// decompression could result in exceeding the maximum allowable memory
// space consumption, and if so, compress one of the decompressed basic
// blocks ... One could use LRU or a similar strategy."
//
// The bench sweeps the budget from the unbounded working set down to
// barely-one-block and prints cycles/evictions per cap.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E5 (S2 budget mode)",
                      "cycles vs decompressed-area budget, LRU eviction\n"
                      "(jpeg-like, pre-single, k_c = 8)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kJpegLike);

  core::SystemConfig base;
  base.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  base.policy.compress_k = 8;
  const auto unbounded = bench::run_config(workload, base);
  const std::uint64_t ws =
      unbounded.peak_occupancy_bytes - unbounded.compressed_area_bytes;
  std::uint64_t largest_executed = 0;
  for (const auto b : workload.trace) {
    largest_executed =
        std::max(largest_executed, workload.cfg.block(b).size_bytes());
  }
  std::cout << "unbounded working set: " << human_bytes(ws)
            << ", largest executed block: " << human_bytes(largest_executed)
            << "\n\n";

  TextTable table;
  table.row()
      .cell("budget")
      .cell("budget/WS")
      .cell("cycles")
      .cell("slowdown")
      .cell("evictions")
      .cell("dropped-req")
      .cell("peak-mem");
  for (const double fraction : {1.0, 0.8, 0.6, 0.4, 0.3, 0.2}) {
    const std::uint64_t budget = std::max(
        static_cast<std::uint64_t>(static_cast<double>(ws) * fraction),
        largest_executed + 8);
    core::SystemConfig config = base;
    config.policy.memory_budget = budget;
    const auto r = bench::run_config(workload, config);
    table.row()
        .cell(human_bytes(budget))
        .cell(percent(static_cast<double>(budget) / static_cast<double>(ws)))
        .cell(r.total_cycles)
        .cell(r.slowdown(), 3)
        .cell(r.evictions)
        .cell(r.dropped_requests)
        .cell(human_bytes(r.peak_occupancy_bytes));
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: tightening the budget raises evictions and\n"
               "cycles monotonically while the cap is respected.\n\n";
}

void bm_budgeted_run(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kJpegLike);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.compress_k = 8;
  if (state.range(0) > 0) {
    // Budget = range% of the unbounded working set, floored at the
    // largest executed block (below that the run cannot make progress).
    const auto unbounded = bench::run_config(workload, config);
    const std::uint64_t ws =
        unbounded.peak_occupancy_bytes - unbounded.compressed_area_bytes;
    std::uint64_t largest_executed = 0;
    for (const auto b : workload.trace) {
      largest_executed =
          std::max(largest_executed, workload.cfg.block(b).size_bytes());
    }
    config.policy.memory_budget =
        std::max(ws * static_cast<std::uint64_t>(state.range(0)) / 100,
                 largest_executed + 8);
  }
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_budgeted_run)->Arg(0)->Arg(60)->Arg(30);

}  // namespace

APCC_BENCH_MAIN(print_tables)
