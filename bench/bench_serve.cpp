// TCP front-door throughput and latency under mixed-tenant QoS.
//
// These benches drive the real thing end to end: a net::Server on an
// ephemeral loopback port, its IO loop on a helper thread, plain
// blocking client sockets speaking the stdin wire protocol. Each
// tenant is one connection pipelining `kind run` records; per-job
// latency is stamped at send and at the arrival of the job's result
// record (per-session ordering makes the i-th `end` the i-th job).
//
// bm_serve_mixed_qos is the acceptance series for BENCH_serve.json:
// three tenants -- latency-tier (normal, weight 4), standard (normal,
// weight 2), bulk (batch, weight 1) -- submit concurrent backlogs, so
// the p50/p99 counters price exactly what the scheduler decides:
// weighted fair share splits the normal class 4:2, the strict class
// order keeps bulk behind both. The fairness differential tests pin
// that none of this changes any outcome; what it changes is who waits,
// and this series measures the waiting.
//
// Caveat (docs/PERFORMANCE.md): 1-vCPU CI box -- jobs/sec here is the
// serialized engine rate plus socket + scheduling overhead, not a
// parallelism number. The tenant-relative latency split is the signal.
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "serving/service.hpp"
#include "serving/wire.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace apcc;
using clock_type = std::chrono::steady_clock;

/// One tenant's load: a connection pipelining `jobs` run records under
/// `client` / `priority`. An empty client tag inherits the session's.
struct Tenant {
  std::string client;
  std::string priority;
  int jobs = 0;
};

std::string job_record(const Tenant& tenant) {
  std::string out = serving::wire::kJobHeader + "\nkind run\n";
  if (!tenant.client.empty()) out += "client " + tenant.client + "\n";
  out += "priority " + tenant.priority + "\nworkload crc-like\nend\n";
  return out;
}

void send_all(const net::Fd& fd, std::string_view text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd.get(), text.data() + sent, text.size() - sent, 0);
    if (n <= 0) throw std::runtime_error("bench_serve: send failed");
    sent += static_cast<std::size_t>(n);
  }
}

/// A Service with the CRC-like suite workload plus a net::Server on an
/// ephemeral loopback port, IO loop on a helper thread (the
/// tests/net/server_test.cpp fixture, minus gtest).
struct ServeFixture {
  explicit ServeFixture(serving::ServiceOptions options)
      : service(std::move(options)) {
    (void)service.register_workload(
        workloads::make_workload(workloads::WorkloadKind::kCrcLike));
    server.emplace(service, net::ServerOptions{});
    io = std::thread([this] { server->run(); });
  }

  ~ServeFixture() {
    server->request_stop();
    io.join();
  }

  [[nodiscard]] std::uint16_t port() const { return server->port(); }

  serving::Service service;
  std::optional<net::Server> server;
  std::thread io;
};

/// One warm-up round trip so the timed jobs all borrow cached
/// artifacts (the cold build is bm_service_cold_run's subject).
void prime(std::uint16_t port) {
  const net::Fd fd = net::connect_tcp("127.0.0.1", port);
  send_all(fd, job_record(Tenant{"", "normal", 1}));
  ::shutdown(fd.get(), SHUT_WR);
  char chunk[4096];
  while (::recv(fd.get(), chunk, sizeof(chunk), 0) > 0) {
  }
}

/// Pipeline the tenant's records and stamp each job at send and at the
/// arrival of its result record's terminating `end` line. Returns the
/// per-job latencies in milliseconds, submission order.
std::vector<double> drive_tenant(std::uint16_t port, const Tenant& tenant) {
  const net::Fd fd = net::connect_tcp("127.0.0.1", port);
  const std::string record = job_record(tenant);
  const int jobs = tenant.jobs;
  std::vector<clock_type::time_point> got(jobs);
  int seen = 0;
  std::thread reader([&] {
    std::string buffer;
    std::size_t scan = 0;
    char chunk[4096];
    while (seen < jobs) {
      const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      for (std::size_t pos = buffer.find("\nend\n", scan);
           pos != std::string::npos && seen < jobs;
           pos = buffer.find("\nend\n", scan)) {
        got[seen++] = clock_type::now();
        scan = pos + 5;
      }
    }
  });
  std::vector<clock_type::time_point> sent(jobs);
  for (int i = 0; i < jobs; ++i) {
    send_all(fd, record);
    sent[i] = clock_type::now();
  }
  ::shutdown(fd.get(), SHUT_WR);
  reader.join();
  std::vector<double> latencies_ms(static_cast<std::size_t>(seen));
  for (int i = 0; i < seen; ++i) {
    latencies_ms[static_cast<std::size_t>(i)] =
        std::chrono::duration<double, std::milli>(got[i] - sent[i]).count();
  }
  return latencies_ms;
}

/// Nearest-rank percentile (p in [0,100]) over a copy.
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// The mixed-QoS tenant set: two weighted tenants inside the normal
/// class plus a batch-class backlog twice their size.
std::vector<Tenant> mixed_tenants() {
  const int scale = bench::quick_mode() ? 1 : 2;
  return {
      {"latency-tier", "normal", 6 * scale},
      {"standard", "normal", 6 * scale},
      {"bulk", "batch", 12 * scale},
  };
}

serving::ServiceOptions mixed_options() {
  serving::ServiceOptions options;
  options.workers = 2;
  options.client_weights = {
      {"latency-tier", 4}, {"standard", 2}, {"bulk", 1}};
  return options;
}

/// Drive every tenant concurrently (one thread per connection) and
/// return the per-tenant latency vectors, tenant order preserved.
std::vector<std::vector<double>> drive_all(
    std::uint16_t port, const std::vector<Tenant>& tenants) {
  std::vector<std::vector<double>> latencies(tenants.size());
  std::vector<std::thread> threads;
  threads.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    threads.emplace_back(
        [&, i] { latencies[i] = drive_tenant(port, tenants[i]); });
  }
  for (auto& thread : threads) thread.join();
  return latencies;
}

void print_tables() {
  bench::print_header(
      "TCP serve under mixed QoS",
      "three weighted tenants pipeline concurrent backlogs over\n"
      "loopback; fair share vs FIFO changes who waits, never what\n"
      "any job returns");
  TextTable table;
  table.row()
      .cell("scheduler")
      .cell("tenant")
      .cell("class/weight")
      .cell("jobs")
      .cell("p50 ms")
      .cell("p99 ms");
  const char* kShares[] = {"4", "2", "1"};
  for (const bool fair : {true, false}) {
    serving::ServiceOptions options = mixed_options();
    options.fair_share = fair;
    ServeFixture fx(std::move(options));
    prime(fx.port());
    const auto tenants = mixed_tenants();
    const auto latencies = drive_all(fx.port(), tenants);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      table.row()
          .cell(fair ? "fair share" : "fifo")
          .cell(tenants[i].client)
          .cell(tenants[i].priority + "/" + kShares[i])
          .cell(std::uint64_t{static_cast<std::uint64_t>(tenants[i].jobs)})
          .cell(percentile(latencies[i], 50.0), 2)
          .cell(percentile(latencies[i], 99.0), 2);
    }
  }
  std::cout << table.render()
            << "(every tenant pipelines its whole backlog at t=0, so a\n"
               "job's latency is queueing + its engine run; fair share\n"
               "splits the normal class 4:2 toward latency-tier, FIFO\n"
               "serves the same class in arrival order)\n\n";
}

void bm_serve_tcp_sustained(benchmark::State& state) {
  // One session, one tenant: the front door's sustained pipelined
  // throughput with warm artifacts -- socket framing + submission +
  // in-order write-back on top of the engine rate.
  serving::ServiceOptions options;
  options.workers = 2;
  ServeFixture fx(std::move(options));
  prime(fx.port());
  const int jobs = bench::quick_mode() ? 8 : 32;
  std::uint64_t total = 0;
  std::vector<double> latencies;
  for (auto _ : state) {
    auto batch = drive_tenant(fx.port(), Tenant{"", "normal", jobs});
    total += batch.size();
    latencies.insert(latencies.end(), batch.begin(), batch.end());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = percentile(latencies, 50.0);
  state.counters["p99_ms"] = percentile(latencies, 99.0);
  state.SetLabel("single session, pipelined run jobs, warm artifacts");
}
// UseRealTime: the driving thread spends the iteration blocked on its
// client threads, so wall clock (not this thread's cpu time) is what
// the jobs_per_sec rate must divide by.
BENCHMARK(bm_serve_tcp_sustained)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void bm_serve_mixed_qos(benchmark::State& state) {
  // The acceptance series: sustained jobs/sec and p50/p99 latency with
  // three tenants under weighted fair share + strict classes. The
  // per-tenant p99 counters are the QoS split itself: latency-tier
  // (weight 4) ahead of standard (weight 2) inside the normal class,
  // bulk's batch class behind both.
  ServeFixture fx(mixed_options());
  prime(fx.port());
  const auto tenants = mixed_tenants();
  std::uint64_t total = 0;
  std::vector<double> all;
  std::vector<std::vector<double>> by_tenant(tenants.size());
  for (auto _ : state) {
    const auto latencies = drive_all(fx.port(), tenants);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      total += latencies[i].size();
      all.insert(all.end(), latencies[i].begin(), latencies[i].end());
      by_tenant[i].insert(by_tenant[i].end(), latencies[i].begin(),
                          latencies[i].end());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = percentile(all, 50.0);
  state.counters["p99_ms"] = percentile(all, 99.0);
  state.counters["latency_tier_p99_ms"] = percentile(by_tenant[0], 99.0);
  state.counters["standard_p99_ms"] = percentile(by_tenant[1], 99.0);
  state.counters["bulk_p99_ms"] = percentile(by_tenant[2], 99.0);
  state.SetLabel(
      "3 tenants: normal/w4 + normal/w2 + batch/w1, concurrent backlogs");
}
BENCHMARK(bm_serve_mixed_qos)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

APCC_BENCH_MAIN(print_tables)
