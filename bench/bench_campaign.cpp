// Campaign throughput: suite x grid sweeps on one shared pool, with
// per-(workload, k) FrontierCache geometry shared across engines.
//
// sweep::run_campaign flattens the whole (workload x task) matrix into
// one work-stealing queue -- the paper's fig3/E10-style design-space
// exploration run over every suite workload at once -- and optionally
// builds each (workload, predecompress_k) FrontierCache once,
// materialized, for every engine over that key to borrow. This bench
// compares per-workload sequential sweeps against the campaign at
// several worker counts, with geometry sharing on and off; the
// google-benchmark registrations emit the stable series for
// BENCH_campaign.json. Campaign outcomes are byte-identical to the
// sequential per-workload grids (tests/sweep/campaign_test.cpp pins
// that); the checksum column makes a divergence visible here too.
//
// Caveat (docs/PERFORMANCE.md): on a 1-vCPU host the pool cannot show
// wall-clock speedup -- the checksums (determinism) and the shared-
// geometry delta (fewer BFS rebuilds, visible even single-threaded) are
// the signals this box can verify.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "support/table.hpp"
#include "sweep/campaign.hpp"

namespace {

using namespace apcc;

const std::vector<workloads::WorkloadKind>& campaign_kinds() {
  static const auto* quick = new std::vector<workloads::WorkloadKind>{
      workloads::WorkloadKind::kAdpcmLike, workloads::WorkloadKind::kCrcLike};
  static const auto* full = new std::vector<workloads::WorkloadKind>{
      workloads::WorkloadKind::kAdpcmLike, workloads::WorkloadKind::kGsmLike,
      workloads::WorkloadKind::kG721Like, workloads::WorkloadKind::kCrcLike};
  return bench::quick_mode() ? *quick : *full;
}

struct CampaignSetup {
  std::vector<core::CodeCompressionSystem> systems;
  std::vector<core::CampaignEntry> entries;
  std::vector<sweep::SweepTask> grid;
};

const CampaignSetup& setup() {
  static const auto* s = [] {
    auto* out = new CampaignSetup();
    std::uint64_t largest = 0;
    for (const auto kind : campaign_kinds()) {
      const auto& w = bench::cached_workload(kind);
      for (const auto b : w.trace) {
        largest = std::max(largest, w.cfg.block(b).size_bytes());
      }
      out->systems.push_back(
          core::CodeCompressionSystem::from_workload(w, {}));
    }
    for (std::size_t i = 0; i < out->systems.size(); ++i) {
      out->entries.push_back(
          {bench::cached_workload(campaign_kinds()[i]).name,
           &out->systems[i]});
    }
    // The shared grid: strategy x k x budget. The tight budget is sized
    // off the largest executed block across *all* campaign workloads so
    // one grid stays valid for every workload.
    const auto ks = bench::quick_mode()
                        ? std::vector<std::uint32_t>{1u, 4u}
                        : std::vector<std::uint32_t>{1u, 2u, 4u, 8u, 16u};
    for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                                runtime::DecompressionStrategy::kPreAll,
                                runtime::DecompressionStrategy::kPreSingle}) {
      for (const std::uint32_t k : ks) {
        for (const bool tight : {false, true}) {
          sweep::SweepTask task;
          task.config = out->systems.front().engine_config();
          task.config.policy.strategy = strategy;
          task.config.policy.compress_k = k;
          task.config.policy.predecompress_k = k;
          if (tight) task.config.policy.memory_budget = largest * 3 + 32;
          task.label = std::string(runtime::strategy_name(strategy)) +
                       "/k=" + std::to_string(k) +
                       (tight ? "/tight" : "/unbounded");
          out->grid.push_back(std::move(task));
        }
      }
    }
    return out;
  }();
  return *s;
}

/// Order-sensitive digest over every workload's outcomes: any divergence
/// (dropped cell, reordering, crosstalk, geometry-induced drift) changes
/// it.
std::uint64_t campaign_checksum(
    const std::vector<sweep::CampaignResult>& results) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : results) {
    mix(r.outcomes.size());
    for (const auto& o : r.outcomes) {
      mix(o.index);
      mix(o.result.total_cycles);
      mix(o.result.exceptions);
      mix(o.result.predecompressions);
      mix(o.result.evictions);
      mix(o.result.peak_occupancy_bytes);
    }
  }
  return h;
}

void print_tables() {
  bench::print_header(
      "Campaign throughput",
      "suite x grid campaign on one shared pool vs per-workload\n"
      "sequential sweeps; FrontierCache geometry shared vs owned");
  const auto& s = setup();
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "; " << s.entries.size() << " workloads x " << s.grid.size()
            << " grid points = " << s.entries.size() * s.grid.size()
            << " matrix cells\n(on one vCPU expect ~1.0x wall -- the\n"
               "checksum column, identical everywhere, is the signal)\n\n";

  TextTable table;
  table.row()
      .cell("mode")
      .cell("workers")
      .cell("wall ms")
      .cell("speedup")
      .cell("checksum");
  double baseline_ms = 0.0;
  auto add_row = [&](const char* mode, unsigned workers, double ms,
                     std::uint64_t checksum) {
    if (baseline_ms == 0.0) baseline_ms = ms;
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(checksum));
    table.row()
        .cell(mode)
        .cell(std::uint64_t{workers})
        .cell(ms, 1)
        .cell(baseline_ms > 0 ? baseline_ms / ms : 1.0, 2)
        .cell(digest);
  };

  {
    // Baseline: each workload's grid as its own sequential sweep --
    // what running the suite through run_sweep one workload at a time
    // costs.
    const auto start = std::chrono::steady_clock::now();
    std::vector<sweep::CampaignResult> results;
    for (const auto& entry : s.entries) {
      sweep::SweepOptions options;
      options.workers = 1;
      results.push_back(sweep::CampaignResult{
          entry.name, entry.system->run_sweep(s.grid, options)});
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    add_row("sequential sweeps", 1, elapsed.count(),
            campaign_checksum(results));
  }

  for (const bool shared : {false, true}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      sweep::CampaignOptions options;
      options.workers = workers;
      options.share_frontiers = shared;
      const auto start = std::chrono::steady_clock::now();
      const auto results = core::run_campaign(s.entries, s.grid, options);
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      add_row(shared ? "campaign/shared-geometry" : "campaign/owned-geometry",
              workers, elapsed.count(), campaign_checksum(results));
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: one checksum everywhere (campaign ==\n"
               "sequential suite, geometry sharing changes nothing);\n"
               "shared-geometry rows at or below owned-geometry rows\n"
               "(each (workload, k) frontier BFS runs once, not per\n"
               "engine).\n\n";
}

void bm_campaign(benchmark::State& state) {
  const auto& s = setup();
  sweep::CampaignOptions options;
  options.workers = static_cast<unsigned>(state.range(0));
  options.share_frontiers = state.range(1) != 0;
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto results = core::run_campaign(s.entries, s.grid, options);
    benchmark::DoNotOptimize(results.data());
    for (const auto& r : results) cells += r.outcomes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetLabel(std::to_string(options.workers) + "-worker/" +
                 (options.share_frontiers ? "shared" : "owned"));
}
BENCHMARK(bm_campaign)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

APCC_BENCH_MAIN(print_tables)
