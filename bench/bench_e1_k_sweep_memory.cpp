// E1: memory saving vs the compression-side k, across the suite.
//
// The paper (§3): "if we use a very small k value, we aggressively
// compress basic blocks ... beneficial from a memory space viewpoint";
// "a very large k value ... increases the memory space consumption."
// This bench quantifies that curve per workload: peak and time-averaged
// occupancy relative to the uncompressed image.
#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E1 (implied by S3)",
                      "memory saving vs k, on-demand decompression,\n"
                      "shared-huffman codec; saving is vs the uncompressed"
                      " image");
  TextTable table;
  table.row()
      .cell("workload")
      .cell("k=1 avg")
      .cell("k=2 avg")
      .cell("k=8 avg")
      .cell("k=32 avg")
      .cell("k=128 avg")
      .cell("k=128 peak");
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto& workload = bench::cached_workload(kind);
    auto& row = table.row().cell(workload.name);
    sim::RunResult last;
    for (const std::uint32_t k : {1u, 2u, 8u, 32u, 128u}) {
      core::SystemConfig config;
      config.policy.compress_k = k;
      last = bench::run_config(workload, config);
      row.cell(percent(last.avg_saving()));
    }
    row.cell(percent(last.peak_saving()));
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: average saving decreases monotonically with k\n"
               "(aggressive compression keeps fewer copies resident).\n\n";
}

void bm_k_sweep(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kAdpcmLike);
  core::SystemConfig config;
  config.policy.compress_k = static_cast<std::uint32_t>(state.range(0));
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_k_sweep)->Arg(1)->Arg(8)->Arg(32);

}  // namespace

APCC_BENCH_MAIN(print_tables)
