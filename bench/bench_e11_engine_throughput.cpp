// E11: engine hot-path throughput on a design-sweep-scale workload.
//
// The paper's evaluation sweeps many policy configurations over long
// block traces; the engine's per-step cost decides how large a design
// space is explorable. This bench builds a large synthetic CFG (10k
// basic blocks, loop-heavy with cross-region jumps, like inlined
// embedded codecs), drives a 1M-step trace through it, and reports
// steps/sec for the indexed engine against the pre-index reference
// scans (EngineConfig::reference_scans), whose per-step full-table
// walks were O(blocks) regardless of how few copies were resident.
//
// The table prints a direct wall-clock comparison (the number quoted in
// docs/PERFORMANCE.md); the google-benchmark registrations below give
// the stable timed series for BENCH_engine.json.
#include <chrono>

#include "bench/bench_common.hpp"
#include "sim/engine.hpp"
#include "sim/trace_gen.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

/// Synthetic sweep workload: `blocks` basic blocks, mostly sequential
/// flow with a ~10% jump to a far region, so execution loops locally
/// (small resident set) while still churning decompressions.
struct SweepWorkload {
  cfg::Cfg graph;
  std::unique_ptr<runtime::BlockImage> image;
  cfg::BlockTrace trace;
};

const SweepWorkload& sweep_workload(std::size_t blocks,
                                    std::uint64_t steps) {
  static auto* cache = new std::map<std::pair<std::size_t, std::uint64_t>,
                                    SweepWorkload>();
  const auto key = std::make_pair(blocks, steps);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  SweepWorkload w;
  for (std::size_t b = 0; b < blocks; ++b) {
    w.graph.add_block(static_cast<std::uint32_t>(b * 8),
                      4 + static_cast<std::uint32_t>(b % 13));
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto from = static_cast<cfg::BlockId>(b);
    const auto next = static_cast<cfg::BlockId>((b + 1) % blocks);
    const auto far =
        static_cast<cfg::BlockId>((b * 7919 + 13) % blocks);
    w.graph.add_edge(from, next, cfg::EdgeKind::kFallThrough, 0.9);
    if (far != next && far != from) {
      w.graph.add_edge(from, far, cfg::EdgeKind::kJump, 0.1);
    }
  }
  w.graph.set_entry(0);
  w.graph.normalize_probabilities();

  // Null codec: the engine only consumes the codec's *cost model*, so an
  // identity codec keeps the (one-off) image build instant at 10k blocks.
  w.image = std::make_unique<runtime::BlockImage>(runtime::make_block_image(
      w.graph,
      [](const cfg::BasicBlock& b) {
        return compress::Bytes(b.size_bytes(), 0x90);
      },
      compress::CodecKind::kNull));

  sim::TraceGenOptions options;
  options.seed = 20260730;
  options.max_blocks = steps;
  w.trace = sim::generate_trace(w.graph, options);

  return cache->emplace(key, std::move(w)).first->second;
}

/// Engine mode under test: the fully indexed engine with the memoized
/// planner, the indexed engine still running the per-exit frontier BFS
/// (isolates the FrontierCache's contribution), and the full pre-index
/// reference.
enum class EngineMode { kIndexed, kBfsPlanner, kReference };

sim::EngineConfig sweep_config(EngineMode mode) {
  sim::EngineConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  config.policy.compress_k = 8;
  config.policy.predecompress_k = 1;
  config.reference_scans = (mode == EngineMode::kReference);
  config.reference_frontiers = (mode != EngineMode::kIndexed);
  return config;
}

void print_tables() {
  bench::print_header(
      "E11", "engine hot-path throughput, indexed vs reference scans\n"
             "(10k-block synthetic CFG; steps/sec = trace entries/sec)");
  TextTable table;
  table.row()
      .cell("engine")
      .cell("blocks")
      .cell("steps")
      .cell("steps/sec")
      .cell("speedup");
  double reference_rate = 0.0;
  // The reference path is O(blocks) per step: give it a shorter slice
  // (its steps/sec rate is what matters, and it is rate-stable).
  const struct {
    const char* name;
    EngineMode mode;
    std::uint64_t steps;
  } rows[] = {{"reference-scans", EngineMode::kReference, 100'000},
              {"indexed+bfs-planner", EngineMode::kBfsPlanner, 1'000'000},
              {"indexed+memoized", EngineMode::kIndexed, 1'000'000}};
  for (const auto& row : rows) {
    const auto& w = sweep_workload(10'000, row.steps);
    sim::Engine engine(w.graph, *w.image, sweep_config(row.mode));
    const auto start = std::chrono::steady_clock::now();
    const sim::RunResult r = engine.run(w.trace);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate =
        static_cast<double>(r.block_entries) / elapsed.count();
    if (row.mode == EngineMode::kReference) reference_rate = rate;
    table.row()
        .cell(row.name)
        .cell(std::uint64_t{10'000})
        .cell(std::uint64_t{r.block_entries})
        .cell(rate, 0)
        .cell(reference_rate > 0 ? rate / reference_rate : 1.0, 2);
  }
  std::cout << table.render() << '\n';
}

const char* mode_label(EngineMode mode) {
  switch (mode) {
    case EngineMode::kIndexed: return "indexed";
    case EngineMode::kBfsPlanner: return "bfs-planner";
    case EngineMode::kReference: return "reference";
  }
  return "?";
}

void bm_engine_steps(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const auto mode = static_cast<EngineMode>(state.range(1));
  const bool reference = mode == EngineMode::kReference;
  // Budget the reference path's O(blocks)-per-step cost down so a
  // timing iteration stays in the hundreds of milliseconds.
  const std::uint64_t steps =
      reference ? (blocks >= 10'000 ? 20'000 : 200'000) : 1'000'000;
  const auto& w = sweep_workload(blocks, steps);
  sim::Engine engine(w.graph, *w.image, sweep_config(mode));
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    const sim::RunResult r = engine.run(w.trace);
    benchmark::DoNotOptimize(r.total_cycles);
    total_steps += r.block_entries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_steps));
  state.SetLabel(mode_label(mode));
}
BENCHMARK(bm_engine_steps)
    ->ArgsProduct({{1'000, 10'000}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void bm_engine_budget_evictions(benchmark::State& state) {
  // Eviction-heavy variant: a tight budget exercises the victim indexes
  // on every placement.
  const bool reference = state.range(0) != 0;
  const auto& w = sweep_workload(10'000, reference ? 20'000 : 500'000);
  sim::EngineConfig config =
      sweep_config(reference ? EngineMode::kReference : EngineMode::kIndexed);
  config.policy.memory_budget = 4096;  // a handful of resident copies
  config.policy.victim_policy = runtime::VictimPolicy::kLru;
  sim::Engine engine(w.graph, *w.image, config);
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    const sim::RunResult r = engine.run(w.trace);
    benchmark::DoNotOptimize(r.evictions);
    total_steps += r.block_entries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_steps));
  state.SetLabel(reference ? "reference" : "indexed");
}
BENCHMARK(bm_engine_budget_evictions)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

APCC_BENCH_MAIN(print_tables)
