// E8 (extension): decompression bandwidth vs pre-decompression payoff.
//
// A finding from building the simulator: the paper's pre-decompression
// thread only wins when decompression bandwidth keeps up with the request
// stream; with one slow software decoder the helper queue saturates, the
// execution thread's demand path wins the race, and pre-all degenerates
// to on-demand-with-overhead. This bench quantifies that by sweeping the
// number of helper units for both a slow (shared-huffman) and a fast
// (codepack) decoder.
#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E8 (extension)",
                      "pre-decompress-all payoff vs decompression\n"
                      "bandwidth (mpeg2-like, k_c = 16, k_d = 4)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kMpeg2Like);

  TextTable table;
  table.row()
      .cell("codec")
      .cell("units")
      .cell("cycles")
      .cell("slowdown")
      .cell("stall-cyc")
      .cell("demand-races")
      .cell("useful-rate");
  for (const auto codec :
       {compress::CodecKind::kSharedHuffman, compress::CodecKind::kCodePack}) {
    for (const unsigned units : {1u, 2u, 4u}) {
      core::SystemConfig config;
      config.codec = codec;
      config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
      config.policy.compress_k = 16;
      config.policy.predecompress_k = 4;
      config.policy.decompress_units = units;
      const auto r = bench::run_config(workload, config);
      const std::uint64_t useful =
          r.predecompress_hits + r.predecompress_partial;
      table.row()
          .cell(compress::codec_kind_name(codec))
          .cell(std::uint64_t{units})
          .cell(r.total_cycles)
          .cell(r.slowdown(), 3)
          .cell(r.stall_cycles)
          .cell(r.demand_decompressions)
          .cell(percent(r.predecompressions
                            ? static_cast<double>(useful) /
                                  static_cast<double>(r.predecompressions)
                            : 0.0));
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: more units -> fewer demand races and stalls;\n"
               "the fast decoder needs fewer units to make pre-all pay.\n\n";
}

void bm_units(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kMpeg2Like);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  config.policy.compress_k = 16;
  config.policy.predecompress_k = 4;
  config.policy.decompress_units = static_cast<unsigned>(state.range(0));
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_units)->Arg(1)->Arg(4);

}  // namespace

APCC_BENCH_MAIN(print_tables)
