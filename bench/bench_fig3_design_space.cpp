// Figure 3 reproduction: the decompression design space.
//
// The paper's Figure 3 is the taxonomy {on-demand} vs {k-edge pre-
// decompress-all, k-edge pre-decompress-single}; this bench instantiates
// every point of that space (x a k sweep) on one workload and prints the
// memory/performance grid, which is the quantitative content the taxonomy
// implies. Compression always uses the k-edge algorithm, as in the paper.
#include "bench/bench_common.hpp"
#include "compress/adaptive.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("Figure 3",
                      "the decompression design space, instantiated on the\n"
                      "gsm-like workload (codec: shared huffman)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);

  // One system (one compressed image), the whole grid sharded across
  // worker threads; outcomes come back in task order, identical to the
  // sequential loop this replaced.
  const auto system = core::CodeCompressionSystem::from_workload(workload);
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      sweep::SweepTask task;
      task.label = std::string(runtime::strategy_name(strategy)) +
                   "/k=" + std::to_string(k);
      task.config = system.engine_config();
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      tasks.push_back(std::move(task));
    }
  }
  std::vector<core::ReportRow> rows;
  for (auto& outcome : system.run_sweep(tasks)) {
    rows.push_back({std::move(outcome.label), outcome.result});
  }
  std::cout << core::render_comparison(rows) << '\n';
  std::cout << "Shape check (paper S4): pre-all favours performance over\n"
               "memory, pre-single favours memory over performance, and\n"
               "on-demand pays the most critical-path decompression.\n\n";

  // The same design-space points under the adaptive best-of codec:
  // per-block selection changes the image (ratio) while the grid shape
  // stays the paper's. The usage summary shows which codec family
  // claimed the workload's blocks.
  core::SystemConfig adaptive_config;
  adaptive_config.codec = compress::CodecKind::kAdaptive;
  const auto adaptive_system =
      core::CodeCompressionSystem::from_workload(workload, adaptive_config);
  std::vector<sweep::SweepTask> adaptive_tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    sweep::SweepTask task;
    task.label = std::string("adaptive/") +
                 runtime::strategy_name(strategy) + "/k=2";
    task.config = adaptive_system.engine_config();
    task.config.policy.strategy = strategy;
    task.config.policy.compress_k = 2;
    task.config.policy.predecompress_k = 2;
    adaptive_tasks.push_back(std::move(task));
  }
  std::vector<core::ReportRow> adaptive_rows;
  for (auto& outcome : adaptive_system.run_sweep(adaptive_tasks)) {
    adaptive_rows.push_back({std::move(outcome.label), outcome.result});
  }
  std::cout << core::render_comparison(adaptive_rows) << '\n';
  const compress::AdaptiveCodec adaptive(workload.block_bytes);
  std::cout << "adaptive image ratio: "
            << compress::compression_ratio(adaptive, workload.block_bytes)
            << '\n'
            << compress::usage_summary(adaptive) << '\n';
}

void bm_strategy(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);
  core::SystemConfig config;
  config.policy.strategy =
      static_cast<runtime::DecompressionStrategy>(state.range(0));
  config.policy.compress_k = 2;
  config.policy.predecompress_k = 2;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(workload.trace.size()));
}
BENCHMARK(bm_strategy)
    ->Arg(0)   // on-demand
    ->Arg(1)   // pre-all
    ->Arg(2);  // pre-single

}  // namespace

APCC_BENCH_MAIN(print_tables)
