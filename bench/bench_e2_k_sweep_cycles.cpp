// E2: performance overhead vs the compression-side k, across the suite.
//
// The dual of E1 (paper §3): small k causes "frequent compressions and
// decompressions ... a large performance penalty for blocks with high
// temporal reuse"; large k "is preferable from the performance angle".
#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E2 (implied by S3)",
                      "execution slowdown vs k (on-demand decompression);\n"
                      "1.000 = the uncompressed-image baseline");
  TextTable table;
  table.row()
      .cell("workload")
      .cell("k=1")
      .cell("k=2")
      .cell("k=8")
      .cell("k=32")
      .cell("k=128")
      .cell("k=128 re-decomp");
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto& workload = bench::cached_workload(kind);
    auto& row = table.row().cell(workload.name);
    sim::RunResult last;
    for (const std::uint32_t k : {1u, 2u, 8u, 32u, 128u}) {
      core::SystemConfig config;
      config.policy.compress_k = k;
      last = bench::run_config(workload, config);
      row.cell(last.slowdown(), 3);
    }
    row.cell(last.demand_decompressions);
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: slowdown decreases monotonically with k; the\n"
               "k=1 column pays a decompression on nearly every revisit.\n\n";
}

void bm_slowdown_extremes(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kG721Like);
  core::SystemConfig config;
  config.policy.compress_k = static_cast<std::uint32_t>(state.range(0));
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(workload.trace.size()));
}
BENCHMARK(bm_slowdown_extremes)->Arg(1)->Arg(32);

}  // namespace

APCC_BENCH_MAIN(print_tables)
