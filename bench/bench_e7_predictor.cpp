// E7: predictor quality for pre-decompress-single.
//
// The paper predicts "the block most likely to be reached" but does not
// fix the predictor. This experiment compares the three implementations
// (profile / static-heuristic / oracle) by useful-arrival rate and by the
// end-to-end cycle cost, per workload.
#include "bench/bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E7",
                      "pre-decompress-single predictor comparison\n"
                      "(k_c = 4, k_d = 3; useful = hit or partial-hide)");
  TextTable table;
  table.row()
      .cell("workload")
      .cell("predictor")
      .cell("issued")
      .cell("useful")
      .cell("wasted")
      .cell("useful-rate")
      .cell("slowdown");
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto& workload = bench::cached_workload(kind);
    for (const auto predictor :
         {runtime::PredictorKind::kStatic, runtime::PredictorKind::kProfile,
          runtime::PredictorKind::kOracle}) {
      core::SystemConfig config;
      config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
      config.policy.compress_k = 4;
      config.policy.predecompress_k = 3;
      config.policy.predictor = predictor;
      const auto r = bench::run_config(workload, config);
      const std::uint64_t useful =
          r.predecompress_hits + r.predecompress_partial;
      table.row()
          .cell(workload.name)
          .cell(runtime::predictor_name(predictor))
          .cell(r.predecompressions)
          .cell(useful)
          .cell(r.wasted_predecompressions)
          .cell(percent(r.predecompressions
                            ? static_cast<double>(useful) /
                                  static_cast<double>(r.predecompressions)
                            : 0.0))
          .cell(r.slowdown(), 3);
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "Shape check: oracle >= profile >= static on useful-rate\n"
               "(the oracle is the upper bound; the profile predictor is\n"
               "what the paper's profile-driven approach achieves).\n\n";
}

void bm_predictor(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kGsmLike);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.predictor =
      static_cast<runtime::PredictorKind>(state.range(0));
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_predictor)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

APCC_BENCH_MAIN(print_tables)
