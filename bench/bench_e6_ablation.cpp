// E6: ablations of the paper's design decisions (DESIGN.md §5).
//
//  1. Remember sets + branch patching (S5)  vs  fault on every entry.
//  2. Background compression/decompression threads (S3/S4)  vs  all work
//     in the execution critical path.
//  3. Deletion-as-compression (S5: compressed originals never move)  vs
//     actually re-running the compressor on every "compress back".
#include "bench/bench_common.hpp"

namespace {

using namespace apcc;

void print_tables() {
  bench::print_header("E6",
                      "design-decision ablations on mpeg2-like\n"
                      "(pre-single, codepack, k_c = 16, k_d = 2)");
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kMpeg2Like);

  core::SystemConfig paper;
  paper.codec = compress::CodecKind::kCodePack;
  paper.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  paper.policy.compress_k = 16;
  paper.policy.predecompress_k = 2;

  std::vector<core::ReportRow> rows;
  rows.push_back({"paper design", bench::run_config(workload, paper)});

  {
    core::SystemConfig ablated = paper;
    ablated.policy.use_remember_sets = false;
    rows.push_back({"- remember sets", bench::run_config(workload, ablated)});
  }
  {
    core::SystemConfig ablated = paper;
    ablated.policy.background_compression = false;
    rows.push_back(
        {"- background compression", bench::run_config(workload, ablated)});
  }
  {
    core::SystemConfig ablated = paper;
    ablated.policy.background_decompression = false;
    rows.push_back(
        {"- background decompression", bench::run_config(workload, ablated)});
  }
  {
    core::SystemConfig ablated = paper;
    ablated.policy.background_compression = false;
    ablated.policy.background_decompression = false;
    ablated.policy.use_remember_sets = false;
    rows.push_back({"- all three", bench::run_config(workload, ablated)});
  }
  sim::RunResult recompress_bg;
  {
    core::SystemConfig ablated = paper;
    ablated.policy.recompress_for_real = true;
    recompress_bg = bench::run_config(workload, ablated);
    rows.push_back({"real recompression (bg)", recompress_bg});
  }
  {
    // Inline + real recompression: what a single-threaded system without
    // the S5 delete-only trick would pay.
    core::SystemConfig ablated = paper;
    ablated.policy.recompress_for_real = true;
    ablated.policy.background_compression = false;
    rows.push_back(
        {"real recompression inline", bench::run_config(workload, ablated)});
  }
  std::cout << core::render_comparison(rows) << '\n';
  const auto paper_result = rows.front().result;
  std::cout << "compression-helper busy cycles: paper design (delete-only) = "
            << paper_result.comp_helper_busy_cycles
            << ", real recompression = "
            << recompress_bg.comp_helper_busy_cycles << " ("
            << (paper_result.comp_helper_busy_cycles
                    ? static_cast<double>(
                          recompress_bg.comp_helper_busy_cycles) /
                          static_cast<double>(
                              paper_result.comp_helper_busy_cycles)
                    : 0.0)
            << "x)\n\n";
  std::cout
      << "Shape checks: every ablation costs cycles vs the paper design;\n"
         "background recompression hides the codec cost from execution\n"
         "but multiplies helper busy time (the S5 delete-only design\n"
         "avoids that work entirely); inline recompression puts the full\n"
         "cost into the critical path.\n\n";
}

void bm_ablation(benchmark::State& state) {
  const auto& workload =
      bench::cached_workload(workloads::WorkloadKind::kMpeg2Like);
  core::SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.use_remember_sets = state.range(0) != 0;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_ablation)->Arg(1)->Arg(0);

}  // namespace

APCC_BENCH_MAIN(print_tables)
