// Strategy explorer: sweep the paper's whole policy surface on one
// workload and print the comparison table.
//
//   $ ./strategy_explorer [workload]
//
// `workload` is one of: adpcm gsm jpeg mpeg2 g721 pegwit (default gsm).
// For each decompression strategy (Figure 3) x k in {1,2,4,8}, runs the
// simulation and reports cycles/memory, next to the no-compression and
// load-time-decompression baselines.
#include <iostream>
#include <string>

#include "baselines/baselines.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "support/strings.hpp"

namespace {

apcc::workloads::WorkloadKind parse_kind(const std::string& name) {
  using apcc::workloads::WorkloadKind;
  if (name == "adpcm") return WorkloadKind::kAdpcmLike;
  if (name == "gsm") return WorkloadKind::kGsmLike;
  if (name == "jpeg") return WorkloadKind::kJpegLike;
  if (name == "mpeg2") return WorkloadKind::kMpeg2Like;
  if (name == "g721") return WorkloadKind::kG721Like;
  if (name == "pegwit") return WorkloadKind::kPegwitLike;
  std::cerr << "unknown workload '" << name
            << "' (want adpcm|gsm|jpeg|mpeg2|g721|pegwit), using gsm\n";
  return WorkloadKind::kGsmLike;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apcc;

  const auto kind = parse_kind(argc > 1 ? argv[1] : "gsm");
  const workloads::Workload workload = workloads::make_workload(kind);
  std::cout << "workload " << workload.name << ": "
            << human_bytes(workload.image_bytes()) << ", "
            << workload.trace.size() << " block entries\n\n";

  std::vector<core::ReportRow> rows;

  // Baselines first.
  rows.push_back({"baseline/no-compression",
                  baselines::run_no_compression(workload.cfg, workload.trace,
                                                runtime::CostModel{})});
  {
    core::SystemConfig cfg;  // codec needed for the load-time baseline
    const auto system =
        core::CodeCompressionSystem::from_workload(workload, cfg);
    rows.push_back(
        {"baseline/load-time",
         baselines::run_load_time_decompression(
             workload.cfg, system.image(), workload.trace,
             runtime::CostModel{})});
  }

  // The paper's design space.
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      core::SystemConfig config;
      config.policy.strategy = strategy;
      config.policy.compress_k = k;
      config.policy.predecompress_k = k;
      const auto system =
          core::CodeCompressionSystem::from_workload(workload, config);
      std::string label = std::string(runtime::strategy_name(strategy)) +
                          "/k=" + std::to_string(k);
      rows.push_back({std::move(label), system.run()});
    }
  }

  std::cout << core::render_comparison(rows) << '\n';
  std::cout << "Reading guide: small k compresses aggressively (less\n"
               "memory, more overhead); pre-all hides latency at the cost\n"
               "of memory; pre-single sits in between (paper §3-§4).\n";
  return 0;
}
