// Scratchpad budget planner: the §2 memory-budget mode.
//
//   $ ./scratchpad_budget [workload]
//
// Embedded scenario: code executes from a small software-managed
// scratchpad (SPM). This example sweeps the decompressed-area budget from
// generous to barely-fits and reports the cycle cost of each cap --
// exactly the curve a designer sizing an SPM needs. LRU eviction keeps
// execution under the cap (paper §2: "one could use LRU or a similar
// strategy to select the victim basic block").
#include <algorithm>
#include <iostream>

#include "core/system.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace apcc;

  const auto kind = (argc > 1 && std::string(argv[1]) == "mpeg2")
                        ? workloads::WorkloadKind::kMpeg2Like
                        : workloads::WorkloadKind::kJpegLike;
  const workloads::Workload workload = workloads::make_workload(kind);

  // Find the unbounded working set first.
  core::SystemConfig unbounded;
  unbounded.policy.compress_k = 8;
  unbounded.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  const auto free_run =
      core::CodeCompressionSystem::from_workload(workload, unbounded).run();
  const std::uint64_t ws =
      free_run.peak_occupancy_bytes - free_run.compressed_area_bytes;

  std::uint64_t largest_executed = 0;
  for (const auto b : workload.trace) {
    largest_executed =
        std::max(largest_executed, workload.cfg.block(b).size_bytes());
  }

  std::cout << "workload " << workload.name << ": unbounded working set "
            << human_bytes(ws) << ", largest executed block "
            << human_bytes(largest_executed) << "\n\n";

  TextTable table;
  table.row()
      .cell("budget")
      .cell("cycles")
      .cell("slowdown")
      .cell("evictions")
      .cell("peak-mem")
      .cell("fits?");
  for (const double fraction : {1.0, 0.75, 0.5, 0.35, 0.25}) {
    const auto budget = std::max(
        static_cast<std::uint64_t>(static_cast<double>(ws) * fraction),
        largest_executed + 8);
    core::SystemConfig config = unbounded;
    config.policy.memory_budget = budget;
    const auto r =
        core::CodeCompressionSystem::from_workload(workload, config).run();
    table.row()
        .cell(human_bytes(budget))
        .cell(r.total_cycles)
        .cell(r.slowdown(), 3)
        .cell(r.evictions)
        .cell(human_bytes(r.peak_occupancy_bytes))
        .cell(r.peak_occupancy_bytes <=
                      r.compressed_area_bytes + budget
                  ? "yes"
                  : "NO");
  }
  std::cout << table.render();
  std::cout << "\nEach halving of the budget buys memory with cycles:\n"
               "evictions rise and more entries pay the decompression.\n";
  return 0;
}
