// Quickstart: compress an embedded workload's code image with APCC and
// simulate one run.
//
//   $ ./quickstart
//
// Walks the canonical flow: pick a workload (a real assembled ERISC-32
// program), configure the paper's runtime (k-edge compression + k-edge
// pre-decompress-single), run the access pattern, print the report.
#include <iostream>

#include "core/system.hpp"
#include "support/strings.hpp"

int main() {
  using namespace apcc;

  // 1. A workload: assembled, CFG-built, and executed on the functional
  //    interpreter so `workload.trace` is a real instruction access
  //    pattern (the paper's driving input).
  const workloads::Workload workload =
      workloads::make_workload(workloads::WorkloadKind::kGsmLike);
  std::cout << "workload: " << workload.name << "\n"
            << "  image: " << human_bytes(workload.image_bytes()) << " in "
            << workload.cfg.block_count() << " basic blocks\n"
            << "  trace: " << workload.trace.size() << " block entries\n\n";

  // 2. Configure the paper's scheme: every block starts compressed
  //    (shared-model Huffman), the 2-edge algorithm deletes decompressed
  //    copies, and the decompression thread pre-decompresses the one
  //    block the profile predicts next.
  core::SystemConfig config;
  config.codec = compress::CodecKind::kSharedHuffman;
  config.policy.compress_k = 2;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.predecompress_k = 2;
  config.policy.predictor = runtime::PredictorKind::kProfile;

  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);
  std::cout << "compressed image: "
            << human_bytes(system.compressed_image_bytes()) << " (was "
            << human_bytes(system.original_image_bytes()) << ")\n\n";

  // 3. Simulate the run and report.
  const sim::RunResult result = system.run();
  std::cout << result.summary() << "\n";

  std::cout << "TL;DR: " << percent(result.avg_saving())
            << " average memory saved for a " << result.slowdown()
            << "x slowdown.\n";
  return 0;
}
