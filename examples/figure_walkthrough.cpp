// Figure 5 walkthrough: replay the paper's nine-step example and narrate
// every runtime event.
//
//   $ ./figure_walkthrough
//
// Uses the exact CFG fragment and access pattern (B0, B1, B0, B1, B3) of
// paper §5 / Figure 5, with the 2-edge compression algorithm and
// on-demand decompression, and prints the engine's event stream with the
// matching paper step numbers.
#include <iostream>

#include "cfg/paper_graphs.hpp"
#include "core/system.hpp"
#include "support/strings.hpp"
#include "workloads/synth_bytes.hpp"

int main() {
  using namespace apcc;

  cfg::Cfg graph = cfg::figure5_cfg();
  std::cout << "Figure 5 CFG: B0 -> {B1|B2} -> B3, back edge B1 -> B0\n"
            << "access pattern: B0, B1, B0, B1, B3   (k = 2)\n\n";

  core::SystemConfig config;
  config.codec = compress::CodecKind::kSharedHuffman;
  config.policy.strategy = runtime::DecompressionStrategy::kOnDemand;
  config.policy.compress_k = 2;

  const auto system = core::CodeCompressionSystem::from_cfg(
      std::move(graph),
      [](const cfg::BasicBlock& b) {
        return workloads::synthesize_block_bytes(b);
      },
      config);

  auto block_name = [&](cfg::BlockId id) {
    return id == cfg::kInvalidBlock ? std::string("-")
                                    : system.cfg().block(id).note;
  };

  const sim::RunResult result = system.run_with_events(
      cfg::figure5_trace(), [&](const sim::Event& e) {
        std::cout << "  t=" << e.time << "  "
                  << sim::event_kind_name(e.kind) << ' '
                  << block_name(e.block);
        if (e.aux != cfg::kInvalidBlock) {
          std::cout << " (from " << block_name(e.aux) << ')';
        }
        switch (e.kind) {
          case sim::EventKind::kException:
            std::cout << "   <- paper: fetch from compressed area faults";
            break;
          case sim::EventKind::kDemandDecompress:
            std::cout << "   <- paper: handler decompresses "
                      << block_name(e.block) << " into "
                      << block_name(e.block) << "'";
            break;
          case sim::EventKind::kPatch:
            std::cout << "   <- paper: branch in " << block_name(e.aux)
                      << " retargeted to the decompressed copy";
            break;
          case sim::EventKind::kDelete:
            std::cout << "   <- paper step (9): k=2 reached, delete "
                      << block_name(e.block) << "'";
            break;
          default:
            break;
        }
        std::cout << '\n';
      });

  std::cout << '\n' << result.summary();
  std::cout << "\nNote how the second entry to B1 (after step 7) raises no"
               "\nexception: the branch in B0' was already patched.\n";
  return 0;
}
