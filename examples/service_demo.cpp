// Service demo: the persistent job-submission API end to end.
//
//   $ ./example_service_demo
//
// Walks the serving lifecycle the one-shot quickstart skips: register a
// workload set once, submit a mixed bag of jobs (single runs, a policy
// grid, a suite campaign) that are all in flight on the Service's
// shared pool at once, then wait on the future-style handles and show
// what the artifact cache saved (each compressed image and each
// (workload, k) frontier geometry built exactly once, borrowed by every
// later cell).
#include <iostream>

#include "serving/service.hpp"
#include "support/strings.hpp"

int main() {
  using namespace apcc;

  // 1. One resident Service. Two pool workers: on a multicore host the
  //    jobs below genuinely overlap; on one vCPU the scheduling is
  //    still interleaved, and every outcome is byte-identical to the
  //    direct one-shot calls either way.
  serving::ServiceOptions options;
  options.workers = 2;
  serving::Service service(options);

  // 2. Register the workload set once. Registration is cheap -- no
  //    compression, no geometry -- artifacts are built lazily by the
  //    first job that needs them.
  const auto gsm = service.register_workload(
      workloads::make_workload(workloads::WorkloadKind::kGsmLike));
  const auto crc = service.register_workload(
      workloads::make_workload(workloads::WorkloadKind::kCrcLike));

  // 3. Submit everything before waiting on anything: a single run, the
  //    same run under LZSS (a second image artifact), a 6-point policy
  //    grid, and a two-workload campaign. Four jobs in flight on one
  //    pool.
  serving::RunJob run{gsm, {}, true};
  serving::RunJob run_lzss = run;
  run_lzss.config.codec = compress::CodecKind::kLzss;

  std::vector<sweep::SweepTask> grid;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      sweep::SweepTask task;
      task.label = std::string(runtime::strategy_name(strategy)) +
                   "/k=" + std::to_string(k);
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      grid.push_back(std::move(task));
    }
  }

  const auto run_handle = service.submit(run);
  const auto lzss_handle = service.submit(run_lzss);
  const auto sweep_handle = service.submit(serving::SweepJob{gsm, {}, grid});
  const auto campaign_handle =
      service.submit(serving::CampaignJob{{gsm, crc}, {}, grid});

  // 4. Handles are futures: wait() blocks until the job retires and
  //    returns a reference to its result.
  std::cout << "single run (huffman-shared): slowdown "
            << run_handle.wait().slowdown() << "\n"
            << "single run (lzss):           slowdown "
            << lzss_handle.wait().slowdown() << "\n\n";

  std::cout << "sweep over " << service.workload(gsm).name << ":\n";
  for (const auto& outcome : sweep_handle.wait()) {
    std::cout << "  " << outcome.label << ": slowdown "
              << outcome.result.slowdown() << "\n";
  }

  std::cout << "\ncampaign:\n";
  for (const auto& result : campaign_handle.wait()) {
    std::cout << "  " << result.workload << ": " << result.outcomes.size()
              << " grid points, best slowdown ";
    double best = result.outcomes.front().result.slowdown();
    for (const auto& outcome : result.outcomes) {
      best = std::min(best, outcome.result.slowdown());
    }
    std::cout << best << "\n";
  }

  // 5. What the cache did: every later job borrowed instead of
  //    rebuilding. A one-shot API would have built an image and a
  //    geometry cache per engine.
  const auto stats = service.cache_stats();
  std::cout << "\nartifact cache: " << stats.images.built
            << " images built, " << stats.images.borrows << " borrowed; "
            << stats.frontiers.built << " frontier caches built, "
            << stats.frontiers.borrows << " borrowed\n";
  return 0;
}
