// CFG inspector: assemble a program, print its disassembly, CFG
// structure, analyses, and Graphviz DOT.
//
//   $ ./cfg_inspector            # inspects the adpcm-like workload
//   $ ./cfg_inspector --random 7 # inspects a generated program (seed 7)
//
// Demonstrates the substrate layers on their own: isa (assembler +
// disassembler), cfg (builder + dominators/loops/frontier), and the
// profile gathered from a real interpreter run.
#include <iostream>
#include <string>

#include "cfg/analysis.hpp"
#include "cfg/dot.hpp"
#include "cfg/profile.hpp"
#include "isa/disasm.hpp"
#include "workloads/random_program.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace apcc;

  workloads::Workload workload;
  if (argc > 2 && std::string(argv[1]) == "--random") {
    workloads::RandomProgramOptions opts;
    opts.seed = static_cast<std::uint64_t>(std::stoull(argv[2]));
    workload = workloads::make_random_workload(opts);
  } else {
    workload = workloads::make_workload(workloads::WorkloadKind::kAdpcmLike);
  }

  std::cout << "=== program: " << workload.name << " ("
            << workload.program.word_count() << " words) ===\n";
  std::cout << isa::disassemble(workload.program) << '\n';

  std::cout << "=== basic blocks ===\n";
  const auto depths = cfg::loop_depths(workload.cfg);
  for (const auto& block : workload.cfg.blocks()) {
    std::cout << "B" << block.id << " [" << block.first_word << ", "
              << block.first_word + block.word_count << ")";
    if (!block.note.empty()) std::cout << " " << block.note;
    if (depths[block.id] > 0) {
      std::cout << " loop-depth=" << depths[block.id];
    }
    if (block.is_exit) std::cout << " EXIT";
    std::cout << " ->";
    for (const auto succ : workload.cfg.successor_ids(block.id)) {
      std::cout << " B" << succ;
    }
    std::cout << '\n';
  }

  std::cout << "\n=== loops ===\n";
  for (const auto& loop : cfg::natural_loops(workload.cfg)) {
    std::cout << "header B" << loop.header << ", body {";
    for (const auto b : loop.body) std::cout << " B" << b;
    std::cout << " }\n";
  }

  std::cout << "\n=== k-edge frontier of the entry block ===\n";
  for (const unsigned k : {1u, 2u, 3u}) {
    std::cout << "k=" << k << ":";
    for (const auto b :
         cfg::frontier_within(workload.cfg, workload.cfg.entry(), k)) {
      std::cout << " B" << b;
    }
    std::cout << '\n';
  }

  cfg::EdgeProfile profile(workload.cfg);
  profile.add_trace(workload.trace);
  std::cout << "\n=== profile ===\n"
            << "block entries: " << profile.total_entries()
            << ", hottest 5 blocks cover "
            << profile.hot_block_coverage(5) * 100.0 << "% of execution\n";

  std::cout << "\n=== DOT (pipe into `dot -Tsvg`) ===\n"
            << cfg::to_dot(workload.cfg);
  return 0;
}
