#!/usr/bin/env sh
# Regenerate the wire-format golden files in tests/serving/data from
# their current contents: each file is parsed and re-serialized through
# `apcc_cli wire-roundtrip`, which canonicalizes it under the current
# schema (adding newly-introduced keys at their defaults, fixing field
# order). Run after any deliberate wire change -- together with bumping
# JobSpec::kWireVersion and updating the golden headers to match (the
# strict parser rejects old headers, so sed them first) -- then review
# the diff; CI's golden gate diffs wire-roundtrip output against these
# files byte-for-byte.
#
# Failure policy: any roundtrip failure, empty output, or
# non-idempotent canonical form aborts with a message and a nonzero
# exit, leaving the golden untouched -- a partial or truncated golden
# must never land silently.
#
# Usage: tools/regen_wire_goldens.sh [path/to/apcc_cli]
# (defaults to build/apcc_cli relative to the repo root)
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cli=${1:-"$root/build/apcc_cli"}
data="$root/tests/serving/data"

fail() {
  echo "error: $1" >&2
  exit 1
}

[ -x "$cli" ] ||
  fail "apcc_cli not found at $cli (build it, or pass its path)"

for f in "$data"/*.wire; do
  tmp="$f.tmp"
  if ! "$cli" wire-roundtrip "$f" > "$tmp"; then
    rm -f "$tmp"
    fail "wire-roundtrip failed on ${f#"$root"/}; golden left untouched"
  fi
  [ -s "$tmp" ] || { rm -f "$tmp";
    fail "wire-roundtrip produced no output for ${f#"$root"/}"; }
  # The canonical form must be a fixed point: roundtripping it again
  # has to reproduce it byte-for-byte, or the codec itself is broken
  # and these goldens would bake the bug into CI.
  tmp2="$f.tmp2"
  if ! "$cli" wire-roundtrip "$tmp" > "$tmp2" ||
      ! cmp -s "$tmp" "$tmp2"; then
    rm -f "$tmp" "$tmp2"
    fail "canonical form of ${f#"$root"/} is not a serialize/parse fixed point"
  fi
  rm -f "$tmp2"
  if cmp -s "$tmp" "$f"; then
    rm -f "$tmp"
    echo "unchanged: ${f#"$root"/}"
  else
    mv "$tmp" "$f"
    echo "rewrote:   ${f#"$root"/}"
  fi
done

echo "done; review with: git diff tests/serving/data"
