#!/usr/bin/env sh
# Regenerate the wire-format golden files in tests/serving/data from
# their current contents: each file is parsed and re-serialized through
# `apcc_cli wire-roundtrip`, which canonicalizes it under the current
# schema (adding newly-introduced keys at their defaults, fixing field
# order). Run after any deliberate wire change -- together with bumping
# JobSpec::kWireVersion and updating the headers below -- then review
# the diff; CI's golden gate diffs wire-roundtrip output against these
# files byte-for-byte.
#
# Usage: tools/regen_wire_goldens.sh [path/to/apcc_cli]
# (defaults to build/apcc_cli relative to the repo root)
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cli=${1:-"$root/build/apcc_cli"}
data="$root/tests/serving/data"

if [ ! -x "$cli" ]; then
  echo "error: apcc_cli not found at $cli (build it, or pass its path)" >&2
  exit 1
fi

for f in "$data"/*.wire; do
  tmp="$f.tmp"
  "$cli" wire-roundtrip "$f" > "$tmp"
  if cmp -s "$tmp" "$f"; then
    rm -f "$tmp"
    echo "unchanged: ${f#"$root"/}"
  else
    mv "$tmp" "$f"
    echo "rewrote:   ${f#"$root"/}"
  fi
done

echo "done; review with: git diff tests/serving/data"
