// apcc_cli: command-line driver for the APCC toolchain.
//
// Subcommands:
//   asm <file.s>                 assemble; print stats + disassembly
//   cfg <file.s>                 assemble; print the CFG as Graphviz DOT
//   sim <file.s> [options]      assemble, execute for the access pattern,
//                                then simulate under a policy and report
//   sweep <file.s> [options]    run the strategy x k policy grid over the
//                                program, sharded across worker threads
//                                (the grid supplies --strategy/--kc/--kd
//                                itself; those flags are ignored here)
//   suite [options]              run the built-in workload suite
//   campaign [options]           run the strategy x k grid over *every*
//                                suite workload as one campaign: the whole
//                                (workload x task) matrix shares one pool,
//                                and engines over the same (workload, k)
//                                borrow one materialized FrontierCache
//                                (disable with --no-shared-frontiers)
//
// sim/sweep/suite/campaign options:
//   --codec null|mtf-rle|huffman|huffman-shared|lzss|codepack
//   --strategy on-demand|pre-all|pre-single
//   --predictor profile|static|oracle
//   --kc N            compression-side k (default 2)
//   --kd N            pre-decompression k (default 2)
//   --budget BYTES    decompressed-area budget (default unbounded)
//   --units N         decompression helper units (default 1)
//   --workers N       sweep/campaign worker threads (default: hardware
//                     concurrency)
//   --no-shared-frontiers   campaign: every engine owns its geometry
//   --csv             emit CSV instead of the text report
//
// Exit code 0 on success, 1 on usage errors, 2 on input errors.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "cfg/builder.hpp"
#include "cfg/dot.hpp"
#include "core/csv.hpp"
#include "core/system.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/interpreter.hpp"
#include "support/strings.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace apcc;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage: apcc_cli <asm|cfg|sim|sweep> <file.s> [options]\n"
      "       apcc_cli <suite|campaign> [options]\n"
      "options: --codec K --strategy S --predictor P --kc N --kd N\n"
      "         --budget BYTES --units N --workers N\n"
      "         --no-shared-frontiers --csv\n"
      "(sweep and campaign grid over strategy and k themselves:\n"
      " --strategy/--kc/--kd are ignored there)\n";
  std::exit(message.empty() ? 0 : 1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << '\n';
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

compress::CodecKind parse_codec(const std::string& name) {
  if (name == "null") return compress::CodecKind::kNull;
  if (name == "mtf-rle") return compress::CodecKind::kMtfRle;
  if (name == "huffman") return compress::CodecKind::kHuffman;
  if (name == "huffman-shared") return compress::CodecKind::kSharedHuffman;
  if (name == "lzss") return compress::CodecKind::kLzss;
  if (name == "codepack") return compress::CodecKind::kCodePack;
  usage("unknown codec '" + name + "'");
}

runtime::DecompressionStrategy parse_strategy(const std::string& name) {
  if (name == "on-demand") return runtime::DecompressionStrategy::kOnDemand;
  if (name == "pre-all") return runtime::DecompressionStrategy::kPreAll;
  if (name == "pre-single") return runtime::DecompressionStrategy::kPreSingle;
  usage("unknown strategy '" + name + "'");
}

runtime::PredictorKind parse_predictor(const std::string& name) {
  if (name == "profile") return runtime::PredictorKind::kProfile;
  if (name == "static") return runtime::PredictorKind::kStatic;
  if (name == "oracle") return runtime::PredictorKind::kOracle;
  usage("unknown predictor '" + name + "'");
}

struct CliOptions {
  core::SystemConfig config;
  sweep::SweepOptions sweep;
  sweep::CampaignOptions campaign;
  bool csv = false;
};

CliOptions parse_options(const std::vector<std::string>& args,
                         std::size_t first) {
  CliOptions opts;
  auto need_value = [&](std::size_t i) -> const std::string& {
    if (i + 1 >= args.size()) usage("missing value for " + args[i]);
    return args[i + 1];
  };
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--codec") {
      opts.config.codec = parse_codec(need_value(i++));
    } else if (a == "--strategy") {
      opts.config.policy.strategy = parse_strategy(need_value(i++));
    } else if (a == "--predictor") {
      opts.config.policy.predictor = parse_predictor(need_value(i++));
    } else if (a == "--kc") {
      opts.config.policy.compress_k =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
    } else if (a == "--kd") {
      opts.config.policy.predecompress_k =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
    } else if (a == "--budget") {
      opts.config.policy.memory_budget =
          static_cast<std::uint64_t>(parse_int(need_value(i++)));
    } else if (a == "--units") {
      opts.config.policy.decompress_units =
          static_cast<unsigned>(parse_int(need_value(i++)));
    } else if (a == "--workers") {
      opts.sweep.workers =
          static_cast<unsigned>(parse_int(need_value(i++)));
      opts.campaign.workers = opts.sweep.workers;
    } else if (a == "--no-shared-frontiers") {
      opts.campaign.share_frontiers = false;
    } else if (a == "--csv") {
      opts.csv = true;
    } else {
      usage("unknown option '" + a + "'");
    }
  }
  return opts;
}

workloads::Workload workload_from_file(const std::string& path) {
  workloads::Workload w;
  w.name = path;
  w.program = isa::assemble(read_file(path));
  auto built = cfg::build_cfg(w.program);
  w.cfg = std::move(built.cfg);
  w.word_to_block = std::move(built.word_to_block);
  isa::Interpreter interp(w.program);
  cfg::BlockTraceBuilder tracer(w.cfg, w.word_to_block);
  interp.set_trace_hook([&](std::uint32_t pc) { tracer.on_pc(pc); });
  const auto exec = interp.run();
  if (exec.stop != isa::StopReason::kHalted) {
    std::cerr << "error: program did not halt (stopped after " << exec.steps
              << " steps)\n";
    std::exit(2);
  }
  w.trace = tracer.take();
  cfg::EdgeProfile profile(w.cfg);
  profile.add_trace(w.trace);
  profile.apply_to(w.cfg);
  for (const auto& block : w.cfg.blocks()) {
    w.block_bytes.push_back(
        w.program.bytes(block.first_word, block.word_count));
  }
  return w;
}

int cmd_asm(const std::string& path) {
  const isa::Program program = isa::assemble(read_file(path));
  std::cout << path << ": " << program.word_count() << " words ("
            << human_bytes(program.size_bytes()) << "), "
            << program.functions().size() << " function(s)\n\n";
  std::cout << isa::disassemble(program);
  return 0;
}

int cmd_cfg(const std::string& path) {
  const isa::Program program = isa::assemble(read_file(path));
  const auto built = cfg::build_cfg(program);
  std::cout << cfg::to_dot(built.cfg);
  return 0;
}

int report(const workloads::Workload& w, const CliOptions& opts) {
  const auto system =
      core::CodeCompressionSystem::from_workload(w, opts.config);
  const sim::RunResult result = system.run();
  if (opts.csv) {
    std::cout << core::to_csv({{w.name, result}});
  } else {
    std::cout << "== " << w.name << " ==\n"
              << "image: " << human_bytes(w.image_bytes()) << " in "
              << w.cfg.block_count() << " blocks; trace "
              << w.trace.size() << " entries\n"
              << "compressed image: "
              << human_bytes(system.compressed_image_bytes()) << "\n\n"
              << result.summary() << '\n';
  }
  return 0;
}

int cmd_sim(const std::string& path, const CliOptions& opts) {
  return report(workload_from_file(path), opts);
}

/// The sweep/campaign policy grid: every decompression strategy x a k
/// sweep, varied over the baseline engine config.
std::vector<sweep::SweepTask> strategy_k_grid(const sim::EngineConfig& base) {
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      sweep::SweepTask task;
      task.label = std::string(runtime::strategy_name(strategy)) +
                   "/k=" + std::to_string(k);
      task.config = base;
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

int cmd_sweep(const std::string& path, const CliOptions& opts) {
  const auto w = workload_from_file(path);
  const auto system =
      core::CodeCompressionSystem::from_workload(w, opts.config);
  const auto tasks = strategy_k_grid(system.engine_config());
  std::vector<core::ReportRow> rows;
  for (auto& outcome : system.run_sweep(tasks, opts.sweep)) {
    rows.push_back({std::move(outcome.label), outcome.result});
  }
  std::cout << (opts.csv ? core::to_csv(rows)
                         : core::render_comparison(rows));
  return 0;
}

int cmd_campaign(const CliOptions& opts) {
  // Build every suite workload, then run the shared grid over all of
  // them as one campaign (one pool, shared per-(workload, k) geometry).
  std::vector<core::CodeCompressionSystem> systems;
  std::vector<std::string> names;
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto w = workloads::make_workload(kind);
    names.push_back(w.name);
    systems.push_back(
        core::CodeCompressionSystem::from_workload(w, opts.config));
  }
  std::vector<core::CampaignEntry> entries;
  entries.reserve(systems.size());
  for (std::size_t i = 0; i < systems.size(); ++i) {
    entries.push_back({names[i], &systems[i]});
  }
  const auto grid = strategy_k_grid(systems.front().engine_config());
  const auto results = core::run_campaign(entries, grid, opts.campaign);
  if (opts.csv) {
    // One flat CSV: label = workload/task, ready for cross-workload
    // plotting.
    std::vector<core::ReportRow> rows;
    for (const auto& result : results) {
      for (const auto& outcome : result.outcomes) {
        rows.push_back({result.workload + "/" + outcome.label,
                        outcome.result});
      }
    }
    std::cout << core::to_csv(rows);
  } else {
    for (const auto& result : results) {
      std::vector<core::ReportRow> rows;
      for (const auto& outcome : result.outcomes) {
        rows.push_back({outcome.label, outcome.result});
      }
      std::cout << "== " << result.workload << " ==\n"
                << core::render_comparison(rows) << '\n';
    }
  }
  return 0;
}

int cmd_suite(const CliOptions& opts) {
  std::vector<core::ReportRow> rows;
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto w = workloads::make_workload(kind);
    const auto system =
        core::CodeCompressionSystem::from_workload(w, opts.config);
    rows.push_back({w.name, system.run()});
  }
  std::cout << (opts.csv ? core::to_csv(rows)
                         : core::render_comparison(rows));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  try {
    const std::string& cmd = args[0];
    if (cmd == "suite") {
      return cmd_suite(parse_options(args, 1));
    }
    if (cmd == "campaign") {
      return cmd_campaign(parse_options(args, 1));
    }
    if (args.size() < 2) usage("command needs a file argument");
    if (cmd == "asm") return cmd_asm(args[1]);
    if (cmd == "cfg") return cmd_cfg(args[1]);
    if (cmd == "sim") return cmd_sim(args[1], parse_options(args, 2));
    if (cmd == "sweep") return cmd_sweep(args[1], parse_options(args, 2));
    usage("unknown command '" + cmd + "'");
  } catch (const apcc::CheckError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
