// apcc_cli: command-line driver for the APCC toolchain.
//
// Every simulation subcommand runs through one serving::Service: each
// workload is registered once, its compressed image and frontier
// geometry are built lazily on the service's pool and cached, and jobs
// are scheduled onto that one resident pool -- several jobs in flight
// at once in batch mode.
//
// Subcommands:
//   asm <file.s>                 assemble; print stats + disassembly
//   cfg <file.s>                 assemble; print the CFG as Graphviz DOT
//   sim <workload> [options]     one RunJob: simulate the workload's
//                                access pattern under a policy + report
//   sweep <workload> [options]   one SweepJob: the strategy x k policy
//                                grid over the workload
//   suite [options]              one RunJob per built-in suite workload,
//                                all in flight on the shared pool
//   campaign [options]           one CampaignJob: the strategy x k grid
//                                over every suite workload, shared
//                                (workload, k) frontier geometry
//   batch <jobs.txt> [options]   job-file mode: one job per line
//                                (run|sweep|campaign), workloads
//                                deduplicated through the artifact
//                                cache, every job submitted before the
//                                first is waited on
//
// <workload> is a path to a .s file or a built-in suite name
// (adpcm-like, gsm-like, jpeg-like, mpeg2-like, g721-like, pegwit-like,
// dijkstra-like, crc-like).
//
// batch job file: '#' starts a comment; each remaining line is
//   run <workload> [options]
//   sweep <workload> [options]
//   campaign [<workload>...] [options]   (no workloads = whole suite)
// The whole file is validated before anything is submitted. Per-job
// options live on the job lines, service-wide flags (--workers,
// --no-shared-frontiers, --csv) on the batch command line; a job line
// passing --workers, or the batch command line passing per-job config
// (--codec, --budget, ...), is a usage error, not a silent no-op.
//
// options:
//   --codec null|mtf-rle|huffman|huffman-shared|lzss|codepack
//   --strategy on-demand|pre-all|pre-single   (sim/run only)
//   --predictor profile|static|oracle
//   --kc N            compression-side k (default 2; sim/run only)
//   --kd N            pre-decompression k (default 2; sim/run only)
//   --budget BYTES    decompressed-area budget (default unbounded)
//   --units N         decompression helper units (default 1)
//   --workers N       service pool width (default: hardware concurrency)
//   --no-shared-frontiers   engines own their geometry (no borrowing)
//   --csv             emit CSV instead of the text report
//
// sweep and campaign grid over strategy and k themselves, so passing
// --strategy/--kc/--kd to them is contradictory and a usage error.
//
// Exit code 0 on success, 1 on usage errors (including contradictory
// grid options), 2 on input errors.
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "cfg/builder.hpp"
#include "cfg/dot.hpp"
#include "core/csv.hpp"
#include "core/report.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/interpreter.hpp"
#include "serving/service.hpp"
#include "support/strings.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace apcc;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage: apcc_cli <asm|cfg> <file.s>\n"
      "       apcc_cli <sim|sweep> <workload> [options]\n"
      "       apcc_cli <suite|campaign> [options]\n"
      "       apcc_cli batch <jobs.txt> [options]\n"
      "\n"
      "All simulation commands run through one serving::Service --\n"
      "workloads registered once, compressed images + frontier geometry\n"
      "cached, jobs scheduled onto one shared pool.\n"
      "\n"
      "<workload>: a .s file path or a suite name (adpcm-like, gsm-like,\n"
      "jpeg-like, mpeg2-like, g721-like, pegwit-like, dijkstra-like,\n"
      "crc-like)\n"
      "\n"
      "batch job file: one job per line --\n"
      "  run <workload> [options]\n"
      "  sweep <workload> [options]\n"
      "  campaign [<workload>...] [options]   (none = whole suite)\n"
      "\n"
      "options: --codec K --strategy S --predictor P --kc N --kd N\n"
      "         --budget BYTES --units N --workers N\n"
      "         --no-shared-frontiers --csv\n"
      "(sweep and campaign grid over strategy and k themselves:\n"
      " --strategy/--kc/--kd there is a usage error)\n";
  std::exit(message.empty() ? 0 : 1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << '\n';
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

compress::CodecKind parse_codec(const std::string& name) {
  if (name == "null") return compress::CodecKind::kNull;
  if (name == "mtf-rle") return compress::CodecKind::kMtfRle;
  if (name == "huffman") return compress::CodecKind::kHuffman;
  if (name == "huffman-shared") return compress::CodecKind::kSharedHuffman;
  if (name == "lzss") return compress::CodecKind::kLzss;
  if (name == "codepack") return compress::CodecKind::kCodePack;
  usage("unknown codec '" + name + "'");
}

runtime::DecompressionStrategy parse_strategy(const std::string& name) {
  if (name == "on-demand") return runtime::DecompressionStrategy::kOnDemand;
  if (name == "pre-all") return runtime::DecompressionStrategy::kPreAll;
  if (name == "pre-single") return runtime::DecompressionStrategy::kPreSingle;
  usage("unknown strategy '" + name + "'");
}

runtime::PredictorKind parse_predictor(const std::string& name) {
  if (name == "profile") return runtime::PredictorKind::kProfile;
  if (name == "static") return runtime::PredictorKind::kStatic;
  if (name == "oracle") return runtime::PredictorKind::kOracle;
  usage("unknown predictor '" + name + "'");
}

struct CliOptions {
  core::SystemConfig config;
  unsigned workers = 0;
  bool share_frontiers = true;
  bool csv = false;
  /// Which of --strategy/--kc/--kd appeared: grid commands (sweep,
  /// campaign) supply those axes themselves, so seeing one there is a
  /// contradiction and exits 1 instead of being silently ignored.
  std::vector<std::string> grid_overrides;
  /// --workers appeared: the pool is a Service property, so a batch
  /// job line passing it is a contradiction (exits 1), not a no-op.
  bool saw_workers = false;
  /// Per-job config flags seen (--codec/--predictor/--budget/--units,
  /// plus everything in grid_overrides): `batch` takes its per-job
  /// config from the job lines, so these on the batch command line are
  /// contradictions (exit 1), not silently dropped defaults.
  std::vector<std::string> config_flags;
};

CliOptions parse_options(const std::vector<std::string>& args,
                         std::size_t first) {
  CliOptions opts;
  auto need_value = [&](std::size_t i) -> const std::string& {
    if (i + 1 >= args.size()) usage("missing value for " + args[i]);
    return args[i + 1];
  };
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--codec") {
      opts.config.codec = parse_codec(need_value(i++));
      opts.config_flags.push_back(a);
    } else if (a == "--strategy") {
      opts.config.policy.strategy = parse_strategy(need_value(i++));
      opts.grid_overrides.push_back(a);
    } else if (a == "--predictor") {
      opts.config.policy.predictor = parse_predictor(need_value(i++));
      opts.config_flags.push_back(a);
    } else if (a == "--kc") {
      opts.config.policy.compress_k =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
      opts.grid_overrides.push_back(a);
    } else if (a == "--kd") {
      opts.config.policy.predecompress_k =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
      opts.grid_overrides.push_back(a);
    } else if (a == "--budget") {
      opts.config.policy.memory_budget =
          static_cast<std::uint64_t>(parse_int(need_value(i++)));
      opts.config_flags.push_back(a);
    } else if (a == "--units") {
      opts.config.policy.decompress_units =
          static_cast<unsigned>(parse_int(need_value(i++)));
      opts.config_flags.push_back(a);
    } else if (a == "--workers") {
      opts.workers = static_cast<unsigned>(parse_int(need_value(i++)));
      opts.saw_workers = true;
    } else if (a == "--no-shared-frontiers") {
      opts.share_frontiers = false;
    } else if (a == "--csv") {
      opts.csv = true;
    } else {
      usage("unknown option '" + a + "'");
    }
  }
  return opts;
}

/// Grid commands own the strategy/k axes; reject attempts to pin them.
void reject_grid_overrides(const std::string& command,
                           const CliOptions& opts) {
  if (opts.grid_overrides.empty()) return;
  usage("'" + command + "' grids over strategy and k itself; " +
        opts.grid_overrides.front() +
        " contradicts that (drop it, or use 'sim'/'run' for a single "
        "configuration)");
}

std::optional<workloads::WorkloadKind> suite_kind(const std::string& name) {
  for (const auto kind : workloads::all_workload_kinds()) {
    if (name == workloads::workload_name(kind)) return kind;
  }
  return std::nullopt;
}

workloads::Workload workload_from_file(const std::string& path) {
  workloads::Workload w;
  w.name = path;
  w.program = isa::assemble(read_file(path));
  auto built = cfg::build_cfg(w.program);
  w.cfg = std::move(built.cfg);
  w.word_to_block = std::move(built.word_to_block);
  isa::Interpreter interp(w.program);
  cfg::BlockTraceBuilder tracer(w.cfg, w.word_to_block);
  interp.set_trace_hook([&](std::uint32_t pc) { tracer.on_pc(pc); });
  const auto exec = interp.run();
  if (exec.stop != isa::StopReason::kHalted) {
    std::cerr << "error: program did not halt (stopped after " << exec.steps
              << " steps)\n";
    std::exit(2);
  }
  w.trace = tracer.take();
  cfg::EdgeProfile profile(w.cfg);
  profile.add_trace(w.trace);
  profile.apply_to(w.cfg);
  for (const auto& block : w.cfg.blocks()) {
    w.block_bytes.push_back(
        w.program.bytes(block.first_word, block.word_count));
  }
  return w;
}

/// Registers workloads with the Service on first use and deduplicates
/// by spec, so a batch file referring to "gsm-like" five times shares
/// one registration (and therefore one artifact cache).
class WorkloadDirectory {
 public:
  explicit WorkloadDirectory(serving::Service& service) : service_(service) {}

  serving::WorkloadId id_for(const std::string& spec) {
    const auto it = ids_.find(spec);
    if (it != ids_.end()) return it->second;
    serving::WorkloadId id = 0;
    if (const auto kind = suite_kind(spec)) {
      id = service_.register_workload(workloads::make_workload(*kind));
    } else {
      id = service_.register_workload(workload_from_file(spec));
    }
    ids_.emplace(spec, id);
    return id;
  }

 private:
  serving::Service& service_;
  std::map<std::string, serving::WorkloadId> ids_;
};

/// The sweep/campaign policy grid: every decompression strategy x a k
/// sweep, varied over the baseline engine config.
std::vector<sweep::SweepTask> strategy_k_grid(const sim::EngineConfig& base) {
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      sweep::SweepTask task;
      task.label = std::string(runtime::strategy_name(strategy)) +
                   "/k=" + std::to_string(k);
      task.config = base;
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

// ---------------------------------------------------------------- output

void print_run(serving::Service& service, serving::WorkloadId id,
               const sim::RunResult& result, bool csv) {
  const workloads::Workload& w = service.workload(id);
  if (csv) {
    std::cout << core::to_csv({{w.name, result}});
  } else {
    std::cout << "== " << w.name << " ==\n"
              << "image: " << human_bytes(w.image_bytes()) << " in "
              << w.cfg.block_count() << " blocks; trace " << w.trace.size()
              << " entries\n"
              << "compressed image: "
              << human_bytes(result.compressed_area_bytes) << "\n\n"
              << result.summary() << '\n';
  }
}

void print_sweep(const std::vector<sweep::SweepOutcome>& outcomes, bool csv) {
  std::vector<core::ReportRow> rows;
  rows.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    rows.push_back({outcome.label, outcome.result});
  }
  std::cout << (csv ? core::to_csv(rows) : core::render_comparison(rows));
}

void print_campaign(const std::vector<sweep::CampaignResult>& results,
                    bool csv) {
  if (csv) {
    // One flat CSV: label = workload/task, ready for cross-workload
    // plotting.
    std::vector<core::ReportRow> rows;
    for (const auto& result : results) {
      for (const auto& outcome : result.outcomes) {
        rows.push_back(
            {result.workload + "/" + outcome.label, outcome.result});
      }
    }
    std::cout << core::to_csv(rows);
  } else {
    for (const auto& result : results) {
      std::vector<core::ReportRow> rows;
      for (const auto& outcome : result.outcomes) {
        rows.push_back({outcome.label, outcome.result});
      }
      std::cout << "== " << result.workload << " ==\n"
                << core::render_comparison(rows) << '\n';
    }
  }
}

// ------------------------------------------------------------- commands

int cmd_asm(const std::string& path) {
  const isa::Program program = isa::assemble(read_file(path));
  std::cout << path << ": " << program.word_count() << " words ("
            << human_bytes(program.size_bytes()) << "), "
            << program.functions().size() << " function(s)\n\n";
  std::cout << isa::disassemble(program);
  return 0;
}

int cmd_cfg(const std::string& path) {
  const isa::Program program = isa::assemble(read_file(path));
  const auto built = cfg::build_cfg(program);
  std::cout << cfg::to_dot(built.cfg);
  return 0;
}

int cmd_sim(const std::string& spec, const CliOptions& opts) {
  serving::Service service({opts.workers});
  WorkloadDirectory directory(service);
  const auto id = directory.id_for(spec);
  const auto handle = service.submit(
      serving::RunJob{id, opts.config, opts.share_frontiers});
  print_run(service, id, handle.wait(), opts.csv);
  return 0;
}

int cmd_sweep(const std::string& spec, const CliOptions& opts) {
  reject_grid_overrides("sweep", opts);
  serving::Service service({opts.workers});
  WorkloadDirectory directory(service);
  const auto id = directory.id_for(spec);
  serving::SweepJob job{id, opts.config,
                        strategy_k_grid(core::engine_config(opts.config)),
                        opts.share_frontiers};
  const auto handle = service.submit(std::move(job));
  print_sweep(handle.wait(), opts.csv);
  return 0;
}

int cmd_suite(const CliOptions& opts) {
  serving::Service service({opts.workers});
  WorkloadDirectory directory(service);
  // Submit every workload's RunJob before waiting on any: the whole
  // suite is in flight on the shared pool at once.
  std::vector<serving::WorkloadId> ids;
  std::vector<serving::JobHandle<sim::RunResult>> handles;
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto id = directory.id_for(workloads::workload_name(kind));
    ids.push_back(id);
    handles.push_back(service.submit(
        serving::RunJob{id, opts.config, opts.share_frontiers}));
  }
  std::vector<core::ReportRow> rows;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    rows.push_back({service.workload(ids[i]).name, handles[i].wait()});
  }
  std::cout << (opts.csv ? core::to_csv(rows) : core::render_comparison(rows));
  return 0;
}

int cmd_campaign(const CliOptions& opts) {
  reject_grid_overrides("campaign", opts);
  serving::Service service({opts.workers});
  WorkloadDirectory directory(service);
  serving::CampaignJob job;
  for (const auto kind : workloads::all_workload_kinds()) {
    job.workloads.push_back(directory.id_for(workloads::workload_name(kind)));
  }
  job.config = opts.config;
  job.grid = strategy_k_grid(core::engine_config(opts.config));
  job.share_frontiers = opts.share_frontiers;
  const auto handle = service.submit(std::move(job));
  print_campaign(handle.wait(), opts.csv);
  return 0;
}

// ------------------------------------------------------------ batch mode

/// One parsed + submitted batch job, remembered for ordered printing.
struct BatchJob {
  std::string banner;
  bool csv = false;
  serving::WorkloadId run_workload = 0;  // run jobs only
  std::variant<serving::JobHandle<sim::RunResult>,
               serving::JobHandle<std::vector<sweep::SweepOutcome>>,
               serving::JobHandle<std::vector<sweep::CampaignResult>>>
      handle;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string token;
  while (ss >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

/// A fully-validated batch line, not yet submitted. Parsing the whole
/// file before submitting anything means a usage error on line N exits
/// before any work starts (no jobs abandoned mid-flight).
struct ParsedJob {
  enum class Kind : std::uint8_t { kRun, kSweep, kCampaign } kind{};
  std::vector<std::string> specs;  // one workload (run/sweep) or many
  CliOptions opts;
  std::string banner;
};

ParsedJob parse_batch_line(const std::vector<std::string>& tokens,
                           const std::string& where) {
  ParsedJob job;
  const std::string& verb = tokens[0];
  std::size_t options_from = 0;
  if (verb == "run" || verb == "sweep") {
    job.kind = verb == "run" ? ParsedJob::Kind::kRun : ParsedJob::Kind::kSweep;
    if (tokens.size() < 2 || tokens[1].rfind("--", 0) == 0) {
      usage(where + ": '" + verb + "' needs a workload");
    }
    job.specs.push_back(tokens[1]);
    job.banner = verb + " " + tokens[1];
    options_from = 2;
  } else if (verb == "campaign") {
    job.kind = ParsedJob::Kind::kCampaign;
    std::size_t next = 1;
    while (next < tokens.size() && tokens[next].rfind("--", 0) != 0) {
      job.specs.push_back(tokens[next++]);
    }
    if (job.specs.empty()) {
      for (const auto kind : workloads::all_workload_kinds()) {
        job.specs.push_back(workloads::workload_name(kind));
      }
    }
    job.banner =
        "campaign (" + std::to_string(job.specs.size()) + " workload(s))";
    options_from = next;
  } else {
    usage(where + ": unknown job '" + verb +
          "' (expected run, sweep, or campaign)");
  }
  job.opts = parse_options(tokens, options_from);
  if (job.kind != ParsedJob::Kind::kRun && !job.opts.grid_overrides.empty()) {
    usage(where + ": '" + verb + "' grids over strategy and k itself; " +
          job.opts.grid_overrides.front() + " contradicts that");
  }
  if (job.opts.saw_workers) {
    usage(where + ": --workers is a service-wide option; pass it to "
                  "'apcc_cli batch' itself, not a job line");
  }
  return job;
}

int cmd_batch(const std::string& path, const CliOptions& global) {
  // Per-job config belongs on the job lines; accepting it here and
  // applying it to nothing would be the silent-ignore trap this CLI
  // rejects everywhere else. Only service-wide flags (--workers,
  // --no-shared-frontiers, --csv) mean anything batch-wide.
  if (!global.config_flags.empty() || !global.grid_overrides.empty()) {
    const std::string& flag = !global.config_flags.empty()
                                  ? global.config_flags.front()
                                  : global.grid_overrides.front();
    usage("'batch' takes per-job options on the job lines; " + flag +
          " on the batch command line would be silently ignored");
  }

  // Phase 1: parse and validate the whole file. Usage errors exit here,
  // before a Service exists or any job is in flight.
  std::istringstream file(read_file(path));
  std::vector<ParsedJob> parsed;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    parsed.push_back(
        parse_batch_line(tokens, path + ":" + std::to_string(line_no)));
  }
  if (parsed.empty()) usage(path + ": no jobs (expected run/sweep/campaign)");

  // Phase 2: register workloads (input errors exit 2 here, still
  // before submission) and submit every job. Nothing is waited on yet,
  // so the scheduler has the whole file in flight: a long campaign's
  // tail overlaps the next job's cells, and workloads shared between
  // lines hit the same cached artifacts.
  serving::Service service({global.workers});
  WorkloadDirectory directory(service);
  std::vector<BatchJob> jobs;
  for (ParsedJob& item : parsed) {
    const bool share =
        item.opts.share_frontiers && global.share_frontiers;
    BatchJob job;
    job.csv = global.csv || item.opts.csv;
    job.banner = std::move(item.banner);
    switch (item.kind) {
      case ParsedJob::Kind::kRun: {
        const auto id = directory.id_for(item.specs[0]);
        job.run_workload = id;
        job.handle =
            service.submit(serving::RunJob{id, item.opts.config, share});
        break;
      }
      case ParsedJob::Kind::kSweep: {
        const auto id = directory.id_for(item.specs[0]);
        job.run_workload = id;
        job.handle = service.submit(serving::SweepJob{
            id, item.opts.config,
            strategy_k_grid(core::engine_config(item.opts.config)), share});
        break;
      }
      case ParsedJob::Kind::kCampaign: {
        serving::CampaignJob campaign;
        for (const auto& spec : item.specs) {
          campaign.workloads.push_back(directory.id_for(spec));
        }
        campaign.config = item.opts.config;
        campaign.grid = strategy_k_grid(core::engine_config(item.opts.config));
        campaign.share_frontiers = share;
        job.handle = service.submit(std::move(campaign));
        break;
      }
    }
    jobs.push_back(std::move(job));
  }

  // Phase 3: wait and print in submission order.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    BatchJob& job = jobs[i];
    std::cout << "### job " << (i + 1) << ": " << job.banner << "\n";
    if (std::holds_alternative<serving::JobHandle<sim::RunResult>>(
            job.handle)) {
      print_run(service, job.run_workload,
                std::get<serving::JobHandle<sim::RunResult>>(job.handle)
                    .wait(),
                job.csv);
    } else if (std::holds_alternative<
                   serving::JobHandle<std::vector<sweep::SweepOutcome>>>(
                   job.handle)) {
      print_sweep(
          std::get<serving::JobHandle<std::vector<sweep::SweepOutcome>>>(
              job.handle)
              .wait(),
          job.csv);
    } else {
      print_campaign(
          std::get<serving::JobHandle<std::vector<sweep::CampaignResult>>>(
              job.handle)
              .wait(),
          job.csv);
    }
    std::cout << '\n';
  }
  const auto stats = service.cache_stats();
  std::cerr << "batch: " << jobs.size() << " job(s); artifact cache: "
            << stats.images_built << " image(s) built, "
            << stats.image_borrows << " borrowed; " << stats.frontiers_built
            << " frontier cache(s) built, " << stats.frontier_borrows
            << " borrowed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  try {
    const std::string& cmd = args[0];
    if (cmd == "suite") {
      return cmd_suite(parse_options(args, 1));
    }
    if (cmd == "campaign") {
      return cmd_campaign(parse_options(args, 1));
    }
    if (args.size() < 2) usage("command needs a file argument");
    if (cmd == "asm") return cmd_asm(args[1]);
    if (cmd == "cfg") return cmd_cfg(args[1]);
    if (cmd == "sim") return cmd_sim(args[1], parse_options(args, 2));
    if (cmd == "sweep") return cmd_sweep(args[1], parse_options(args, 2));
    if (cmd == "batch") return cmd_batch(args[1], parse_options(args, 2));
    usage("unknown command '" + cmd + "'");
  } catch (const apcc::CheckError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
