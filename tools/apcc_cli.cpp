// apcc_cli: command-line driver for the APCC toolchain.
//
// Every simulation subcommand runs through one serving::Service: each
// workload is registered once, its compressed image and frontier
// geometry are built lazily on the service's pool and cached, and jobs
// are scheduled onto that one resident pool -- several jobs in flight
// at once in batch and serve modes, under the per-job QoS (priority
// class, worker budget) their JobSpecs carry.
//
// Subcommands:
//   asm <file.s>                 assemble; print stats + disassembly
//   cfg <file.s>                 assemble; print the CFG as Graphviz DOT
//   sim <workload> [options]     one run job: simulate the workload's
//                                access pattern under a policy + report
//   sweep <workload> [options]   one sweep job: the strategy x k policy
//                                grid over the workload
//   suite [options]              one run job per built-in suite workload,
//                                all in flight on the shared pool
//   campaign [options]           one campaign job: the strategy x k grid
//                                over every suite workload, shared
//                                (workload, k) frontier geometry
//   batch <jobs.wire> [options]  job-file mode: the file holds wire
//                                format job records (serving/wire.hpp),
//                                every job submitted before the first is
//                                waited on; --wire emits results as wire
//                                records for machine consumption
//   serve [options]              the remote front door: read job records
//                                from stdin, stream result records to
//                                stdout (in submission order). --max-queued
//                                bounds admission (over-limit jobs get a
//                                `status rejected` record); SIGINT/SIGTERM
//                                drains gracefully -- in-flight jobs
//                                finish, queued jobs resolve `status
//                                cancelled`, and every accepted job still
//                                gets exactly one result record.
//                                --listen PORT serves the same protocol
//                                over TCP instead: one session per
//                                connection, per-session result ordering,
//                                untagged jobs inherit the connection's
//                                client tag ("conn-<n>"), and the same
//                                drain semantics over live sockets. The
//                                stdin/stdout mode stays the golden/human
//                                path
//   wire-roundtrip <file>        parse every record in a wire file and
//                                re-serialize it canonically (the CI
//                                golden round-trip gate)
//   version                      print the tool version and the wire
//                                schema version it speaks
//
// <workload> is a path to a .s file or a built-in suite name
// (adpcm-like, gsm-like, jpeg-like, mpeg2-like, g721-like, pegwit-like,
// dijkstra-like, crc-like).
//
// batch / serve job records are the versioned wire format -- see
// docs/API.md for the full grammar. The minimal job is:
//
//   apcc.job v4
//   kind run
//   workload gsm-like
//   end
//
// A sweep/campaign record lists explicit `task` lines or expands the
// standard grid with `grid strategy-k`; `priority high|normal|batch`,
// `max-workers N`, and `client <tag>` carry the QoS metadata. The
// whole batch file is parsed and validated before anything is
// submitted, and a malformed record is reported with its file line and
// a snippet of the offending text.
//
// options:
//   --codec null|mtf-rle|huffman|huffman-shared|lzss|codepack|
//           field-split|fpc|bdi|adaptive
//   --strategy on-demand|pre-all|pre-single   (sim/run only)
//   --predictor profile|static|oracle
//   --kc N            compression-side k (default 2; sim/run only)
//   --kd N            pre-decompression k (default 2; sim/run only)
//   --budget BYTES    decompressed-area budget (default unbounded)
//   --units N         decompression helper units (default 1)
//   --workers N       service pool width (default: hardware concurrency)
//   --cache-budget-bytes N          artifact-cache ceiling across images
//                     and frontier geometry (0 = unbounded). Over-budget
//                     artifacts are evicted cost-aware at publish time
//                     and rebuilt bit-identically on next use -- results
//                     never change, only when artifacts are rebuilt
//   --cache-budget-image-bytes N    per-kind image ceiling
//   --cache-budget-frontier-bytes N per-kind geometry ceiling
//   --batch-cells N   sweep/campaign: grid cells stepped in lockstep per
//                     pool work item (0 = one engine per cell; results
//                     are byte-identical either way)
//   --max-queued N    serve: admission bound -- at most N jobs in flight,
//                     over-limit submissions get `status rejected` records
//   --max-queued-per-client N  serve: the same bound per client tag
//   --listen PORT     serve: accept wire sessions over TCP on PORT
//                     (0 = ephemeral; the bound address is printed to
//                     stderr) instead of stdin/stdout
//   --host ADDR       serve: bind ADDR (default 127.0.0.1; needs --listen)
//   --client-weight TAG=W  serve: fair-share weight for a client tag
//                     (repeatable; absent tags weigh 1). Server-side
//                     policy -- never part of the wire records
//   --no-fair-share   serve: strict lowest-id scheduling within each
//                     priority class (the pre-fair-share reference);
//                     outcomes are byte-identical either way
//   --no-shared-frontiers   engines own their geometry (no borrowing)
//   --csv             emit CSV instead of the text report
//   --wire            batch: emit results as wire records
//
// sweep and campaign grid over strategy and k themselves, so passing
// --strategy/--kc/--kd to them is contradictory and a usage error.
// batch and serve take per-job configuration from the job records, so
// per-job flags on their command lines are usage errors too.
//
// Exit code 0 on success, 1 on usage errors (including malformed wire
// records and contradictory grid options), 2 on input errors.
#include <condition_variable>
#include <csignal>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfg/builder.hpp"
#include "cfg/dot.hpp"
#include "core/csv.hpp"
#include "core/report.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/interpreter.hpp"
#include "net/server.hpp"
#include "serving/service.hpp"
#include "serving/wire.hpp"
#include "support/strings.hpp"
#include "sweep/sweep.hpp"

/// Graceful-drain flag for `serve`: set by SIGINT/SIGTERM. The handlers
/// are installed *without* SA_RESTART so the blocking stdin read fails
/// with EINTR instead of resuming -- the read loop then observes the
/// flag and drains. (File scope, C linkage constraints: signal handlers
/// cannot touch anything else here.)
namespace {
volatile std::sig_atomic_t g_serve_shutdown = 0;
}
extern "C" void apcc_cli_serve_signal(int) { g_serve_shutdown = 1; }

namespace {

using namespace apcc;

/// The tool's own version (wire schema versioning is separate --
/// JobSpec::kWireVersion -- and printed alongside by `version`).
constexpr const char* kToolVersion = "0.6.0";

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage: apcc_cli <asm|cfg> <file.s>\n"
      "       apcc_cli <sim|sweep> <workload> [options]\n"
      "       apcc_cli <suite|campaign> [options]\n"
      "       apcc_cli batch <jobs.wire> [options]\n"
      "       apcc_cli serve [options]\n"
      "       apcc_cli wire-roundtrip <file>\n"
      "       apcc_cli version\n"
      "\n"
      "All simulation commands run through one serving::Service --\n"
      "workloads registered once, compressed images + frontier geometry\n"
      "cached, jobs scheduled onto one shared pool under their QoS\n"
      "(priority class, worker budget).\n"
      "\n"
      "<workload>: a .s file path or a suite name (adpcm-like, gsm-like,\n"
      "jpeg-like, mpeg2-like, g721-like, pegwit-like, dijkstra-like,\n"
      "crc-like)\n"
      "\n"
      "batch files and the serve stdin stream hold wire format job\n"
      "records (docs/API.md):\n"
      "  apcc.job v4\n"
      "  kind run|sweep|campaign\n"
      "  workload <name-or-path>      (repeatable for campaign)\n"
      "  priority high|normal|batch   (optional QoS)\n"
      "  max-workers N                (optional worker budget)\n"
      "  deadline-ms N                (optional per-job deadline)\n"
      "  batch-cells N                (optional lockstep batch width)\n"
      "  grid strategy-k              (or explicit task lines)\n"
      "  end\n"
      "\n"
      "options: --codec K --strategy S --predictor P --kc N --kd N\n"
      "         --budget BYTES --units N --workers N --max-queued N\n"
      "         --max-queued-per-client N --listen PORT --host ADDR\n"
      "         --client-weight TAG=W --no-fair-share\n"
      "         --cache-budget-bytes N --cache-budget-image-bytes N\n"
      "         --cache-budget-frontier-bytes N\n"
      "         --batch-cells N --no-shared-frontiers --csv --wire\n"
      "(sweep and campaign grid over strategy and k themselves:\n"
      " --strategy/--kc/--kd there is a usage error; batch and serve\n"
      " take per-job configuration from the job records; --max-queued,\n"
      " --max-queued-per-client, --listen, --host, --client-weight, and\n"
      " --no-fair-share are serve-only. serve --listen PORT speaks the\n"
      " same wire protocol over TCP -- one session per connection,\n"
      " results in per-session submission order, untagged jobs billed\n"
      " to the connection's own client tag)\n";
  std::exit(message.empty() ? 0 : 1);
}

/// Wire format diagnostics: the offending position and a snippet of
/// the input, not just exit 1. `where` names the source (file path or
/// "stdin"); the WireError carries the absolute line number in it.
[[noreturn]] void wire_usage(const std::string& where,
                             const serving::wire::WireError& error) {
  std::cerr << "error: " << where << ":" << error.line() << ": "
            << error.what() << '\n';
  if (!error.snippet().empty()) {
    std::cerr << "  " << error.line() << " | " << error.snippet() << '\n';
  }
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  APCC_CHECK(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

compress::CodecKind parse_codec(const std::string& name) {
  if (name == "null") return compress::CodecKind::kNull;
  if (name == "mtf-rle") return compress::CodecKind::kMtfRle;
  if (name == "huffman") return compress::CodecKind::kHuffman;
  if (name == "huffman-shared") return compress::CodecKind::kSharedHuffman;
  if (name == "lzss") return compress::CodecKind::kLzss;
  if (name == "codepack") return compress::CodecKind::kCodePack;
  if (name == "field-split") return compress::CodecKind::kFieldSplit;
  if (name == "fpc") return compress::CodecKind::kFpc;
  if (name == "bdi") return compress::CodecKind::kBdi;
  if (name == "adaptive") return compress::CodecKind::kAdaptive;
  usage("unknown codec '" + name + "'");
}

runtime::DecompressionStrategy parse_strategy(const std::string& name) {
  if (name == "on-demand") return runtime::DecompressionStrategy::kOnDemand;
  if (name == "pre-all") return runtime::DecompressionStrategy::kPreAll;
  if (name == "pre-single") return runtime::DecompressionStrategy::kPreSingle;
  usage("unknown strategy '" + name + "'");
}

runtime::PredictorKind parse_predictor(const std::string& name) {
  if (name == "profile") return runtime::PredictorKind::kProfile;
  if (name == "static") return runtime::PredictorKind::kStatic;
  if (name == "oracle") return runtime::PredictorKind::kOracle;
  usage("unknown predictor '" + name + "'");
}

struct CliOptions {
  core::SystemConfig config;
  unsigned workers = 0;
  /// Service artifact-cache ceilings (--cache-budget-bytes and the
  /// per-kind variants; 0 = unbounded, the historical behaviour).
  /// Server-side configuration like --workers: accepted on every
  /// Service-backed command, never part of the wire job records.
  serving::CacheBudget cache_budget;
  /// serve-only admission bound (0 = unbounded): at most N jobs
  /// submitted-but-unfinished; over-limit jobs get rejected records.
  std::size_t max_queued = 0;
  /// serve-only: the same bound per client tag (0 = unbounded).
  std::size_t max_queued_per_client = 0;
  /// serve-only: TCP mode -- accept wire sessions on this port instead
  /// of reading stdin (0 = ephemeral). nullopt = stdin/stdout mode.
  std::optional<std::uint16_t> listen;
  /// serve-only: the address --listen binds (loopback unless asked).
  std::string host = "127.0.0.1";
  /// serve-only: per-tag fair-share weights (--client-weight TAG=W).
  std::map<std::string, unsigned> client_weights;
  /// serve-only: false = strict lowest-id scheduling within each
  /// priority class (--no-fair-share, the differential reference).
  bool fair_share = true;
  bool share_frontiers = true;
  /// Lockstep batch width for grid commands (sweep/campaign); 0 keeps
  /// the historical one-engine-per-cell path. Run-kind commands reject
  /// it (a run job has a single cell), and batch/serve take it from
  /// the job records like every other per-job knob.
  std::uint32_t batch_cells = 0;
  bool csv = false;
  bool wire = false;
  /// Which of --strategy/--kc/--kd appeared: grid commands (sweep,
  /// campaign) supply those axes themselves, so seeing one there is a
  /// contradiction and exits 1 instead of being silently ignored.
  std::vector<std::string> grid_overrides;
  /// Per-job config flags seen (--codec/--predictor/--budget/--units,
  /// plus everything in grid_overrides): `batch` and `serve` take
  /// per-job config from the job records, so these on their command
  /// lines are contradictions (exit 1), not silently dropped defaults.
  std::vector<std::string> config_flags;
};

CliOptions parse_options(const std::vector<std::string>& args,
                         std::size_t first) {
  CliOptions opts;
  auto need_value = [&](std::size_t i) -> const std::string& {
    if (i + 1 >= args.size()) usage("missing value for " + args[i]);
    return args[i + 1];
  };
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--codec") {
      opts.config.codec = parse_codec(need_value(i++));
      opts.config_flags.push_back(a);
    } else if (a == "--strategy") {
      opts.config.policy.strategy = parse_strategy(need_value(i++));
      opts.grid_overrides.push_back(a);
    } else if (a == "--predictor") {
      opts.config.policy.predictor = parse_predictor(need_value(i++));
      opts.config_flags.push_back(a);
    } else if (a == "--kc") {
      opts.config.policy.compress_k =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
      opts.grid_overrides.push_back(a);
    } else if (a == "--kd") {
      opts.config.policy.predecompress_k =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
      opts.grid_overrides.push_back(a);
    } else if (a == "--budget") {
      opts.config.policy.memory_budget =
          static_cast<std::uint64_t>(parse_int(need_value(i++)));
      opts.config_flags.push_back(a);
    } else if (a == "--units") {
      opts.config.policy.decompress_units =
          static_cast<unsigned>(parse_int(need_value(i++)));
      opts.config_flags.push_back(a);
    } else if (a == "--workers") {
      opts.workers = static_cast<unsigned>(parse_int(need_value(i++)));
    } else if (a == "--cache-budget-bytes") {
      opts.cache_budget.total_bytes =
          static_cast<std::uint64_t>(parse_int(need_value(i++)));
    } else if (a == "--cache-budget-image-bytes") {
      opts.cache_budget.image_bytes =
          static_cast<std::uint64_t>(parse_int(need_value(i++)));
    } else if (a == "--cache-budget-frontier-bytes") {
      opts.cache_budget.frontier_bytes =
          static_cast<std::uint64_t>(parse_int(need_value(i++)));
    } else if (a == "--max-queued") {
      opts.max_queued = static_cast<std::size_t>(parse_int(need_value(i++)));
    } else if (a == "--max-queued-per-client") {
      opts.max_queued_per_client =
          static_cast<std::size_t>(parse_int(need_value(i++)));
    } else if (a == "--listen") {
      const std::int64_t port = parse_int(need_value(i++));
      if (port < 0 || port > 65535) usage("--listen: port out of range");
      opts.listen = static_cast<std::uint16_t>(port);
    } else if (a == "--host") {
      opts.host = need_value(i++);
    } else if (a == "--client-weight") {
      const std::string& value = need_value(i++);
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        usage("--client-weight wants TAG=WEIGHT, got '" + value + "'");
      }
      const std::int64_t weight = parse_int(value.substr(eq + 1));
      if (weight < 1) usage("--client-weight: weight must be >= 1");
      opts.client_weights[value.substr(0, eq)] =
          static_cast<unsigned>(weight);
    } else if (a == "--no-fair-share") {
      opts.fair_share = false;
    } else if (a == "--batch-cells") {
      opts.batch_cells =
          static_cast<std::uint32_t>(parse_int(need_value(i++)));
      opts.config_flags.push_back(a);
    } else if (a == "--no-shared-frontiers") {
      opts.share_frontiers = false;
    } else if (a == "--csv") {
      opts.csv = true;
    } else if (a == "--wire") {
      opts.wire = true;
    } else {
      usage("unknown option '" + a + "'");
    }
  }
  return opts;
}

/// Only batch emits wire records; anywhere else --wire would be
/// silently ignored (the trap this CLI rejects everywhere).
void reject_wire_flag(const std::string& command, const CliOptions& opts) {
  if (!opts.wire) return;
  usage("'" + command + "' has no wire output; --wire is only meaningful "
        "for 'batch' (use 'serve' for a wire stream)");
}

/// The serve-only flags (--max-queued and friends bound or schedule a
/// *stream* of jobs; --listen/--host open the TCP front door);
/// everywhere else they would be silently ignored.
void reject_max_queued(const std::string& command, const CliOptions& opts) {
  std::string flag;
  if (opts.max_queued != 0) flag = "--max-queued";
  if (opts.max_queued_per_client != 0) flag = "--max-queued-per-client";
  if (opts.listen) flag = "--listen";
  if (opts.host != "127.0.0.1") flag = "--host";
  if (!opts.client_weights.empty()) flag = "--client-weight";
  if (!opts.fair_share) flag = "--no-fair-share";
  if (flag.empty()) return;
  usage("'" + command + "' submits a fixed set of jobs; " + flag +
        " is only meaningful for 'serve'");
}

/// Run-kind commands (sim, suite) submit single-cell run jobs, where a
/// lockstep batch width has nothing to apply to.
void reject_batch_cells(const std::string& command, const CliOptions& opts) {
  if (opts.batch_cells == 0) return;
  usage("'" + command + "' runs single-configuration jobs; --batch-cells "
        "only applies to the sweep/campaign grids");
}

/// Grid commands own the strategy/k axes; reject attempts to pin them.
void reject_grid_overrides(const std::string& command,
                           const CliOptions& opts) {
  if (opts.grid_overrides.empty()) return;
  usage("'" + command + "' grids over strategy and k itself; " +
        opts.grid_overrides.front() +
        " contradicts that (drop it, or use 'sim'/'run' for a single "
        "configuration)");
}

/// batch/serve take per-job configuration from the job records;
/// accepting it on the command line and applying it to nothing would
/// be the silent-ignore trap this CLI rejects everywhere else.
void reject_job_config(const std::string& command, const CliOptions& opts) {
  if (opts.config_flags.empty() && opts.grid_overrides.empty()) return;
  const std::string& flag = !opts.config_flags.empty()
                                ? opts.config_flags.front()
                                : opts.grid_overrides.front();
  usage("'" + command + "' takes per-job options from the job records; " +
        flag + " on the command line would be silently ignored");
}

std::optional<workloads::WorkloadKind> suite_kind(const std::string& name) {
  for (const auto kind : workloads::all_workload_kinds()) {
    if (name == workloads::workload_name(kind)) return kind;
  }
  return std::nullopt;
}

workloads::Workload workload_from_file(const std::string& path) {
  workloads::Workload w;
  w.name = path;
  w.program = isa::assemble(read_file(path));
  auto built = cfg::build_cfg(w.program);
  w.cfg = std::move(built.cfg);
  w.word_to_block = std::move(built.word_to_block);
  isa::Interpreter interp(w.program);
  cfg::BlockTraceBuilder tracer(w.cfg, w.word_to_block);
  interp.set_trace_hook([&](std::uint32_t pc) { tracer.on_pc(pc); });
  const auto exec = interp.run();
  APCC_CHECK(exec.stop == isa::StopReason::kHalted,
             path + ": program did not halt (stopped after " +
                 std::to_string(exec.steps) + " steps)");
  w.trace = tracer.take();
  cfg::EdgeProfile profile(w.cfg);
  profile.add_trace(w.trace);
  profile.apply_to(w.cfg);
  for (const auto& block : w.cfg.blocks()) {
    w.block_bytes.push_back(
        w.program.bytes(block.first_word, block.word_count));
  }
  return w;
}

/// Registers workloads with the Service on first use and deduplicates
/// by spec, so a batch file referring to "gsm-like" five times shares
/// one registration (and therefore one artifact cache). Because each
/// spec is registered exactly once under its own name, a JobSpec
/// workload reference resolves to the same registration.
class WorkloadDirectory {
 public:
  explicit WorkloadDirectory(serving::Service& service) : service_(service) {}

  serving::WorkloadId id_for(const std::string& spec) {
    APCC_CHECK(spec.empty() || spec[0] != '@',
               "job files reference workloads by name or path, not '" +
                   spec + "' (\"@<id>\" is only meaningful in-process)");
    const auto it = ids_.find(spec);
    if (it != ids_.end()) return it->second;
    serving::WorkloadId id = 0;
    if (const auto kind = suite_kind(spec)) {
      id = service_.register_workload(workloads::make_workload(*kind));
    } else {
      id = service_.register_workload(workload_from_file(spec));
    }
    ids_.emplace(spec, id);
    return id;
  }

 private:
  serving::Service& service_;
  std::map<std::string, serving::WorkloadId> ids_;
};

// ---------------------------------------------------------------- output

void print_run(serving::Service& service, serving::WorkloadId id,
               const sim::RunResult& result, bool csv) {
  const workloads::Workload& w = service.workload(id);
  if (csv) {
    std::cout << core::to_csv({{w.name, result}});
  } else {
    std::cout << "== " << w.name << " ==\n"
              << "image: " << human_bytes(w.image_bytes()) << " in "
              << w.cfg.block_count() << " blocks; trace " << w.trace.size()
              << " entries\n"
              << "compressed image: "
              << human_bytes(result.compressed_area_bytes) << "\n\n"
              << result.summary() << '\n';
  }
}

void print_sweep(const std::vector<sweep::SweepOutcome>& outcomes, bool csv) {
  std::vector<core::ReportRow> rows;
  rows.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    rows.push_back({outcome.label, outcome.result});
  }
  std::cout << (csv ? core::to_csv(rows) : core::render_comparison(rows));
}

void print_campaign(const std::vector<sweep::CampaignResult>& results,
                    bool csv) {
  if (csv) {
    // One flat CSV: label = workload/task, ready for cross-workload
    // plotting.
    std::vector<core::ReportRow> rows;
    for (const auto& result : results) {
      for (const auto& outcome : result.outcomes) {
        rows.push_back(
            {result.workload + "/" + outcome.label, outcome.result});
      }
    }
    std::cout << core::to_csv(rows);
  } else {
    for (const auto& result : results) {
      std::vector<core::ReportRow> rows;
      for (const auto& outcome : result.outcomes) {
        rows.push_back({outcome.label, outcome.result});
      }
      std::cout << "== " << result.workload << " ==\n"
                << core::render_comparison(rows) << '\n';
    }
  }
}

// ------------------------------------------------------------- commands

int cmd_asm(const std::string& path) {
  const isa::Program program = isa::assemble(read_file(path));
  std::cout << path << ": " << program.word_count() << " words ("
            << human_bytes(program.size_bytes()) << "), "
            << program.functions().size() << " function(s)\n\n";
  std::cout << isa::disassemble(program);
  return 0;
}

int cmd_cfg(const std::string& path) {
  const isa::Program program = isa::assemble(read_file(path));
  const auto built = cfg::build_cfg(program);
  std::cout << cfg::to_dot(built.cfg);
  return 0;
}

/// ServiceOptions carrying the server-side knobs every Service-backed
/// subcommand shares: pool width and the artifact-cache byte budget.
/// (serve adds its admission limits on top.)
serving::ServiceOptions service_options(const CliOptions& opts) {
  serving::ServiceOptions options;
  options.workers = opts.workers;
  options.cache_budget = opts.cache_budget;
  return options;
}

int cmd_sim(const std::string& spec, const CliOptions& opts) {
  reject_wire_flag("sim", opts);
  reject_max_queued("sim", opts);
  reject_batch_cells("sim", opts);
  serving::Service service(service_options(opts));
  WorkloadDirectory directory(service);
  const auto id = directory.id_for(spec);
  const auto handle = service.submit(
      serving::RunJob{id, opts.config, opts.share_frontiers});
  print_run(service, id, handle.wait(), opts.csv);
  return 0;
}

int cmd_sweep(const std::string& spec, const CliOptions& opts) {
  reject_wire_flag("sweep", opts);
  reject_max_queued("sweep", opts);
  reject_grid_overrides("sweep", opts);
  serving::Service service(service_options(opts));
  WorkloadDirectory directory(service);
  const auto id = directory.id_for(spec);
  serving::SweepJob job{
      id, opts.config,
      serving::strategy_k_grid(core::engine_config(opts.config)),
      opts.share_frontiers, opts.batch_cells};
  const auto handle = service.submit(std::move(job));
  print_sweep(handle.wait(), opts.csv);
  return 0;
}

int cmd_suite(const CliOptions& opts) {
  reject_wire_flag("suite", opts);
  reject_max_queued("suite", opts);
  reject_batch_cells("suite", opts);
  serving::Service service(service_options(opts));
  WorkloadDirectory directory(service);
  // Submit every workload's run job before waiting on any: the whole
  // suite is in flight on the shared pool at once.
  std::vector<serving::WorkloadId> ids;
  std::vector<serving::JobHandle<sim::RunResult>> handles;
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto id = directory.id_for(workloads::workload_name(kind));
    ids.push_back(id);
    handles.push_back(service.submit(
        serving::RunJob{id, opts.config, opts.share_frontiers}));
  }
  std::vector<core::ReportRow> rows;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    rows.push_back({service.workload(ids[i]).name, handles[i].wait()});
  }
  std::cout << (opts.csv ? core::to_csv(rows) : core::render_comparison(rows));
  return 0;
}

int cmd_campaign(const CliOptions& opts) {
  reject_wire_flag("campaign", opts);
  reject_max_queued("campaign", opts);
  reject_grid_overrides("campaign", opts);
  serving::Service service(service_options(opts));
  WorkloadDirectory directory(service);
  serving::CampaignJob job;
  for (const auto kind : workloads::all_workload_kinds()) {
    job.workloads.push_back(directory.id_for(workloads::workload_name(kind)));
  }
  job.config = opts.config;
  job.grid = serving::strategy_k_grid(core::engine_config(opts.config));
  job.share_frontiers = opts.share_frontiers;
  job.batch_cells = opts.batch_cells;
  const auto handle = service.submit(std::move(job));
  print_campaign(handle.wait(), opts.csv);
  return 0;
}

// ------------------------------------------------------------ batch mode

/// One parsed + submitted batch job, remembered for ordered printing.
/// An invalid handle means the job never reached the pool (workload
/// registration failed); in --wire mode that still yields a
/// status-error record so the stream is never truncated.
struct BatchJob {
  std::string banner;
  std::string client;
  std::string error;
  serving::WorkloadId run_workload = 0;  // run jobs only
  serving::JobHandle<serving::JobResult> handle;
};

std::string job_banner(const serving::JobSpec& spec) {
  std::string banner = serving::job_kind_name(spec.kind);
  if (spec.workloads.size() == 1) {
    banner += " " + spec.workloads[0];
  } else {
    banner += " (" + std::to_string(spec.workloads.size()) + " workload(s))";
  }
  if (spec.priority != sweep::Priority::kNormal) {
    banner += std::string(" [") + sweep::priority_name(spec.priority) + "]";
  }
  return banner;
}

int cmd_batch(const std::string& path, const CliOptions& global) {
  reject_job_config("batch", global);
  reject_max_queued("batch", global);
  if (global.csv && global.wire) {
    usage("'batch' emits either CSV or wire records; --csv and --wire "
          "together would silently drop one");
  }

  // Phase 1: parse and validate the whole file. Wire format errors
  // exit 1 here -- with the offending line number and a snippet --
  // before a Service exists or any job is in flight.
  std::vector<serving::JobSpec> parsed;
  try {
    std::istringstream file(read_file(path));
    serving::wire::RecordReader reader(file);
    while (const auto record = reader.next()) {
      if (record->is_result) {
        throw serving::wire::WireError("expected a job record in a job file",
                                       record->first_line, "apcc.result ...");
      }
      parsed.push_back(
          serving::wire::parse_job(record->text, record->first_line));
    }
  } catch (const serving::wire::WireError& e) {
    wire_usage(path, e);
  }
  if (parsed.empty()) {
    usage(path + ": no job records (expected 'apcc.job v4' ... 'end')");
  }

  // Phase 2: register workloads (input errors exit 2 here, still
  // before submission) and submit every job. Nothing is waited on yet,
  // so the scheduler has the whole file in flight: a long campaign's
  // tail overlaps the next job's cells, workloads shared between
  // records hit the same cached artifacts, and the per-record QoS
  // (priority, max-workers) decides who gets the pool first.
  serving::Service service(service_options(global));
  WorkloadDirectory directory(service);
  std::vector<BatchJob> jobs;
  for (serving::JobSpec& spec : parsed) {
    spec.share_frontiers = spec.share_frontiers && global.share_frontiers;
    BatchJob job;
    job.banner = job_banner(spec);
    job.client = spec.client;
    try {
      for (const std::string& ref : spec.workloads) {
        (void)directory.id_for(ref);
      }
      // Only run jobs read this (they have exactly one workload), and
      // id_for is memoized, so this is a lookup, not a re-registration.
      job.run_workload = spec.workloads.empty()
                             ? 0
                             : directory.id_for(spec.workloads.front());
      job.handle = service.submit(std::move(spec));
    } catch (const std::exception& e) {
      // Same contract as serve: in --wire mode a job that cannot start
      // becomes a status-error record in its stream slot. Human mode
      // keeps the old pre-submission abort (exit 2).
      if (!global.wire) throw;
      job.error = e.what();
    }
    jobs.push_back(std::move(job));
  }

  // Phase 3: wait and print in submission order.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    BatchJob& job = jobs[i];
    if (global.wire) {
      // Machine consumers get a complete stream: one record per job,
      // failures as status-error records (exactly like serve) rather
      // than a truncated stream and exit 2.
      serving::wire::ResultRecord record;
      record.job = i + 1;
      record.client = job.client;
      if (!job.error.empty()) {
        record.status = serving::JobStatus::kError;
        record.error = job.error;
      } else {
        try {
          const serving::JobResult& result = job.handle.wait();
          record.status = result.status;
          if (result.ok()) {
            record.result = result;
          } else {
            record.error = result.error;
          }
        } catch (const std::exception& e) {
          record.status = serving::JobStatus::kError;
          record.error = e.what();
        }
      }
      std::cout << serving::wire::serialize_result(record);
      continue;
    }
    std::cout << "### job " << (i + 1) << ": " << job.banner << "\n";
    const serving::JobResult& result = job.handle.wait();
    if (!result.ok()) {
      // Rejected / cancelled / deadline-exceeded: report and move on
      // (kError still rethrows out of wait() and aborts with exit 2,
      // the historical batch contract for failed jobs).
      std::cout << serving::status_name(result.status) << ": "
                << result.error << "\n\n";
      continue;
    }
    switch (result.kind) {
      case serving::JobKind::kRun:
        print_run(service, job.run_workload, result.run, global.csv);
        break;
      case serving::JobKind::kSweep:
        print_sweep(result.sweep, global.csv);
        break;
      case serving::JobKind::kCampaign:
        print_campaign(result.campaign, global.csv);
        break;
    }
    std::cout << '\n';
  }
  const auto stats = service.cache_stats();
  std::cerr << "batch: " << jobs.size() << " job(s)\n"
            << serving::format_cache_stats(stats);
  return 0;
}

// ------------------------------------------------------------ serve mode

/// The remote front door: a stream of wire job records on stdin, a
/// stream of wire result records on stdout (submission order, flushed
/// per record). Structural stream errors (an unreadable record) are
/// fatal; a record that parses but fails -- unknown workload, invalid
/// job, engine failure -- produces a `status error` result record and
/// the server keeps going.
int cmd_serve(const CliOptions& opts) {
  reject_job_config("serve", opts);
  if (opts.csv || opts.wire) {
    usage("'serve' always emits wire records; --csv would be silently "
          "ignored and --wire is redundant");
  }
  if (!opts.listen && opts.host != "127.0.0.1") {
    usage("--host only applies to the TCP front door; add --listen PORT");
  }
  // SIGINT/SIGTERM mean "drain": stop reading jobs, finish what was
  // accepted, emit every result record, exit 0. No SA_RESTART, so the
  // blocking read below (stdin getline or the TCP poll) fails with
  // EINTR and the loop sees the flag.
  struct sigaction drain {};
  drain.sa_handler = apcc_cli_serve_signal;
  sigemptyset(&drain.sa_mask);
  drain.sa_flags = 0;
  sigaction(SIGINT, &drain, nullptr);
  sigaction(SIGTERM, &drain, nullptr);

  serving::ServiceOptions options = service_options(opts);
  options.limits.max_queued_jobs = opts.max_queued;
  options.limits.max_queued_per_client = opts.max_queued_per_client;
  options.fair_share = opts.fair_share;
  options.client_weights = opts.client_weights;
  serving::Service service(options);
  WorkloadDirectory directory(service);

  if (opts.listen) {
    // The TCP front door: same protocol, same statuses, one session
    // per connection (net/server.hpp). The workload directory and the
    // share-frontiers policy are applied per record by the prepare
    // hook, exactly as the stdin loop below does inline.
    net::ServerOptions server_options;
    server_options.host = opts.host;
    server_options.port = *opts.listen;
    server_options.prepare = [&](serving::JobSpec& spec) {
      spec.share_frontiers = spec.share_frontiers && opts.share_frontiers;
      for (const std::string& ref : spec.workloads) {
        (void)directory.id_for(ref);
      }
    };
    server_options.interrupted = [] { return g_serve_shutdown != 0; };
    net::Server server(service, std::move(server_options));
    // The bound address on stderr (stdout stays a pure wire stream in
    // both modes): how callers learn an ephemeral --listen 0 port.
    std::cerr << "serve: listening on " << server.address() << std::endl;
    server.run();
    return 0;
  }

  /// One stream slot, in submission order. An invalid handle means the
  /// job never reached the pool (parse/validation/registration error);
  /// its error record still waits its turn so results stream strictly
  /// in submission order.
  struct Pending {
    std::uint64_t seq = 0;
    std::string client;
    serving::JobHandle<serving::JobResult> handle;
    std::string error;
  };

  // The reader (main) thread blocks in getline; a dedicated writer
  // thread owns stdout and emits each slot the moment it retires, so a
  // request/response client that sends one job and waits for its
  // result before sending the next never deadlocks against our stdin
  // read. (JobHandle::wait() is callable from any thread.)
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool input_done = false;
  std::thread writer([&] {
    for (;;) {
      Pending slot;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !pending.empty() || input_done; });
        if (pending.empty()) return;
        slot = std::move(pending.front());
        pending.pop_front();
      }
      serving::wire::ResultRecord record;
      record.job = slot.seq;
      record.client = slot.client;
      if (slot.handle.valid()) {
        try {
          // Rejected / cancelled / deadline-exceeded come back as
          // structured results (wait() only throws for kError).
          const serving::JobResult& result = slot.handle.wait();
          record.status = result.status;
          if (result.ok()) {
            record.result = result;
          } else {
            record.error = result.error;
          }
        } catch (const std::exception& e) {
          record.status = serving::JobStatus::kError;
          record.error = e.what();
        }
      } else {
        record.status = serving::JobStatus::kError;
        record.error = slot.error;
      }
      std::cout << serving::wire::serialize_result(record) << std::flush;
    }
  });
  const auto push = [&](Pending slot) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(std::move(slot));
    }
    cv.notify_all();
  };
  const auto finish = [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      input_done = true;
    }
    cv.notify_all();
    writer.join();
  };

  std::uint64_t seq = 0;
  serving::wire::RecordReader reader(std::cin);
  for (;;) {
    if (g_serve_shutdown) break;
    std::optional<serving::wire::RawRecord> record;
    try {
      record = reader.next();
    } catch (const serving::wire::WireError& e) {
      // A signal can interrupt getline mid-record, which surfaces as an
      // unterminated record -- that is a drain, not a protocol error.
      if (g_serve_shutdown) break;
      // Structural stream error: drain what was already accepted, then
      // report fatally.
      finish();
      wire_usage("stdin", e);
    }
    if (!record) break;
    Pending slot;
    slot.seq = ++seq;
    if (record->is_result) {
      slot.error = "expected a job record, got a result record";
    } else {
      try {
        serving::JobSpec spec =
            serving::wire::parse_job(record->text, record->first_line);
        slot.client = spec.client;
        spec.share_frontiers = spec.share_frontiers && opts.share_frontiers;
        for (const std::string& ref : spec.workloads) {
          (void)directory.id_for(ref);
        }
        slot.handle = service.submit(std::move(spec));
      } catch (const serving::wire::WireError& e) {
        slot.error =
            "stdin:" + std::to_string(e.line()) + ": " + e.what();
      } catch (const std::exception& e) {
        slot.error = e.what();
      }
    }
    push(std::move(slot));
  }
  if (g_serve_shutdown) {
    // Orderly drain: stop admitting, let in-flight jobs finish, fail
    // still-queued jobs as cancelled. Every accepted job's slot is
    // already in the writer's queue, so each still emits exactly one
    // record (ok or cancelled) before we exit.
    service.shutdown();
  }
  finish();
  return 0;
}

// ------------------------------------------------------- wire roundtrip

/// Parse every record in a wire file and print its canonical
/// re-serialization: `wire-roundtrip f | diff - f` is the CI gate that
/// golden files stay fixed points of serialize(parse(.)).
int cmd_wire_roundtrip(const std::string& path) {
  try {
    std::istringstream file(read_file(path));
    serving::wire::RecordReader reader(file);
    bool first = true;
    while (const auto record = reader.next()) {
      if (!first) std::cout << '\n';
      first = false;
      if (record->is_result) {
        std::cout << serving::wire::serialize_result(
            serving::wire::parse_result(record->text, record->first_line));
      } else {
        std::cout << serving::wire::serialize_job(
            serving::wire::parse_job(record->text, record->first_line));
      }
    }
    if (first) usage(path + ": no wire records");
  } catch (const serving::wire::WireError& e) {
    wire_usage(path, e);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  try {
    const std::string& cmd = args[0];
    if (cmd == "version") {
      if (args.size() != 1) {
        usage("version takes no arguments (extra arguments would be "
              "silently ignored)");
      }
      std::cout << "apcc_cli " << kToolVersion << " (wire v"
                << serving::JobSpec::kWireVersion << ")\n";
      return 0;
    }
    if (cmd == "suite") {
      return cmd_suite(parse_options(args, 1));
    }
    if (cmd == "campaign") {
      return cmd_campaign(parse_options(args, 1));
    }
    if (cmd == "serve") {
      return cmd_serve(parse_options(args, 1));
    }
    if (args.size() < 2) usage("command needs a file argument");
    if (cmd == "asm") return cmd_asm(args[1]);
    if (cmd == "cfg") return cmd_cfg(args[1]);
    if (cmd == "sim") return cmd_sim(args[1], parse_options(args, 2));
    if (cmd == "sweep") return cmd_sweep(args[1], parse_options(args, 2));
    if (cmd == "batch") return cmd_batch(args[1], parse_options(args, 2));
    if (cmd == "wire-roundtrip") {
      if (args.size() != 2) {
        usage("wire-roundtrip takes exactly one file (extra arguments "
              "would be silently ignored)");
      }
      return cmd_wire_roundtrip(args[1]);
    }
    usage("unknown command '" + cmd + "'");
  } catch (const apcc::CheckError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
