#!/usr/bin/env bash
# Run the performance-trajectory benches and emit their JSON series.
#
#   tools/run_benches.sh [build-dir] [out-dir]
#
# Produces, in out-dir (default: the build dir):
#   BENCH_engine.json  -- E11 engine hot-path throughput (steps/sec)
#   BENCH_codecs.json  -- E4 codec + huffman decoder throughput
#   BENCH_sweep.json   -- sharded policy-grid sweep scaling (grid pts/sec
#                         at 1/2/4/8 workers)
#
# The JSON comes from google-benchmark's --benchmark_format=json, so a
# tracking dashboard can diff runs across PRs.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}}"

if [[ ! -x "${BUILD_DIR}/bench_e11_engine_throughput" ]]; then
  echo "error: ${BUILD_DIR}/bench_e11_engine_throughput not built" >&2
  echo "hint: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

echo "== E11 engine throughput -> ${OUT_DIR}/BENCH_engine.json"
"${BUILD_DIR}/bench_e11_engine_throughput" \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_engine.json" \
    --benchmark_out_format=json

echo "== E4 codec throughput -> ${OUT_DIR}/BENCH_codecs.json"
"${BUILD_DIR}/bench_e4_codecs" \
    --benchmark_filter='bm_(huffman_decode|decompress)' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_codecs.json" \
    --benchmark_out_format=json

echo "== sweep scaling -> ${OUT_DIR}/BENCH_sweep.json"
"${BUILD_DIR}/bench_sweep_scaling" \
    --benchmark_filter='bm_sweep_grid' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_sweep.json" \
    --benchmark_out_format=json

echo "done."
