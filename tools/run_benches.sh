#!/usr/bin/env bash
# Run the performance-trajectory benches and emit their JSON series.
#
#   tools/run_benches.sh [--quick] [build-dir] [out-dir]
#
# Produces, in out-dir (default: the build dir):
#   BENCH_engine.json   -- E11 engine hot-path throughput (steps/sec)
#   BENCH_codecs.json   -- E4 codec + huffman decoder throughput
#   BENCH_sweep.json    -- sharded policy-grid sweep scaling (grid pts/sec
#                          at 1/2/4/8 workers) + lockstep batch series
#                          (cells-stepped/sec at batch 1..16, incl. the
#                          wide-CFG regime where batching wins)
#   BENCH_campaign.json -- suite x grid campaign throughput (matrix
#                          cells/sec, shared vs owned FrontierCache
#                          geometry)
#   BENCH_service.json  -- serving::Service submit latency (direct
#                          one-shot vs cold vs warm artifact cache,
#                          per-engine vs batched warm sweeps) + the
#                          cache-budget thrash series (warm sweeps at
#                          25/50/100% of the working set, eviction
#                          counters included)
#   BENCH_serve.json    -- TCP front-door sustained jobs/sec plus
#                          p50/p99 latency counters under mixed-tenant
#                          QoS (weighted fair share within the normal
#                          class, strict classes across)
#
# --quick is the CI smoke mode: benches shrink their scales (via
# APCC_BENCH_QUICK) and google-benchmark runs minimal repetitions, so the
# per-PR artifact job finishes fast. Series names are unchanged; only the
# absolute numbers are smoke-grade.
#
# The JSON comes from google-benchmark's --benchmark_format=json, so a
# tracking dashboard can diff runs across PRs.
set -euo pipefail

# QUICK_ARGS expands via ${QUICK_ARGS[@]+...} below: plain "${arr[@]}"
# on an empty array trips `set -u` on bash < 4.4 (stock macOS bash).
QUICK_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
  shift
  export APCC_BENCH_QUICK=1
  QUICK_ARGS=(--benchmark_min_time=0.05)
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}}"

for bench in bench_e11_engine_throughput bench_e4_codecs \
             bench_sweep_scaling bench_campaign bench_service \
             bench_serve; do
  if [[ ! -x "${BUILD_DIR}/${bench}" ]]; then
    echo "error: ${BUILD_DIR}/${bench} not built" >&2
    echo "hint: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
done

mkdir -p "${OUT_DIR}"

echo "== E11 engine throughput -> ${OUT_DIR}/BENCH_engine.json"
"${BUILD_DIR}/bench_e11_engine_throughput" \
    ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_engine.json" \
    --benchmark_out_format=json

echo "== E4 codec throughput -> ${OUT_DIR}/BENCH_codecs.json"
"${BUILD_DIR}/bench_e4_codecs" \
    ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} \
    --benchmark_filter='bm_(huffman_decode|decompress|adaptive_selection)' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_codecs.json" \
    --benchmark_out_format=json

# The pattern-codec series must actually be in the artifact: the fpc
# and bdi decompress rows (the word-at-a-time end of the table) and the
# adaptive selection run with its per-candidate win counters. A missing
# label/counter means the codec family silently fell out of the bench.
for needle in '"label": "fpc"' '"label": "bdi"' '"label": "adaptive"' \
              '"sel_fpc"' '"sel_bdi"' '"sel_total"'; do
  if ! grep -q "${needle}" "${OUT_DIR}/BENCH_codecs.json"; then
    echo "error: BENCH_codecs.json is missing ${needle}" >&2
    echo "       (bm_decompress should cover the pattern family and" >&2
    echo "        bm_adaptive_selection should emit sel_* counters)" >&2
    exit 1
  fi
done

echo "== sweep scaling -> ${OUT_DIR}/BENCH_sweep.json"
"${BUILD_DIR}/bench_sweep_scaling" \
    ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} \
    --benchmark_filter='bm_sweep_(grid|batch)' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_sweep.json" \
    --benchmark_out_format=json

echo "== campaign throughput -> ${OUT_DIR}/BENCH_campaign.json"
"${BUILD_DIR}/bench_campaign" \
    ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} \
    --benchmark_filter='bm_campaign' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_campaign.json" \
    --benchmark_out_format=json

echo "== service submit latency -> ${OUT_DIR}/BENCH_service.json"
"${BUILD_DIR}/bench_service" \
    ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} \
    --benchmark_filter='bm_(direct_run|service_cold_run|service_warm_run|service_warm_sweep|service_thrash)' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_service.json" \
    --benchmark_out_format=json

# The thrash series must carry its eviction counters -- that is the CI
# proof the cache-budget machinery ran, not just that the bench binary
# linked. A missing counter means the series silently degraded.
if ! grep -q '"evictions"' "${OUT_DIR}/BENCH_service.json"; then
  echo "error: BENCH_service.json has no eviction counters" >&2
  echo "       (bm_service_thrash should emit them per run)" >&2
  exit 1
fi

echo "== TCP serve mixed-QoS -> ${OUT_DIR}/BENCH_serve.json"
"${BUILD_DIR}/bench_serve" \
    ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} \
    --benchmark_filter='bm_serve' \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_serve.json" \
    --benchmark_out_format=json

# The mixed-QoS series must carry its throughput + tail-latency
# counters: sustained jobs/sec and the p50/p99 split are the acceptance
# record for the TCP front door, so a missing counter fails the run.
for counter in '"jobs_per_sec"' '"p50_ms"' '"p99_ms"'; do
  if ! grep -q "${counter}" "${OUT_DIR}/BENCH_serve.json"; then
    echo "error: BENCH_serve.json has no ${counter} counter" >&2
    echo "       (bm_serve_mixed_qos should emit it per run)" >&2
    exit 1
  fi
done

echo "done."
