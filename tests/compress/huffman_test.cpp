// Canonical Huffman internals: code-length construction, Kraft validity,
// canonical ordering, length limiting, and decode-table behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/huffman.hpp"
#include "support/assert.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"

namespace apcc::compress {
namespace {

std::array<std::uint64_t, kAlphabetSize> freqs_of(
    std::initializer_list<std::pair<int, std::uint64_t>> entries) {
  std::array<std::uint64_t, kAlphabetSize> f{};
  for (const auto& [sym, count] : entries) {
    f[static_cast<std::size_t>(sym)] = count;
  }
  return f;
}

double kraft(const CodeLengths& lengths) {
  double sum = 0;
  for (const auto len : lengths) {
    if (len > 0) sum += std::pow(2.0, -static_cast<double>(len));
  }
  return sum;
}

TEST(BuildCodeLengths, EmptyFrequenciesGiveNoCodes) {
  const auto lengths = build_code_lengths({});
  for (const auto len : lengths) EXPECT_EQ(len, 0);
}

TEST(BuildCodeLengths, SingleSymbolGetsOneBit) {
  const auto lengths = build_code_lengths(freqs_of({{65, 10}}));
  EXPECT_EQ(lengths[65], 1);
}

TEST(BuildCodeLengths, TwoSymbolsGetOneBitEach) {
  const auto lengths = build_code_lengths(freqs_of({{0, 3}, {1, 7}}));
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(BuildCodeLengths, SkewedFrequenciesGiveShorterHotCodes) {
  const auto lengths = build_code_lengths(
      freqs_of({{0, 1000}, {1, 10}, {2, 10}, {3, 1}}));
  EXPECT_LT(lengths[0], lengths[3]);
  EXPECT_LE(lengths[0], lengths[1]);
}

TEST(BuildCodeLengths, KraftInequalityHolds) {
  apcc::Rng rng(31);
  for (int iter = 0; iter < 20; ++iter) {
    std::array<std::uint64_t, kAlphabetSize> f{};
    const auto nsyms = 2 + rng.next_below(255);
    for (std::uint64_t s = 0; s < nsyms; ++s) {
      f[s] = 1 + rng.next_below(10000);
    }
    const auto lengths = build_code_lengths(f);
    EXPECT_LE(kraft(lengths), 1.0 + 1e-12);
    for (const auto len : lengths) {
      EXPECT_LE(len, kMaxCodeLength);
    }
  }
}

TEST(BuildCodeLengths, ExtremeSkewIsLengthLimited) {
  // Exponential frequencies would want depth > 15 without limiting.
  std::array<std::uint64_t, kAlphabetSize> f{};
  std::uint64_t v = 1;
  for (int s = 0; s < 40; ++s) {
    f[static_cast<std::size_t>(s)] = v;
    v = v < (1ULL << 55) ? v * 2 : v;
  }
  const auto lengths = build_code_lengths(f);
  for (int s = 0; s < 40; ++s) {
    EXPECT_GE(lengths[static_cast<std::size_t>(s)], 1);
    EXPECT_LE(lengths[static_cast<std::size_t>(s)], kMaxCodeLength);
  }
  EXPECT_LE(kraft(lengths), 1.0 + 1e-12);
}

TEST(CanonicalCode, EncodeDecodeAllSymbols) {
  const auto lengths = build_code_lengths(
      freqs_of({{10, 100}, {20, 50}, {30, 25}, {40, 12}, {50, 6}}));
  const CanonicalCode code(lengths);
  for (const std::uint8_t sym : {10, 20, 30, 40, 50}) {
    apcc::BitWriter w;
    code.encode(w, sym);
    const auto bytes = w.take();
    apcc::BitReader r(bytes);
    EXPECT_EQ(code.decode(r), sym);
  }
}

TEST(CanonicalCode, CanonicalOrderIsNumeric) {
  // Two symbols with equal lengths: the lower symbol gets the lower code.
  const auto lengths = build_code_lengths(freqs_of({{7, 5}, {3, 5}}));
  const CanonicalCode code(lengths);
  apcc::BitWriter w;
  code.encode(w, 3);
  const auto lo = w.take();
  apcc::BitWriter w2;
  code.encode(w2, 7);
  const auto hi = w2.take();
  EXPECT_LT(lo[0], hi[0]);
}

TEST(CanonicalCode, UncodedSymbolThrowsOnEncode) {
  const auto lengths = build_code_lengths(freqs_of({{1, 5}, {2, 5}}));
  const CanonicalCode code(lengths);
  apcc::BitWriter w;
  EXPECT_THROW(code.encode(w, 99), apcc::CheckError);
}

TEST(CanonicalCode, InvalidPrefixThrowsOnDecode) {
  // Single coded symbol '0'; an all-ones stream is not decodable.
  const auto lengths = build_code_lengths(freqs_of({{5, 1}}));
  const CanonicalCode code(lengths);
  const std::vector<std::uint8_t> junk = {0xff, 0xff};
  apcc::BitReader r(junk);
  EXPECT_THROW((void)code.decode(r), apcc::CheckError);
}

TEST(CanonicalCode, ViolatingKraftLengthsRejected) {
  CodeLengths lengths{};
  // Three 1-bit codes: impossible prefix code.
  lengths[0] = 1;
  lengths[1] = 1;
  lengths[2] = 1;
  EXPECT_THROW(CanonicalCode{lengths}, apcc::CheckError);
}

TEST(CanonicalCode, ExpectedBitsMatchesUniform) {
  // Four equal-frequency symbols -> 2 bits each.
  const auto f = freqs_of({{0, 10}, {1, 10}, {2, 10}, {3, 10}});
  const CanonicalCode code(build_code_lengths(f));
  EXPECT_NEAR(code.expected_bits(f), 2.0, 1e-9);
}

TEST(SharedHuffman, StreamHasNoHeader) {
  const std::vector<Bytes> training = {Bytes(400, 7), Bytes{1, 2, 3, 4}};
  const SharedHuffmanCodec codec(training);
  // A 4-byte input must compress to a handful of bytes, far below the
  // 128-byte per-stream table that HuffmanCodec would emit.
  const Bytes small = {7, 7, 7, 7};
  EXPECT_LE(codec.compress(small).size(), 4u);
}

TEST(SharedHuffman, HandlesBytesUnseenInTraining) {
  const std::vector<Bytes> training = {Bytes(100, 1)};
  const SharedHuffmanCodec codec(training);
  const Bytes input = {200, 201, 202};  // never trained
  EXPECT_EQ(codec.decompress(codec.compress(input), 3), input);
}

TEST(SharedHuffman, UntrainedFallsBackToUniform) {
  const SharedHuffmanCodec codec({});
  const Bytes input = {9, 8, 7, 6, 5};
  EXPECT_EQ(codec.decompress(codec.compress(input), 5), input);
}

TEST(PerStreamHuffman, HeaderDominatesTinyBlocks) {
  const HuffmanCodec codec;
  const Bytes tiny = {1, 2};
  EXPECT_GT(codec.compress(tiny).size(), tiny.size())
      << "per-stream header should expand tiny inputs";
}

TEST(CanonicalCode, BatchedEncodeBitIdenticalToPerSymbol) {
  // encode_all pre-concatenates (code, len) pairs through a 64-bit
  // accumulator; the stream must match the per-symbol reference bit for
  // bit -- across skew levels (deep codes exercise the 15-bit appends)
  // and lengths around the 32-bit flush boundary.
  apcc::Rng rng(123);
  for (const double skew : {0.0, 0.5, 0.95}) {
    std::array<std::uint64_t, kAlphabetSize> freqs{};
    for (std::size_t s = 0; s < kAlphabetSize; ++s) freqs[s] = 1;
    freqs[0x42] += static_cast<std::uint64_t>(skew * 100000);
    const CanonicalCode code(build_code_lengths(freqs));
    for (const std::size_t size : {0u, 1u, 3u, 4u, 5u, 31u, 257u, 4096u}) {
      Bytes input;
      for (std::size_t i = 0; i < size; ++i) {
        input.push_back(rng.next_bool(skew)
                            ? 0x42
                            : static_cast<std::uint8_t>(rng.next_below(256)));
      }
      apcc::BitWriter reference;
      for (const std::uint8_t b : input) code.encode(reference, b);
      apcc::BitWriter batched;
      code.encode_all(batched, input);
      EXPECT_EQ(batched.bit_count(), reference.bit_count());
      EXPECT_EQ(batched.take(), reference.take())
          << "skew " << skew << " size " << size;
    }
  }
}

TEST(SharedHuffman, CompressRoundTripsThroughBatchedEncoder) {
  Bytes input;
  apcc::Rng rng(321);
  for (int i = 0; i < 2048; ++i) {
    input.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  const SharedHuffmanCodec codec(std::vector<Bytes>{input});
  EXPECT_EQ(codec.decompress(codec.compress(input), input.size()), input);
}

TEST(PerStreamHuffman, CompressesSkewedLargeInput) {
  Bytes input;
  apcc::Rng rng(77);
  for (int i = 0; i < 4096; ++i) {
    input.push_back(rng.next_bool(0.9) ? 0x11
                                       : static_cast<std::uint8_t>(
                                             rng.next_below(256)));
  }
  const HuffmanCodec codec;
  EXPECT_LT(codec.compress(input).size(), input.size() / 2);
}

}  // namespace
}  // namespace apcc::compress
