// Field-split codec specifics: lane statistics and the win over
// interleaved shared Huffman on instruction data.
#include <gtest/gtest.h>

#include "compress/fieldsplit.hpp"
#include "compress/huffman.hpp"
#include "workloads/suite.hpp"

namespace apcc::compress {
namespace {

const std::vector<Bytes>& instruction_blocks() {
  static const std::vector<Bytes> blocks = [] {
    const auto w =
        workloads::make_workload(workloads::WorkloadKind::kG721Like);
    return w.block_bytes;
  }();
  return blocks;
}

TEST(FieldSplit, RoundTripsWholeSuiteBlocks) {
  const FieldSplitCodec codec(instruction_blocks());
  for (const auto& block : instruction_blocks()) {
    EXPECT_EQ(codec.decompress(codec.compress(block), block.size()), block);
  }
}

TEST(FieldSplit, BeatsInterleavedSharedHuffmanOnInstructions) {
  // The whole point of stream separation: per-lane statistics are
  // sharper than the interleaved distribution.
  const auto& blocks = instruction_blocks();
  const FieldSplitCodec split(blocks);
  const SharedHuffmanCodec interleaved(blocks);
  std::uint64_t split_bytes = 0;
  std::uint64_t inter_bytes = 0;
  for (const auto& block : blocks) {
    split_bytes += split.compress(block).size();
    inter_bytes += interleaved.compress(block).size();
  }
  EXPECT_LT(split_bytes, inter_bytes);
}

TEST(FieldSplit, EveryLaneExploitsFieldSkew) {
  // Each byte lane of an ERISC-32 word maps to instruction fields with
  // skewed statistics: lane 0 holds the immediate low byte (near-zero
  // values dominate), lane 3 the opcode/rd bits. Every lane must code
  // below the 8-bit raw cost, and the immediate lane is the tightest of
  // all -- small constants are the most predictable field in real code.
  const FieldSplitCodec codec(instruction_blocks());
  double tightest = 8.0;
  for (std::size_t lane = 0; lane < FieldSplitCodec::kLanes; ++lane) {
    const double bits = codec.lane_expected_bits(lane);
    EXPECT_LT(bits, 8.0) << "lane " << lane;
    tightest = std::min(tightest, bits);
  }
  // At least one lane (in practice the immediate-carrying ones) must be
  // dramatically skewed.
  EXPECT_LT(tightest, 3.0);
}

TEST(FieldSplit, NonWordSizedInputs) {
  const FieldSplitCodec codec(instruction_blocks());
  for (const std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u, 9u}) {
    Bytes input;
    for (std::size_t i = 0; i < n; ++i) {
      input.push_back(static_cast<std::uint8_t>(i * 37));
    }
    EXPECT_EQ(codec.decompress(codec.compress(input), n), input) << n;
  }
}

TEST(FieldSplit, UntrainedStillTotal) {
  const FieldSplitCodec codec({});
  const Bytes input = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(codec.decompress(codec.compress(input), input.size()), input);
}

TEST(FieldSplit, LaneIndexRangeChecked) {
  const FieldSplitCodec codec({});
  EXPECT_THROW((void)codec.lane_expected_bits(4), apcc::CheckError);
}

}  // namespace
}  // namespace apcc::compress
