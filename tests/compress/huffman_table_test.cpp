// Table-decoder tests: pin the two-level lookup decoder (primary table +
// subtable fallback for codes deeper than kPrimaryBits) against the
// bit-at-a-time reference decoder, and pin the error paths on corrupt
// and truncated streams. Fuzz-style round trips cover random alphabets,
// random payloads, long codes (depth 11..15), and single-symbol streams.
#include <gtest/gtest.h>

#include <algorithm>

#include "compress/huffman.hpp"
#include "support/assert.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"

namespace apcc::compress {
namespace {

/// Fibonacci weights over n symbols: the classic maximally-skewed input.
/// With n = 16 the deepest two codes land exactly at depth 15
/// (= kMaxCodeLength), which drives the subtable fallback.
std::array<std::uint64_t, kAlphabetSize> fibonacci_freqs(int n) {
  std::array<std::uint64_t, kAlphabetSize> f{};
  std::uint64_t a = 1, b = 1;
  for (int s = 0; s < n; ++s) {
    f[static_cast<std::size_t>(s)] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return f;
}

/// Encode `payload` then decode it twice -- table decoder and reference
/// decoder -- asserting both reproduce the payload exactly.
void round_trip(const CanonicalCode& code,
                const std::vector<std::uint8_t>& payload) {
  apcc::BitWriter writer;
  for (const std::uint8_t sym : payload) code.encode(writer, sym);
  const auto bytes = writer.take();

  apcc::BitReader table_reader(bytes);
  apcc::BitReader ref_reader(bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    ASSERT_EQ(code.decode(table_reader), payload[i]) << "table @" << i;
    ASSERT_EQ(code.decode_reference(ref_reader), payload[i])
        << "reference @" << i;
  }
  EXPECT_EQ(table_reader.bit_position(), ref_reader.bit_position());
}

TEST(HuffmanTable, LongCodesTakeTheSubtablePath) {
  const auto lengths = build_code_lengths(fibonacci_freqs(16));
  const auto max_len =
      *std::max_element(lengths.begin(), lengths.end());
  ASSERT_EQ(max_len, kMaxCodeLength)
      << "fibonacci-16 must produce depth-15 codes";
  ASSERT_GT(max_len, CanonicalCode::kPrimaryBits)
      << "test must exercise the subtable fallback";

  const CanonicalCode code(lengths);
  std::vector<std::uint8_t> payload;
  for (int s = 0; s < 16; ++s) {
    // Several of each symbol, rarest (deepest codes) included.
    for (int r = 0; r < 3; ++r) payload.push_back(static_cast<std::uint8_t>(s));
  }
  round_trip(code, payload);
}

TEST(HuffmanTable, EveryDepthFrom11To15RoundTrips) {
  // Sweep the alphabet size so the deepest code crosses each length in
  // (kPrimaryBits, kMaxCodeLength]; every sweep step must round trip.
  for (int n = 12; n <= 16; ++n) {
    const auto lengths = build_code_lengths(fibonacci_freqs(n));
    const auto max_len =
        *std::max_element(lengths.begin(), lengths.end());
    ASSERT_GT(max_len, CanonicalCode::kPrimaryBits) << "n=" << n;
    const CanonicalCode code(lengths);
    std::vector<std::uint8_t> payload;
    for (int s = 0; s < n; ++s) payload.push_back(static_cast<std::uint8_t>(s));
    round_trip(code, payload);
  }
}

TEST(HuffmanTable, SingleSymbolAlphabet) {
  const auto lengths = build_code_lengths([] {
    std::array<std::uint64_t, kAlphabetSize> f{};
    f[42] = 7;
    return f;
  }());
  const CanonicalCode code(lengths);
  round_trip(code, std::vector<std::uint8_t>(100, 42));
}

TEST(HuffmanTable, RandomAlphabetFuzzMatchesReference) {
  apcc::Rng rng(20260730);
  for (int iter = 0; iter < 50; ++iter) {
    std::array<std::uint64_t, kAlphabetSize> freqs{};
    const auto nsyms = 1 + rng.next_below(256);
    std::vector<std::uint8_t> alphabet;
    for (std::uint64_t i = 0; i < nsyms; ++i) {
      const auto sym = static_cast<std::uint8_t>(rng.next_below(256));
      // Skewed weights push some codes deep.
      freqs[sym] += 1 + rng.next_below(1u << rng.next_below(20));
      alphabet.push_back(sym);
    }
    const CanonicalCode code(build_code_lengths(freqs));
    std::vector<std::uint8_t> payload;
    const auto len = 1 + rng.next_below(512);
    for (std::uint64_t i = 0; i < len; ++i) {
      payload.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    round_trip(code, payload);
  }
}

TEST(HuffmanTable, InvalidPrefixRejectedOnBothPaths) {
  // Single coded symbol -> code '0'; all-ones input is undecodable.
  const auto lengths = build_code_lengths([] {
    std::array<std::uint64_t, kAlphabetSize> f{};
    f[5] = 1;
    return f;
  }());
  const CanonicalCode code(lengths);
  const std::vector<std::uint8_t> junk = {0xff, 0xff};
  apcc::BitReader table_reader(junk);
  EXPECT_THROW((void)code.decode(table_reader), apcc::CheckError);
  apcc::BitReader ref_reader(junk);
  EXPECT_THROW((void)code.decode_reference(ref_reader), apcc::CheckError);
}

TEST(HuffmanTable, TruncatedStreamRejected) {
  // A depth-15 alphabet where the stream ends mid-code: the peeked
  // window zero-pads past the end, and the consume must throw rather
  // than fabricate a symbol.
  const auto lengths = build_code_lengths(fibonacci_freqs(16));
  const CanonicalCode code(lengths);
  // Symbol 0 is the rarest -> deepest code (15 bits).
  apcc::BitWriter writer;
  code.encode(writer, 0);
  auto bytes = writer.take();
  ASSERT_EQ(bytes.size(), 2u);  // 15 bits -> 2 bytes
  bytes.pop_back();             // keep only the first 8 bits
  apcc::BitReader reader(bytes);
  EXPECT_THROW((void)code.decode(reader), apcc::CheckError);
}

TEST(HuffmanTable, CorruptSharedStreamRejectedOrWrong) {
  // Codec-level corruption check: flipping bits in a shared-huffman
  // stream either throws CheckError or yields different bytes -- it must
  // never silently return the original payload.
  const std::vector<Bytes> training = {Bytes{1, 2, 3, 4, 5, 6, 7, 8}};
  const SharedHuffmanCodec codec(training);
  const Bytes input = {1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4};
  const Bytes good = codec.compress(input);
  ASSERT_EQ(codec.decompress(good, input.size()), input);

  apcc::Rng rng(99);
  for (int iter = 0; iter < 32; ++iter) {
    Bytes bad = good;
    const auto i = rng.next_below(bad.size());
    bad[i] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      const Bytes out = codec.decompress(bad, input.size());
      EXPECT_NE(out, input) << "corruption went unnoticed";
    } catch (const apcc::CheckError&) {
      // Detected: fine.
    }
  }
}

TEST(HuffmanTable, PerStreamCodecRoundTripsRandomInputs) {
  const HuffmanCodec codec;
  apcc::Rng rng(4242);
  for (int iter = 0; iter < 20; ++iter) {
    Bytes input;
    const auto len = 1 + rng.next_below(2048);
    for (std::uint64_t i = 0; i < len; ++i) {
      // Mix a hot byte with uniform noise for nontrivial code shapes.
      input.push_back(rng.next_bool(0.6)
                          ? static_cast<std::uint8_t>(0x42)
                          : static_cast<std::uint8_t>(rng.next_below(256)));
    }
    EXPECT_EQ(codec.decompress(codec.compress(input), input.size()), input);
  }
}

}  // namespace
}  // namespace apcc::compress
