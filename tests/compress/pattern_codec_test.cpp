// The pattern codec family: FPC and BDI stream-format pins (pattern
// classification at the sign-extension boundaries, mode selection,
// corrupt-stream rejection), the adaptive meta-codec's header dispatch
// and deterministic tie-break, fuzzed round-trips over the input
// classes the patterns target, and the serving differential: an
// adaptive sweep's serialized result must be byte-identical whatever
// the pool width or batch granularity.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "compress/adaptive.hpp"
#include "compress/bdi.hpp"
#include "compress/codec.hpp"
#include "compress/fpc.hpp"
#include "core/system.hpp"
#include "serving/service.hpp"
#include "serving/wire.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"
#include "workloads/suite.hpp"

namespace apcc::compress {
namespace {

Bytes words_le(const std::vector<std::uint32_t>& words) {
  Bytes out;
  out.reserve(words.size() * 4);
  for (const std::uint32_t w : words) {
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

std::vector<Bytes> instruction_blocks() {
  static const std::vector<Bytes> blocks =
      workloads::make_workload(workloads::WorkloadKind::kAdpcmLike)
          .block_bytes;
  return blocks;
}

void expect_roundtrip(const Codec& c, const Bytes& input) {
  ASSERT_EQ(c.decompress(c.compress(input), input.size()), input)
      << c.name() << " on " << input.size() << " bytes";
}

// ------------------------------------------------------------- FPC

TEST(Fpc, ClassifiesWordsAtTheSignExtensionBoundaries) {
  // Each word sits exactly at a boundary of the 4/8/16-bit
  // sign-extended literal classes; the prefix counters pin which class
  // matched, and the round-trip pins that the payload bits suffice.
  const std::vector<std::pair<std::uint32_t, FpcCodec::Pattern>> cases = {
      {7u, FpcCodec::kSigned4},                   // max positive 4-bit
      {8u, FpcCodec::kSigned8},                   // first word past it
      {0xfffffff8u, FpcCodec::kSigned4},          // -8: min 4-bit
      {0xfffffff7u, FpcCodec::kSigned8},          // -9: first past it
      {127u, FpcCodec::kSigned8},                 // max positive 8-bit
      {128u, FpcCodec::kSigned16},                // first word past it
      {0xffffff80u, FpcCodec::kSigned8},          // -128: min 8-bit
      {0xffffff7fu, FpcCodec::kSigned16},         // -129: first past it
      {32767u, FpcCodec::kSigned16},              // max positive 16-bit
      {32768u, FpcCodec::kRaw},                   // 0x8000: not a literal,
                                                  // halves differ -> raw
      {0xffff8000u, FpcCodec::kSigned16},         // -32768: min 16-bit
      {0xffff7fffu, FpcCodec::kRaw},              // -32769: past all three
      {0xabcdabcdu, FpcCodec::kRepeatedHalf},     // equal halves
      {0x00010001u, FpcCodec::kRepeatedHalf},     // ...even tiny ones
      {0xdeadbeefu, FpcCodec::kRaw},              // incompressible
  };
  for (const auto& [word, expected] : cases) {
    FpcCodec codec;  // fresh instance: counters start at zero
    expect_roundtrip(codec, words_le({word}));
    const auto counts = codec.pattern_counts();
    for (std::size_t p = 0; p < FpcCodec::kNumPatterns; ++p) {
      EXPECT_EQ(counts[p], p == expected ? 1u : 0u)
          << "word 0x" << std::hex << word << " pattern "
          << FpcCodec::pattern_name(p);
    }
  }
}

TEST(Fpc, ZeroRunsCoalesceAndRoundTrip) {
  FpcCodec codec;
  for (std::size_t n = 1; n <= 20; ++n) {
    expect_roundtrip(codec, Bytes(n * 4, 0));
  }
  // A run prefix covers up to 8 words in 6 bits: 64 zero words pack
  // into 8 run tokens = 48 bits = 6 bytes.
  FpcCodec fresh;
  const Bytes compressed = fresh.compress(Bytes(256, 0));
  EXPECT_EQ(compressed.size(), 6u);
  EXPECT_EQ(fresh.pattern_counts()[FpcCodec::kZeroRun], 8u);
}

TEST(Fpc, TailBytesRoundTripAtEveryRemainder) {
  FpcCodec codec;
  apcc::Rng rng(7);
  for (const std::size_t size : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 63u, 65u}) {
    Bytes input(size);
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect_roundtrip(codec, input);
  }
}

TEST(Fpc, ReservedPrefixesAreCorruptStreams) {
  const FpcCodec codec;
  for (const std::uint32_t reserved : {6u, 7u}) {
    BitWriter writer;
    writer.write_bits(reserved, 3);
    writer.write_bits(0, 29);  // padding the decoder never reaches
    const Bytes stream = writer.take();
    EXPECT_THROW((void)codec.decompress(stream, 4), apcc::CheckError)
        << "prefix " << reserved;
  }
}

TEST(Fpc, OverrunningZeroRunIsACorruptStream) {
  // A run of 8 words against a 2-word original: the length check must
  // fire before the decoder writes past the original size.
  const FpcCodec codec;
  BitWriter writer;
  writer.write_bits(FpcCodec::kZeroRun, 3);
  writer.write_bits(7, 3);  // run - 1 = 7 -> 8 words
  EXPECT_THROW((void)codec.decompress(writer.take(), 8), apcc::CheckError);
}

TEST(Fpc, TruncatedStreamUnderflowsNotCrashes) {
  const FpcCodec codec;
  EXPECT_THROW((void)codec.decompress({}, 4), apcc::CheckError);
  const Bytes compressed = codec.compress(words_le({0xdeadbeefu, 0x12345678u}));
  Bytes truncated(compressed.begin(), compressed.begin() + 2);
  EXPECT_THROW((void)codec.decompress(truncated, 8), apcc::CheckError);
}

// ------------------------------------------------------------- BDI

TEST(Bdi, NarrowRangeChunksCompress) {
  // 8-byte values inside a 1-byte range of a large base: the b8-d1
  // mode stores base + mask + one byte per word.
  Bytes input;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t v = 0x4142434445464700ull + i;
    for (unsigned b = 0; b < 8; ++b) {
      input.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  const BdiCodec codec;
  expect_roundtrip(codec, input);
  // Two 32-byte chunks, each 1 header + 8 base + 1 mask + 4 deltas.
  EXPECT_EQ(codec.compress(input).size(), 28u);
}

TEST(Bdi, ZeroChunksAreOneHeaderByte) {
  const BdiCodec codec;
  expect_roundtrip(codec, Bytes(64, 0));
  EXPECT_EQ(codec.compress(Bytes(64, 0)).size(), 2u);  // two mode-0 chunks
}

TEST(Bdi, MixedImmediateAndBaseWordsShareAChunk) {
  // The "immediate" dual base: small constants delta off zero, large
  // pointers delta off the chunk base, in one chunk.
  Bytes input;
  const std::vector<std::uint64_t> words = {
      5, 0x7000000000001000ull, 0x7000000000001008ull, 127};
  for (const std::uint64_t v : words) {
    for (unsigned b = 0; b < 8; ++b) {
      input.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  const BdiCodec codec;
  expect_roundtrip(codec, input);
  const Bytes compressed = codec.compress(input);
  EXPECT_LT(compressed.size(), input.size());
  EXPECT_EQ(compressed[0], 1u);  // b8-d1 wins
}

TEST(Bdi, ShortTailChunksRoundTrip) {
  const BdiCodec codec;
  apcc::Rng rng(11);
  for (const std::size_t size : {1u, 7u, 13u, 31u, 33u, 40u, 63u, 100u}) {
    Bytes input(size);
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect_roundtrip(codec, input);
  }
}

TEST(Bdi, IncompressibleChunksFallBackToRaw) {
  apcc::Rng rng(13);
  Bytes input(32);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_below(256));
  const BdiCodec codec;
  expect_roundtrip(codec, input);
  EXPECT_EQ(codec.compress(input).size(), 33u);  // header + verbatim
}

TEST(Bdi, CorruptStreamsThrowNotCrash) {
  const BdiCodec codec;
  // Missing chunk header.
  EXPECT_THROW((void)codec.decompress({}, 32), apcc::CheckError);
  // Raw chunk with no payload behind it.
  EXPECT_THROW((void)codec.decompress(Bytes{7}, 32), apcc::CheckError);
  // Mode byte outside the mode set.
  EXPECT_THROW((void)codec.decompress(Bytes{200}, 32), apcc::CheckError);
  EXPECT_THROW((void)codec.decompress(Bytes{8}, 32), apcc::CheckError);
  // A delta mode whose base width does not divide the (tail) chunk.
  EXPECT_THROW((void)codec.decompress(Bytes{1}, 20), apcc::CheckError);
  // Delta payload cut off after the header.
  EXPECT_THROW((void)codec.decompress(Bytes{1}, 32), apcc::CheckError);
}

// -------------------------------------------------------- adaptive

TEST(Adaptive, HeaderDispatchCoversEveryCandidateId) {
  // A stream hand-built as [candidate id][that codec's stream] must
  // decode through the adaptive header dispatch for every candidate.
  const auto training = instruction_blocks();
  const AdaptiveCodec adaptive(training);
  const Bytes input = training.front();
  for (const CodecKind kind : adaptive.candidate_kinds()) {
    const auto solo = make_codec(kind, training);
    Bytes stream;
    stream.push_back(static_cast<std::uint8_t>(kind));
    const Bytes payload = solo->compress(input);
    stream.insert(stream.end(), payload.begin(), payload.end());
    EXPECT_EQ(adaptive.decompress(stream, input.size()), input)
        << codec_kind_name(kind);
  }
}

TEST(Adaptive, PicksTheSmallestCandidateAndRecordsTheWin) {
  const auto training = instruction_blocks();
  const AdaptiveCodec adaptive(training);
  const Bytes input(256, 0);
  const Bytes out = adaptive.compress(input);
  // The winner is the first candidate (id order) achieving the
  // smallest encoding; the header byte is its CodecKind value.
  std::size_t best = SIZE_MAX;
  CodecKind best_kind = CodecKind::kNull;
  for (const CodecKind kind : adaptive.candidate_kinds()) {
    const std::size_t size = make_codec(kind, training)->compress(input).size();
    if (size < best) {
      best = size;
      best_kind = kind;
    }
  }
  EXPECT_EQ(out.size(), best + 1);
  EXPECT_EQ(out[0], static_cast<std::uint8_t>(best_kind));
  EXPECT_EQ(adaptive.decompress(out, input.size()), input);
  // On all-zero input the FPC zero-run tokens beat every other family.
  EXPECT_EQ(best_kind, CodecKind::kFpc);
  std::uint64_t wins = 0;
  for (const auto& s : adaptive.selection_stats()) {
    if (s.kind == best_kind) {
      EXPECT_EQ(s.wins, 1u);
      EXPECT_EQ(s.input_bytes, input.size());
      EXPECT_EQ(s.output_bytes, out.size());
    }
    wins += s.wins;
  }
  EXPECT_EQ(wins, 1u);
}

TEST(Adaptive, OutputIsIndependentOfCandidateListOrder) {
  // The tie-break is the numeric codec id, pinned by sorting at
  // construction -- two instances built from reversed lists must emit
  // identical bytes for every block.
  const auto training = instruction_blocks();
  std::vector<CodecKind> forward = AdaptiveCodec::default_candidates();
  std::vector<CodecKind> backward(forward.rbegin(), forward.rend());
  const AdaptiveCodec a(training, forward);
  const AdaptiveCodec b(training, backward);
  for (const auto& block : training) {
    EXPECT_EQ(a.compress(block), b.compress(block));
  }
}

TEST(Adaptive, CorruptHeadersAreRejected) {
  const auto training = instruction_blocks();
  const AdaptiveCodec adaptive(training);
  // Truncated before the codec id.
  EXPECT_THROW((void)adaptive.decompress({}, 16), apcc::CheckError);
  // Ids outside the candidate set: an arbitrary byte, and a real codec
  // that simply is not a candidate.
  EXPECT_THROW((void)adaptive.decompress(Bytes{0xee}, 16), apcc::CheckError);
  const Bytes not_a_candidate{
      static_cast<std::uint8_t>(CodecKind::kLzss), 0, 0};
  EXPECT_THROW((void)adaptive.decompress(not_a_candidate, 16),
               apcc::CheckError);
}

TEST(Adaptive, RejectsDegenerateCandidateSets) {
  const auto training = instruction_blocks();
  EXPECT_THROW(AdaptiveCodec(training, {}), apcc::CheckError);
  EXPECT_THROW(AdaptiveCodec(training, {CodecKind::kAdaptive}),
               apcc::CheckError);
  EXPECT_THROW(AdaptiveCodec(training, {CodecKind::kFpc, CodecKind::kFpc}),
               apcc::CheckError);
}

// ------------------------------------------------------------- fuzz

TEST(PatternFamily, RoundTripFuzzOverPatternedInputs) {
  // Inputs biased toward the shapes the patterns target: zero runs,
  // narrow literals, repeated halfwords, narrow-range 64-bit values,
  // and plain noise -- plus random lengths to cover the tail paths.
  const auto training = instruction_blocks();
  const FpcCodec fpc;
  const BdiCodec bdi;
  const AdaptiveCodec adaptive(training);
  apcc::Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = rng.next_below(600);
    Bytes input(size);
    const std::uint32_t style = rng.next_below(5);
    for (std::size_t i = 0; i < size; ++i) {
      switch (style) {
        case 0: input[i] = 0; break;
        case 1: input[i] = (i % 4) == 0
                               ? static_cast<std::uint8_t>(rng.next_below(16))
                               : 0;  // small positive word literals
          break;
        case 2: input[i] = static_cast<std::uint8_t>(i % 2 ? 0xab : 0xcd);
          break;  // repeated halfwords
        case 3: input[i] = (i % 8) < 2
                               ? static_cast<std::uint8_t>(rng.next_below(256))
                               : static_cast<std::uint8_t>(0x40 + (i % 8));
          break;  // narrow-range 64-bit values
        default: input[i] = static_cast<std::uint8_t>(rng.next_below(256));
      }
    }
    expect_roundtrip(fpc, input);
    expect_roundtrip(bdi, input);
    expect_roundtrip(adaptive, input);
  }
}

TEST(PatternFamily, CompressesRealInstructionBlocks) {
  // The family must pull its weight on assembled code, and adaptive
  // can never lose to its best candidate by more than the 1-byte
  // header per block.
  const auto training = instruction_blocks();
  const AdaptiveCodec adaptive(training);
  EXPECT_LT(compression_ratio(adaptive, training), 0.95);
  std::size_t adaptive_bytes = 0;
  for (const auto& block : training) {
    adaptive_bytes += adaptive.compress(block).size();
  }
  for (const CodecKind kind : adaptive.candidate_kinds()) {
    const auto solo = make_codec(kind, training);
    std::size_t solo_bytes = 0;
    for (const auto& block : training) {
      solo_bytes += solo->compress(block).size();
    }
    EXPECT_LE(adaptive_bytes, solo_bytes + training.size())
        << codec_kind_name(kind);
  }
  // Pattern usage was populated by the ratio pass and renders.
  const std::string summary = usage_summary(adaptive);
  EXPECT_NE(summary.find("adaptive selection"), std::string::npos);
}

}  // namespace
}  // namespace apcc::compress

// ---------------------------------------------- serving differential

namespace apcc::serving {
namespace {

/// Serialized sweep result of an adaptive-codec sweep under a given
/// pool width and batch granularity -- the full wire bytes, so any
/// nondeterminism anywhere in the result surfaces as a string diff.
std::string adaptive_sweep_wire(unsigned workers, std::uint32_t batch_cells) {
  ServiceOptions options;
  options.workers = workers;
  Service service(options);
  const WorkloadId id = service.register_workload(
      workloads::make_workload(workloads::WorkloadKind::kCrcLike));
  SweepJob job;
  job.workload = id;
  job.config.codec = compress::CodecKind::kAdaptive;
  job.batch_cells = batch_cells;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 4u}) {
      sweep::SweepTask task;
      task.label = std::string(runtime::strategy_name(strategy)) + "/k" +
                   std::to_string(k);
      task.config.policy.strategy = strategy;
      task.config.policy.compress_k = k;
      task.config.policy.predecompress_k = k;
      job.tasks.push_back(std::move(task));
    }
  }
  wire::ResultRecord record;
  record.job = 1;
  record.client = "pattern-differential";
  record.result.kind = JobKind::kSweep;
  record.result.sweep = service.submit(job).wait();
  return wire::serialize_result(record);
}

TEST(AdaptiveServing, SweepWireBytesIdenticalAcrossWorkersAndBatch) {
  // The adaptive codec feeds the artifact cache and the lockstep batch
  // path like any other kind: pool width and batch width are
  // scheduling knobs, never result knobs, down to the serialized
  // bytes.
  const std::string reference = adaptive_sweep_wire(1, 1);
  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const std::uint32_t batch : {std::uint32_t{1}, std::uint32_t{16}}) {
      if (workers == 1 && batch == 1) continue;
      EXPECT_EQ(adaptive_sweep_wire(workers, batch), reference)
          << "workers=" << workers << " batch=" << batch;
    }
  }
}

}  // namespace
}  // namespace apcc::serving
