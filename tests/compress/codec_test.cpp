// Parameterised codec tests: the round-trip property must hold for every
// codec on every input class, and trained codecs must actually compress
// instruction-like data.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "support/rng.hpp"
#include "workloads/suite.hpp"

namespace apcc::compress {
namespace {

std::vector<Bytes> instruction_training_data() {
  // Real assembled code from the suite gives realistic byte statistics.
  static const std::vector<Bytes> data = [] {
    const auto w = workloads::make_workload(
        workloads::WorkloadKind::kAdpcmLike);
    return w.block_bytes;
  }();
  return data;
}

class CodecRoundTrip : public ::testing::TestWithParam<CodecKind> {
 protected:
  std::unique_ptr<Codec> codec() const {
    const auto training = instruction_training_data();
    return make_codec(GetParam(), training);
  }

  static void expect_roundtrip(const Codec& c, const Bytes& input) {
    const Bytes compressed = c.compress(input);
    const Bytes output = c.decompress(compressed, input.size());
    ASSERT_EQ(output, input) << c.name() << " failed on " << input.size()
                             << " bytes";
  }
};

TEST_P(CodecRoundTrip, EmptyInput) {
  const auto c = codec();
  expect_roundtrip(*c, {});
}

TEST_P(CodecRoundTrip, SingleByte) {
  const auto c = codec();
  expect_roundtrip(*c, {0x42});
}

TEST_P(CodecRoundTrip, AllZeros) {
  const auto c = codec();
  expect_roundtrip(*c, Bytes(1000, 0));
}

TEST_P(CodecRoundTrip, AllDistinctBytes) {
  Bytes input(256);
  for (int i = 0; i < 256; ++i) input[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  const auto c = codec();
  expect_roundtrip(*c, input);
}

TEST_P(CodecRoundTrip, RepeatingPattern) {
  Bytes input;
  for (int i = 0; i < 500; ++i) {
    input.push_back(static_cast<std::uint8_t>(i % 7));
  }
  const auto c = codec();
  expect_roundtrip(*c, input);
}

TEST_P(CodecRoundTrip, AlternatingBytes) {
  Bytes input;
  for (int i = 0; i < 300; ++i) {
    input.push_back(i % 2 == 0 ? 0xaa : 0x55);
  }
  const auto c = codec();
  expect_roundtrip(*c, input);
}

TEST_P(CodecRoundTrip, RandomBytesManySizes) {
  apcc::Rng rng(99);
  const auto c = codec();
  for (const std::size_t size : {1u, 2u, 3u, 5u, 17u, 64u, 255u, 1024u}) {
    Bytes input(size);
    for (auto& b : input) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    expect_roundtrip(*c, input);
  }
}

TEST_P(CodecRoundTrip, RealInstructionBlocks) {
  const auto c = codec();
  for (const auto& block : instruction_training_data()) {
    expect_roundtrip(*c, block);
  }
}

TEST_P(CodecRoundTrip, OddLengthInput) {
  // Exercises the halfword codec's trailing-byte path in particular.
  Bytes input = {1, 2, 3, 4, 5, 6, 7};
  const auto c = codec();
  expect_roundtrip(*c, input);
}

TEST_P(CodecRoundTrip, CostsArePositive) {
  const auto c = codec();
  const auto& costs = c->costs();
  EXPECT_GT(costs.decompress_cycles(100), 0u);
  EXPECT_GT(costs.compress_cycles(100), 0u);
  EXPECT_GT(costs.decompress_cycles(1000), costs.decompress_cycles(10));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTrip,
    ::testing::Values(CodecKind::kNull, CodecKind::kMtfRle,
                      CodecKind::kHuffman, CodecKind::kSharedHuffman,
                      CodecKind::kLzss, CodecKind::kCodePack,
                      CodecKind::kFieldSplit, CodecKind::kFpc,
                      CodecKind::kBdi, CodecKind::kAdaptive),
    [](const ::testing::TestParamInfo<CodecKind>& info) {
      std::string name = codec_kind_name(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ------------------------------------------------- non-parameterised

TEST(CodecFactory, NamesMatchKinds) {
  EXPECT_STREQ(codec_kind_name(CodecKind::kNull), "null");
  EXPECT_STREQ(codec_kind_name(CodecKind::kLzss), "lzss");
  EXPECT_STREQ(codec_kind_name(CodecKind::kFpc), "fpc");
  EXPECT_STREQ(codec_kind_name(CodecKind::kBdi), "bdi");
  EXPECT_STREQ(codec_kind_name(CodecKind::kAdaptive), "adaptive");
  for (const CodecKind kind :
       {CodecKind::kNull, CodecKind::kMtfRle, CodecKind::kHuffman,
        CodecKind::kSharedHuffman, CodecKind::kLzss, CodecKind::kCodePack,
        CodecKind::kFpc, CodecKind::kBdi, CodecKind::kAdaptive}) {
    const auto c = make_codec(kind, instruction_training_data());
    EXPECT_FALSE(c->name().empty());
  }
}

TEST(CodecRatios, TrainedCodecsCompressInstructionData) {
  const auto training = instruction_training_data();
  for (const CodecKind kind :
       {CodecKind::kSharedHuffman, CodecKind::kLzss, CodecKind::kCodePack,
        CodecKind::kFieldSplit}) {
    const auto c = make_codec(kind, training);
    const double ratio = compression_ratio(*c, training);
    EXPECT_LT(ratio, 0.95) << c->name()
                           << " should compress instruction bytes";
    EXPECT_GT(ratio, 0.1) << c->name() << " ratio implausibly small";
  }
}

TEST(CodecRatios, NullCodecRatioIsOne) {
  const auto c = make_codec(CodecKind::kNull);
  const auto training = instruction_training_data();
  EXPECT_DOUBLE_EQ(compression_ratio(*c, training), 1.0);
}

TEST(CodecRatios, SharedHuffmanBeatsPerStreamOnSmallBlocks) {
  const auto training = instruction_training_data();
  const auto shared = make_codec(CodecKind::kSharedHuffman, training);
  const auto per_stream = make_codec(CodecKind::kHuffman, training);
  // Per-stream Huffman pays a 128-byte table per block; on basic blocks
  // the shared model must win.
  EXPECT_LT(compression_ratio(*shared, training),
            compression_ratio(*per_stream, training));
}

TEST(CodecCosts, ScalesWithOriginalSize) {
  CodecCosts costs;
  costs.decompress_cycles_per_byte = 2.0;
  costs.decompress_fixed_cycles = 10;
  EXPECT_EQ(costs.decompress_cycles(0), 10u);
  EXPECT_EQ(costs.decompress_cycles(100), 210u);
}

TEST(CorruptStreams, TruncatedStreamsThrowNotCrash) {
  const auto training = instruction_training_data();
  for (const CodecKind kind :
       {CodecKind::kMtfRle, CodecKind::kHuffman, CodecKind::kSharedHuffman,
        CodecKind::kLzss, CodecKind::kCodePack, CodecKind::kFieldSplit,
        CodecKind::kFpc, CodecKind::kBdi, CodecKind::kAdaptive}) {
    const auto c = make_codec(kind, training);
    const Bytes input(64, 0x3c);
    Bytes compressed = c->compress(input);
    ASSERT_FALSE(compressed.empty());
    compressed.resize(compressed.size() / 2);  // truncate
    EXPECT_THROW((void)c->decompress(compressed, input.size()),
                 apcc::CheckError)
        << c->name();
  }
}

}  // namespace
}  // namespace apcc::compress
