// Cross-module integration tests: the qualitative shapes the paper's
// evaluation depends on, checked end-to-end over real workloads. These are
// the properties EXPERIMENTS.md reports quantitatively.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/system.hpp"
#include "workloads/random_program.hpp"
#include "workloads/suite.hpp"

namespace apcc {
namespace {

using core::CodeCompressionSystem;
using core::SystemConfig;
using runtime::DecompressionStrategy;

const workloads::Workload& mpeg2() {
  static const workloads::Workload w =
      workloads::make_workload(workloads::WorkloadKind::kMpeg2Like);
  return w;
}

TEST(Shapes, KSweepTradesMemoryForCycles) {
  // The paper's central trade-off (§3): as k grows, memory consumption
  // rises and performance overhead falls, monotonically at the ends.
  std::vector<sim::RunResult> results;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 32u}) {
    SystemConfig config;
    config.policy.compress_k = k;
    results.push_back(
        CodeCompressionSystem::from_workload(mpeg2(), config).run());
  }
  EXPECT_LE(results.front().avg_occupancy_bytes,
            results.back().avg_occupancy_bytes)
      << "k=1 must hold less memory on average than k=32";
  EXPECT_GE(results.front().total_cycles, results.back().total_cycles)
      << "k=1 must cost at least as many cycles as k=32";
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].peak_occupancy_bytes,
              results[i - 1].peak_occupancy_bytes)
        << "peak memory is monotone in k";
  }
}

TEST(Shapes, StrategyOrderOnCycles) {
  // Expected Figure-3 ordering for fixed k: the wider the speculation,
  // the fewer entries are left for the on-demand path. Paired with the
  // fast CodePack decoder (pre-decompression presumes the helper can
  // keep up -- with a slow software codec the helper queue saturates and
  // the demand path wins the race instead).
  SystemConfig base;
  base.codec = compress::CodecKind::kCodePack;
  base.policy.compress_k = 4;
  base.policy.predecompress_k = 3;

  SystemConfig lazy = base;
  lazy.policy.strategy = DecompressionStrategy::kOnDemand;
  SystemConfig single = base;
  single.policy.strategy = DecompressionStrategy::kPreSingle;
  SystemConfig all = base;
  all.policy.strategy = DecompressionStrategy::kPreAll;

  const auto r_lazy =
      CodeCompressionSystem::from_workload(mpeg2(), lazy).run();
  const auto r_single =
      CodeCompressionSystem::from_workload(mpeg2(), single).run();
  const auto r_all = CodeCompressionSystem::from_workload(mpeg2(), all).run();

  EXPECT_LE(r_all.demand_decompressions, r_single.demand_decompressions);
  EXPECT_LE(r_single.demand_decompressions, r_lazy.demand_decompressions);
  EXPECT_LE(r_all.critical_decompress_cycles,
            r_lazy.critical_decompress_cycles);
  // And the mirror image on memory: pre-all holds the most.
  EXPECT_GE(r_all.peak_occupancy_bytes, r_single.peak_occupancy_bytes);
}

TEST(Shapes, EverythingBeatsUncompressedOnAverageMemory) {
  for (const auto kind : workloads::all_workload_kinds()) {
    const auto w = workloads::make_workload(kind);
    SystemConfig config;
    config.policy.compress_k = 2;
    const auto r = CodeCompressionSystem::from_workload(w, config).run();
    const auto base = baselines::run_no_compression(w.cfg, w.trace, {});
    EXPECT_LT(r.avg_occupancy_bytes,
              static_cast<double>(base.peak_occupancy_bytes))
        << w.name;
  }
}

TEST(Shapes, BudgetModeEnforcesHardCap) {
  const auto& w = mpeg2();
  SystemConfig unbounded;
  unbounded.policy.compress_k = 64;  // retain aggressively
  const auto free_run =
      CodeCompressionSystem::from_workload(w, unbounded).run();

  // The cap must sit below the unbounded working set but above the
  // largest block the trace actually executes (cold blocks larger than
  // the budget are fine -- they are never decompressed).
  std::uint64_t largest_executed = 0;
  for (const cfg::BlockId b : w.trace) {
    largest_executed = std::max(largest_executed, w.cfg.block(b).size_bytes());
  }
  SystemConfig capped = unbounded;
  capped.policy.memory_budget = std::max(
      (free_run.peak_occupancy_bytes - free_run.compressed_area_bytes) / 2,
      largest_executed + 8);
  ASSERT_LT(capped.policy.memory_budget,
            free_run.peak_occupancy_bytes - free_run.compressed_area_bytes)
      << "test needs a budget below the unbounded working set";
  const auto capped_run =
      CodeCompressionSystem::from_workload(w, capped).run();

  EXPECT_LE(capped_run.peak_occupancy_bytes,
            capped_run.compressed_area_bytes +
                capped.policy.memory_budget);
  EXPECT_GT(capped_run.evictions, 0u);
  EXPECT_GE(capped_run.total_cycles, free_run.total_cycles)
      << "the budget trades cycles for the hard cap";
}

TEST(Shapes, RememberSetsPayForThemselves) {
  const auto& w = mpeg2();
  SystemConfig with;
  with.policy.compress_k = 8;
  const auto r_with = CodeCompressionSystem::from_workload(w, with).run();

  SystemConfig without = with;
  without.policy.use_remember_sets = false;
  const auto r_without =
      CodeCompressionSystem::from_workload(w, without).run();

  EXPECT_LT(r_with.exceptions, r_without.exceptions);
  EXPECT_LT(r_with.total_cycles, r_without.total_cycles)
      << "branch patching must beat exception-per-entry (E6)";
}

TEST(Shapes, BackgroundThreadsHideWork) {
  const auto& w = mpeg2();
  SystemConfig bg;
  bg.policy.strategy = DecompressionStrategy::kPreAll;
  bg.policy.predecompress_k = 2;
  const auto r_bg = CodeCompressionSystem::from_workload(w, bg).run();

  SystemConfig fg = bg;
  fg.policy.background_compression = false;
  fg.policy.background_decompression = false;
  const auto r_fg = CodeCompressionSystem::from_workload(w, fg).run();

  EXPECT_LE(r_bg.total_cycles, r_fg.total_cycles)
      << "the three-thread model (Figure 4) must not lose to inline work";
}

TEST(Shapes, HoldsOnRandomProgramsToo) {
  // The k-sweep shape is not an artifact of the hand-written suite.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    workloads::RandomProgramOptions opts;
    opts.seed = seed;
    const auto w = workloads::make_random_workload(opts);
    if (w.trace.size() < 50) continue;  // trivially short run
    SystemConfig small_k;
    small_k.policy.compress_k = 1;
    SystemConfig large_k;
    large_k.policy.compress_k = 64;
    const auto r1 = CodeCompressionSystem::from_workload(w, small_k).run();
    const auto r64 = CodeCompressionSystem::from_workload(w, large_k).run();
    EXPECT_LE(r1.avg_occupancy_bytes, r64.avg_occupancy_bytes + 1.0)
        << "seed " << seed;
    EXPECT_GE(r1.total_cycles, r64.total_cycles) << "seed " << seed;
  }
}

TEST(Shapes, CodecRatioOrderingPropagatesToFootprint) {
  const auto& w = mpeg2();
  std::vector<std::pair<compress::CodecKind, std::uint64_t>> footprints;
  for (const auto kind :
       {compress::CodecKind::kNull, compress::CodecKind::kMtfRle,
        compress::CodecKind::kSharedHuffman}) {
    SystemConfig config;
    config.codec = kind;
    const auto system = CodeCompressionSystem::from_workload(w, config);
    footprints.emplace_back(kind, system.compressed_image_bytes());
  }
  EXPECT_LT(footprints[2].second, footprints[0].second)
      << "shared huffman image must undercut the null-codec image";
}

TEST(Shapes, ExceptionRateDropsWithPredecompressionDepth) {
  // Two preconditions for the monotone claim: a decoder fast enough that
  // the helper keeps up (CodePack), and a retention window k_c comfortably
  // above the lead k_d -- otherwise blocks fetched k_d edges early are
  // deleted by the k-edge compressor right around arrival (the "timing of
  // prefetch" trade-off the paper notes in S4).
  const auto& w = mpeg2();
  double prev_rate = 1.0;
  for (const std::uint32_t kd : {1u, 2u, 4u}) {
    SystemConfig config;
    config.codec = compress::CodecKind::kCodePack;
    config.policy.strategy = DecompressionStrategy::kPreAll;
    config.policy.predecompress_k = kd;
    config.policy.compress_k = 16;
    const auto r = CodeCompressionSystem::from_workload(w, config).run();
    EXPECT_LE(r.exception_rate(), prev_rate + 0.05) << "k_d=" << kd;
    prev_rate = r.exception_rate();
  }
}

}  // namespace
}  // namespace apcc
