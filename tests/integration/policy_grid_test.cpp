// Property sweep over the full policy grid: for every combination of
// (strategy x compress_k x codec x thread model), the engine must satisfy
// the accounting invariants. This is the repository's broadest
// property-based test: ~100 configurations on a real workload.
#include <gtest/gtest.h>

#include <tuple>

#include "core/system.hpp"
#include "workloads/suite.hpp"

namespace apcc {
namespace {

using core::CodeCompressionSystem;
using core::SystemConfig;
using GridParam = std::tuple<runtime::DecompressionStrategy, std::uint32_t,
                             compress::CodecKind, bool>;

const workloads::Workload& workload() {
  static const workloads::Workload w =
      workloads::make_workload(workloads::WorkloadKind::kGsmLike);
  return w;
}

class PolicyGridTest : public ::testing::TestWithParam<GridParam> {
 protected:
  static SystemConfig config_for(const GridParam& p) {
    SystemConfig config;
    config.policy.strategy = std::get<0>(p);
    config.policy.compress_k = std::get<1>(p);
    config.policy.predecompress_k = 2;
    config.codec = std::get<2>(p);
    config.policy.background_compression = std::get<3>(p);
    config.policy.background_decompression = std::get<3>(p);
    return config;
  }
};

TEST_P(PolicyGridTest, AccountingInvariantsHold) {
  const auto config = config_for(GetParam());
  const auto system = CodeCompressionSystem::from_workload(workload(), config);
  const sim::RunResult r = system.run();

  // The run completes and covers the whole trace.
  EXPECT_EQ(r.block_entries, workload().trace.size());

  // Time accounting.
  EXPECT_GE(r.total_cycles, r.busy_cycles);
  EXPECT_EQ(r.baseline_cycles, r.busy_cycles);
  EXPECT_GE(r.slowdown(), 1.0);
  EXPECT_GE(r.total_cycles,
            r.busy_cycles + r.stall_cycles + r.exception_cycles);

  // Event accounting.
  EXPECT_GE(r.exceptions * 1.0, 0.0);
  EXPECT_LE(r.predecompress_hits + r.predecompress_partial,
            r.predecompressions);
  EXPECT_LE(r.wasted_predecompressions, r.predecompressions);
  EXPECT_LE(r.deletions, r.demand_decompressions + r.predecompressions)
      << "cannot delete more copies than were ever created";
  EXPECT_EQ(r.unpatches <= r.patches, true)
      << "every unpatch corresponds to an earlier patch";

  // Memory accounting.
  EXPECT_GE(r.peak_occupancy_bytes, r.compressed_area_bytes);
  EXPECT_GE(static_cast<double>(r.peak_occupancy_bytes) + 0.5,
            r.avg_occupancy_bytes);
  EXPECT_GT(r.codec_ratio, 0.0);

  // On-demand never uses the helper or pre-decompresses.
  if (std::get<0>(GetParam()) == runtime::DecompressionStrategy::kOnDemand) {
    EXPECT_EQ(r.predecompressions, 0u);
    EXPECT_EQ(r.stall_cycles, 0u);
  }
}

TEST_P(PolicyGridTest, DeterministicAcrossRuns) {
  const auto config = config_for(GetParam());
  const auto system = CodeCompressionSystem::from_workload(workload(), config);
  const sim::RunResult a = system.run();
  const sim::RunResult b = system.run();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.exceptions, b.exceptions);
  EXPECT_EQ(a.peak_occupancy_bytes, b.peak_occupancy_bytes);
  EXPECT_EQ(a.deletions, b.deletions);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicyGridTest,
    ::testing::Combine(
        ::testing::Values(runtime::DecompressionStrategy::kOnDemand,
                          runtime::DecompressionStrategy::kPreAll,
                          runtime::DecompressionStrategy::kPreSingle),
        ::testing::Values(1u, 4u, 32u),
        ::testing::Values(compress::CodecKind::kSharedHuffman,
                          compress::CodecKind::kLzss,
                          compress::CodecKind::kCodePack),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::string name = runtime::strategy_name(std::get<0>(info.param));
      name += "_k" + std::to_string(std::get<1>(info.param));
      name += "_";
      name += compress::codec_kind_name(std::get<2>(info.param));
      name += std::get<3>(info.param) ? "_bg" : "_inline";
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace apcc
